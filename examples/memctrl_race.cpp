// Memctrl race: stream the memory-controller workload family
// (workload/memctrl.h) straight into the engine — no materialized Instance
// anywhere — and race FR-FCFS row-hit-first scheduling against the paper's
// deadline-driven ΔLRU-EDF.
//
// The workload is built to make both sides look good somewhere: open-row
// bursts reward staying on the current color (FR-FCFS's whole strategy),
// while staggered refresh storms dump a rank's stashed backlog onto
// short-deadline banks all at once, which only deadline pressure absorbs.
// The table below reproduces the EXPERIMENTS.md "FR-FCFS vs ΔLRU-EDF" row
// set; drops are split by delay class to show *where* FR-FCFS loses jobs.
//
// The default n=4 runs 8 banks contended 2:1 over 4 resources; at n >= 8
// every bank can hold a resource permanently and the policies converge.
//
//   ./memctrl_race [--n=4] [--delta=4] [--rounds=2048] [--ranks=2]
//                  [--banks=4] [--seed=1]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sched/registry.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/memctrl.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineInt("n", 4, "resources (>= 4 for dlru-edf)")
      .DefineInt("delta", 4, "reconfiguration cost")
      .DefineInt("rounds", 2048, "request rounds to generate")
      .DefineInt("ranks", 2, "DRAM ranks")
      .DefineInt("banks", 4, "banks per rank")
      .DefineInt("seed", 1, "workload seed");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("memctrl_race").c_str());
    return 0;
  }

  rrs::workload::MemctrlOptions workload;
  workload.num_ranks = static_cast<uint32_t>(flags.GetInt("ranks"));
  workload.banks_per_rank = static_cast<uint32_t>(flags.GetInt("banks"));
  workload.rounds = static_cast<rrs::Round>(flags.GetInt("rounds"));
  workload.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  rrs::EngineOptions options;
  options.num_resources = static_cast<uint32_t>(flags.GetInt("n"));
  options.cost_model.delta = static_cast<uint64_t>(flags.GetInt("delta"));

  const size_t num_colors = workload.num_ranks * workload.banks_per_rank;
  std::printf(
      "memctrl workload: %u ranks x %u banks (%zu colors), %lld rounds, "
      "refresh %lld/%lld\n\n",
      workload.num_ranks, workload.banks_per_rank, num_colors,
      static_cast<long long>(workload.rounds),
      static_cast<long long>(workload.refresh_period),
      static_cast<long long>(workload.refresh_length));

  // Delay bounds cycle across (rank, bank) colors; the shortest class is
  // where refresh storms hurt (a stalled rank's backlog must clear within
  // the bound or drop).
  const rrs::Round short_delay = *std::min_element(
      workload.delay_choices.begin(), workload.delay_choices.end());
  const auto delay_of = [&](size_t color) {
    return workload.delay_choices[color % workload.delay_choices.size()];
  };

  rrs::Table table({"policy", "reconfigs", "drops(short-D)", "drops(long-D)",
                    "weighted drops", "total cost"});
  for (const char* name : {"frfcfs", "dlru-edf", "greedy-edf", "never"}) {
    auto policy = rrs::MakePolicy(name);
    // Each policy gets its own source built from the same options + seed,
    // so every row consumes the bit-identical arrival stream.
    auto source = rrs::workload::MakeMemctrlSource(workload);
    rrs::Engine engine;
    engine.Reset(*source, options);
    rrs::RunResult result = engine.Run(*policy);

    uint64_t short_drops = 0, long_drops = 0;
    for (size_t c = 0; c < result.drops_per_color.size(); ++c) {
      (delay_of(c) == short_delay ? short_drops : long_drops) +=
          result.drops_per_color[c];
    }
    table.AddRow()
        .Cell(std::string(name))
        .Cell(result.cost.reconfigurations)
        .Cell(short_drops)
        .Cell(long_drops)
        .Cell(result.cost.weighted_drops)
        .Cell(result.total_cost(options.cost_model));
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf(
      "FR-FCFS rides open-row bursts (fewest reconfigs) but lets refresh "
      "storms land on\nthe short-deadline banks; dlru-edf pays "
      "reconfigurations — and slack-class drops —\nto keep the urgent banks "
      "alive.\n");
  return 0;
}
