// Trace tool: generate, inspect, and replay rrsched trace files — the
// command-line face of the library for downstream users with their own
// workloads.
//
//   ./trace_tool generate --kind=router --rounds=1024 --seed=7 --out=t.trace
//   ./trace_tool info t.trace
//   ./trace_tool run t.trace --policy=dlru-edf --n=16 --delta=8
//   ./trace_tool run t.trace --pipeline --n=16 --delta=8
#include <cstdio>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "util/flags.h"
#include "util/str.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"
#include "workload/trace_stats.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool generate --kind=<router|datacenter|poisson|zipf>"
               " [--rounds=N] [--seed=S] --out=FILE\n"
               "  trace_tool info FILE\n"
               "  trace_tool run FILE [--policy=NAME | --pipeline]"
               " [--n=N] [--delta=D] [--save-schedule=FILE]\n"
               "                [--chrome-trace=FILE] [--metrics=FILE]\n"
               "  trace_tool validate TRACE SCHEDULE [--delta=D]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineString("kind", "router", "workload kind for generate")
      .DefineInt("rounds", 1024, "trace length")
      .DefineInt("seed", 1, "workload seed")
      .DefineString("out", "", "output file for generate")
      .DefineString("policy", "dlru-edf", "policy name for run")
      .DefineBool("pipeline", false, "run the Theorem-3 pipeline instead")
      .DefineInt("n", 16, "online resources")
      .DefineInt("delta", 8, "reconfiguration cost")
      .DefineString("save-schedule", "", "write the run's schedule to a file")
      .DefineString("chrome-trace", "",
                    "write a Chrome trace_event JSON of the run "
                    "(chrome://tracing, ui.perfetto.dev)")
      .DefineString("metrics", "",
                    "write run metrics in Prometheus text format");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  if (flags.help_requested() || flags.positional().empty()) return Usage();

  const std::string& command = flags.positional()[0];
  if (command == "generate") {
    const std::string kind = flags.GetString("kind");
    const rrs::Round rounds = flags.GetInt("rounds");
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
    rrs::Instance instance;
    if (kind == "router") {
      rrs::workload::RouterOptions gen;
      gen.rounds = rounds;
      gen.seed = seed;
      instance = rrs::workload::MakeRouterScenario(
          rrs::workload::DefaultRouterServices(), gen);
    } else if (kind == "datacenter") {
      rrs::workload::DatacenterOptions gen;
      gen.rounds = rounds;
      gen.seed = seed;
      instance = rrs::workload::MakeDatacenterScenario(gen);
    } else if (kind == "poisson") {
      rrs::workload::PoissonOptions gen;
      gen.rounds = rounds;
      gen.seed = seed;
      instance = MakePoisson({{2, 1.0}, {4, 1.0}, {8, 0.5}, {16, 0.5}}, gen);
    } else if (kind == "zipf") {
      rrs::workload::ZipfOptions gen;
      gen.rounds = rounds;
      gen.seed = seed;
      instance = MakeZipf(gen);
    } else {
      std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
      return Usage();
    }
    const std::string out = flags.GetString("out");
    if (out.empty()) {
      std::fprintf(stderr, "generate requires --out\n");
      return Usage();
    }
    if (!instance.SaveToFile(out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s: %s\n", out.c_str(), instance.Summary().c_str());
    return 0;
  }

  if (flags.positional().size() < 2) return Usage();
  rrs::Instance instance = rrs::Instance::LoadFromFile(flags.positional()[1]);

  if (command == "info") {
    std::printf("%s\n", instance.Summary().c_str());
    std::printf("batched: %s, rate-limited: %s, power-of-two delays: %s, "
                "unit drop costs: %s\n",
                instance.IsBatched() ? "yes" : "no",
                instance.IsRateLimited() ? "yes" : "no",
                instance.DelayBoundsArePowersOfTwo() ? "yes" : "no",
                instance.HasUnitDropCosts() ? "yes" : "no");
    std::printf("%s",
                rrs::workload::ComputeTraceStats(instance).ToString().c_str());
    return 0;
  }

  if (command == "validate") {
    if (flags.positional().size() < 3) return Usage();
    rrs::Schedule schedule =
        rrs::Schedule::LoadFromFile(flags.positional()[2]);
    rrs::CostModel model{static_cast<uint64_t>(flags.GetInt("delta"))};
    auto v = schedule.Validate(instance);
    if (!v.ok) {
      std::printf("INVALID: %s\n", v.error.c_str());
      return 1;
    }
    std::printf("valid: executed=%llu reconfigs=%llu drops=%llu total=%llu\n",
                static_cast<unsigned long long>(v.executed),
                static_cast<unsigned long long>(v.cost.reconfigurations),
                static_cast<unsigned long long>(v.cost.drops),
                static_cast<unsigned long long>(v.cost.total(model)));
    return 0;
  }

  if (command == "run") {
    rrs::EngineOptions options;
    options.num_resources = static_cast<uint32_t>(flags.GetInt("n"));
    options.cost_model.delta = static_cast<uint64_t>(flags.GetInt("delta"));
    const std::string save_path = flags.GetString("save-schedule");
    const std::string trace_path = flags.GetString("chrome-trace");
    const std::string metrics_path = flags.GetString("metrics");

    // Observability: attach a scope (and, when a trace is requested, a
    // tracer) so the engine records per-phase times and per-color counters.
    rrs::obs::Tracer tracer;
    rrs::obs::Scope::Options scope_options;
    if (!trace_path.empty()) scope_options.tracer = &tracer;
    rrs::obs::Scope scope(scope_options);
    if (!trace_path.empty() || !metrics_path.empty()) {
      options.obs_scope = &scope;
      if (rrs::obs::kLevel == 0) {
        std::fprintf(stderr,
                     "warning: built with RRS_OBS_LEVEL=0; trace/metrics "
                     "output will be empty\n");
      }
    }
    auto write_observability = [&]() {
      if (!trace_path.empty()) {
        if (tracer.WriteChromeJson(trace_path)) {
          std::printf("chrome trace written to %s (open in chrome://tracing "
                      "or ui.perfetto.dev)\n",
                      trace_path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        }
      }
      if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        out << scope.registry().ToPrometheus();
        if (out.good()) {
          std::printf("metrics written to %s\n", metrics_path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        }
      }
      if (options.obs_scope != nullptr) {
        std::printf("%s\n", scope.SummaryLine().c_str());
      }
    };
    if (flags.GetBool("pipeline")) {
      auto result = rrs::reduce::SolveOnline(instance, options);
      std::printf("pipeline: reconfigs=%llu drops=%llu total=%llu valid=%s\n",
                  static_cast<unsigned long long>(
                      result.cost().reconfigurations),
                  static_cast<unsigned long long>(result.cost().drops),
                  static_cast<unsigned long long>(
                      result.cost().total(options.cost_model)),
                  result.validation.ok ? "yes" : "NO");
      if (!save_path.empty() && result.schedule.SaveToFile(save_path)) {
        std::printf("schedule written to %s\n", save_path.c_str());
      }
      write_observability();
      return result.validation.ok ? 0 : 1;
    }
    auto policy = rrs::MakePolicy(flags.GetString("policy"));
    if (!policy) {
      std::fprintf(stderr, "unknown policy '%s'; known: %s\n",
                   flags.GetString("policy").c_str(),
                   rrs::Join(rrs::PolicyNames(), ", ").c_str());
      return 1;
    }
    options.record_schedule = !save_path.empty();
    rrs::RunResult r = rrs::RunPolicy(instance, *policy, options);
    std::printf("%s: reconfigs=%llu drops=%llu total=%llu executed=%llu\n",
                policy->name().c_str(),
                static_cast<unsigned long long>(r.cost.reconfigurations),
                static_cast<unsigned long long>(r.cost.drops),
                static_cast<unsigned long long>(
                    r.total_cost(options.cost_model)),
                static_cast<unsigned long long>(r.executed));
    if (!save_path.empty() && r.schedule &&
        r.schedule->SaveToFile(save_path)) {
      std::printf("schedule written to %s\n", save_path.c_str());
    }
    write_observability();
    return 0;
  }
  return Usage();
}
