// Adversary explorer: regenerates the Appendix A and Appendix B lower-bound
// constructions at chosen parameters, runs ΔLRU / EDF / ΔLRU-EDF on them,
// validates the hand-built OFF schedules, and prints the certified ratios.
//
//   ./adversary_explorer [--n=4] [--delta-a=2] [--delta-b=5] [--j=3]
//                        [--k=9]
#include <cstdio>

#include "core/engine.h"
#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/adversary.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineInt("n", 4, "online resources (even)")
      .DefineInt("delta-a", 2, "reconfig cost for the Appendix A instance")
      .DefineInt("delta-b", 5, "reconfig cost for the Appendix B instance (> n)")
      .DefineInt("j", 3, "short delay bound exponent")
      .DefineInt("k", 9, "long delay bound exponent");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("adversary_explorer").c_str());
    return 0;
  }
  const uint32_t n = static_cast<uint32_t>(flags.GetInt("n"));
  const int j = static_cast<int>(flags.GetInt("j"));
  const int k = static_cast<int>(flags.GetInt("k"));

  // ---- Appendix A ----------------------------------------------------
  {
    const uint64_t delta = static_cast<uint64_t>(flags.GetInt("delta-a"));
    auto adv = rrs::workload::MakeDlruAdversary(n, delta, j, k);
    rrs::CostModel model{delta};
    rrs::EngineOptions options;
    options.num_resources = n;
    options.cost_model = model;

    rrs::Schedule off = rrs::workload::MakeDlruAdversaryOffSchedule(adv);
    auto off_check = off.Validate(adv.instance);
    std::printf("Appendix A (anti-ΔLRU), n=%u delta=%llu j=%d k=%d\n", n,
                static_cast<unsigned long long>(delta), j, k);
    std::printf("  OFF schedule valid: %s, cost %llu\n",
                off_check.ok ? "yes" : "NO",
                static_cast<unsigned long long>(off_check.cost.total(model)));

    rrs::Table table({"policy", "reconfigs", "drops", "total", "ratio_vs_OFF"});
    auto add = [&](const char* name, rrs::SchedulerPolicy& p) {
      rrs::RunResult r = rrs::RunPolicy(adv.instance, p, options);
      table.AddRow()
          .Cell(name)
          .Cell(r.cost.reconfigurations)
          .Cell(r.cost.drops)
          .Cell(r.total_cost(model))
          .Cell(static_cast<double>(r.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)),
                2);
    };
    rrs::DlruPolicy dlru;
    rrs::EdfPolicy edf(true);
    rrs::DlruEdfPolicy combined;
    add("dlru", dlru);
    add("edf", edf);
    add("dlru-edf", combined);
    std::printf("%s\n", table.ToAscii().c_str());
  }

  // ---- Appendix B ----------------------------------------------------
  {
    const uint64_t delta = static_cast<uint64_t>(flags.GetInt("delta-b"));
    auto adv = rrs::workload::MakeEdfAdversary(n, delta, j, k);
    rrs::CostModel model{delta};
    rrs::EngineOptions options;
    options.num_resources = n;
    options.cost_model = model;

    rrs::Schedule off = rrs::workload::MakeEdfAdversaryOffSchedule(adv);
    auto off_check = off.Validate(adv.instance);
    std::printf("Appendix B (anti-EDF), n=%u delta=%llu j=%d k=%d\n", n,
                static_cast<unsigned long long>(delta), j, k);
    std::printf("  OFF schedule valid: %s, cost %llu (drops %llu)\n",
                off_check.ok ? "yes" : "NO",
                static_cast<unsigned long long>(off_check.cost.total(model)),
                static_cast<unsigned long long>(off_check.cost.drops));

    rrs::Table table({"policy", "reconfigs", "drops", "total", "ratio_vs_OFF"});
    auto add = [&](const char* name, rrs::SchedulerPolicy& p) {
      rrs::RunResult r = rrs::RunPolicy(adv.instance, p, options);
      table.AddRow()
          .Cell(name)
          .Cell(r.cost.reconfigurations)
          .Cell(r.cost.drops)
          .Cell(r.total_cost(model))
          .Cell(static_cast<double>(r.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)),
                2);
    };
    rrs::DlruPolicy dlru;
    rrs::EdfPolicy edf(true);
    rrs::DlruEdfPolicy combined;
    add("dlru", dlru);
    add("edf", edf);
    add("dlru-edf", combined);
    std::printf("%s\n", table.ToAscii().c_str());
  }
  return 0;
}
