// Paper walkthrough: a narrated tour of the paper's argument, executable.
//
//   1. The introduction's dilemma — background jobs vs short-term bursts:
//      eager idle-filling thrashes, patient waiting underutilizes.
//   2. Appendix A — pure recency (ΔLRU) fails: it pins idle-but-recent
//      colors and starves the long-term backlog.
//   3. Appendix B — pure deadlines (EDF) fail: alternating idleness makes it
//      thrash long colors in and out.
//   4. Section 3 — the combination (ΔLRU-EDF) handles both adversaries.
//   5. Sections 4-5 — the reductions carry the guarantee to arbitrary
//      arrivals; the final schedule is certified by an independent
//      validator, and the exact offline optimum (where computable) anchors
//      the ratio.
//
//   ./paper_walkthrough
#include <cstdio>

#include "analysis/timeline.h"
#include "core/engine.h"
#include "offline/optimal.h"
#include "reduce/pipeline.h"
#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/greedy.h"
#include "util/table.h"
#include "workload/adversary.h"

namespace {

void Banner(const char* text) {
  std::printf("\n==== %s ====\n\n", text);
}

}  // namespace

int main() {
  using namespace rrs;

  // ---------------------------------------------------------------- 1 ----
  Banner("1. The introduction's dilemma (background vs short-term)");
  {
    workload::IntroScenarioOptions scenario;
    scenario.rounds = 1024;
    scenario.background_delay = 1024;
    scenario.background_jobs = 512;
    scenario.gap_blocks = 2;
    Instance inst = workload::MakeIntroScenario(scenario);
    CostModel model{8};
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model = model;

    Table table({"policy", "reconfigs", "drops", "total"});
    LazyGreedyPolicy eager(1);
    RunResult eager_run = RunPolicy(inst, eager, options);
    table.AddRow().Cell("eager idle-fill (thrash-prone)")
        .Cell(eager_run.cost.reconfigurations)
        .Cell(eager_run.cost.drops)
        .Cell(eager_run.total_cost(model));
    LazyGreedyPolicy patient(4 * model.delta);
    RunResult patient_run = RunPolicy(inst, patient, options);
    table.AddRow().Cell("patient idle-fill (underutilizes)")
        .Cell(patient_run.cost.reconfigurations)
        .Cell(patient_run.cost.drops)
        .Cell(patient_run.total_cost(model));
    DlruEdfPolicy combined;
    RunResult combined_run = RunPolicy(inst, combined, options);
    table.AddRow().Cell("dlru-edf")
        .Cell(combined_run.cost.reconfigurations)
        .Cell(combined_run.cost.drops)
        .Cell(combined_run.total_cost(model));
    std::printf("%s", table.ToAscii().c_str());
  }

  // ---------------------------------------------------------------- 2 ----
  Banner("2. Appendix A: recency alone (dlru) underutilizes");
  {
    auto adv = workload::MakeDlruAdversary(4, 2, 5, 10);
    CostModel model{2};
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model = model;
    Schedule off = workload::MakeDlruAdversaryOffSchedule(adv);
    auto off_check = off.Validate(adv.instance);
    std::printf("hand-built OFF schedule: valid=%s cost=%llu\n",
                off_check.ok ? "yes" : "NO",
                static_cast<unsigned long long>(off_check.cost.total(model)));

    DlruPolicy dlru;
    RunResult run = RunPolicy(adv.instance, dlru, options);
    std::printf("dlru: cost=%llu -> certified ratio %.1fx "
                "(grows as 2^{j+1}/(n*delta) with j)\n",
                static_cast<unsigned long long>(run.total_cost(model)),
                static_cast<double>(run.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)));
    DlruEdfPolicy combined;
    RunResult combined_run = RunPolicy(adv.instance, combined, options);
    std::printf("dlru-edf on the same input: cost=%llu (ratio %.2fx)\n",
                static_cast<unsigned long long>(
                    combined_run.total_cost(model)),
                static_cast<double>(combined_run.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)));
  }

  // ---------------------------------------------------------------- 3 ----
  Banner("3. Appendix B: deadlines alone (edf) thrash");
  {
    auto adv = workload::MakeEdfAdversary(4, 5, 3, 10);
    CostModel model{5};
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model = model;
    Schedule off = workload::MakeEdfAdversaryOffSchedule(adv);
    auto off_check = off.Validate(adv.instance);
    std::printf("hand-built OFF schedule: valid=%s cost=%llu (zero drops)\n",
                off_check.ok ? "yes" : "NO",
                static_cast<unsigned long long>(off_check.cost.total(model)));

    EdfPolicy edf(true);
    RunResult run = RunPolicy(adv.instance, edf, options);
    std::printf("edf: %llu reconfigurations, cost=%llu -> ratio %.1fx "
                "(grows as 2^{k-j-1}/(n/2+1) with k)\n",
                static_cast<unsigned long long>(run.cost.reconfigurations),
                static_cast<unsigned long long>(run.total_cost(model)),
                static_cast<double>(run.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)));
    DlruEdfPolicy combined;
    RunResult combined_run = RunPolicy(adv.instance, combined, options);
    std::printf("dlru-edf on the same input: cost=%llu (ratio %.2fx)\n",
                static_cast<unsigned long long>(
                    combined_run.total_cost(model)),
                static_cast<double>(combined_run.total_cost(model)) /
                    static_cast<double>(off_check.cost.total(model)));
  }

  // ---------------------------------------------------------------- 4 ----
  Banner("4. A small instance end to end, with the exact optimum");
  {
    InstanceBuilder b;
    ColorId urgent = b.AddColor(2, "urgent");
    ColorId relaxed = b.AddColor(8, "relaxed");
    for (Round t = 0; t < 16; t += 4) b.AddJobs(urgent, t, 2);
    b.AddJobs(relaxed, 1, 5);
    Instance inst = b.Build();

    CostModel model{2};
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model = model;
    auto pipeline = reduce::SolveOnline(inst, options);
    std::printf("pipeline (VarBatch ∘ Distribute ∘ dlru-edf): cost=%llu, "
                "validated=%s\n",
                static_cast<unsigned long long>(
                    pipeline.cost().total(model)),
                pipeline.validation.ok ? "yes" : "NO");

    offline::OptimalOptions opt_options;
    opt_options.num_resources = 1;
    opt_options.cost_model = model;
    opt_options.reconstruct_schedule = true;
    auto opt = offline::SolveOptimal(inst, opt_options);
    if (opt.exact && opt.schedule) {
      auto v = opt.schedule->Validate(inst);
      std::printf("exact OPT (1 resource): cost=%llu, schedule validated=%s\n",
                  static_cast<unsigned long long>(opt.total_cost),
                  v.ok ? "yes" : "NO");
      std::printf("\nOPT's schedule as a Gantt chart:\n%s",
                  analysis::RenderGantt(*opt.schedule, inst, 0,
                                        inst.horizon() - 1)
                      .c_str());
    }
    std::printf("\npipeline schedule (first resources):\n%s",
                analysis::RenderGantt(pipeline.schedule, inst, 0,
                                      inst.horizon() - 1)
                    .c_str());
  }

  // ---------------------------------------------------------------- 5 ----
  Banner("5. Timeline of dlru-edf on the intro scenario");
  {
    workload::IntroScenarioOptions scenario;
    scenario.rounds = 2048;
    Instance inst = workload::MakeIntroScenario(scenario);
    DlruEdfPolicy inner;
    analysis::TimelinePolicy timeline(inner);
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model.delta = 8;
    RunPolicy(inst, timeline, options);
    std::printf("arrivals    |%s|\n",
                timeline.Sparkline("arrivals").c_str());
    std::printf("backlog     |%s|\n", timeline.Sparkline("backlog").c_str());
    std::printf("executed    |%s|\n", timeline.Sparkline("executed").c_str());
    std::printf("reconfigs   |%s|\n",
                timeline.Sparkline("reconfigs").c_str());
    std::printf("drops       |%s|\n", timeline.Sparkline("drops").c_str());
    std::printf("utilization |%s|\n",
                timeline.Sparkline("utilization").c_str());
  }
  return 0;
}
