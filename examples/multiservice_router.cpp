// Multi-service router example (the paper's motivating network-processor
// application): four QoS classes (voice/video/web/bulk) with per-service
// delay tolerances and sinusoidally shifting load. Compares the paper's
// online algorithm against baselines and reports per-service drop rates.
//
//   ./multiservice_router [--n=16] [--delta=8] [--rounds=2048] [--seed=1]
//                         [--csv=out.csv]
#include <cstdio>

#include "analysis/runner.h"
#include "core/engine.h"
#include "offline/lower_bound.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineInt("n", 16, "online resources (divisible by 4)")
      .DefineInt("delta", 8, "reconfiguration cost")
      .DefineInt("rounds", 2048, "trace length in rounds")
      .DefineInt("seed", 1, "workload seed")
      .DefineString("csv", "", "optional CSV output path");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("multiservice_router").c_str());
    return 0;
  }

  rrs::workload::RouterOptions gen;
  gen.rounds = flags.GetInt("rounds");
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  auto services = rrs::workload::DefaultRouterServices();
  rrs::Instance instance = rrs::workload::MakeRouterScenario(services, gen);
  std::printf("router trace: %s\n\n", instance.Summary().c_str());

  rrs::EngineOptions options;
  options.num_resources = static_cast<uint32_t>(flags.GetInt("n"));
  options.cost_model.delta = static_cast<uint64_t>(flags.GetInt("delta"));

  rrs::Table table({"algorithm", "reconfigs", "drops", "total_cost",
                    "voice_drop%", "video_drop%", "web_drop%", "bulk_drop%"});

  auto drop_pct = [&](const std::vector<uint64_t>& drops, rrs::ColorId c) {
    uint64_t total = instance.jobs_per_color()[c];
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(drops[c]) /
                            static_cast<double>(total);
  };

  for (const char* name : {"greedy-edf", "lazy-greedy", "static", "dlru",
                           "edf", "dlru-edf"}) {
    auto policy = rrs::MakePolicy(name);
    rrs::RunResult r = rrs::RunPolicy(instance, *policy, options);
    table.AddRow()
        .Cell(name)
        .Cell(r.cost.reconfigurations)
        .Cell(r.cost.drops)
        .Cell(r.total_cost(options.cost_model))
        .Cell(drop_pct(r.drops_per_color, 0), 1)
        .Cell(drop_pct(r.drops_per_color, 1), 1)
        .Cell(drop_pct(r.drops_per_color, 2), 1)
        .Cell(drop_pct(r.drops_per_color, 3), 1);
  }

  // The guaranteed pipeline (Theorem 3) and the certified OPT lower bound.
  auto pipeline = rrs::reduce::SolveOnline(instance, options);
  {
    // Per-service drops for the pipeline, recomputed from the validated
    // schedule: drops = arrivals - executions per color.
    std::vector<uint64_t> executed(instance.num_colors(), 0);
    for (const auto& exec : pipeline.schedule.executions()) {
      ++executed[instance.job(exec.job).color];
    }
    std::vector<uint64_t> drops(instance.num_colors());
    for (rrs::ColorId c = 0; c < instance.num_colors(); ++c) {
      drops[c] = instance.jobs_per_color()[c] - executed[c];
    }
    table.AddRow()
        .Cell("dlru-edf pipeline")
        .Cell(pipeline.cost().reconfigurations)
        .Cell(pipeline.cost().drops)
        .Cell(pipeline.cost().total(options.cost_model))
        .Cell(drop_pct(drops, 0), 1)
        .Cell(drop_pct(drops, 1), 1)
        .Cell(drop_pct(drops, 2), 1)
        .Cell(drop_pct(drops, 3), 1);
  }

  std::printf("%s\n", table.ToAscii().c_str());
  std::printf("certified OPT lower bound (m=%u): %llu\n",
              options.num_resources / 8 + 1,
              static_cast<unsigned long long>(rrs::offline::LowerBound(
                  instance, options.num_resources / 8 + 1,
                  options.cost_model)));

  const std::string csv = flags.GetString("csv");
  if (!csv.empty()) {
    if (table.WriteCsv(csv)) {
      std::printf("wrote %s\n", csv.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv.c_str());
      return 1;
    }
  }
  return 0;
}
