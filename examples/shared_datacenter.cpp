// Shared data-center example (the paper's other motivating application):
// services hosted on a shared cluster whose workload composition shifts in
// phases. Shows how the ΔLRU-EDF pipeline tracks the shifting dominant
// services, and sweeps the resource count to expose the augmentation curve.
//
//   ./shared_datacenter [--services=8] [--rounds=2048] [--phase=256]
//                       [--delta=8] [--seed=1]
#include <cstdio>

#include "core/engine.h"
#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "reduce/pipeline.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/scenarios.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineInt("services", 8, "number of hosted services")
      .DefineInt("rounds", 2048, "trace length")
      .DefineInt("phase", 256, "phase length (rounds between composition shifts)")
      .DefineInt("delta", 8, "reconfiguration cost")
      .DefineInt("seed", 1, "workload seed");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("shared_datacenter").c_str());
    return 0;
  }

  rrs::workload::DatacenterOptions gen;
  gen.num_services = static_cast<size_t>(flags.GetInt("services"));
  gen.rounds = flags.GetInt("rounds");
  gen.phase_length = flags.GetInt("phase");
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  rrs::Instance instance = rrs::workload::MakeDatacenterScenario(gen);
  std::printf("datacenter trace: %s\n\n", instance.Summary().c_str());

  rrs::CostModel model{static_cast<uint64_t>(flags.GetInt("delta"))};
  const uint32_t m = 2;  // reference OFF resource count

  rrs::Table table({"n", "n/m", "reconfigs", "drops", "total",
                    "ratio_vs_lb", "ratio_vs_heuristic"});
  const uint64_t lb = rrs::offline::LowerBound(instance, m, model);
  const auto heuristic = rrs::offline::ClairvoyantCost(instance, m, model);

  for (uint32_t n : {4u, 8u, 16u, 32u}) {
    rrs::EngineOptions options;
    options.num_resources = n;
    options.cost_model = model;
    auto pipeline = rrs::reduce::SolveOnline(instance, options);
    const uint64_t cost = pipeline.cost().total(model);
    table.AddRow()
        .Cell(static_cast<uint64_t>(n))
        .Cell(static_cast<double>(n) / m, 1)
        .Cell(pipeline.cost().reconfigurations)
        .Cell(pipeline.cost().drops)
        .Cell(cost)
        .Cell(lb == 0 ? 0.0
                      : static_cast<double>(cost) / static_cast<double>(lb),
              2)
        .Cell(heuristic.total_cost == 0
                  ? 0.0
                  : static_cast<double>(cost) /
                        static_cast<double>(heuristic.total_cost),
              2);
  }
  std::printf("%s\n", table.ToAscii().c_str());
  std::printf(
      "OPT bracket with m=%u resources: [%llu, %llu] (lower bound, best "
      "clairvoyant portfolio policy '%s')\n",
      m, static_cast<unsigned long long>(lb),
      static_cast<unsigned long long>(heuristic.total_cost),
      heuristic.best_policy.c_str());
  return 0;
}
