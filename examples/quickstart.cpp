// Quickstart: build a small instance, run the paper's end-to-end online
// algorithm (VarBatch ∘ Distribute ∘ ΔLRU-EDF), and compare it against a
// naive baseline and the exact offline optimum.
//
//   ./quickstart [--n=8] [--delta=3]
#include <cstdio>
#include <string>

#include "analysis/ratio.h"
#include "core/engine.h"
#include "offline/optimal.h"
#include "reduce/pipeline.h"
#include "sched/greedy.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineInt("n", 8, "online resources (divisible by 4)")
      .DefineInt("delta", 3, "reconfiguration cost");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("quickstart").c_str());
    return 0;
  }

  // A tiny two-service workload: an urgent stream (delay bound 2) and a
  // relaxed batch service (delay bound 8), with arbitrary arrival rounds.
  rrs::InstanceBuilder builder;
  rrs::ColorId urgent = builder.AddColor(2, "urgent");
  rrs::ColorId relaxed = builder.AddColor(8, "relaxed");
  for (rrs::Round t = 0; t < 24; t += 3) builder.AddJobs(urgent, t, 2);
  builder.AddJobs(relaxed, 1, 6);
  builder.AddJobs(relaxed, 13, 6);
  rrs::Instance instance = builder.Build();

  std::printf("instance: %s\n\n", instance.Summary().c_str());

  rrs::EngineOptions options;
  options.num_resources = static_cast<uint32_t>(flags.GetInt("n"));
  options.cost_model.delta = static_cast<uint64_t>(flags.GetInt("delta"));

  // The paper's online algorithm, with the schedule validated against the
  // original instance by an independent checker.
  auto pipeline = rrs::reduce::SolveOnline(instance, options);

  // A naive baseline for contrast.
  rrs::GreedyEdfPolicy greedy;
  rrs::RunResult greedy_run = rrs::RunPolicy(instance, greedy, options);

  // Exact offline optimum with 1 resource (the competitive-analysis OFF).
  rrs::offline::OptimalOptions opt_options;
  opt_options.num_resources = 1;
  opt_options.cost_model = options.cost_model;
  auto opt = rrs::offline::SolveOptimal(instance, opt_options);

  rrs::Table table({"algorithm", "resources", "reconfigs", "drops", "total"});
  table.AddRow()
      .Cell("dlru-edf pipeline (Theorem 3)")
      .Cell(static_cast<uint64_t>(options.num_resources))
      .Cell(pipeline.cost().reconfigurations)
      .Cell(pipeline.cost().drops)
      .Cell(pipeline.cost().total(options.cost_model));
  table.AddRow()
      .Cell("greedy-edf baseline")
      .Cell(static_cast<uint64_t>(options.num_resources))
      .Cell(greedy_run.cost.reconfigurations)
      .Cell(greedy_run.cost.drops)
      .Cell(greedy_run.total_cost(options.cost_model));
  if (opt.exact) {
    table.AddRow()
        .Cell("exact offline optimum")
        .Cell(uint64_t{1})
        .Cell("-")
        .Cell("-")
        .Cell(opt.total_cost);
  } else {
    // Budget exhaustion: the solver still certifies an OPT bracket.
    table.AddRow()
        .Cell("offline OPT bracket")
        .Cell(uint64_t{1})
        .Cell("-")
        .Cell("-")
        .Cell(std::to_string(opt.lower_bound) + ".." +
              std::to_string(opt.upper_bound));
  }
  std::printf("%s\n", table.ToAscii().c_str());

  if (opt.exact && opt.total_cost > 0) {
    std::printf("pipeline/OPT ratio: %.2f\n",
                static_cast<double>(pipeline.cost().total(options.cost_model)) /
                    static_cast<double>(opt.total_cost));
  }
  std::printf("pipeline schedule validated: %s\n",
              pipeline.validation.ok ? "yes" : "NO");
  return pipeline.validation.ok ? 0 : 1;
}
