// Capacity planner: a downstream-user workflow. Given a workload family and
// a drop-rate SLO, sweep the resource count (in parallel across seeds) under
// the guaranteed Theorem-3 pipeline, print the cost/drop-rate grid, and pick
// the smallest n meeting the SLO.
//
//   ./capacity_planner [--kind=router|datacenter] [--slo=0.01] [--delta=8]
//                      [--rounds=1024] [--seeds=5]
#include <cstdio>

#include "analysis/sweep.h"
#include "util/flags.h"
#include "workload/scenarios.h"
#include "workload/trace_stats.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineString("kind", "router", "workload: router or datacenter")
      .DefineDouble("slo", 0.01, "maximum acceptable drop rate")
      .DefineInt("delta", 8, "reconfiguration cost")
      .DefineInt("rounds", 1024, "trace length")
      .DefineInt("seeds", 5, "seeds per configuration");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("capacity_planner").c_str());
    return 0;
  }

  const std::string kind = flags.GetString("kind");
  const rrs::Round rounds = flags.GetInt("rounds");
  auto factory = [&](uint64_t seed) -> rrs::Instance {
    if (kind == "datacenter") {
      rrs::workload::DatacenterOptions gen;
      gen.rounds = rounds;
      gen.seed = seed;
      return rrs::workload::MakeDatacenterScenario(gen);
    }
    rrs::workload::RouterOptions gen;
    gen.rounds = rounds;
    gen.seed = seed;
    return rrs::workload::MakeRouterScenario(
        rrs::workload::DefaultRouterServices(), gen);
  };

  // Show what we're sizing for.
  auto stats = rrs::workload::ComputeTraceStats(factory(1));
  std::printf("workload '%s' (seed 1 sample):\n%s\n", kind.c_str(),
              stats.ToString().c_str());

  rrs::analysis::SweepConfig config;
  config.ns = {4, 8, 12, 16, 24, 32, 48, 64};
  config.deltas = {static_cast<uint64_t>(flags.GetInt("delta"))};
  config.seeds.clear();
  for (int64_t s = 1; s <= flags.GetInt("seeds"); ++s) {
    config.seeds.push_back(static_cast<uint64_t>(s));
  }

  auto cells = rrs::analysis::RunCostSweep(factory, config);
  std::printf("%s\n",
              rrs::analysis::CostSweepTable(factory, config).ToAscii().c_str());

  const double slo = flags.GetDouble("slo");
  for (const auto& cell : cells) {
    if (cell.mean_drop_rate <= slo) {
      std::printf(
          "smallest n meeting drop-rate SLO %.3f: n=%u (mean drop rate "
          "%.4f, mean total cost %.1f)\n",
          slo, cell.n, cell.mean_drop_rate, cell.mean_total);
      return 0;
    }
  }
  std::printf("no swept n meets drop-rate SLO %.3f; increase the range\n",
              slo);
  return 0;
}
