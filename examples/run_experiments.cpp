// Experiment exporter: runs the full table-producing experiment suite
// (E1..E14, default parameters) and writes each table as CSV and JSON into
// an output directory, printing the ASCII form along the way. The
// machine-readable exports are what a paper-reproduction artifact review
// would consume.
//
//   ./run_experiments [--outdir=results] [--only=E1]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/suite.h"
#include "obs/scope.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  rrs::FlagSet flags;
  flags.DefineString("outdir", "results", "directory for CSV/JSON exports")
      .DefineString("only", "", "run a single experiment id (e.g. E3)");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Help("run_experiments").c_str());
    return 0;
  }

  const std::string outdir = flags.GetString("outdir");
  const std::string only = flags.GetString("only");
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", outdir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  int ran = 0;
  for (const auto& spec : rrs::analysis::ExperimentSuite()) {
    if (!only.empty() && spec.id != only) continue;
    std::printf("==== %s: %s ====\nclaim: %s\n\n", spec.id.c_str(),
                spec.title.c_str(), spec.claim.c_str());
    // Experiments build their own engine runs internally, so telemetry is
    // collected through the global-scope fallback; one scope per experiment
    // keeps the footer line per-experiment. Installed from this
    // single-threaded section, as the scope contract requires.
    rrs::obs::Scope scope;
    rrs::obs::SetGlobalScope(&scope);
    rrs::Table table = spec.run();
    rrs::obs::SetGlobalScope(nullptr);
    std::printf("%s\n", table.ToAscii().c_str());
    if (scope.runs_absorbed() > 0) {
      std::printf("%s\n\n", scope.SummaryLine().c_str());
    }

    const std::string base = outdir + "/" + spec.id;
    if (!table.WriteCsv(base + ".csv")) {
      std::fprintf(stderr, "failed to write %s.csv\n", base.c_str());
      return 1;
    }
    std::ofstream json(base + ".json");
    json << table.ToJson();
    if (!json) {
      std::fprintf(stderr, "failed to write %s.json\n", base.c_str());
      return 1;
    }
    ++ran;
  }
  if (ran == 0) {
    std::fprintf(stderr, "no experiment matched '%s'\n", only.c_str());
    return 1;
  }
  std::printf("wrote %d experiment exports to %s/\n", ran, outdir.c_str());
  return 0;
}
