// Baseline policies that implement the "basic approaches" the paper's
// introduction argues against. None of them use the eligibility machinery;
// they exist to make the thrashing/underutilization trade-off measurable
// (experiment E6) and as sanity baselines everywhere else.
//
//  - GreedyEdfPolicy: every mini-round, chase the nonidle colors with the
//    earliest pending deadlines (pure deadline-greedy; thrashes when bursts
//    alternate).
//  - LazyGreedyPolicy ("idle-fill"): keep the current color while it has
//    work; when a resource idles, grab the unclaimed nonidle color with the
//    largest backlog, but only if the backlog is at least switch_threshold
//    jobs (threshold 1 = eager idle-filling; large thresholds approximate
//    "wait for a long batch", the other failure mode of the introduction).
//  - StaticPartitionPolicy: fixed color i -> resource (i mod n) assignment in
//    round 0, never reconfigures afterwards.
//  - NeverReconfigurePolicy: keeps every resource black and drops everything
//    (cost upper bound sanity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sched/ranking.h"

namespace rrs {

class GreedyEdfPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "greedy-edf"; }
  void Reset(const Instance& instance, const EngineOptions& options) override;
  void Reconfigure(Round k, int mini, ResourceView& view) override;

 private:
  const Instance* instance_ = nullptr;
  std::vector<std::pair<ColorRankKey, ColorId>> ranked_;
  std::vector<uint8_t> desired_flag_;
  std::vector<uint8_t> placed_flag_;
};

class LazyGreedyPolicy : public SchedulerPolicy {
 public:
  // weight_aware = true scores backlogs by (pending jobs x per-color drop
  // cost), the natural heuristic for the variable-drop-cost extension.
  explicit LazyGreedyPolicy(uint64_t switch_threshold = 1,
                            bool weight_aware = false)
      : switch_threshold_(switch_threshold), weight_aware_(weight_aware) {}

  std::string name() const override {
    return weight_aware_ ? "lazy-greedy-weighted" : "lazy-greedy";
  }
  void Reset(const Instance& instance, const EngineOptions& options) override;
  void Reconfigure(Round k, int mini, ResourceView& view) override;

 private:
  uint64_t switch_threshold_;
  bool weight_aware_;
  const Instance* instance_ = nullptr;
  std::vector<uint8_t> claimed_;
};

class StaticPartitionPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "static"; }
  void Reset(const Instance& instance, const EngineOptions& options) override;
  void Reconfigure(Round k, int mini, ResourceView& view) override;

  // The one bit of persistent state: whether the round-0 partition has been
  // applied (a restored mid-run session must not re-apply it and re-bill Δ).
  void SaveState(snapshot::Writer& w) const override {
    w.BeginSection(snapshot::kTagPolicyStatic);
    w.PutBool(configured_);
    w.EndSection();
  }
  void LoadState(snapshot::Reader& r) override {
    r.BeginSection(snapshot::kTagPolicyStatic);
    configured_ = r.GetBool();
    r.EndSection();
  }

 private:
  const Instance* instance_ = nullptr;
  bool configured_ = false;
};

class NeverReconfigurePolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "never"; }
  void Reset(const Instance& instance, const EngineOptions& options) override {
    (void)instance;
    (void)options;
  }
  void Reconfigure(Round k, int mini, ResourceView& view) override {
    (void)k;
    (void)mini;
    (void)view;
  }
};

}  // namespace rrs
