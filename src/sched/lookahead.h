// LookaheadGreedyPolicy: a semi-online baseline that can see the next W
// rounds of arrivals (W = 0 degrades to a pending-only greedy). The paper's
// setting is fully online; lookahead quantifies *what the online algorithm
// is paying for not knowing the future* (experiment E14), a natural
// future-work axis for the paper's model.
//
// Scheme: each reconfiguration phase scores every relevant color by
// "deadline pressure" — each known job contributes 1/(deadline - k) — over
// its pending jobs plus the arrivals visible in (k, k + W]. The n resources
// chase the top-n pressures with assignment stability (resources already
// serving a chosen color stay put), plus hysteresis: an incumbent is only
// displaced when the challenger's pressure exceeds its own by a
// Δ-proportional margin, which suppresses thrash on near-ties.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"

namespace rrs {

class LookaheadGreedyPolicy : public SchedulerPolicy {
 public:
  struct Params {
    Round window = 8;          // W: rounds of visible future arrivals
    double hysteresis = 0.25;  // challenger must beat incumbent by this
                               // fraction of Δ's amortized per-round value
  };

  LookaheadGreedyPolicy() = default;
  explicit LookaheadGreedyPolicy(Params params) : params_(params) {}

  std::string name() const override {
    return "lookahead(" + std::to_string(params_.window) + ")";
  }

  void Reset(const Instance& instance, const EngineOptions& options) override;
  void Reconfigure(Round k, int mini, ResourceView& view) override;

 private:
  Params params_;
  const Instance* instance_ = nullptr;
  uint64_t delta_ = 1;
  std::vector<double> score_;          // per color, rebuilt each phase
  std::vector<ColorId> scored_colors_;
  std::vector<uint8_t> in_scored_;
  std::vector<uint8_t> selected_;
  std::vector<uint8_t> placed_;
  std::vector<uint8_t> resource_protected_;
};

}  // namespace rrs
