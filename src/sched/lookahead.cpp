#include "sched/lookahead.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void LookaheadGreedyPolicy::Reset(const Instance& instance,
                                  const EngineOptions& options) {
  RRS_CHECK_GE(params_.window, 0);
  instance_ = &instance;
  delta_ = options.cost_model.delta;
  score_.assign(instance.num_colors(), 0.0);
  in_scored_.assign(instance.num_colors(), 0);
  placed_.assign(instance.num_colors(), 0);
  selected_.assign(instance.num_colors(), 0);
}

void LookaheadGreedyPolicy::Reconfigure(Round k, int mini,
                                        ResourceView& view) {
  (void)mini;
  const uint32_t n = view.num_resources();

  // ---- Score: deadline pressure of pending + visible future arrivals. ----
  scored_colors_.clear();
  auto bump = [&](ColorId c, double amount) {
    if (!in_scored_[c]) {
      in_scored_[c] = 1;
      scored_colors_.push_back(c);
      score_[c] = 0;
    }
    score_[c] += amount;
  };
  for (ColorId c : view.nonidle_colors()) {
    const double slack = std::max<double>(
        1.0, static_cast<double>(view.earliest_deadline(c) - k));
    bump(c, static_cast<double>(view.pending_count(c)) / slack);
  }
  for (Round r = k + 1; r <= k + params_.window; ++r) {
    for (const Job& j : instance_->jobs_in_round(r)) {
      const double slack = static_cast<double>(
          r + instance_->delay_bound(j.color) - k);
      bump(j.color, 1.0 / slack);
    }
  }

  // ---- Select the top-n pressures. ----
  std::sort(scored_colors_.begin(), scored_colors_.end(),
            [&](ColorId a, ColorId b) {
              if (score_[a] != score_[b]) return score_[a] > score_[b];
              return a < b;
            });
  const size_t selected_count = std::min<size_t>(n, scored_colors_.size());
  for (size_t i = 0; i < selected_count; ++i) {
    selected_[scored_colors_[i]] = 1;
    placed_[scored_colors_[i]] = 0;
  }

  // Stability pass: the first resource serving each selected color stays;
  // duplicates remain displaceable.
  resource_protected_.assign(n, 0);
  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c == kNoColor) continue;
    if (selected_[c] && !placed_[c]) {
      placed_[c] = 1;
      resource_protected_[r] = 1;
    }
  }

  // Assignment with hysteresis: a challenger must beat the weakest
  // incumbent by an amortized-reconfiguration margin.
  const double margin =
      params_.hysteresis * static_cast<double>(delta_) /
      std::max<double>(1.0, static_cast<double>(params_.window));
  for (size_t i = 0; i < selected_count; ++i) {
    ColorId c = scored_colors_[i];
    if (placed_[c]) continue;
    // Weakest displaceable resource: lowest incumbent pressure, preferring
    // black/unscored incumbents. Resources keeping another selected, placed
    // color are protected.
    ResourceId victim = n;
    double victim_score = 0;
    bool victim_duplicate = false;
    for (ResourceId r = 0; r < n; ++r) {
      if (resource_protected_[r]) continue;
      ColorId cur = view.color_of(r);
      // A duplicate of an already-placed color contributes nothing extra:
      // it is a free slot regardless of its color's score.
      bool duplicate =
          cur != kNoColor && selected_[cur] && placed_[cur] && cur != c;
      double cur_score = (cur == kNoColor || !in_scored_[cur] || duplicate)
                             ? 0.0
                             : score_[cur];
      if (victim == n || cur_score < victim_score) {
        victim = r;
        victim_score = cur_score;
        victim_duplicate = duplicate;
      }
    }
    if (victim == n) break;  // every resource protects a stronger color
    ColorId cur = view.color_of(victim);
    bool free_slot = cur == kNoColor || !in_scored_[cur] || victim_duplicate;
    if (free_slot || score_[c] > victim_score + margin) {
      view.SetColor(victim, c);
      placed_[c] = 1;
      resource_protected_[victim] = 1;
    }
  }

  // Clear all per-phase flags (over the FULL scored list, not just top-n).
  for (ColorId c : scored_colors_) {
    in_scored_[c] = 0;
    selected_[c] = 0;
    placed_[c] = 0;
  }
}

}  // namespace rrs
