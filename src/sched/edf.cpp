#include "sched/edf.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void EdfPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t P = slots_.capacity();

  // Rank all eligible colors; select the top-P.
  const auto& eligible = table_.eligible_colors();
  ranked_.clear();
  ranked_.reserve(eligible.size());
  for (ColorId c : eligible) ranked_.emplace_back(RankOf(c, view), c);
  if (ranked_.size() > P) {
    std::nth_element(ranked_.begin(), ranked_.begin() + P, ranked_.end());
    ranked_.resize(P);
  }
  std::sort(ranked_.begin(), ranked_.end());

  // Eviction candidates: currently cached colors, worst rank first. Cached
  // colors are always eligible, so RankOf applies.
  evict_order_.clear();
  for (ColorId c : slots_.cached_colors()) {
    evict_order_.emplace_back(RankOf(c, view), c);
  }
  std::sort(evict_order_.begin(), evict_order_.end(),
            [](const auto& a, const auto& b) { return b < a; });
  size_t next_victim = 0;

  for (const auto& [key, c] : ranked_) {
    if (key.idle) break;  // idle colors rank after all nonidle ones
    if (slots_.IsCached(c)) continue;
    if (slots_.full()) {
      // The paper: evict the color with the lowest rank. Since c is in the
      // top-P and the cache holds P colors, some cached color ranks below c.
      RRS_CHECK_LT(next_victim, evict_order_.size());
      ColorId victim = evict_order_[next_victim++].second;
      RRS_DCHECK(victim != c);
      slots_.Evict(victim);
    }
    slots_.Insert(c);
  }

  slots_.ApplyTo(view);
}

}  // namespace rrs
