#include "sched/color_state.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void ColorStateTable::Reset(const Instance& instance, uint64_t delta) {
  RRS_CHECK_GE(delta, 1u);
  instance_ = &instance;
  delta_ = delta;
  state_.assign(instance.num_colors(), State{});
  dd_.assign(instance.num_colors(), 0);

  const uint32_t num_colors = static_cast<uint32_t>(instance.num_colors());
  // Pooled sessions rebind tenants with identical delay layouts constantly
  // (a batched slab requires it; sweeps and fleets commonly do). The CSR is
  // a deterministic function of the layout, so when the surviving CSR still
  // describes the new instance — an O(colors) scan — skip the sort+rebuild.
  bool layout_same =
      !group_begin_.empty() && group_begin_.back() == num_colors;
  for (uint32_t g = 0; layout_same && g < group_delay_.size(); ++g) {
    const Round d = group_delay_[g];
    for (uint32_t i = group_begin_[g]; i < group_begin_[g + 1]; ++i) {
      if (instance.delay_bound(group_color_ids_[i]) != d) {
        layout_same = false;
        break;
      }
    }
  }
  if (!layout_same) {
    group_color_ids_.resize(num_colors);
    for (ColorId c = 0; c < num_colors; ++c) group_color_ids_[c] = c;
    std::sort(group_color_ids_.begin(), group_color_ids_.end(),
              [&instance](ColorId a, ColorId b) {
                const Round da = instance.delay_bound(a);
                const Round db = instance.delay_bound(b);
                if (da != db) return da < db;
                return a < b;
              });
    group_delay_.clear();
    group_begin_.clear();
    for (uint32_t i = 0; i < num_colors; ++i) {
      const Round d = instance.delay_bound(group_color_ids_[i]);
      if (group_delay_.empty() || group_delay_.back() != d) {
        group_delay_.push_back(d);
        group_begin_.push_back(i);
      }
    }
    group_begin_.push_back(num_colors);
  }

  eligible_list_.clear();
  in_eligible_list_.assign(instance.num_colors(), 0);
  eligible_list_dirty_ = false;

  epochs_completed_ = 0;
  colors_with_jobs_ = 0;
  eligible_drops_ = 0;
  ineligible_drops_ = 0;
  wrap_events_ = 0;
  timestamp_update_events_ = 0;
}

void ColorStateTable::RecordDrop(ColorId c, uint64_t count) {
  if (state_[c].eligible) {
    eligible_drops_ += count;
  } else {
    ineligible_drops_ += count;
  }
}

bool ColorStateTable::OnArrivals(Round k, ColorId c, uint64_t count) {
  State& s = state_[c];
  if (!s.saw_jobs && count > 0) {
    s.saw_jobs = true;
    ++colors_with_jobs_;
  }
  s.cnt += count;
  bool became_eligible = false;
  if (s.cnt >= delta_) {
    s.cnt %= delta_;  // counter wrapping event
    s.pending_wrap = k;
    ++wrap_events_;
    if (!s.eligible) {
      s.eligible = true;
      became_eligible = true;
      if (!in_eligible_list_[c]) {
        in_eligible_list_[c] = 1;
        eligible_list_.push_back(c);
      }
    }
  }
  return became_eligible;
}

const std::vector<ColorId>& ColorStateTable::eligible_colors() const {
  if (!eligible_list_dirty_) return eligible_list_;
  eligible_list_dirty_ = false;
  size_t out = 0;
  for (size_t i = 0; i < eligible_list_.size(); ++i) {
    ColorId c = eligible_list_[i];
    if (state_[c].eligible) {
      eligible_list_[out++] = c;
    } else {
      in_eligible_list_[c] = 0;
    }
  }
  eligible_list_.resize(out);
  return eligible_list_;
}

void ColorStateTable::CollectBoundaryColors(Round k,
                                            std::vector<ColorId>& out) const {
  out.clear();
  for (uint32_t i = 0; i < group_delay_.size(); ++i) {
    if (k % group_delay_[i] == 0) {
      out.insert(out.end(), group_color_ids_.begin() + group_begin_[i],
                 group_color_ids_.begin() + group_begin_[i + 1]);
    }
  }
}

void ColorStateTable::SaveState(snapshot::Writer& w) const {
  w.BeginSection(snapshot::kTagColorState);
  w.PutU64(delta_);
  w.PutU64(state_.size());
  for (const State& s : state_) {
    w.PutU64(s.cnt);
    w.PutI64(s.timestamp);
    w.PutI64(s.pending_wrap);
    w.PutBool(s.eligible);
    w.PutBool(s.saw_jobs);
  }
  w.PutVec(dd_);
  w.PutVec(eligible_list_);
  w.PutVec(in_eligible_list_);
  w.PutBool(eligible_list_dirty_);
  w.PutU64(epochs_completed_);
  w.PutU64(colors_with_jobs_);
  w.PutU64(eligible_drops_);
  w.PutU64(ineligible_drops_);
  w.PutU64(wrap_events_);
  w.PutU64(timestamp_update_events_);
  w.EndSection();
}

void ColorStateTable::LoadState(snapshot::Reader& r) {
  r.BeginSection(snapshot::kTagColorState);
  RRS_CHECK_EQ(r.GetU64(), delta_)
      << "ColorStateTable restored with a different delta";
  RRS_CHECK_EQ(r.GetU64(), state_.size())
      << "ColorStateTable restored with a different color count";
  for (State& s : state_) {
    s.cnt = r.GetU64();
    s.timestamp = r.GetI64();
    s.pending_wrap = r.GetI64();
    s.eligible = r.GetBool();
    s.saw_jobs = r.GetBool();
  }
  r.GetVec(dd_);
  r.GetVec(eligible_list_);
  r.GetVec(in_eligible_list_);
  eligible_list_dirty_ = r.GetBool();
  epochs_completed_ = r.GetU64();
  colors_with_jobs_ = r.GetU64();
  eligible_drops_ = r.GetU64();
  ineligible_drops_ = r.GetU64();
  wrap_events_ = r.GetU64();
  timestamp_update_events_ = r.GetU64();
  r.EndSection();
  RRS_CHECK_EQ(dd_.size(), state_.size());
  RRS_CHECK_EQ(in_eligible_list_.size(), state_.size());
}

uint64_t ColorStateTable::num_epochs() const {
  return epochs_completed_ + colors_with_jobs_;
}

void ColorStateTable::ExportMetrics(obs::Registry& registry) const {
  registry.counter("epochs_completed").Add(epochs_completed_);
  registry.counter("num_epochs").Add(num_epochs());
  registry.counter("eligible_drops").Add(eligible_drops_);
  registry.counter("ineligible_drops").Add(ineligible_drops_);
  registry.counter("wrap_events").Add(wrap_events_);
  registry.counter("timestamp_update_events").Add(timestamp_update_events_);
}

}  // namespace rrs
