#include "sched/color_state.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void ColorStateTable::Reset(const Instance& instance, uint64_t delta) {
  RRS_CHECK_GE(delta, 1u);
  instance_ = &instance;
  delta_ = delta;
  state_.assign(instance.num_colors(), State{});
  dd_.assign(instance.num_colors(), 0);

  groups_by_delay_.clear();
  std::map<Round, std::vector<ColorId>> groups;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    groups[instance.delay_bound(c)].push_back(c);
  }
  groups_by_delay_.assign(groups.begin(), groups.end());

  eligible_list_.clear();
  in_eligible_list_.assign(instance.num_colors(), 0);
  eligible_list_dirty_ = false;

  epochs_completed_ = 0;
  colors_with_jobs_ = 0;
  eligible_drops_ = 0;
  ineligible_drops_ = 0;
  wrap_events_ = 0;
  timestamp_update_events_ = 0;
}

void ColorStateTable::RecordDrop(ColorId c, uint64_t count) {
  if (state_[c].eligible) {
    eligible_drops_ += count;
  } else {
    ineligible_drops_ += count;
  }
}

bool ColorStateTable::OnArrivals(Round k, ColorId c, uint64_t count) {
  State& s = state_[c];
  if (!s.saw_jobs && count > 0) {
    s.saw_jobs = true;
    ++colors_with_jobs_;
  }
  s.cnt += count;
  bool became_eligible = false;
  if (s.cnt >= delta_) {
    s.cnt %= delta_;  // counter wrapping event
    s.pending_wrap = k;
    ++wrap_events_;
    if (!s.eligible) {
      s.eligible = true;
      became_eligible = true;
      if (!in_eligible_list_[c]) {
        in_eligible_list_[c] = 1;
        eligible_list_.push_back(c);
      }
    }
  }
  return became_eligible;
}

const std::vector<ColorId>& ColorStateTable::eligible_colors() const {
  if (!eligible_list_dirty_) return eligible_list_;
  eligible_list_dirty_ = false;
  size_t out = 0;
  for (size_t i = 0; i < eligible_list_.size(); ++i) {
    ColorId c = eligible_list_[i];
    if (state_[c].eligible) {
      eligible_list_[out++] = c;
    } else {
      in_eligible_list_[c] = 0;
    }
  }
  eligible_list_.resize(out);
  return eligible_list_;
}

void ColorStateTable::CollectBoundaryColors(Round k,
                                            std::vector<ColorId>& out) const {
  out.clear();
  for (const auto& [delay, colors] : groups_by_delay_) {
    if (k % delay == 0) {
      out.insert(out.end(), colors.begin(), colors.end());
    }
  }
}

uint64_t ColorStateTable::num_epochs() const {
  return epochs_completed_ + colors_with_jobs_;
}

void ColorStateTable::CollectCounters(std::map<std::string, double>& out) const {
  out["epochs_completed"] = static_cast<double>(epochs_completed_);
  out["num_epochs"] = static_cast<double>(num_epochs());
  out["eligible_drops"] = static_cast<double>(eligible_drops_);
  out["ineligible_drops"] = static_cast<double>(ineligible_drops_);
  out["wrap_events"] = static_cast<double>(wrap_events_);
  out["timestamp_update_events"] = static_cast<double>(timestamp_update_events_);
}

}  // namespace rrs
