// Slot management for the cache-structured schedulers.
//
// The paper views the online algorithm's n resources as cache locations. The
// schedulers here maintain P "primary" slots holding distinct colors; with
// replication enabled (the common scheme of Section 3.1, P = n/2) slot i is
// mirrored onto resource P + i, so each cached color occupies two locations
// and executes up to two jobs per round. Seq-EDF disables replication
// (P = n). Colors never migrate between slots while cached, so no phantom
// reconfiguration cost arises from set reshuffling.
//
// CacheSlots tracks membership and slot assignment; ApplyTo() pushes any slot
// changes of the current reconfiguration phase to the engine's ResourceView
// (which charges Δ per actual recoloring).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "core/types.h"
#include "snapshot/codec.h"

namespace rrs {

class CacheSlots {
 public:
  void Reset(uint32_t primary_slots, size_t num_colors, bool replicate);

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }
  bool replicate() const { return replicate_; }

  bool IsCached(ColorId c) const {
    return c < slot_of_.size() && slot_of_[c] != kNoSlot;
  }

  // The color in primary slot i, or kNoColor.
  ColorId color_in_slot(uint32_t slot) const { return slots_[slot]; }

  // Currently cached colors in unspecified order.
  const std::vector<ColorId>& cached_colors() const { return cached_; }

  // Inserts an uncached color into a free slot. Requires !full().
  void Insert(ColorId c);

  // Evicts a cached color, freeing its slot.
  void Evict(ColorId c);

  // Pushes the slot changes made since the last ApplyTo to the view:
  // SetColor on the primary resource and, with replication, its mirror.
  // Checks that no slot was left vacated-but-unfilled: the paper's schemes
  // only evict to make room, so every freed slot must be refilled within the
  // same phase (blanking a resource would bill a meaningless reconfiguration).
  void ApplyTo(ResourceView& view);

  // O(capacity + colors) consistency check; test hook.
  bool CheckInvariants() const;

  // Checkpoint/restore. Everything is saved verbatim, including the
  // free-slot stack and the lazily-compacted cached list: their orders
  // decide which slot the next Insert takes and the iteration order of
  // cached_colors(), both of which downstream policies' decisions depend
  // on. LoadState requires a CacheSlots Reset to the same shape.
  void SaveState(snapshot::Writer& w) const;
  void LoadState(snapshot::Reader& r);

 private:
  static constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

  uint32_t capacity_ = 0;
  uint32_t size_ = 0;
  bool replicate_ = false;
  std::vector<ColorId> slots_;      // slot -> color (kNoColor if free)
  std::vector<uint32_t> slot_of_;   // color -> slot (kNoSlot if uncached)
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> dirty_slots_;
  std::vector<uint8_t> dirty_flag_;
  std::vector<ColorId> cached_;     // lazily compacted on Evict
  std::vector<uint8_t> in_cached_list_;
};

}  // namespace rrs
