#include "sched/dlru.h"

#include "util/check.h"

namespace rrs {

void DlruPolicy::OnReset() {
  tracker_ = LruTracker(instance_->num_colors());
  in_desired_.assign(instance_->num_colors(), 0);
}

void DlruPolicy::OnBecameEligible(Round k, ColorId c) {
  (void)k;
  tracker_.Insert(c, table_.timestamp(c));
}

void DlruPolicy::OnBecameIneligible(Round k, ColorId c) {
  (void)k;
  tracker_.Remove(c);
}

void DlruPolicy::OnTimestampUpdated(Round k, ColorId c) {
  (void)k;
  if (tracker_.Contains(c)) tracker_.Touch(c, table_.timestamp(c));
}

void DlruPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  // Invariant: the cache holds exactly the top-P eligible colors by
  // timestamp. Cached colors stay eligible (only uncached colors become
  // ineligible), so the desired set never shrinks below the cached set and
  // every eviction is paired with an insertion.
  tracker_.TopK(slots_.capacity(), desired_);
  for (ColorId c : desired_) in_desired_[c] = 1;

  to_evict_.clear();
  for (ColorId c : slots_.cached_colors()) {
    if (!in_desired_[c]) to_evict_.push_back(c);
  }
  for (ColorId c : to_evict_) slots_.Evict(c);
  for (ColorId c : desired_) {
    if (!slots_.IsCached(c)) slots_.Insert(c);
  }
  for (ColorId c : desired_) in_desired_[c] = 0;

  slots_.ApplyTo(view);
}

}  // namespace rrs
