// FR-FCFS-flavored baseline: First-Ready, First-Come-First-Served, the
// classic memory-controller heuristic transplanted to the recoloring model.
// A resource with pending work for its current color keeps it (the "row
// hit" — servicing the open row is free, recoloring costs Δ); only a
// resource whose color has drained recolors, and then to the unclaimed
// nonidle color with the earliest pending deadline (deadline = arrival +
// D_c, so at equal delay bounds this is exactly oldest-first — the FCFS
// half). Built as the natural opponent for the memctrl workload family
// (workload/memctrl.h): it rides row-locality bursts perfectly but has no
// deadline pressure model, so refresh storms on short-deadline banks drop
// where dlru-edf preempts (EXPERIMENTS.md races them).
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"

namespace rrs {

class FrFcfsPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "frfcfs"; }
  void Reset(const Instance& instance, const EngineOptions& options) override;
  void Reconfigure(Round k, int mini, ResourceView& view) override;

 private:
  const Instance* instance_ = nullptr;
  std::vector<uint8_t> claimed_;
};

}  // namespace rrs
