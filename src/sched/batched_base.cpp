#include "sched/batched_base.h"

#include "util/check.h"

namespace rrs {

void BatchedSchedulerBase::Reset(const Instance& instance,
                                 const EngineOptions& options) {
  instance_ = &instance;
  table_.Reset(instance, options.cost_model.delta);
  uint32_t primary = PrimarySlots(options.num_resources);
  RRS_CHECK_GE(primary, 1u)
      << name() << " needs more resources (n=" << options.num_resources << ")";
  if (Replicate()) {
    RRS_CHECK_LE(primary * 2, options.num_resources)
        << name() << ": replication needs 2x primary slots";
  } else {
    RRS_CHECK_LE(primary, options.num_resources);
  }
  slots_.Reset(primary, instance.num_colors(), Replicate());
  ineligible_job_ids_.clear();
  OnReset();
}

void BatchedSchedulerBase::OnJobsDropped(Round k, ColorId c, uint64_t count,
                                         std::span<const JobId> jobs) {
  (void)k;
  table_.RecordDrop(c, count);
  if (collect_ineligible_jobs_ && !table_.eligible(c)) {
    ineligible_job_ids_.insert(ineligible_job_ids_.end(), jobs.begin(),
                               jobs.end());
  }
}

void BatchedSchedulerBase::AfterDropPhase(Round k) {
  table_.ProcessBoundary(
      k, [this](ColorId c) { return slots_.IsCached(c); }, events_);
  for (ColorId c : events_.became_ineligible) OnBecameIneligible(k, c);
  for (ColorId c : events_.timestamp_updated) OnTimestampUpdated(k, c);
}

void BatchedSchedulerBase::OnArrivals(Round k, ColorId c, uint64_t count) {
  if (table_.OnArrivals(k, c, count)) OnBecameEligible(k, c);
}

void BatchedSchedulerBase::ExportMetrics(obs::Registry& registry) const {
  table_.ExportMetrics(registry);
}

void BatchedSchedulerBase::SaveState(snapshot::Writer& w) const {
  table_.SaveState(w);
  slots_.SaveState(w);
  w.BeginSection(snapshot::kTagPolicyBatched);
  w.PutVec(ineligible_job_ids_);
  w.EndSection();
}

void BatchedSchedulerBase::LoadState(snapshot::Reader& r) {
  table_.LoadState(r);
  slots_.LoadState(r);
  r.BeginSection(snapshot::kTagPolicyBatched);
  r.GetVec(ineligible_job_ids_);
  r.EndSection();
}

}  // namespace rrs
