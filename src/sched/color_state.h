// Per-color bookkeeping shared by ΔLRU, EDF, and ΔLRU-EDF (the "common
// aspects" of Section 3.1 of the paper).
//
// For each color ℓ the table maintains:
//   cnt        - the job counter; arrival of x jobs adds x; reaching Δ wraps
//                the counter (cnt mod Δ), a *counter wrapping event*, and
//                makes ℓ eligible.
//   dd         - the color deadline: set to k + D_ℓ at every integral
//                multiple k of D_ℓ (arrival-phase step 1).
//   eligible   - colors start ineligible; a wrapping event makes them
//                eligible; the drop phase of a boundary round makes an
//                eligible, *uncached* color ineligible again (and zeroes cnt).
//   timestamp  - the ΔLRU timestamp (Section 3.1.1): the latest round
//                strictly before the most recent multiple of D_ℓ in which a
//                wrapping event occurred (0 if none). Implemented as a
//                current value plus a pending wrap that is *promoted* at the
//                next boundary; a promotion is a "timestamp update event"
//                (Section 3.4).
//
// The table also keeps the analysis counters used to test Lemmas 3.2-3.4:
// epoch counts (an epoch of ℓ ends when ℓ becomes ineligible), eligible vs
// ineligible drop costs, wrapping events, and timestamp update events.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "snapshot/codec.h"

namespace rrs {

class ColorStateTable {
 public:
  // Events produced by boundary processing, consumed by the policies to keep
  // their caching structures (LruTracker etc.) in sync.
  struct BoundaryEvents {
    std::vector<ColorId> boundary_colors;     // colors with k % D_ℓ == 0
    std::vector<ColorId> became_ineligible;   // eligible & uncached -> ineligible
    std::vector<ColorId> timestamp_updated;   // pending wrap promoted
  };

  void Reset(const Instance& instance, uint64_t delta);

  // ---- Phase processing (called from policy hooks) ----------------------

  // Record drop-phase drops for eligible/ineligible accounting. Must be
  // called before ProcessBoundary for the same round (the paper classifies a
  // dropped job by the color's eligibility at drop time, before the
  // drop-phase state transition).
  void RecordDrop(ColorId c, uint64_t count);

  // Runs the boundary bookkeeping of round k (both the drop-phase eligibility
  // transition and the arrival-phase step-1 deadline/timestamp updates):
  // for every color ℓ with k ≡ 0 (mod D_ℓ):
  //   1. if ℓ is eligible and !is_cached(ℓ): ℓ becomes ineligible, cnt = 0
  //      (ends the current epoch of ℓ);
  //   2. promote a pending counter-wrap into the timestamp (a timestamp
  //      update event);
  //   3. set ℓ.dd = k + D_ℓ.
  // `is_cached` is queried for eligible colors only.
  template <typename IsCachedFn>
  void ProcessBoundary(Round k, IsCachedFn&& is_cached, BoundaryEvents& events) {
    CollectBoundaryColors(k, events.boundary_colors);
    ProcessBoundaryPrecollected(k, events.boundary_colors,
                                std::forward<IsCachedFn>(is_cached), events);
  }

  // The same transition over a precollected boundary set. Boundary
  // membership (k ≡ 0 mod D_ℓ) depends only on the round and the delay
  // layout, so the batched fleet collects it once per slab and replays it
  // against every lane's table; `boundary` may alias
  // events.boundary_colors.
  template <typename IsCachedFn>
  void ProcessBoundaryPrecollected(Round k, std::span<const ColorId> boundary,
                                   IsCachedFn&& is_cached,
                                   BoundaryEvents& events) {
    events.became_ineligible.clear();
    events.timestamp_updated.clear();
    for (ColorId c : boundary) {
      State& s = state_[c];
      if (s.eligible && !is_cached(c)) {
        s.eligible = false;
        s.cnt = 0;
        ++epochs_completed_;
        eligible_list_dirty_ = true;
        events.became_ineligible.push_back(c);
      }
      if (s.pending_wrap >= 0) {
        s.timestamp = s.pending_wrap;
        s.pending_wrap = -1;
        ++timestamp_update_events_;
        events.timestamp_updated.push_back(c);
      }
      dd_[c] = k + instance_->delay_bound(c);
    }
  }

  // Arrival-phase steps 2-3 for one color: cnt += count; on reaching Δ, wrap
  // (cnt mod Δ) and make the color eligible. Returns true if the color
  // transitioned ineligible -> eligible in this call.
  bool OnArrivals(Round k, ColorId c, uint64_t count);

  // ---- Single-color boundary steps (lane-fused kernel) -------------------
  // The batched fleet kernel (sched/lane_kernels.h) tracks both boundary
  // predicates as per-color lane bitmasks and applies only the lanes that
  // actually transition, so it needs the three steps of
  // ProcessBoundaryPrecollected individually. Each caller must have
  // established the step's precondition itself.

  // Step 1 for one color: ends the epoch (caller established eligible(c) and
  // !is_cached(c)).
  void BoundaryExpire(ColorId c) {
    State& s = state_[c];
    s.eligible = false;
    s.cnt = 0;
    ++epochs_completed_;
    eligible_list_dirty_ = true;
  }

  // Step 2 for one color: promotes the pending wrap (caller established
  // pending_wrap(c) >= 0). Returns the promoted timestamp.
  Round BoundaryPromoteWrap(ColorId c) {
    State& s = state_[c];
    s.timestamp = s.pending_wrap;
    s.pending_wrap = -1;
    ++timestamp_update_events_;
    return s.timestamp;
  }

  // Step 3 for one color: dd = k + D_ℓ, precomputed by the caller (it is
  // lane-invariant across a slab).
  void SetDeadline(ColorId c, Round dd) { dd_[c] = dd; }

  // ---- Queries -----------------------------------------------------------

  bool eligible(ColorId c) const { return state_[c].eligible; }
  uint64_t counter(ColorId c) const { return state_[c].cnt; }
  Round deadline(ColorId c) const { return dd_[c]; }
  Round timestamp(ColorId c) const { return state_[c].timestamp; }
  Round pending_wrap(ColorId c) const { return state_[c].pending_wrap; }
  Round delay_bound(ColorId c) const { return instance_->delay_bound(c); }

  // All currently eligible colors (unordered; lazily compacted).
  const std::vector<ColorId>& eligible_colors() const;

  // Colors with k ≡ 0 (mod D_ℓ), in (D, color) order — the boundary set
  // ProcessBoundary visits for round k. Public so the batched fleet can
  // collect once per slab (the set is lane-invariant at a fixed delay
  // layout) and feed ProcessBoundaryPrecollected per lane.
  void CollectBoundaryColors(Round k, std::vector<ColorId>& out) const;

  size_t num_colors() const { return state_.size(); }
  uint64_t delta() const { return delta_; }

  // ---- Analysis counters (Lemmas 3.2-3.4 instrumentation) ---------------

  // Total epochs: completed epochs (eligible->ineligible transitions) plus
  // the trailing incomplete epoch of every color that received any job.
  uint64_t num_epochs() const;
  uint64_t epochs_completed() const { return epochs_completed_; }
  uint64_t eligible_drops() const { return eligible_drops_; }
  uint64_t ineligible_drops() const { return ineligible_drops_; }
  uint64_t wrap_events() const { return wrap_events_; }
  uint64_t timestamp_update_events() const { return timestamp_update_events_; }

  // Registers the analysis counters (epochs_completed, num_epochs,
  // eligible_drops, ineligible_drops, wrap_events, timestamp_update_events)
  // into the structured metrics registry.
  void ExportMetrics(obs::Registry& registry) const;

  // Checkpoint/restore of all mutable state: per-color State, deadlines,
  // the eligible list (order and staleness included — compaction order is
  // observable through eligible_colors()), and the analysis counters. The
  // delay-group CSR is derived from the instance and rebuilt by Reset, so
  // LoadState requires a table Reset against the same instance and delta.
  void SaveState(snapshot::Writer& w) const;
  void LoadState(snapshot::Reader& r);

 private:
  struct State {
    uint64_t cnt = 0;
    Round timestamp = 0;
    Round pending_wrap = -1;  // wrap round awaiting boundary promotion
    bool eligible = false;
    bool saw_jobs = false;
  };

  const Instance* instance_ = nullptr;
  uint64_t delta_ = 1;
  std::vector<State> state_;
  // Color deadlines (ℓ.dd), dense: the ranking loops read them for every
  // eligible color each round, so they live apart from the colder State.
  std::vector<Round> dd_;
  // Colors grouped by delay bound for O(#boundary-colors) boundary scans.
  // CSR layout (flat color array + offsets) so Reset rebuilds the groups for
  // a new tenant without allocating once the buffers are warm.
  std::vector<Round> group_delay_;        // sorted distinct D
  std::vector<ColorId> group_color_ids_;  // colors sorted by (D, color)
  std::vector<uint32_t> group_begin_;     // group i: [begin[i], begin[i+1])

  mutable std::vector<ColorId> eligible_list_;  // lazily compacted
  mutable std::vector<uint8_t> in_eligible_list_;
  // True when eligible_list_ may contain stale (now-ineligible) entries;
  // eligible_colors() skips its compaction scan otherwise.
  mutable bool eligible_list_dirty_ = false;

  uint64_t epochs_completed_ = 0;
  uint64_t colors_with_jobs_ = 0;
  uint64_t eligible_drops_ = 0;
  uint64_t ineligible_drops_ = 0;
  uint64_t wrap_events_ = 0;
  uint64_t timestamp_update_events_ = 0;
};

}  // namespace rrs
