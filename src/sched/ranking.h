// The EDF color-ranking key of Sections 3.1.2/3.3: eligible colors are ranked
// first on idleness (nonidle first), then ascending color deadline, breaking
// ties by ascending delay bound, then by the consistent order of colors
// (ascending ColorId throughout this library). Smaller key = better rank.
#pragma once

#include <compare>
#include <cstdint>

#include "core/types.h"

namespace rrs {

struct ColorRankKey {
  uint8_t idle = 0;          // 0 = nonidle (better), 1 = idle
  Round deadline = 0;        // color deadline ℓ.dd
  Round delay_bound = 0;
  ColorId color = kNoColor;  // consistent order of colors

  friend auto operator<=>(const ColorRankKey&, const ColorRankKey&) = default;
};

// The job-ranking key used by Par-EDF (Section 3.3): increasing deadline,
// then increasing delay bound, then the consistent order of colors.
struct JobRankKey {
  Round deadline = 0;
  Round delay_bound = 0;
  ColorId color = kNoColor;
  JobId job = kNoJob;  // final tiebreak for determinism

  friend auto operator<=>(const JobRankKey&, const JobRankKey&) = default;
};

}  // namespace rrs
