// Name -> policy factory used by examples and CLI front-ends.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"

namespace rrs {

// Known names: dlru, edf, seq-edf, dlru-edf, dlru-edf-evict, greedy-edf,
// lazy-greedy, static, never. Returns nullptr for unknown names.
std::unique_ptr<SchedulerPolicy> MakePolicy(const std::string& name);

// All registered policy names (for --help output).
std::vector<std::string> PolicyNames();

}  // namespace rrs
