#include "sched/invariant_checker.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace rrs {

void InvariantCheckingPolicy::Reset(const Instance& instance,
                                    const EngineOptions& options) {
  num_resources_ = options.num_resources;
  checks_ = 0;
  inner_.Reset(instance, options);
}

void InvariantCheckingPolicy::Reconfigure(Round k, int mini,
                                          ResourceView& view) {
  inner_.Reconfigure(k, mini, view);
  Verify(k, view);
  ++checks_;
}

void InvariantCheckingPolicy::ExportMetrics(obs::Registry& registry) const {
  inner_.ExportMetrics(registry);
  registry.counter("invariant_checks").Add(checks_);
}

void InvariantCheckingPolicy::Verify(Round k, const ResourceView& view) const {
  const CacheSlots& slots = inner_.cache();
  const ColorStateTable& table = inner_.color_state();

  // (1) Slot bookkeeping.
  RRS_CHECK(slots.CheckInvariants())
      << inner_.name() << ": slot bookkeeping broken at round " << k;
  RRS_CHECK_LE(slots.size(), slots.capacity());

  // (2) Cached colors are eligible; (3) engine resources mirror the slots.
  for (uint32_t s = 0; s < slots.capacity(); ++s) {
    ColorId c = slots.color_in_slot(s);
    if (c == kNoColor) {
      RRS_CHECK(view.color_of(s) == kNoColor)
          << inner_.name() << ": empty slot " << s
          << " has a configured resource at round " << k;
      continue;
    }
    RRS_CHECK(table.eligible(c))
        << inner_.name() << ": cached color " << c
        << " is ineligible at round " << k;
    RRS_CHECK(view.color_of(s) == c)
        << inner_.name() << ": resource " << s << " out of sync at round " << k;
    if (slots.replicate()) {
      RRS_CHECK(view.color_of(slots.capacity() + s) == c)
          << inner_.name() << ": replica of slot " << s
          << " out of sync at round " << k << " (replication invariant)";
    }
  }

  // (4) ΔLRU invariant: the top n/lru_den eligible colors by (timestamp
  // desc, color asc) are all cached.
  if (lru_den_ != 0) {
    const uint32_t n =
        slots.replicate() ? slots.capacity() * 2 : slots.capacity();
    const uint32_t lru_slots = n / lru_den_;
    auto& eligible = eligible_scratch_;
    eligible.clear();
    for (ColorId c : table.eligible_colors()) {
      eligible.emplace_back(table.timestamp(c), c);
    }
    std::sort(eligible.begin(), eligible.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t top = std::min<size_t>(lru_slots, eligible.size());
    for (size_t i = 0; i < top; ++i) {
      RRS_CHECK(slots.IsCached(eligible[i].second))
          << inner_.name() << ": LRU-top color " << eligible[i].second
          << " (timestamp " << eligible[i].first << ") not cached at round "
          << k;
    }
  }
}

}  // namespace rrs
