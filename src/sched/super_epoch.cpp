#include "sched/super_epoch.h"

#include "obs/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void InstrumentedDlruEdfPolicy::OnReset() {
  DlruEdfPolicy::OnReset();
  RRS_CHECK_GE(m_, 1u);
  super_epochs_completed_ = 0;
  max_overlap_ = 0;
  active_count_ = 0;
  active_in_se_.assign(instance_->num_colors(), 0);
  prev_timestamp_.assign(instance_->num_colors(), 0);
  epoch_ends_in_se_.assign(instance_->num_colors(), 0);
  touched_.clear();
  touched_flag_.assign(instance_->num_colors(), 0);
}

void InstrumentedDlruEdfPolicy::OnBecameIneligible(Round k, ColorId c) {
  DlruEdfPolicy::OnBecameIneligible(k, c);
  // An epoch of c ends here; it overlapped the current super-epoch.
  ++epoch_ends_in_se_[c];
  if (!touched_flag_[c]) {
    touched_flag_[c] = 1;
    touched_.push_back(c);
  }
}

void InstrumentedDlruEdfPolicy::OnTimestampUpdated(Round k, ColorId c) {
  DlruEdfPolicy::OnTimestampUpdated(k, c);
  const Round ts = table_.timestamp(c);
  if (ts <= prev_timestamp_[c]) return;  // not a strict increase
  prev_timestamp_[c] = ts;
  if (!active_in_se_[c]) {
    active_in_se_[c] = 1;
    ++active_count_;
    if (!touched_flag_[c]) {
      touched_flag_[c] = 1;
      touched_.push_back(c);
    }
    if (active_count_ >= 2ull * m_) {
      CloseSuperEpoch();
    }
  }
}

void InstrumentedDlruEdfPolicy::CloseSuperEpoch() {
  ++super_epochs_completed_;
  // Overlap count for a color = epochs that ended during the SE + the one
  // still open at SE end (epochs partition time, so there is always an open
  // one).
  for (ColorId c : touched_) {
    max_overlap_ =
        std::max<uint64_t>(max_overlap_, epoch_ends_in_se_[c] + 1);
    epoch_ends_in_se_[c] = 0;
    active_in_se_[c] = 0;
    touched_flag_[c] = 0;
  }
  touched_.clear();
  active_count_ = 0;
}

void InstrumentedDlruEdfPolicy::ExportMetrics(obs::Registry& registry) const {
  DlruEdfPolicy::ExportMetrics(registry);
  registry.counter("super_epochs_completed").Add(super_epochs_completed_);
  registry.counter("max_epochs_per_super_epoch").Add(max_overlap_);
}

}  // namespace rrs
