// InvariantCheckingPolicy: a transparent wrapper around any
// BatchedSchedulerBase scheduler that re-verifies the paper's structural
// cache invariants after every reconfiguration phase:
//
//  1. the CacheSlots bookkeeping is internally consistent;
//  2. every cached color is eligible (a color can only become ineligible
//     while out of the cache — drop-phase rule of Section 3.1);
//  3. the engine's actual resource colors mirror the slots, including the
//     replication invariant ("each cached color is cached in two locations");
//  4. for ΔLRU-EDF: the eligible colors with the most recent timestamps
//     (top n/lru_den by (timestamp desc, color asc)) are all cached — the
//     ΔLRU side's defining invariant.
//
// Violations abort via RRS_CHECK with a description; property tests drive
// this wrapper across workload families and seeds.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "sched/batched_base.h"
#include "sched/dlru_edf.h"

namespace rrs {

class InvariantCheckingPolicy : public SchedulerPolicy {
 public:
  // Wraps `inner` (not owned; must outlive the wrapper). If `lru_slots_den`
  // is nonzero, invariant 4 is checked with lru_slots = n / lru_slots_den.
  explicit InvariantCheckingPolicy(BatchedSchedulerBase& inner,
                                   uint32_t lru_slots_den = 0)
      : inner_(inner), lru_den_(lru_slots_den) {}

  std::string name() const override { return "checked(" + inner_.name() + ")"; }

  void Reset(const Instance& instance, const EngineOptions& options) override;
  void OnJobsDropped(Round k, ColorId c, uint64_t count,
                     std::span<const JobId> jobs) override {
    inner_.OnJobsDropped(k, c, count, jobs);
  }
  void AfterDropPhase(Round k) override { inner_.AfterDropPhase(k); }
  void OnArrivals(Round k, ColorId c, uint64_t count) override {
    inner_.OnArrivals(k, c, count);
  }
  void AfterArrivalPhase(Round k) override { inner_.AfterArrivalPhase(k); }
  void Reconfigure(Round k, int mini, ResourceView& view) override;
  // Structured export: "invariant_checks" plus whatever the inner policy
  // registers.
  void ExportMetrics(obs::Registry& registry) const override;

  uint64_t checks_performed() const { return checks_; }

  // Checkpoint/restore forwards to the wrapped policy (checks_ is
  // diagnostic, not decision state, but keeping it exact keeps the wrapper
  // transparent to the differential tests).
  void SaveState(snapshot::Writer& w) const override {
    inner_.SaveState(w);
    w.BeginSection(snapshot::kTagPolicyBatched);
    w.PutU64(checks_);
    w.EndSection();
  }
  void LoadState(snapshot::Reader& r) override {
    inner_.LoadState(r);
    r.BeginSection(snapshot::kTagPolicyBatched);
    checks_ = r.GetU64();
    r.EndSection();
  }

 private:
  void Verify(Round k, const ResourceView& view) const;

  BatchedSchedulerBase& inner_;
  uint32_t lru_den_;
  uint32_t num_resources_ = 0;
  uint64_t checks_ = 0;
  // Verify()'s (timestamp, color) ranking buffer; mutable member so the
  // per-phase invariant sweep stays allocation-free across session reuse.
  mutable std::vector<std::pair<Round, ColorId>> eligible_scratch_;
};

}  // namespace rrs
