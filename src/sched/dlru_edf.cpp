#include "sched/dlru_edf.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void DlruEdfPolicy::OnReset() {
  RRS_CHECK_GE(params_.lru_den, 2u);
  // lru_capacity is defined as n / lru_den; recover n from the slot count.
  const uint32_t n = slots_.capacity() * (params_.replicate ? 2 : 1);
  lru_capacity_ = n / params_.lru_den;
  RRS_CHECK_GE(lru_capacity_, 1u)
      << "dlru-edf needs n >= " << params_.lru_den << " resources";
  RRS_CHECK_LT(lru_capacity_, slots_.capacity())
      << "LRU side must leave room for the EDF side";
  const uint32_t num_colors = static_cast<uint32_t>(instance_->num_colors());
  tracker_.Reset(num_colors);
  evict_rng_ = Rng(params_.random_evict_seed);
  is_lru_.assign(num_colors, 0);
  evict_first_.assign(num_colors, 0);
  in_lru_desired_.assign(num_colors, 0);

  // Delay classes for the EDF scan, colors ascending within each class: sort
  // a flat color array by (delay bound, color) and cut it at class
  // boundaries. All three CSR buffers reuse their capacity across Resets,
  // and when the surviving CSR still describes the new tenant's layout — the
  // common case for pooled/batched rebinds — the sort+rebuild is skipped
  // (the CSR is a deterministic function of the layout).
  bool layout_same =
      !class_begin_.empty() && class_begin_.back() == num_colors;
  for (uint32_t g = 0; layout_same && g < class_delay_.size(); ++g) {
    const Round d = class_delay_[g];
    for (uint32_t i = class_begin_[g]; i < class_begin_[g + 1]; ++i) {
      if (instance_->delay_bound(class_color_ids_[i]) != d) {
        layout_same = false;
        break;
      }
    }
  }
  if (!layout_same) {
    class_color_ids_.resize(num_colors);
    for (ColorId c = 0; c < num_colors; ++c) class_color_ids_[c] = c;
    std::sort(class_color_ids_.begin(), class_color_ids_.end(),
              [this](ColorId a, ColorId b) {
                const Round da = instance_->delay_bound(a);
                const Round db = instance_->delay_bound(b);
                if (da != db) return da < db;
                return a < b;
              });
    class_delay_.clear();
    class_begin_.clear();
    for (uint32_t i = 0; i < num_colors; ++i) {
      const Round d = instance_->delay_bound(class_color_ids_[i]);
      if (class_delay_.empty() || class_delay_.back() != d) {
        class_delay_.push_back(d);
        class_begin_.push_back(i);
      }
    }
    class_begin_.push_back(num_colors);
    class_order_.reserve(class_delay_.size());
  }
}

void DlruEdfPolicy::OnBecameEligible(Round k, ColorId c) {
  (void)k;
  tracker_.Insert(c, table_.timestamp(c));
}

void DlruEdfPolicy::OnBecameIneligible(Round k, ColorId c) {
  (void)k;
  tracker_.Remove(c);
  is_lru_[c] = 0;
  evict_first_[c] = 0;
}

void DlruEdfPolicy::OnTimestampUpdated(Round k, ColorId c) {
  (void)k;
  if (tracker_.Contains(c)) tracker_.Touch(c, table_.timestamp(c));
}

void DlruEdfPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t edf_budget = slots_.capacity() - lru_capacity_;

  // ---- ΔLRU side: the top lru_capacity_ eligible colors by timestamp. ----
  tracker_.TopK(lru_capacity_, lru_desired_);
  for (ColorId c : lru_desired_) in_lru_desired_[c] = 1;

  // Demote cached colors that fell out of the LRU top set.
  for (ColorId c : slots_.cached_colors()) {
    if (is_lru_[c] && !in_lru_desired_[c]) {
      is_lru_[c] = 0;
      if (params_.exit_policy == LruExitPolicy::kEvictFirst) {
        evict_first_[c] = 1;
      }
    }
  }
  for (ColorId c : lru_desired_) {
    is_lru_[c] = 1;
    evict_first_[c] = 0;
  }

  // Eviction candidates: cached non-LRU colors, worst first. With
  // kEvictFirst, freshly demoted colors precede everything else.
  victims_.clear();
  for (ColorId c : slots_.cached_colors()) {
    if (!is_lru_[c]) victims_.emplace_back(RankOf(c, view), c);
  }
  std::sort(victims_.begin(), victims_.end(),
            [this](const auto& a, const auto& b) {
              bool ea = evict_first_[a.second], eb = evict_first_[b.second];
              if (ea != eb) return ea > eb;
              return b.first < a.first;  // worst rank first
            });
  if (params_.random_evict && victims_.size() > 1) {
    // Ablation: shuffle the candidate order instead of using EDF rank
    // (kEvictFirst demotions, if any, lose their priority too).
    evict_rng_.Shuffle(victims_);
  }
  size_t next_victim = 0;
  auto evict_one = [&]() {
    while (next_victim < victims_.size() &&
           !slots_.IsCached(victims_[next_victim].second)) {
      ++next_victim;
    }
    RRS_CHECK_LT(next_victim, victims_.size())
        << "dlru-edf: no non-LRU eviction candidate";
    slots_.Evict(victims_[next_victim++].second);
  };

  // Bring LRU-desired colors in (most recent first).
  for (ColorId c : lru_desired_) {
    if (!slots_.IsCached(c)) {
      if (slots_.full()) evict_one();
      slots_.Insert(c);
    }
  }

  // ---- EDF side: rank eligible non-LRU colors; admit the nonidle top. ----
  // Idle colors are filtered upfront — they rank behind every nonidle color
  // (idle is the leading key field) and the admission loop stopped at the
  // first idle entry, so the admitted set is the top-edf_budget among the
  // nonidle candidates either way. Rank order is (dd, D, color), and every
  // color of a delay class carries the same deadline dd = k - k mod D + D
  // (boundary processing refreshes dd for the whole class at once), so the
  // top set falls out of walking the ≤ |distinct D| classes in (dd, D)
  // order and taking the first nonidle eligible non-LRU colors — the scan
  // usually ends after a handful of colors instead of ranking all of them.
  class_order_.clear();
  for (uint32_t i = 0; i < class_delay_.size(); ++i) {
    // All colors of a class share dd; read it off the first one (same
    // source RankOf uses, so ordering is byte-identical to full ranking).
    class_order_.emplace_back(table_.deadline(class_color_ids_[class_begin_[i]]),
                              i);
  }
  std::sort(class_order_.begin(), class_order_.end());
  ranked_.clear();
  for (const auto& [dd, i] : class_order_) {
    for (uint32_t j = class_begin_[i]; j < class_begin_[i + 1]; ++j) {
      const ColorId c = class_color_ids_[j];
      if (is_lru_[c] || !table_.eligible(c)) continue;
      if (view.pending_count(c) == 0) continue;
      ranked_.emplace_back(RankOf(c, view), c);
      if (ranked_.size() == edf_budget) break;
    }
    if (ranked_.size() == edf_budget) break;
  }
  for (const auto& [key, c] : ranked_) {
    if (slots_.IsCached(c)) continue;
    if (slots_.full()) evict_one();
    slots_.Insert(c);
  }

  for (ColorId c : lru_desired_) in_lru_desired_[c] = 0;
  slots_.ApplyTo(view);
}

void DlruEdfPolicy::SaveState(snapshot::Writer& w) const {
  BatchedSchedulerBase::SaveState(w);
  w.BeginSection(snapshot::kTagPolicyDlruEdf);
  w.PutVec(is_lru_);
  w.PutVec(evict_first_);
  for (uint64_t word : evict_rng_.SaveState()) w.PutU64(word);
  w.EndSection();
  tracker_.SaveState(w);
}

void DlruEdfPolicy::LoadState(snapshot::Reader& r) {
  BatchedSchedulerBase::LoadState(r);
  r.BeginSection(snapshot::kTagPolicyDlruEdf);
  r.GetVec(is_lru_);
  r.GetVec(evict_first_);
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& word : rng_state) word = r.GetU64();
  evict_rng_.LoadState(rng_state);
  r.EndSection();
  tracker_.LoadState(r);
  RRS_CHECK_EQ(is_lru_.size(), instance_->num_colors());
  RRS_CHECK_EQ(evict_first_.size(), instance_->num_colors());
}

}  // namespace rrs
