#include "sched/dlru_edf.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void DlruEdfPolicy::OnReset() {
  RRS_CHECK_GE(params_.lru_den, 2u);
  // lru_capacity is defined as n / lru_den; recover n from the slot count.
  const uint32_t n = slots_.capacity() * (params_.replicate ? 2 : 1);
  lru_capacity_ = n / params_.lru_den;
  RRS_CHECK_GE(lru_capacity_, 1u)
      << "dlru-edf needs n >= " << params_.lru_den << " resources";
  RRS_CHECK_LT(lru_capacity_, slots_.capacity())
      << "LRU side must leave room for the EDF side";
  tracker_ = LruTracker(instance_->num_colors());
  evict_rng_ = Rng(params_.random_evict_seed);
  is_lru_.assign(instance_->num_colors(), 0);
  evict_first_.assign(instance_->num_colors(), 0);
  in_lru_desired_.assign(instance_->num_colors(), 0);
}

void DlruEdfPolicy::OnBecameEligible(Round k, ColorId c) {
  (void)k;
  tracker_.Insert(c, table_.timestamp(c));
}

void DlruEdfPolicy::OnBecameIneligible(Round k, ColorId c) {
  (void)k;
  tracker_.Remove(c);
  is_lru_[c] = 0;
  evict_first_[c] = 0;
}

void DlruEdfPolicy::OnTimestampUpdated(Round k, ColorId c) {
  (void)k;
  if (tracker_.Contains(c)) tracker_.Touch(c, table_.timestamp(c));
}

void DlruEdfPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t edf_budget = slots_.capacity() - lru_capacity_;

  // ---- ΔLRU side: the top lru_capacity_ eligible colors by timestamp. ----
  tracker_.TopK(lru_capacity_, lru_desired_);
  for (ColorId c : lru_desired_) in_lru_desired_[c] = 1;

  // Demote cached colors that fell out of the LRU top set.
  for (ColorId c : slots_.cached_colors()) {
    if (is_lru_[c] && !in_lru_desired_[c]) {
      is_lru_[c] = 0;
      if (params_.exit_policy == LruExitPolicy::kEvictFirst) {
        evict_first_[c] = 1;
      }
    }
  }
  for (ColorId c : lru_desired_) {
    is_lru_[c] = 1;
    evict_first_[c] = 0;
  }

  // Eviction candidates: cached non-LRU colors, worst first. With
  // kEvictFirst, freshly demoted colors precede everything else.
  victims_.clear();
  for (ColorId c : slots_.cached_colors()) {
    if (!is_lru_[c]) victims_.emplace_back(RankOf(c, view), c);
  }
  std::sort(victims_.begin(), victims_.end(),
            [this](const auto& a, const auto& b) {
              bool ea = evict_first_[a.second], eb = evict_first_[b.second];
              if (ea != eb) return ea > eb;
              return b.first < a.first;  // worst rank first
            });
  if (params_.random_evict && victims_.size() > 1) {
    // Ablation: shuffle the candidate order instead of using EDF rank
    // (kEvictFirst demotions, if any, lose their priority too).
    evict_rng_.Shuffle(victims_);
  }
  size_t next_victim = 0;
  auto evict_one = [&]() {
    while (next_victim < victims_.size() &&
           !slots_.IsCached(victims_[next_victim].second)) {
      ++next_victim;
    }
    RRS_CHECK_LT(next_victim, victims_.size())
        << "dlru-edf: no non-LRU eviction candidate";
    slots_.Evict(victims_[next_victim++].second);
  };

  // Bring LRU-desired colors in (most recent first).
  for (ColorId c : lru_desired_) {
    if (!slots_.IsCached(c)) {
      if (slots_.full()) evict_one();
      slots_.Insert(c);
    }
  }

  // ---- EDF side: rank eligible non-LRU colors; admit the nonidle top. ----
  const auto& eligible = table_.eligible_colors();
  ranked_.clear();
  for (ColorId c : eligible) {
    if (!is_lru_[c]) ranked_.emplace_back(RankOf(c, view), c);
  }
  if (ranked_.size() > edf_budget) {
    std::nth_element(ranked_.begin(), ranked_.begin() + edf_budget,
                     ranked_.end());
    ranked_.resize(edf_budget);
  }
  std::sort(ranked_.begin(), ranked_.end());
  for (const auto& [key, c] : ranked_) {
    if (key.idle) break;  // only nonidle colors are brought in
    if (slots_.IsCached(c)) continue;
    if (slots_.full()) evict_one();
    slots_.Insert(c);
  }

  for (ColorId c : lru_desired_) in_lru_desired_[c] = 0;
  slots_.ApplyTo(view);
}

}  // namespace rrs
