// Algorithm ΔLRU (Section 3.1.1).
//
// Reconfiguration scheme: keep the n/2 eligible colors with the most recent
// timestamps in the cache (ties by the consistent order of colors), each
// replicated in two locations. The timestamp of ℓ is the latest round before
// the most recent multiple of D_ℓ in which a counter-wrapping event of ℓ
// occurred.
//
// ΔLRU captures only the recency aspect and is NOT resource competitive: it
// happily keeps idle colors with recent timestamps cached (underutilization).
// Appendix A's construction (workload::MakeDlruAdversary) exhibits an
// Ω(2^{j+1}/(nΔ)) ratio; experiment E1 reproduces it.
#pragma once

#include "container/lru_tracker.h"
#include "sched/batched_base.h"

namespace rrs {

class DlruPolicy : public BatchedSchedulerBase {
 public:
  std::string name() const override { return "dlru"; }

  void Reconfigure(Round k, int mini, ResourceView& view) override;

  // Checkpoint/restore: shared batched state plus the recency tracker.
  void SaveState(snapshot::Writer& w) const override {
    BatchedSchedulerBase::SaveState(w);
    tracker_.SaveState(w);
  }
  void LoadState(snapshot::Reader& r) override {
    BatchedSchedulerBase::LoadState(r);
    tracker_.LoadState(r);
  }

 protected:
  uint32_t PrimarySlots(uint32_t n) const override { return n / 2; }

  void OnReset() override;
  void OnBecameEligible(Round k, ColorId c) override;
  void OnBecameIneligible(Round k, ColorId c) override;
  void OnTimestampUpdated(Round k, ColorId c) override;

 private:
  LruTracker tracker_{0};
  std::vector<ColorId> desired_;
  std::vector<uint8_t> in_desired_;
  std::vector<ColorId> to_evict_;
};

}  // namespace rrs
