// Section 3.4 instrumentation: super-epochs and i-active colors.
//
// A *super-epoch* ends the moment at least 2m distinct colors have strictly
// increased their timestamps since the super-epoch started; a new one starts
// immediately. A color is *i-active* if its timestamp updates during
// super-epoch i; an epoch of an i-active color overlapping super-epoch i is
// an *i-active epoch*.
//
// The paper's amortization (Lemma 3.15 / Corollary 3.2) hinges on: at most
// three epochs of any color overlap any super-epoch. This subclass of
// ΔLRU-EDF tracks super-epoch boundaries and per-color epoch overlap counts
// so that property can be measured and asserted empirically (experiment E8's
// companion tests).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/dlru_edf.h"

namespace rrs {

class InstrumentedDlruEdfPolicy : public DlruEdfPolicy {
 public:
  // m is the offline resource count of the analysis; a super-epoch ends when
  // 2m distinct colors have increased their timestamps.
  explicit InstrumentedDlruEdfPolicy(uint32_t m, Params params = {})
      : DlruEdfPolicy(params), m_(m) {}

  std::string name() const override { return "dlru-edf-instrumented"; }

  uint64_t super_epochs_completed() const { return super_epochs_completed_; }

  // Max over all (color, super-epoch) pairs of the number of epochs of that
  // color overlapping that super-epoch (complete super-epochs only).
  // Corollary 3.2 predicts <= 3.
  uint64_t max_epochs_overlapping_super_epoch() const { return max_overlap_; }

  // Distinct timestamp-increasing colors in the current (incomplete)
  // super-epoch.
  uint64_t active_colors_in_current() const { return active_count_; }

  // Registers "super_epochs_completed" and "max_epochs_per_super_epoch" on
  // top of the base policy's export (migrated off the legacy string map).
  void ExportMetrics(obs::Registry& registry) const override;

  // Checkpoint/restore: ΔLRU-EDF state plus the super-epoch accounting.
  void SaveState(snapshot::Writer& w) const override {
    DlruEdfPolicy::SaveState(w);
    w.BeginSection(snapshot::kTagPolicyInstrumented);
    w.PutU64(super_epochs_completed_);
    w.PutU64(max_overlap_);
    w.PutU64(active_count_);
    w.PutVec(active_in_se_);
    w.PutVec(prev_timestamp_);
    w.PutVec(epoch_ends_in_se_);
    w.PutVec(touched_);
    w.PutVec(touched_flag_);
    w.EndSection();
  }
  void LoadState(snapshot::Reader& r) override {
    DlruEdfPolicy::LoadState(r);
    r.BeginSection(snapshot::kTagPolicyInstrumented);
    super_epochs_completed_ = r.GetU64();
    max_overlap_ = r.GetU64();
    active_count_ = r.GetU64();
    r.GetVec(active_in_se_);
    r.GetVec(prev_timestamp_);
    r.GetVec(epoch_ends_in_se_);
    r.GetVec(touched_);
    r.GetVec(touched_flag_);
    r.EndSection();
  }

 protected:
  void OnReset() override;
  void OnBecameIneligible(Round k, ColorId c) override;
  void OnTimestampUpdated(Round k, ColorId c) override;

 private:
  void CloseSuperEpoch();

  uint32_t m_;
  uint64_t super_epochs_completed_ = 0;
  uint64_t max_overlap_ = 0;
  uint64_t active_count_ = 0;

  std::vector<uint8_t> active_in_se_;     // ts increased this super-epoch
  std::vector<Round> prev_timestamp_;     // last observed ts per color
  std::vector<uint32_t> epoch_ends_in_se_;
  std::vector<ColorId> touched_;          // colors with state this SE
  std::vector<uint8_t> touched_flag_;
};

}  // namespace rrs
