#include "sched/frfcfs.h"

#include "sched/ranking.h"
#include "util/check.h"

namespace rrs {

void FrFcfsPolicy::Reset(const Instance& instance,
                         const EngineOptions& options) {
  (void)options;
  instance_ = &instance;
  claimed_.assign(instance.num_colors(), 0);
}

void FrFcfsPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t n = view.num_resources();
  const auto& nonidle = view.nonidle_colors();

  // Row hits: a resource whose color still has pending work keeps it.
  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c != kNoColor && view.pending_count(c) > 0) claimed_[c] = 1;
  }

  for (ResourceId r = 0; r < n; ++r) {
    ColorId cur = view.color_of(r);
    if (cur != kNoColor && view.pending_count(cur) > 0) continue;  // row hit
    // Drained row: open the oldest waiting one — the unclaimed nonidle
    // color with the earliest pending deadline.
    ColorId best = kNoColor;
    ColorRankKey best_key{};
    for (ColorId c : nonidle) {
      if (claimed_[c]) continue;
      ColorRankKey key{0, view.earliest_deadline(c), instance_->delay_bound(c),
                       c};
      if (best == kNoColor || key < best_key) {
        best = c;
        best_key = key;
      }
    }
    if (best != kNoColor) {
      view.SetColor(r, best);
      claimed_[best] = 1;
    }
  }

  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c != kNoColor) claimed_[c] = 0;
  }
}

}  // namespace rrs
