#include "sched/registry.h"

#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/frfcfs.h"
#include "sched/greedy.h"
#include "sched/lookahead.h"

namespace rrs {

std::unique_ptr<SchedulerPolicy> MakePolicy(const std::string& name) {
  if (name == "dlru") return std::make_unique<DlruPolicy>();
  if (name == "edf") return std::make_unique<EdfPolicy>(true);
  if (name == "seq-edf") return std::make_unique<EdfPolicy>(false);
  if (name == "dlru-edf") return std::make_unique<DlruEdfPolicy>();
  if (name == "dlru-edf-evict") {
    DlruEdfPolicy::Params params;
    params.exit_policy = LruExitPolicy::kEvictFirst;
    return std::make_unique<DlruEdfPolicy>(params);
  }
  if (name == "greedy-edf") return std::make_unique<GreedyEdfPolicy>();
  if (name == "frfcfs") return std::make_unique<FrFcfsPolicy>();
  if (name == "lazy-greedy") return std::make_unique<LazyGreedyPolicy>();
  if (name == "lazy-greedy-weighted") {
    return std::make_unique<LazyGreedyPolicy>(1, /*weight_aware=*/true);
  }
  if (name == "static") return std::make_unique<StaticPartitionPolicy>();
  if (name == "never") return std::make_unique<NeverReconfigurePolicy>();
  if (name == "lookahead") {
    return std::make_unique<LookaheadGreedyPolicy>();
  }
  return nullptr;
}

std::vector<std::string> PolicyNames() {
  return {"dlru",        "edf",         "seq-edf",
          "dlru-edf",    "dlru-edf-evict", "greedy-edf",
          "frfcfs",      "lazy-greedy", "lazy-greedy-weighted",
          "static",      "never",       "lookahead"};
}

}  // namespace rrs
