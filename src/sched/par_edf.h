// Algorithm Par-EDF (Section 3.3): an analysis companion, not a real
// scheduler. The m resources are viewed as one super-resource that executes
// up to m best-ranked pending jobs per round, with no reconfiguration
// constraints or costs. Jobs are ranked by increasing deadline, then
// increasing delay bound, then the consistent order of colors.
//
// Lemma 3.7: DropCost_ParEDF(σ) <= DropCost_OFF(σ) for an OFF with m
// resources — Par-EDF's drop count is therefore a valid lower bound on any
// algorithm's drop cost and is one leg of offline::LowerBound.
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace rrs {

struct ParEdfResult {
  uint64_t executed = 0;
  uint64_t drops = 0;
};

// Simulates Par-EDF with m >= 1 resources over the whole instance.
ParEdfResult RunParEdf(const Instance& instance, uint32_t m);

// Convenience accessor for the drop lower bound.
uint64_t ParEdfDropCost(const Instance& instance, uint32_t m);

}  // namespace rrs
