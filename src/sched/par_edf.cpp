#include "sched/par_edf.h"

#include <queue>
#include <vector>

#include "sched/ranking.h"
#include "util/check.h"

namespace rrs {

ParEdfResult RunParEdf(const Instance& instance, uint32_t m) {
  RRS_CHECK_GE(m, 1u);
  ParEdfResult result;

  // Min-heap of pending jobs by JobRankKey. Expired jobs are lazily
  // discarded: a job with deadline <= current round ranks ahead of every
  // live job with a later deadline, so popping naturally surfaces them.
  auto cmp = [](const JobRankKey& a, const JobRankKey& b) { return a > b; };
  std::priority_queue<JobRankKey, std::vector<JobRankKey>, decltype(cmp)> heap(
      cmp);

  const Round horizon = instance.horizon();
  for (Round k = 0; k <= horizon; ++k) {
    // Drop phase is implicit: expired entries are skipped below.
    auto arrivals = instance.jobs_in_round(k);
    if (!arrivals.empty()) {
      JobId id = instance.first_job_in_round(k);
      for (size_t i = 0; i < arrivals.size(); ++i) {
        const Job& j = arrivals[i];
        heap.push(JobRankKey{j.arrival + instance.delay_bound(j.color),
                             instance.delay_bound(j.color), j.color,
                             id + static_cast<JobId>(i)});
      }
    }
    // Execution phase: up to m best-ranked live jobs.
    uint32_t executed_this_round = 0;
    while (executed_this_round < m && !heap.empty()) {
      JobRankKey top = heap.top();
      if (top.deadline <= k) {
        heap.pop();  // already dropped in (or before) this round's drop phase
        continue;
      }
      heap.pop();
      ++result.executed;
      ++executed_this_round;
    }
  }
  RRS_CHECK_LE(result.executed, instance.num_jobs());
  result.drops = instance.num_jobs() - result.executed;
  return result;
}

uint64_t ParEdfDropCost(const Instance& instance, uint32_t m) {
  return RunParEdf(instance, m).drops;
}

}  // namespace rrs
