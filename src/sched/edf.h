// Algorithm EDF (Section 3.1.2) and its Seq-EDF variant (Section 3.3).
//
// Reconfiguration scheme: rank the eligible colors (nonidle first, then
// ascending color deadline, then ascending delay bound, then the consistent
// order of colors). Every nonidle eligible color in the top-P rankings that
// is not cached is brought in, evicting the lowest-ranked cached color when
// the cache is full.
//
//  - EDF proper: P = n/2 primary slots, each cached color replicated twice.
//  - Seq-EDF:    P = n, no replication (all capacity distinct). Run with
//    mini_rounds_per_round = 2 this is DS-Seq-EDF, the double-speed analysis
//    companion of Lemma 3.8.
//
// EDF captures only the deadline aspect and is NOT resource competitive: it
// thrashes when a short-delay color alternates between idle and nonidle,
// repeatedly displacing a long-delay color (Appendix B; experiment E2).
#pragma once

#include <vector>

#include "sched/batched_base.h"

namespace rrs {

class EdfPolicy : public BatchedSchedulerBase {
 public:
  // replicate = true: the Section 3.1 scheme (P = n/2, mirrored).
  // replicate = false: Seq-EDF (P = n, distinct).
  explicit EdfPolicy(bool replicate = true) : replicate_(replicate) {}

  std::string name() const override { return replicate_ ? "edf" : "seq-edf"; }

  void Reconfigure(Round k, int mini, ResourceView& view) override;

 protected:
  uint32_t PrimarySlots(uint32_t n) const override {
    return replicate_ ? n / 2 : n;
  }
  bool Replicate() const override { return replicate_; }

 private:
  bool replicate_;
  std::vector<std::pair<ColorRankKey, ColorId>> ranked_;
  std::vector<std::pair<ColorRankKey, ColorId>> evict_order_;
};

}  // namespace rrs
