#include "sched/lane_kernels.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace rrs {

void DlruEdfLaneKernel::SetShape(size_t num_colors, uint32_t width,
                                 const uint64_t* backlog_bits) {
  RRS_CHECK_GE(width, 1u);
  RRS_CHECK_LE(width, kMaxLanes);
  width_ = width;
  backlog_ = backlog_bits;
  eligible_bits_.assign(num_colors, 0);
  lru_bits_.assign(num_colors, 0);
  cached_bits_.assign(num_colors, 0);
  wrap_bits_.assign(num_colors, 0);
  shared_dd_.assign(num_colors, 0);
  ranked_stride_ = num_colors;
  ranked_colors_.assign(num_colors * kMaxLanes, 0);
  boundary_round_ = -1;
  class_order_round_ = -1;
  // Rebuild the bitmask mirrors of any surviving bindings (shape adoption
  // with open lanes never changes num_colors, but the storage may have been
  // cleared above).
  for (uint32_t lane = 0; lane < kMaxLanes; ++lane) {
    if (lanes_[lane].policy != nullptr) ResyncLane(lane);
  }
}

void DlruEdfLaneKernel::BindLane(uint32_t lane, DlruEdfPolicy* policy) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(policy != nullptr);
  lanes_[lane].policy = policy;
  ResyncLane(lane);
}

void DlruEdfLaneKernel::UnbindLane(uint32_t lane) {
  LaneState& lane_state = lanes_[lane];
  if (lane_state.policy == nullptr) return;
  const uint64_t bit = uint64_t{1} << lane;
  const uint64_t clear = ~bit;
  for (size_t c = 0; c < eligible_bits_.size(); ++c) {
    eligible_bits_[c] &= clear;
    lru_bits_[c] &= clear;
    cached_bits_[c] &= clear;
    wrap_bits_[c] &= clear;
  }
  lane_state.policy = nullptr;
  tracker_dirty_ |= bit;
  desired_valid_ &= clear;
  random_evict_ &= clear;
}

void DlruEdfLaneKernel::ResyncLane(uint32_t lane) {
  LaneState& lane_state = lanes_[lane];
  DlruEdfPolicy& p = *lane_state.policy;
  RRS_CHECK_EQ(p.table_.num_colors(), eligible_bits_.size());
  const uint64_t bit = uint64_t{1} << lane;
  for (size_t c = 0; c < eligible_bits_.size(); ++c) {
    const ColorId color = static_cast<ColorId>(c);
    if (p.table_.eligible(color)) {
      eligible_bits_[c] |= bit;
    } else {
      eligible_bits_[c] &= ~bit;
    }
    if (p.is_lru_[c]) {
      lru_bits_[c] |= bit;
    } else {
      lru_bits_[c] &= ~bit;
    }
    if (p.slots_.IsCached(color)) {
      cached_bits_[c] |= bit;
    } else {
      cached_bits_[c] &= ~bit;
    }
    if (p.table_.pending_wrap(color) >= 0) {
      wrap_bits_[c] |= bit;
    } else {
      wrap_bits_[c] &= ~bit;
    }
    // The deadline table is a deterministic function of (round, layout), so
    // any lane's fresh copy — a Reset policy at round 0, or a restored
    // snapshot at the slab's round — is the shared one.
    shared_dd_[c] = p.table_.deadline(color);
  }
  tracker_dirty_ |= bit;
  desired_valid_ &= ~bit;
  if (p.params_.random_evict) {
    random_evict_ |= bit;
  } else {
    random_evict_ &= ~bit;
  }
  lane_state.edf_cap =
      static_cast<uint32_t>(p.slots_.capacity()) - p.lru_capacity_;
  // A (re)bound lane may carry a different deadline table than the previous
  // occupant of the slab; recompute the shared per-round scratch.
  boundary_round_ = -1;
  class_order_round_ = -1;
}

void DlruEdfLaneKernel::AfterDropPhase(Round k, uint64_t mask) {
  if (mask == 0) return;
  // The boundary set depends only on the round and the delay layout, which
  // is uniform across the slab: collect it off the first lane's table.
  const uint32_t first = static_cast<uint32_t>(std::countr_zero(mask));
  const ColorStateTable& t0 = lanes_[first].policy->table_;
  t0.CollectBoundaryColors(k, boundary_colors_);
  boundary_round_ = k;

  // Color-major over the boundary set: both per-lane predicates are exact
  // mask intersections, so lanes that do not transition pay only the shared
  // mask loads. Per-lane step order (expire, then promote, then deadline,
  // color by color in boundary order) matches the scalar
  // ProcessBoundaryPrecollected because operations on distinct lanes
  // commute.
  for (ColorId c : boundary_colors_) {
    // Step 1: eligible & uncached lanes end the color's epoch.
    uint64_t expire = mask & eligible_bits_[c] & ~cached_bits_[c];
    eligible_bits_[c] &= ~expire;
    lru_bits_[c] &= ~expire;
    tracker_dirty_ |= expire;  // the tracker Remove below always mutates
    for (; expire != 0; expire &= expire - 1) {
      const uint32_t lane = static_cast<uint32_t>(std::countr_zero(expire));
      DlruEdfPolicy& p = *lanes_[lane].policy;
      p.table_.BoundaryExpire(c);
      // Mirrors DlruEdfPolicy::OnBecameIneligible.
      p.tracker_.Remove(c);
      p.is_lru_[c] = 0;
      p.evict_first_[c] = 0;
    }
    // Step 2: promote pending wraps into timestamps.
    uint64_t wraps = mask & wrap_bits_[c];
    wrap_bits_[c] &= ~wraps;
    for (; wraps != 0; wraps &= wraps - 1) {
      const uint32_t lane = static_cast<uint32_t>(std::countr_zero(wraps));
      DlruEdfPolicy& p = *lanes_[lane].policy;
      const Round ts = p.table_.BoundaryPromoteWrap(c);
      // Mirrors DlruEdfPolicy::OnTimestampUpdated.
      if (p.tracker_.Contains(c)) {
        p.tracker_.Touch(c, ts);
        tracker_dirty_ |= uint64_t{1} << lane;
      }
    }
    // Step 3: dd = k + D, lane-invariant: one shared store. Lane tables go
    // stale here; FlushDeadlines restores them before snapshots.
    shared_dd_[c] = k + t0.delay_bound(c);
  }
}

void DlruEdfLaneKernel::FlushDeadlines(uint32_t lane) const {
  ColorStateTable& table = lanes_[lane].policy->table_;
  for (size_t c = 0; c < shared_dd_.size(); ++c) {
    table.SetDeadline(static_cast<ColorId>(c), shared_dd_[c]);
  }
}

void DlruEdfLaneKernel::ApplySlow(uint32_t lane, LaneState& lane_state,
                                  ResourceView& view) {
  DlruEdfPolicy& p = *lane_state.policy;
  const uint64_t bit = uint64_t{1} << lane;
  // Scalar Reconfigure, from the victims build onward (the demote/mark
  // section already ran, the ranked list is in lane_state.ranked). Rank keys
  // read the shared deadline table — identical values to the lane's RankOf.
  victims_.clear();
  for (ColorId c : p.slots_.cached_colors()) {
    if (!p.is_lru_[c]) {
      victims_.emplace_back(
          ColorRankKey{view.pending_count(c) == 0 ? uint8_t{1} : uint8_t{0},
                       shared_dd_[c], p.instance_->delay_bound(c), c},
          c);
    }
  }
  std::sort(victims_.begin(), victims_.end(),
            [&p](const auto& a, const auto& b) {
              bool ea = p.evict_first_[a.second], eb = p.evict_first_[b.second];
              if (ea != eb) return ea > eb;
              return b.first < a.first;  // worst rank first
            });
  if (p.params_.random_evict && victims_.size() > 1) {
    p.evict_rng_.Shuffle(victims_);
  }
  size_t next_victim = 0;
  auto evict_one = [&]() {
    while (next_victim < victims_.size() &&
           !p.slots_.IsCached(victims_[next_victim].second)) {
      ++next_victim;
    }
    RRS_CHECK_LT(next_victim, victims_.size())
        << "dlru-edf: no non-LRU eviction candidate";
    const ColorId victim = victims_[next_victim++].second;
    p.slots_.Evict(victim);
    cached_bits_[victim] &= ~bit;
  };
  for (ColorId c : lane_state.desired) {
    if (!p.slots_.IsCached(c)) {
      if (p.slots_.full()) evict_one();
      p.slots_.Insert(c);
      cached_bits_[c] |= bit;
    }
  }
  const ColorId* ranked = ranked_colors_.data() + lane * ranked_stride_;
  for (uint32_t r = 0; r < ranked_len_[lane]; ++r) {
    const ColorId c = ranked[r];
    if (p.slots_.IsCached(c)) continue;
    if (p.slots_.full()) evict_one();
    p.slots_.Insert(c);
    cached_bits_[c] |= bit;
  }
  p.slots_.ApplyTo(view);
}

void DlruEdfLaneKernel::Reconfigure(Round k, int mini, uint64_t mask,
                                    ResourceView* const* views) {
  (void)mini;
  if (mask == 0) return;

  // ---- ΔLRU side: memoized TopK, demote/mark on change. ------------------
  // Only lanes whose tracker mutated since the last memoization (or that
  // have no memo yet) are visited at all; in a quiet round the whole section
  // is two mask operations.
  desired_changed_ &= ~mask;
  for (uint64_t m = mask & (tracker_dirty_ | ~desired_valid_); m != 0;
       m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    const uint64_t bit = uint64_t{1} << lane;
    LaneState& lane_state = lanes_[lane];
    DlruEdfPolicy& p = *lane_state.policy;
    p.tracker_.TopK(p.lru_capacity_, topk_scratch_);
    const bool changed =
        (desired_valid_ & bit) == 0 || topk_scratch_ != lane_state.desired;
    if (!changed) continue;
    lane_state.desired = topk_scratch_;
    desired_changed_ |= bit;
    // Scalar demote/mark, with the lane-bit mirror kept in step. When the
    // desired set is unchanged these loops are no-ops (is_lru_ equals the
    // desired set between phases), which is why they only run on change.
    for (ColorId c : lane_state.desired) p.in_lru_desired_[c] = 1;
    for (ColorId c : p.slots_.cached_colors()) {
      if (p.is_lru_[c] && !p.in_lru_desired_[c]) {
        p.is_lru_[c] = 0;
        lru_bits_[c] &= ~bit;
        if (p.params_.exit_policy == LruExitPolicy::kEvictFirst) {
          p.evict_first_[c] = 1;
        }
      }
    }
    for (ColorId c : lane_state.desired) {
      p.is_lru_[c] = 1;
      lru_bits_[c] |= bit;
      p.evict_first_[c] = 0;
      p.in_lru_desired_[c] = 0;
    }
  }
  tracker_dirty_ &= ~mask;
  desired_valid_ |= mask;

  // ---- EDF side: one masked scan over the shared class order. ------------
  // Color deadlines are lane-invariant (set unconditionally at boundary
  // rounds, which depend only on the delay layout), so the (dd, class) walk
  // order is shared by every lane and constant across the round's
  // mini-rounds.
  if (class_order_round_ != k) {
    DlruEdfPolicy& p0 = *lanes_[std::countr_zero(mask)].policy;
    class_order_.clear();
    for (uint32_t i = 0; i < p0.class_delay_.size(); ++i) {
      class_order_.emplace_back(
          shared_dd_[p0.class_color_ids_[p0.class_begin_[i]]], i);
    }
    std::sort(class_order_.begin(), class_order_.end());
    class_order_round_ = k;
  }

  uint64_t need = mask;
  // Lanes with at least one EDF admission that is not currently cached —
  // exactly the lanes whose apply step must run the eviction machinery.
  uint64_t edf_missing = 0;
  std::memset(ranked_len_, 0, sizeof(ranked_len_));
  const DlruEdfPolicy& p0 = *lanes_[std::countr_zero(mask)].policy;
  for (const auto& [dd, i] : class_order_) {
    if (need == 0) break;
    for (uint32_t j = p0.class_begin_[i]; j < p0.class_begin_[i + 1]; ++j) {
      // The class CSR is derived from the slab-uniform delay layout, so any
      // lane's copy describes every lane.
      const ColorId c = p0.class_color_ids_[j];
      uint64_t cand = need & eligible_bits_[c] & ~lru_bits_[c] & backlog_[c];
      if (cand == 0) continue;
      edf_missing |= cand & ~cached_bits_[c];
      for (; cand != 0; cand &= cand - 1) {
        const uint32_t lane = static_cast<uint32_t>(std::countr_zero(cand));
        ranked_colors_[lane * ranked_stride_ + ranked_len_[lane]++] = c;
        if (ranked_len_[lane] == lanes_[lane].edf_cap) {
          need &= ~(uint64_t{1} << lane);
        }
      }
      if (need == 0) break;
    }
  }

  // ---- Apply: only lanes that actually need a slot change. ---------------
  // A fast-path lane (no missing EDF admission, desired colors all cached)
  // has an empty slot dirty list, so even its ApplyTo would be a no-op: it
  // is skipped without touching any per-lane state. Lanes whose TopK changed
  // must first check the fresh desired colors against the cache mirror.
  uint64_t slow = mask & (random_evict_ | edf_missing);
  for (uint64_t m = mask & desired_changed_ & ~slow; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    const uint64_t bit = uint64_t{1} << lane;
    for (ColorId c : lanes_[lane].desired) {
      if ((cached_bits_[c] & bit) == 0) {
        slow |= bit;
        break;
      }
    }
  }
  for (uint64_t m = slow; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    ApplySlow(lane, lanes_[lane], *views[lane]);
  }
}

}  // namespace rrs
