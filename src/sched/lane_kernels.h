// DlruEdfLaneKernel: the lane-fused ΔLRU-EDF phase processing used by the
// batched fleet engine (fleet/batch_engine.h).
//
// A slab runs up to 64 same-shape tenants ("lanes") in lock-step, one round
// at a time. Each lane owns a full DlruEdfPolicy (so snapshots, telemetry
// and per-lane parameters stay exactly the scalar ones); the kernel replaces
// the policy's *virtual phase hooks* with direct calls that share the
// lane-invariant work across the slab and skip per-lane work that provably
// cannot change the outcome:
//
//  - the boundary set of round k (colors with k % D_c == 0) depends only on
//    the delay layout, which is part of the slab shape: collected once per
//    round and replayed against every lane's ColorStateTable;
//  - color deadlines are lane-invariant (dd = k - k%D + D is set
//    unconditionally at boundary rounds), so the EDF class order is computed
//    and sorted once per round and reused by every lane and mini-round;
//  - the LRU top-k is memoized per lane behind a tracker-dirty flag: the
//    kernel performs every tracker mutation itself, so it knows exactly when
//    TopK can change; when the desired set is unchanged the demote/mark
//    loops are skipped (they are no-ops by the is_lru == desired invariant);
//  - the EDF candidate scan runs once over the shared class order for all
//    lanes simultaneously, as masked updates over per-color lane bitmasks
//    (eligible, LRU, backlog) instead of per-lane walks;
//  - the eviction machinery (victims build + rank sort) runs only when a
//    lane actually needs an insertion — the scalar policy rebuilds and
//    re-sorts it every mini-round whether or not anything changes.
//
// Lanes with params_.random_evict take the full scalar sequence every
// mini-round (the shuffle consumes the RNG stream, which must replay
// byte-identically), and every skip above is a proven no-op, so a fused lane
// is bit-identical to the same tenant on a scalar Engine — including
// snapshot bytes and the telemetry counters. Pinned by
// tests/batch_engine_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sched/dlru_edf.h"

namespace rrs {

class DlruEdfLaneKernel {
 public:
  static constexpr uint32_t kMaxLanes = 64;

  // Re-arms the kernel for a slab shape: `num_colors` colors, `width` lanes,
  // and the slab's backlog bitmask table (bit l of backlog_bits[c] set iff
  // lane l has pending jobs of color c; maintained by the batch engine
  // inline with every pending-count mutation). Keeps lane bindings; the
  // batch engine calls this whenever the slab adopts a shape or the table
  // storage moves.
  void SetShape(size_t num_colors, uint32_t width,
                const uint64_t* backlog_bits);

  // Binds lane `lane` to a freshly Reset policy. The policy must outlive the
  // binding.
  void BindLane(uint32_t lane, DlruEdfPolicy* policy);
  void UnbindLane(uint32_t lane);

  // Rebuilds the lane's mirrors and invalidates its memos after the policy
  // state changed out of band (LoadState on a restored lane).
  void ResyncLane(uint32_t lane);

  // Writes the shared deadline table back into the lane's ColorStateTable.
  // Deadlines are lane-invariant, so the kernel keeps one copy (shared_dd_)
  // and lane tables go stale during a run; the batch engine flushes before a
  // lane snapshot so the serialized bytes match the scalar engine's.
  void FlushDeadlines(uint32_t lane) const;

  // ---- Phase hooks, mirroring BatchedSchedulerBase/DlruEdfPolicy ---------

  // Drop-phase accounting for one (lane, color) expiry. The batch engine
  // guarantees collect_ineligible_jobs() is false for fused lanes, so the
  // dropped ids are not needed here.
  void OnJobsDropped(uint32_t lane, Round k, ColorId c, uint64_t count) {
    lanes_[lane].policy->table_.RecordDrop(c, count);
    (void)k;
  }

  // Boundary processing for every lane in `mask`: one shared collection,
  // per-lane transitions and tracker maintenance.
  void AfterDropPhase(Round k, uint64_t mask);

  // Arrival-phase update for one (lane, color) run.
  void OnArrivals(uint32_t lane, Round k, ColorId c, uint64_t count) {
    DlruEdfPolicy& p = *lanes_[lane].policy;
    if (p.table_.OnArrivals(k, c, count)) {
      p.tracker_.Insert(c, p.table_.timestamp(c));
      eligible_bits_[c] |= uint64_t{1} << lane;
      tracker_dirty_ |= uint64_t{1} << lane;
    }
    // Keep the pending-wrap mirror in step (a wrap may occur without an
    // eligibility change; the load hits the State line OnArrivals just
    // touched).
    if (p.table_.pending_wrap(c) >= 0) {
      wrap_bits_[c] |= uint64_t{1} << lane;
    }
  }

  // Reconfiguration of mini-round (k, mini) for every lane in `mask`.
  // `views[lane]` is the lane's ResourceView.
  void Reconfigure(Round k, int mini, uint64_t mask,
                   ResourceView* const* views);

 private:
  struct LaneState {
    DlruEdfPolicy* policy = nullptr;
    // EDF budget (slots capacity - lru_capacity), cached at bind time so the
    // shared scan does not touch the policy object per admission.
    uint32_t edf_cap = 0;
    std::vector<ColorId> desired;  // memoized TopK(lru_capacity)
  };

  // Runs the scalar policy's full eviction/insertion sequence for one lane
  // (victims build + sort [+ shuffle], LRU then EDF insertions, ApplyTo),
  // keeping cached_bits_ in step with the slot mutations.
  void ApplySlow(uint32_t lane, LaneState& lane_state, ResourceView& view);

  uint32_t width_ = 0;
  // Engine-maintained per-color lane bitmask of nonzero pending counts: the
  // EDF scan's idleness test is one load instead of a strided walk over the
  // pending row.
  const uint64_t* backlog_ = nullptr;
  LaneState lanes_[kMaxLanes];

  // Per-lane memo flags as lane bitmasks, so a round in which a lane's
  // tracker did not mutate skips that lane without touching its LaneState
  // cache lines.
  uint64_t tracker_dirty_ = 0;    // tracker mutated since desired was memoized
  uint64_t desired_valid_ = 0;    // desired holds a memoized TopK
  uint64_t desired_changed_ = 0;  // this mini's TopK changed the desired set
  uint64_t random_evict_ = 0;     // params_.random_evict lanes (always slow)

  // Per-mini EDF admission lists, SoA across lanes: lane l's admissions are
  // ranked_colors_[l * num_colors .. l * num_colors + ranked_len_[l]).
  // Resetting all lanes is one 64-byte clear instead of 64 vector clears.
  std::vector<ColorId> ranked_colors_;
  uint32_t ranked_len_[kMaxLanes] = {};
  size_t ranked_stride_ = 0;

  // The slab's deadline table: dd = k - k mod D + D is set unconditionally
  // at boundary rounds, which depend only on the shared delay layout, so
  // every lane's dd_ would hold exactly these values. One store per boundary
  // color replaces 64; FlushDeadlines restores a lane's copy on demand.
  std::vector<Round> shared_dd_;

  // Per-color lane bitmask mirrors of per-lane policy state, maintained by
  // the kernel (it performs every mutation for fused lanes). AfterDropPhase
  // evaluates both boundary predicates as mask intersections, so lanes that
  // do not transition at a boundary cost nothing.
  std::vector<uint64_t> eligible_bits_;  // table_.eligible(c)
  std::vector<uint64_t> lru_bits_;       // is_lru_[c]
  std::vector<uint64_t> cached_bits_;    // slots_.IsCached(c)
  std::vector<uint64_t> wrap_bits_;      // table_.pending_wrap(c) >= 0

  // Shared per-round scratch.
  Round boundary_round_ = -1;
  std::vector<ColorId> boundary_colors_;
  Round class_order_round_ = -1;
  std::vector<std::pair<Round, uint32_t>> class_order_;
  std::vector<ColorId> topk_scratch_;
  std::vector<std::pair<ColorRankKey, ColorId>> victims_;
};

}  // namespace rrs
