#include "sched/greedy.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

void GreedyEdfPolicy::Reset(const Instance& instance,
                            const EngineOptions& options) {
  (void)options;
  instance_ = &instance;
  desired_flag_.assign(instance.num_colors(), 0);
  placed_flag_.assign(instance.num_colors(), 0);
}

void GreedyEdfPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t n = view.num_resources();

  // Rank nonidle colors by the earliest pending job deadline.
  const auto& nonidle = view.nonidle_colors();
  ranked_.clear();
  ranked_.reserve(nonidle.size());
  for (ColorId c : nonidle) {
    ranked_.emplace_back(ColorRankKey{0, view.earliest_deadline(c),
                                      instance_->delay_bound(c), c},
                         c);
  }
  if (ranked_.size() > n) {
    std::nth_element(ranked_.begin(), ranked_.begin() + n, ranked_.end());
    ranked_.resize(n);
  }
  std::sort(ranked_.begin(), ranked_.end());

  for (const auto& [key, c] : ranked_) desired_flag_[c] = 1;

  // Keep resources already serving a desired color (first resource per color
  // wins; duplicates are reassigned).
  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c != kNoColor && desired_flag_[c] && !placed_flag_[c]) {
      placed_flag_[c] = 1;
    }
  }
  // Assign missing desired colors to resources not holding a desired color.
  size_t next = 0;
  for (const auto& [key, c] : ranked_) {
    if (placed_flag_[c]) continue;
    while (next < n) {
      ColorId cur = view.color_of(next);
      bool keep = cur != kNoColor && desired_flag_[cur] && placed_flag_[cur] &&
                  cur != c;
      // A resource is reusable unless it is the designated keeper of another
      // desired color.
      if (!keep) break;
      ++next;
    }
    RRS_CHECK_LT(next, n);
    view.SetColor(static_cast<ResourceId>(next), c);
    placed_flag_[c] = 1;
    ++next;
  }

  for (const auto& [key, c] : ranked_) {
    desired_flag_[c] = 0;
    placed_flag_[c] = 0;
  }
}

void LazyGreedyPolicy::Reset(const Instance& instance,
                             const EngineOptions& options) {
  (void)options;
  instance_ = &instance;
  claimed_.assign(instance.num_colors(), 0);
}

void LazyGreedyPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  const uint32_t n = view.num_resources();
  const auto& nonidle = view.nonidle_colors();

  // Colors already being served keep their claim.
  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c != kNoColor && view.pending_count(c) > 0) claimed_[c] = 1;
  }

  for (ResourceId r = 0; r < n; ++r) {
    ColorId cur = view.color_of(r);
    if (cur != kNoColor && view.pending_count(cur) > 0) continue;  // busy
    // Idle resource: find the unclaimed nonidle color with the largest
    // (optionally drop-cost-weighted) backlog meeting the switch threshold.
    ColorId best = kNoColor;
    uint64_t best_score = 0;
    for (ColorId c : nonidle) {
      if (claimed_[c]) continue;
      uint64_t backlog = view.pending_count(c);
      if (backlog < switch_threshold_) continue;
      uint64_t score =
          weight_aware_ ? backlog * instance_->drop_cost(c) : backlog;
      if (score > best_score ||
          (score == best_score && best != kNoColor && c < best)) {
        best = c;
        best_score = score;
      }
    }
    if (best != kNoColor) {
      view.SetColor(r, best);
      claimed_[best] = 1;
    }
  }

  for (ResourceId r = 0; r < n; ++r) {
    ColorId c = view.color_of(r);
    if (c != kNoColor) claimed_[c] = 0;
  }
}

void StaticPartitionPolicy::Reset(const Instance& instance,
                                  const EngineOptions& options) {
  (void)options;
  instance_ = &instance;
  configured_ = false;
}

void StaticPartitionPolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  (void)k;
  (void)mini;
  if (configured_ || instance_->num_colors() == 0) return;
  for (ResourceId r = 0; r < view.num_resources(); ++r) {
    view.SetColor(r, static_cast<ColorId>(r % instance_->num_colors()));
  }
  configured_ = true;
}

}  // namespace rrs
