// Algorithm ΔLRU-EDF (Section 3.1.3) — the paper's main contribution.
//
// The cache holds P = n/2 distinct colors (each replicated in two of the n
// locations) split between two aspects:
//
//  - the ΔLRU side caches the n/4 eligible colors with the most recent
//    timestamps (recency aspect; keeps short-delay-bound colors resident
//    between their bursts, preventing thrashing);
//  - the EDF side ranks the remaining ("non-LRU") eligible colors — nonidle
//    first, then ascending color deadline, delay bound, color order — and
//    brings every nonidle top-n/4 color in, evicting the lowest-ranked
//    cached non-LRU color to make room (deadline aspect; keeps the resources
//    utilized).
//
// Theorem 1: ΔLRU-EDF is resource competitive for rate-limited
// [Δ | 1 | D_ℓ | D_ℓ] with power-of-two delay bounds.
//
// Exit policy ablation: when a color drops out of the LRU top set the paper
// leaves the subsequent treatment to the scheme's invariant maintenance; we
// implement two variants (experiment E10):
//   kDemote     - the color stays cached as an ordinary non-LRU color and is
//                 evicted by EDF rank when room is needed (default);
//   kEvictFirst - demoted colors become preferred eviction victims, i.e.
//                 they are ordered before all other candidates.
#pragma once

#include <cstdint>
#include <vector>

#include "container/lru_tracker.h"
#include "sched/batched_base.h"
#include "util/rng.h"

namespace rrs {

enum class LruExitPolicy { kDemote, kEvictFirst };

class DlruEdfPolicy : public BatchedSchedulerBase {
 public:
  struct Params {
    // Fraction of n used for the LRU side: lru_slots = n / lru_den.
    // The paper uses 4 (n/4 LRU + n/4 EDF out of n/2 primary slots).
    uint32_t lru_den = 4;
    LruExitPolicy exit_policy = LruExitPolicy::kDemote;
    // The paper replicates every cached color in two locations (P = n/2).
    // replicate = false is the E10 ablation: P = n distinct colors.
    bool replicate = true;
    // E10 ablation: evict a uniformly random cached non-LRU color instead of
    // the lowest-EDF-ranked one (tests how load-bearing the ranking is).
    bool random_evict = false;
    uint64_t random_evict_seed = 0x5eed;
  };

  DlruEdfPolicy() = default;
  explicit DlruEdfPolicy(Params params) : params_(params) {}

  std::string name() const override { return "dlru-edf"; }

  const Params& params() const { return params_; }

  void Reconfigure(Round k, int mini, ResourceView& view) override;

  // Lemma 3.2 / 3.4 instrumentation.
  uint64_t eligible_drop_cost() const { return table_.eligible_drops(); }
  uint64_t ineligible_drop_cost() const { return table_.ineligible_drops(); }
  uint64_t num_epochs() const { return table_.num_epochs(); }

  // Checkpoint/restore: shared batched state plus the LRU membership marks,
  // kEvictFirst demotion marks, random-evict RNG stream, and the tracker.
  void SaveState(snapshot::Writer& w) const override;
  void LoadState(snapshot::Reader& r) override;

 protected:
  uint32_t PrimarySlots(uint32_t n) const override {
    return params_.replicate ? n / 2 : n;
  }
  bool Replicate() const override { return params_.replicate; }

  void OnReset() override;
  void OnBecameEligible(Round k, ColorId c) override;
  void OnBecameIneligible(Round k, ColorId c) override;
  void OnTimestampUpdated(Round k, ColorId c) override;

 private:
  // The lane-fused fleet kernel (sched/lane_kernels.h) reimplements this
  // policy's phase processing non-virtually over slab lanes, sharing the
  // lane-invariant work; it needs the same access the member functions have.
  friend class DlruEdfLaneKernel;

  Params params_;
  uint32_t lru_capacity_ = 0;
  LruTracker tracker_{0};

  std::vector<uint8_t> is_lru_;          // color -> currently an LRU-color
  std::vector<uint8_t> evict_first_;     // kEvictFirst demotion mark
  std::vector<ColorId> lru_desired_;
  std::vector<uint8_t> in_lru_desired_;
  std::vector<std::pair<ColorRankKey, ColorId>> ranked_;
  std::vector<std::pair<ColorRankKey, ColorId>> victims_;
  // Colors grouped by delay bound (ascending colors within a class), plus a
  // per-round scratch of (class deadline, class index). Every color of a
  // class shares the same color deadline at any round, so the EDF scan walks
  // classes in (dd, D) order instead of ranking all eligible colors.
  // CSR layout (flat color array + offsets, both reused across Resets) so
  // rebuilding the classes for a new tenant allocates nothing once warm.
  std::vector<Round> class_delay_;       // sorted distinct D
  std::vector<ColorId> class_color_ids_; // colors sorted by (D, color)
  std::vector<uint32_t> class_begin_;    // class i owns [begin[i], begin[i+1])
  std::vector<std::pair<Round, uint32_t>> class_order_;
  Rng evict_rng_{0};
};

}  // namespace rrs
