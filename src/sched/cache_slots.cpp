#include "sched/cache_slots.h"

#include "util/check.h"

namespace rrs {

void CacheSlots::Reset(uint32_t primary_slots, size_t num_colors,
                       bool replicate) {
  RRS_CHECK_GE(primary_slots, 1u);
  capacity_ = primary_slots;
  size_ = 0;
  replicate_ = replicate;
  slots_.assign(primary_slots, kNoColor);
  slot_of_.assign(num_colors, kNoSlot);
  free_slots_.clear();
  for (uint32_t s = primary_slots; s-- > 0;) free_slots_.push_back(s);
  dirty_slots_.clear();
  dirty_flag_.assign(primary_slots, 0);
  cached_.clear();
  in_cached_list_.assign(num_colors, 0);
}

void CacheSlots::Insert(ColorId c) {
  RRS_CHECK_LT(c, slot_of_.size());
  RRS_CHECK(!IsCached(c)) << "color " << c << " already cached";
  RRS_CHECK(!full()) << "cache full";
  uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = c;
  slot_of_[c] = slot;
  ++size_;
  if (!dirty_flag_[slot]) {
    dirty_flag_[slot] = 1;
    dirty_slots_.push_back(slot);
  }
  in_cached_list_[c] = 1;
  cached_.push_back(c);
}

void CacheSlots::Evict(ColorId c) {
  RRS_CHECK(IsCached(c)) << "color " << c << " not cached";
  uint32_t slot = slot_of_[c];
  slots_[slot] = kNoColor;
  slot_of_[c] = kNoSlot;
  free_slots_.push_back(slot);
  --size_;
  if (!dirty_flag_[slot]) {
    dirty_flag_[slot] = 1;
    dirty_slots_.push_back(slot);
  }
  in_cached_list_[c] = 0;
  // Lazy removal from cached_: compact now (eviction is rare relative to
  // queries, and the list is at most `capacity_ + evictions-this-phase` long).
  size_t out = 0;
  for (size_t i = 0; i < cached_.size(); ++i) {
    if (in_cached_list_[cached_[i]]) cached_[out++] = cached_[i];
  }
  cached_.resize(out);
}

void CacheSlots::ApplyTo(ResourceView& view) {
  for (uint32_t slot : dirty_slots_) {
    dirty_flag_[slot] = 0;
    ColorId c = slots_[slot];
    RRS_CHECK(c != kNoColor)
        << "slot " << slot
        << " vacated without refill; the paper's schemes only evict to make room";
    view.SetColor(slot, c);
    if (replicate_) view.SetColor(capacity_ + slot, c);
  }
  dirty_slots_.clear();
}

void CacheSlots::SaveState(snapshot::Writer& w) const {
  RRS_CHECK(dirty_slots_.empty())
      << "CacheSlots snapshot mid-phase (unapplied slot changes)";
  w.BeginSection(snapshot::kTagCacheSlots);
  w.PutU32(capacity_);
  w.PutU32(size_);
  w.PutBool(replicate_);
  w.PutVec(slots_);
  w.PutVec(slot_of_);
  w.PutVec(free_slots_);
  w.PutVec(cached_);
  w.PutVec(in_cached_list_);
  w.EndSection();
}

void CacheSlots::LoadState(snapshot::Reader& r) {
  RRS_CHECK(dirty_slots_.empty());
  r.BeginSection(snapshot::kTagCacheSlots);
  const uint32_t capacity = r.GetU32();
  RRS_CHECK_EQ(capacity, capacity_)
      << "CacheSlots restored into a different slot count";
  size_ = r.GetU32();
  replicate_ = r.GetBool();
  r.GetVec(slots_);
  r.GetVec(slot_of_);
  r.GetVec(free_slots_);
  r.GetVec(cached_);
  r.GetVec(in_cached_list_);
  r.EndSection();
  RRS_CHECK_EQ(slot_of_.size(), in_cached_list_.size());
  RRS_CHECK(CheckInvariants());
}

bool CacheSlots::CheckInvariants() const {
  uint32_t occupied = 0;
  for (uint32_t s = 0; s < capacity_; ++s) {
    ColorId c = slots_[s];
    if (c != kNoColor) {
      ++occupied;
      if (slot_of_[c] != s) return false;
    }
  }
  if (occupied != size_) return false;
  if (free_slots_.size() + occupied != capacity_) return false;
  size_t listed = 0;
  for (ColorId c : cached_) {
    if (!in_cached_list_[c] || slot_of_[c] == kNoSlot) return false;
    ++listed;
  }
  return listed == size_;
}

}  // namespace rrs
