// Shared plumbing for the Section 3.1 schedulers (ΔLRU, EDF, ΔLRU-EDF):
// wires the ColorStateTable into the engine's phase hooks and owns the
// CacheSlots. Subclasses implement the reconfiguration scheme only.
//
// These schedulers are defined for the rate-limited batched problem
// [Δ | 1 | D_ℓ | D_ℓ]; running them on unbatched inputs is allowed by the
// engine (the bookkeeping is still well-defined) but the paper's guarantees
// only apply through the reductions of Sections 4-5.
#pragma once

#include <cstdint>
#include <string>

#include "core/policy.h"
#include "sched/cache_slots.h"
#include "sched/color_state.h"
#include "sched/ranking.h"

namespace rrs {

class BatchedSchedulerBase : public SchedulerPolicy {
 public:
  // primary_fraction_den: the cache uses n/primary_fraction_den primary
  // slots... see subclasses; here we just take the resolved slot count.
  void Reset(const Instance& instance, const EngineOptions& options) override;

  void OnJobsDropped(Round k, ColorId c, uint64_t count,
                     std::span<const JobId> jobs) final;
  void AfterDropPhase(Round k) final;
  void OnArrivals(Round k, ColorId c, uint64_t count) final;

  // Exports the ColorStateTable analysis counters (Lemmas 3.2-3.4).
  void ExportMetrics(obs::Registry& registry) const override;

  // Checkpoint/restore of the shared state (color table, cache slots,
  // collected ineligible-job ids). Stateful subclasses extend these, calling
  // the base first so sections stream in save order.
  void SaveState(snapshot::Writer& w) const override;
  void LoadState(snapshot::Reader& r) override;

  const ColorStateTable& color_state() const { return table_; }
  const CacheSlots& cache() const { return slots_; }

  // When enabled before a run, the ids of jobs dropped while their color was
  // ineligible are collected; the complement of this set is the paper's
  // "eligible job" subsequence α (Section 3.2), used by experiment E7 and the
  // Lemma 3.2 tests.
  void set_collect_ineligible_jobs(bool enabled) {
    collect_ineligible_jobs_ = enabled;
  }
  bool collect_ineligible_jobs() const { return collect_ineligible_jobs_; }
  const std::vector<JobId>& ineligible_job_ids() const {
    return ineligible_job_ids_;
  }

 protected:
  // Number of primary (distinct-color) slots for n resources; replication
  // mirrors them. Subclasses define the split.
  virtual uint32_t PrimarySlots(uint32_t n) const = 0;
  virtual bool Replicate() const { return true; }

  // Subclass hooks fired by the shared phase processing. The round is the
  // one whose drop/arrival phase triggered the event.
  virtual void OnReset() {}
  virtual void OnBecameEligible(Round k, ColorId c) {
    (void)k;
    (void)c;
  }
  virtual void OnBecameIneligible(Round k, ColorId c) {
    (void)k;
    (void)c;
  }
  virtual void OnTimestampUpdated(Round k, ColorId c) {
    (void)k;
    (void)c;
  }

  // Builds the EDF rank key for color c (idleness from the view).
  ColorRankKey RankOf(ColorId c, const ResourceView& view) const {
    return ColorRankKey{view.pending_count(c) == 0 ? uint8_t{1} : uint8_t{0},
                        table_.deadline(c), instance_->delay_bound(c), c};
  }

  const Instance* instance_ = nullptr;
  ColorStateTable table_;
  CacheSlots slots_;

 private:
  ColorStateTable::BoundaryEvents events_;
  bool collect_ineligible_jobs_ = false;
  std::vector<JobId> ineligible_job_ids_;
};

}  // namespace rrs
