// Generic parameter-sweep harness: runs a grid of (n, Δ, seed) configurations
// in parallel on the shared thread pool and aggregates per-(n, Δ) cost
// statistics over seeds into a Table. Used by the capacity-planner example
// and by downstream users sizing a deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "util/table.h"

namespace rrs {

namespace obs {
class Scope;
}  // namespace obs

namespace analysis {

struct SweepConfig {
  std::vector<uint32_t> ns = {4, 8, 16};
  std::vector<uint64_t> deltas = {4};
  std::vector<uint64_t> seeds = {1, 2, 3};
  // When true, run the guaranteed Theorem-3 pipeline; otherwise run the bare
  // ΔLRU-EDF policy directly on the instance.
  bool use_pipeline = true;
  // Optional observability scope shared by every run in the sweep: engines
  // aggregate per-phase histograms into it, and if it carries a Tracer the
  // sweep tasks appear as spans on per-worker-thread tracks.
  obs::Scope* scope = nullptr;
};

// Builds the workload for a given seed; called once per seed (instances are
// shared across the (n, delta) grid for that seed).
using InstanceFactory = std::function<Instance(uint64_t seed)>;

struct SweepCell {
  uint32_t n = 0;
  uint64_t delta = 0;
  size_t seeds = 0;
  double mean_total = 0;
  double ci95_total = 0;
  double mean_reconfigs = 0;
  double mean_drops = 0;
  double mean_drop_rate = 0;  // drops / arrivals
};

// Raw results, one cell per (n, delta), ordered by (n, delta).
std::vector<SweepCell> RunCostSweep(const InstanceFactory& factory,
                                    const SweepConfig& config);

// Table rendering of RunCostSweep.
Table CostSweepTable(const InstanceFactory& factory, const SweepConfig& config);

}  // namespace analysis
}  // namespace rrs
