#include "analysis/sweep.h"

#include "core/engine.h"
#include "fleet/fleet_runner.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "util/stats.h"

namespace rrs {
namespace analysis {

std::vector<SweepCell> RunCostSweep(const InstanceFactory& factory,
                                    const SweepConfig& config) {
  RRS_CHECK(!config.ns.empty());
  RRS_CHECK(!config.deltas.empty());
  RRS_CHECK(!config.seeds.empty());

  // Sweep tasks trace onto per-worker-thread tracks (single-writer rings);
  // null when the scope has no tracer.
  obs::Tracer* tracer =
      config.scope != nullptr ? config.scope->tracer() : nullptr;

  // Generate one instance per seed up front (shared across the grid).
  std::vector<Instance> instances(config.seeds.size());
  ParallelFor(GlobalThreadPool(), 0,
              static_cast<int64_t>(config.seeds.size()), [&](int64_t i) {
                obs::Span span(tracer,
                               tracer != nullptr ? tracer->ThreadTrack()
                                                 : nullptr,
                               "sweep.generate", static_cast<uint64_t>(i));
                instances[static_cast<size_t>(i)] =
                    factory(config.seeds[static_cast<size_t>(i)]);
              });

  struct CellKey {
    uint32_t n;
    uint64_t delta;
  };
  std::vector<CellKey> grid;
  for (uint32_t n : config.ns) {
    for (uint64_t delta : config.deltas) grid.push_back({n, delta});
  }

  // One FleetJob per (cell, seed), executed through pooled fleet sessions:
  // worker threads reuse warm engine/policy/pipeline arenas across cells
  // instead of constructing them per run.
  std::vector<fleet::FleetJob> jobs;
  jobs.reserve(grid.size() * config.seeds.size());
  for (size_t cell = 0; cell < grid.size(); ++cell) {
    for (size_t seed_idx = 0; seed_idx < config.seeds.size(); ++seed_idx) {
      fleet::FleetJob job;
      job.instance = &instances[seed_idx];
      job.options.num_resources = grid[cell].n;
      job.options.cost_model.delta = grid[cell].delta;
      job.options.obs_scope = config.scope;
      job.kind = config.use_pipeline ? fleet::FleetJob::Kind::kPipeline
                                     : fleet::FleetJob::Kind::kReplay;
      jobs.push_back(job);
    }
  }

  fleet::FleetOptions fleet_options;
  fleet_options.pool = &GlobalThreadPool();
  fleet_options.scope = config.scope;
  fleet_options.trace_label = "sweep.run";  // historical sweep span name
  fleet::FleetRunner runner(std::move(fleet_options));
  std::vector<RunResult> results = runner.RunAll(jobs);

  std::vector<SweepCell> cells;
  cells.reserve(grid.size());
  for (size_t cell = 0; cell < grid.size(); ++cell) {
    RunningStats total_stats, reconfig_stats, drop_stats, rate_stats;
    for (size_t s = 0; s < config.seeds.size(); ++s) {
      const RunResult& out = results[cell * config.seeds.size() + s];
      CostModel cost_model;
      cost_model.delta = grid[cell].delta;
      total_stats.Add(static_cast<double>(out.total_cost(cost_model)));
      reconfig_stats.Add(static_cast<double>(out.cost.reconfigurations));
      drop_stats.Add(static_cast<double>(out.cost.drops));
      rate_stats.Add(out.arrived == 0
                         ? 0.0
                         : static_cast<double>(out.cost.drops) /
                               static_cast<double>(out.arrived));
    }
    SweepCell summary;
    summary.n = grid[cell].n;
    summary.delta = grid[cell].delta;
    summary.seeds = config.seeds.size();
    summary.mean_total = total_stats.mean();
    summary.ci95_total = total_stats.ci95_halfwidth();
    summary.mean_reconfigs = reconfig_stats.mean();
    summary.mean_drops = drop_stats.mean();
    summary.mean_drop_rate = rate_stats.mean();
    cells.push_back(summary);
  }
  return cells;
}

Table CostSweepTable(const InstanceFactory& factory,
                     const SweepConfig& config) {
  Table table({"n", "delta", "seeds", "mean_total", "ci95", "mean_reconfigs",
               "mean_drops", "drop_rate"});
  for (const SweepCell& cell : RunCostSweep(factory, config)) {
    table.AddRow()
        .Cell(static_cast<uint64_t>(cell.n))
        .Cell(cell.delta)
        .Cell(static_cast<uint64_t>(cell.seeds))
        .Cell(cell.mean_total, 1)
        .Cell(cell.ci95_total, 1)
        .Cell(cell.mean_reconfigs, 1)
        .Cell(cell.mean_drops, 1)
        .Cell(cell.mean_drop_rate, 4);
  }
  return table;
}

}  // namespace analysis
}  // namespace rrs
