#include "analysis/sweep.h"

#include <atomic>

#include "core/engine.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "reduce/pipeline.h"
#include "sched/dlru_edf.h"
#include "util/check.h"
#include "util/stats.h"

namespace rrs {
namespace analysis {

std::vector<SweepCell> RunCostSweep(const InstanceFactory& factory,
                                    const SweepConfig& config) {
  RRS_CHECK(!config.ns.empty());
  RRS_CHECK(!config.deltas.empty());
  RRS_CHECK(!config.seeds.empty());

  // Sweep tasks trace onto per-worker-thread tracks (single-writer rings);
  // null when the scope has no tracer.
  obs::Tracer* tracer =
      config.scope != nullptr ? config.scope->tracer() : nullptr;

  // Generate one instance per seed up front (shared across the grid).
  std::vector<Instance> instances(config.seeds.size());
  ParallelFor(GlobalThreadPool(), 0,
              static_cast<int64_t>(config.seeds.size()), [&](int64_t i) {
                obs::Span span(tracer,
                               tracer != nullptr ? tracer->ThreadTrack()
                                                 : nullptr,
                               "sweep.generate", static_cast<uint64_t>(i));
                instances[static_cast<size_t>(i)] =
                    factory(config.seeds[static_cast<size_t>(i)]);
              });

  struct CellKey {
    uint32_t n;
    uint64_t delta;
  };
  std::vector<CellKey> grid;
  for (uint32_t n : config.ns) {
    for (uint64_t delta : config.deltas) grid.push_back({n, delta});
  }

  // One task per (cell, seed); results gathered into per-cell stats after.
  struct RunOutcome {
    uint64_t total = 0;
    uint64_t reconfigs = 0;
    uint64_t drops = 0;
    uint64_t arrived = 0;
  };
  std::vector<RunOutcome> outcomes(grid.size() * config.seeds.size());

  ParallelFor(
      GlobalThreadPool(), 0, static_cast<int64_t>(outcomes.size()),
      [&](int64_t flat) {
        const size_t cell = static_cast<size_t>(flat) / config.seeds.size();
        const size_t seed_idx =
            static_cast<size_t>(flat) % config.seeds.size();
        const Instance& instance = instances[seed_idx];

        obs::Span span(tracer,
                       tracer != nullptr ? tracer->ThreadTrack() : nullptr,
                       "sweep.run", static_cast<uint64_t>(flat));

        EngineOptions options;
        options.num_resources = grid[cell].n;
        options.cost_model.delta = grid[cell].delta;
        options.obs_scope = config.scope;

        RunOutcome out;
        out.arrived = instance.num_jobs();
        if (config.use_pipeline) {
          auto result = reduce::SolveOnline(instance, options);
          out.total = result.cost().total(options.cost_model);
          out.reconfigs = result.cost().reconfigurations;
          out.drops = result.cost().drops;
        } else {
          DlruEdfPolicy policy;
          RunResult result = RunPolicy(instance, policy, options);
          out.total = result.total_cost(options.cost_model);
          out.reconfigs = result.cost.reconfigurations;
          out.drops = result.cost.drops;
        }
        outcomes[static_cast<size_t>(flat)] = out;
      });

  std::vector<SweepCell> cells;
  cells.reserve(grid.size());
  for (size_t cell = 0; cell < grid.size(); ++cell) {
    RunningStats total_stats, reconfig_stats, drop_stats, rate_stats;
    for (size_t s = 0; s < config.seeds.size(); ++s) {
      const RunOutcome& out = outcomes[cell * config.seeds.size() + s];
      total_stats.Add(static_cast<double>(out.total));
      reconfig_stats.Add(static_cast<double>(out.reconfigs));
      drop_stats.Add(static_cast<double>(out.drops));
      rate_stats.Add(out.arrived == 0
                         ? 0.0
                         : static_cast<double>(out.drops) /
                               static_cast<double>(out.arrived));
    }
    SweepCell summary;
    summary.n = grid[cell].n;
    summary.delta = grid[cell].delta;
    summary.seeds = config.seeds.size();
    summary.mean_total = total_stats.mean();
    summary.ci95_total = total_stats.ci95_halfwidth();
    summary.mean_reconfigs = reconfig_stats.mean();
    summary.mean_drops = drop_stats.mean();
    summary.mean_drop_rate = rate_stats.mean();
    cells.push_back(summary);
  }
  return cells;
}

Table CostSweepTable(const InstanceFactory& factory,
                     const SweepConfig& config) {
  Table table({"n", "delta", "seeds", "mean_total", "ci95", "mean_reconfigs",
               "mean_drops", "drop_rate"});
  for (const SweepCell& cell : RunCostSweep(factory, config)) {
    table.AddRow()
        .Cell(static_cast<uint64_t>(cell.n))
        .Cell(cell.delta)
        .Cell(static_cast<uint64_t>(cell.seeds))
        .Cell(cell.mean_total, 1)
        .Cell(cell.ci95_total, 1)
        .Cell(cell.mean_reconfigs, 1)
        .Cell(cell.mean_drops, 1)
        .Cell(cell.mean_drop_rate, 4);
  }
  return table;
}

}  // namespace analysis
}  // namespace rrs
