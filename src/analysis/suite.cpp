#include "analysis/suite.h"

#include "analysis/experiments.h"

namespace rrs {
namespace analysis {

std::vector<ExperimentSpec> ExperimentSuite() {
  std::vector<ExperimentSpec> suite;
  suite.push_back(
      {"E1", "Appendix A adversary vs dlru",
       "dlru's ratio grows as Omega(2^{j+1}/(n*delta)): not constant "
       "competitive at any constant resource advantage",
       [] { return RunE1DlruAdversary({}); }});
  suite.push_back(
      {"E2", "Appendix B adversary vs edf",
       "edf's ratio grows as 2^{k-j-1}/(n/2+1) via reconfiguration thrashing",
       [] { return RunE2EdfAdversary({}); }});
  suite.push_back(
      {"E3", "dlru-edf vs exact offline optimum",
       "Theorem 1: the exact competitive ratio stays bounded as inputs grow",
       [] { return RunE3CompetitiveSmall({}); }});
  suite.push_back(
      {"E4", "resource augmentation sweep",
       "the cost ratio flattens to a constant as n/m grows",
       [] { return RunE4Augmentation({}); }});
  suite.push_back(
      {"E5", "reduction overhead",
       "Theorems 2-3: the reductions cost a constant factor over direct "
       "dlru-edf across workload families",
       [] { return RunE5Reductions({}); }});
  suite.push_back(
      {"E6", "intro scenario: thrash vs underutilize",
       "pure greedy policies are reconfiguration- or drop-dominated; "
       "dlru-edf pays neither disproportionately",
       [] { return RunE6IntroScenario({}); }});
  suite.push_back(
      {"E7", "Lemma 3.2 drop chain",
       "EligibleDrop(dlru-edf) <= Drop(DS-Seq-EDF on the eligible "
       "subsequence); zero violations",
       [] { return RunE7DropChain({}); }});
  suite.push_back(
      {"E8", "Lemmas 3.3/3.4 epoch bounds",
       "ReconfigCost <= 4*numEpochs*delta and IneligibleDrop <= "
       "numEpochs*delta at every delta",
       [] { return RunE8EpochBounds({}); }});
  suite.push_back(
      {"E10", "dlru-edf ablations",
       "the paper's n/4+n/4 replicated split vs splits, exit policies, "
       "replication, and random eviction",
       [] { return RunE10Ablations({}); }});
  suite.push_back(
      {"E13", "variable drop costs (extension)",
       "weight-aware scheduling protects the premium service under "
       "contention",
       [] { return RunE13WeightedDrops({}); }});
  suite.push_back(
      {"E14", "the value of lookahead",
       "cost falls with the lookahead window with diminishing returns",
       [] { return RunE14Lookahead({}); }});
  suite.push_back(
      {"E15", "Theorem 3's proof chain, executed",
       "OPT -> Punctualize -> Aggregate stays within a small constant of "
       "OPT; the online pipeline's ratio is constant alongside it",
       [] { return RunE15ProofPipeline({}); }});
  return suite;
}

}  // namespace analysis
}  // namespace rrs
