// Experiments E1, E2, E6: the adversarial constructions of Appendices A/B
// and the introduction's thrash-vs-underutilize scenario.
#include <cmath>

#include "analysis/experiments.h"
#include "analysis/runner.h"
#include "core/engine.h"
#include "reduce/pipeline.h"
#include "sched/dlru.h"
#include "sched/edf.h"
#include "sched/greedy.h"
#include "util/check.h"
#include "workload/adversary.h"

namespace rrs {
namespace analysis {

Table RunE1DlruAdversary(const E1Params& params) {
  Table table({"j", "k", "dlru_reconfigs", "dlru_drops", "dlru_cost",
               "off_cost", "ratio", "paper_pred_2^{j+1}/(n*delta)"});
  const CostModel model{params.delta};
  for (int j = params.j_min; j <= params.j_max; ++j) {
    const int k = j + params.k_offset;
    auto adv = workload::MakeDlruAdversary(params.n, params.delta, j, k);

    DlruPolicy dlru;
    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;
    RunResult online = RunPolicy(adv.instance, dlru, options);

    Schedule off = workload::MakeDlruAdversaryOffSchedule(adv);
    ValidationResult off_check = off.Validate(adv.instance);
    RRS_CHECK(off_check.ok) << "Appendix A OFF schedule invalid: "
                            << off_check.error;

    const uint64_t online_cost = online.total_cost(model);
    const uint64_t off_cost = off_check.cost.total(model);
    const double predicted =
        std::ldexp(1.0, j + 1) /
        static_cast<double>(params.n * params.delta);
    table.AddRow()
        .Cell(static_cast<int64_t>(j))
        .Cell(static_cast<int64_t>(k))
        .Cell(online.cost.reconfigurations)
        .Cell(online.cost.drops)
        .Cell(online_cost)
        .Cell(off_cost)
        .Cell(static_cast<double>(online_cost) /
                  static_cast<double>(off_cost),
              3)
        .Cell(predicted, 3);
  }
  return table;
}

Table RunE2EdfAdversary(const E2Params& params) {
  Table table({"j", "k", "edf_reconfigs", "edf_drops", "edf_cost", "off_cost",
               "ratio", "paper_pred_2^{k-j-1}/(n/2+1)"});
  const CostModel model{params.delta};
  for (int k = params.k_min; k <= params.k_max; ++k) {
    auto adv = workload::MakeEdfAdversary(params.n, params.delta, params.j, k);

    EdfPolicy edf(/*replicate=*/true);
    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;
    RunResult online = RunPolicy(adv.instance, edf, options);

    Schedule off = workload::MakeEdfAdversaryOffSchedule(adv);
    ValidationResult off_check = off.Validate(adv.instance);
    RRS_CHECK(off_check.ok) << "Appendix B OFF schedule invalid: "
                            << off_check.error;
    RRS_CHECK_EQ(off_check.cost.drops, 0u)
        << "Appendix B OFF schedule must execute every job";

    const uint64_t online_cost = online.total_cost(model);
    const uint64_t off_cost = off_check.cost.total(model);
    const double predicted =
        std::ldexp(1.0, k - params.j - 1) /
        (static_cast<double>(params.n) / 2.0 + 1.0);
    table.AddRow()
        .Cell(static_cast<int64_t>(params.j))
        .Cell(static_cast<int64_t>(k))
        .Cell(online.cost.reconfigurations)
        .Cell(online.cost.drops)
        .Cell(online_cost)
        .Cell(off_cost)
        .Cell(static_cast<double>(online_cost) /
                  static_cast<double>(off_cost),
              3)
        .Cell(predicted, 3);
  }
  return table;
}

Table RunE6IntroScenario(const E6Params& params) {
  Table table({"gap_blocks", "policy", "reconfigs", "drops", "total_cost",
               "reconfig_cost_share"});
  const CostModel model{params.delta};
  for (Round gap : params.gap_blocks) {
    workload::IntroScenarioOptions scenario;
    scenario.gap_blocks = gap;
    scenario.seed = params.seed;
    Instance instance = workload::MakeIntroScenario(scenario);

    auto add_row = [&](const std::string& policy_name, const CostBreakdown& c) {
      const uint64_t total = c.total(model);
      const double share =
          total == 0 ? 0.0
                     : static_cast<double>(c.reconfig_cost(model)) /
                           static_cast<double>(total);
      table.AddRow()
          .Cell(static_cast<int64_t>(gap))
          .Cell(policy_name)
          .Cell(c.reconfigurations)
          .Cell(c.drops)
          .Cell(total)
          .Cell(share, 3);
    };

    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;

    GreedyEdfPolicy greedy;
    add_row(greedy.name(), RunPolicy(instance, greedy, options).cost);

    LazyGreedyPolicy eager(1);
    add_row("lazy-greedy(1)", RunPolicy(instance, eager, options).cost);

    LazyGreedyPolicy patient(params.delta * 4);
    add_row("lazy-greedy(4*delta)",
            RunPolicy(instance, patient, options).cost);

    auto pipeline = reduce::SolveOnline(instance, options);
    add_row("dlru-edf(pipeline)", pipeline.cost());
  }
  return table;
}

}  // namespace analysis
}  // namespace rrs
