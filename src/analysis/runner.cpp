#include "analysis/runner.h"

#include <chrono>

namespace rrs {
namespace analysis {

PolicyReport RunAndReport(const Instance& instance, SchedulerPolicy& policy,
                          const EngineOptions& options) {
  // One pooled session per harness thread: Reset rebinds it to the new
  // instance in place, so back-to-back reports reuse the engine arena.
  thread_local Engine engine;

  auto start = std::chrono::steady_clock::now();
  engine.Reset(instance, options);
  RunResult result = engine.Run(policy);
  auto end = std::chrono::steady_clock::now();

  PolicyReport report;
  report.policy = policy.name();
  report.cost = result.cost;
  report.total_cost = result.total_cost(options.cost_model);
  report.executed = result.executed;
  report.arrived = result.arrived;
  report.rounds = result.rounds_simulated;
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  report.telemetry = std::move(result.telemetry);
  return report;
}

}  // namespace analysis
}  // namespace rrs
