#include "analysis/runner.h"

#include <chrono>

namespace rrs {
namespace analysis {

PolicyReport RunAndReport(const Instance& instance, SchedulerPolicy& policy,
                          const EngineOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RunResult result = RunPolicy(instance, policy, options);
  auto end = std::chrono::steady_clock::now();

  PolicyReport report;
  report.policy = policy.name();
  report.cost = result.cost;
  report.total_cost = result.total_cost(options.cost_model);
  report.executed = result.executed;
  report.arrived = result.arrived;
  report.rounds = result.rounds_simulated;
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  report.counters = std::move(result.policy_counters);
  report.telemetry = std::move(result.telemetry);
  return report;
}

}  // namespace analysis
}  // namespace rrs
