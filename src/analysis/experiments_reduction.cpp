// Experiments E5, E8, E10: reduction overhead, epoch bounds, ablations.
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "core/engine.h"
#include "offline/lower_bound.h"
#include "reduce/pipeline.h"
#include "sched/dlru_edf.h"
#include "sched/greedy.h"
#include "sched/lookahead.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace analysis {

namespace {

struct NamedInstance {
  std::string name;
  Instance instance;
};

std::vector<NamedInstance> WorkloadFamilies(Round rounds, uint64_t seed) {
  std::vector<NamedInstance> out;

  std::vector<workload::ColorSpec> specs = {
      {2, 0.8}, {4, 0.8}, {8, 0.5}, {16, 0.5}, {32, 0.3}, {64, 0.3}};

  workload::PoissonOptions poisson;
  poisson.rounds = rounds;
  poisson.seed = seed;
  out.push_back({"poisson", MakePoisson(specs, poisson)});

  workload::BurstyOptions bursty;
  bursty.rounds = rounds;
  bursty.seed = seed + 1;
  bursty.p_off_to_on = 0.02;
  bursty.p_on_to_off = 0.1;
  out.push_back({"bursty", MakeBursty(specs, bursty)});

  workload::ZipfOptions zipf;
  zipf.rounds = rounds;
  zipf.seed = seed + 2;
  zipf.num_colors = 10;
  zipf.jobs_per_round = 5.0;
  out.push_back({"zipf", MakeZipf(zipf)});

  workload::RouterOptions router;
  router.rounds = rounds;
  router.seed = seed + 3;
  out.push_back({"router", MakeRouterScenario(
                               workload::DefaultRouterServices(), router)});

  workload::DatacenterOptions dc;
  dc.rounds = rounds;
  dc.seed = seed + 4;
  out.push_back({"datacenter", MakeDatacenterScenario(dc)});

  return out;
}

}  // namespace

Table RunE5Reductions(const E5Params& params) {
  Table table({"workload", "jobs", "direct_cost", "pipeline_cost",
               "opt_lower_bound", "pipeline/direct", "pipeline/lb"});
  const CostModel model{params.delta};

  for (const auto& [name, instance] : WorkloadFamilies(params.rounds,
                                                       params.seed)) {
    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;

    // Direct ΔLRU-EDF run on the raw (unbatched) instance: legal in the
    // engine, but outside the paper's guarantee. It anchors the overhead the
    // reductions pay for their guarantee.
    DlruEdfPolicy direct;
    RunResult direct_run = RunPolicy(instance, direct, options);
    const uint64_t direct_cost = direct_run.total_cost(model);

    auto pipeline = reduce::SolveOnline(instance, options);
    const uint64_t pipeline_cost = pipeline.cost().total(model);

    const uint64_t lb = offline::LowerBound(instance, params.m, model);

    table.AddRow()
        .Cell(name)
        .Cell(static_cast<uint64_t>(instance.num_jobs()))
        .Cell(direct_cost)
        .Cell(pipeline_cost)
        .Cell(lb)
        .Cell(direct_cost == 0
                  ? 0.0
                  : static_cast<double>(pipeline_cost) /
                        static_cast<double>(direct_cost),
              3)
        .Cell(lb == 0 ? 0.0
                      : static_cast<double>(pipeline_cost) /
                            static_cast<double>(lb),
              3);
  }
  return table;
}

Table RunE8EpochBounds(const E8Params& params) {
  Table table({"delta", "reconfig_cost", "epoch_bound_4*E*delta",
               "reconfig_slack", "ineligible_drops", "epoch_bound_E*delta",
               "ineligible_slack", "num_epochs"});

  std::vector<workload::ColorSpec> specs = {
      {1, 0.6}, {2, 0.6}, {4, 0.6}, {4, 0.6},
      {8, 0.4}, {8, 0.4}, {16, 0.3}, {32, 0.3}};
  workload::BurstyOptions gen;
  gen.rounds = params.rounds;
  gen.rate_limited = true;
  gen.p_off_to_on = 0.05;
  gen.p_on_to_off = 0.1;
  gen.seed = params.seed;
  Instance instance = MakeBursty(specs, gen);

  for (uint64_t delta : params.deltas) {
    const CostModel model{delta};
    DlruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;
    RunResult run = RunPolicy(instance, policy, options);

    const uint64_t epochs = policy.num_epochs();
    const uint64_t reconfig_cost = run.cost.reconfig_cost(model);
    const uint64_t reconfig_bound = 4 * epochs * delta;   // Lemma 3.3
    const uint64_t ineligible = policy.ineligible_drop_cost();
    const uint64_t ineligible_bound = epochs * delta;     // Lemma 3.4

    RRS_CHECK_LE(reconfig_cost, reconfig_bound)
        << "Lemma 3.3 bound violated at delta=" << delta;
    RRS_CHECK_LE(ineligible, ineligible_bound)
        << "Lemma 3.4 bound violated at delta=" << delta;

    table.AddRow()
        .Cell(delta)
        .Cell(reconfig_cost)
        .Cell(reconfig_bound)
        .Cell(reconfig_cost == 0
                  ? 0.0
                  : static_cast<double>(reconfig_bound) /
                        static_cast<double>(reconfig_cost),
              2)
        .Cell(ineligible)
        .Cell(ineligible_bound)
        .Cell(ineligible == 0 ? 0.0
                              : static_cast<double>(ineligible_bound) /
                                    static_cast<double>(ineligible),
              2)
        .Cell(epochs);
  }
  return table;
}

Table RunE10Ablations(const E10Params& params) {
  Table table({"variant", "workload", "reconfigs", "drops", "total_cost"});
  const CostModel model{params.delta};

  struct Variant {
    std::string name;
    DlruEdfPolicy::Params params;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper(n/4+n/4,demote,repl)", {}});
  {
    DlruEdfPolicy::Params p;
    p.lru_den = 3;
    variants.push_back({"lru=n/3", p});
  }
  {
    DlruEdfPolicy::Params p;
    p.lru_den = 8;
    variants.push_back({"lru=n/8", p});
  }
  {
    DlruEdfPolicy::Params p;
    p.exit_policy = LruExitPolicy::kEvictFirst;
    variants.push_back({"evict-first", p});
  }
  {
    DlruEdfPolicy::Params p;
    p.replicate = false;
    variants.push_back({"no-replication", p});
  }
  {
    DlruEdfPolicy::Params p;
    p.random_evict = true;
    variants.push_back({"random-evict", p});
  }

  std::vector<workload::ColorSpec> specs = {
      {2, 0.8}, {4, 0.8}, {8, 0.5}, {8, 0.5}, {16, 0.5}, {32, 0.3}};
  workload::BurstyOptions bursty;
  bursty.rounds = params.rounds;
  bursty.seed = params.seed;
  bursty.p_off_to_on = 0.02;
  bursty.p_on_to_off = 0.1;
  workload::RouterOptions router;
  router.rounds = params.rounds;
  router.seed = params.seed + 1;

  std::vector<std::pair<std::string, Instance>> workloads;
  workloads.emplace_back("bursty", MakeBursty(specs, bursty));
  workloads.emplace_back(
      "router",
      MakeRouterScenario(workload::DefaultRouterServices(), router));

  for (const Variant& variant : variants) {
    for (const auto& [wname, instance] : workloads) {
      EngineOptions options;
      options.num_resources = params.n;
      options.cost_model = model;
      auto pipeline = reduce::SolveOnline(instance, options, variant.params);
      table.AddRow()
          .Cell(variant.name)
          .Cell(wname)
          .Cell(pipeline.cost().reconfigurations)
          .Cell(pipeline.cost().drops)
          .Cell(pipeline.cost().total(model));
    }
  }
  return table;
}

Table RunE13WeightedDrops(const E13Params& params) {
  Table table({"policy", "reconfigs", "drop_count", "weighted_drop_cost",
               "premium_drops", "total_cost"});
  const CostModel model{params.delta};

  // Premium voice-like service (tight deadline, expensive drops) sharing an
  // undersized pool with more best-effort services than resources, so every
  // policy must choose whom to starve.
  InstanceBuilder builder;
  Rng rng(params.seed);
  ColorId premium = builder.AddColor(2, "premium", params.premium_weight);
  std::vector<ColorId> best_effort;
  for (int s = 0; s < 6; ++s) {
    best_effort.push_back(
        builder.AddColor(8 << (s % 3), "besteffort" + std::to_string(s), 1));
  }
  for (Round t = 0; t < params.rounds; ++t) {
    builder.AddJobs(premium, t, rng.Poisson(0.8));
    for (ColorId c : best_effort) builder.AddJobs(c, t, rng.Poisson(0.6));
  }
  Instance instance = builder.Build();

  EngineOptions options;
  options.num_resources = params.n;
  options.cost_model = model;

  auto add_row = [&](const std::string& name, const RunResult& r) {
    table.AddRow()
        .Cell(name)
        .Cell(r.cost.reconfigurations)
        .Cell(r.cost.drops)
        .Cell(r.cost.weighted_drops)
        .Cell(r.drops_per_color[premium])
        .Cell(r.total_cost(model));
  };

  GreedyEdfPolicy greedy;
  add_row("greedy-edf", RunPolicy(instance, greedy, options));
  LazyGreedyPolicy blind(1, false);
  add_row("lazy-greedy", RunPolicy(instance, blind, options));
  LazyGreedyPolicy aware(1, true);
  add_row("lazy-greedy-weighted", RunPolicy(instance, aware, options));
  DlruEdfPolicy combined;
  add_row("dlru-edf", RunPolicy(instance, combined, options));

  table.AddRow()
      .Cell("certified lower bound (m=" + std::to_string(params.m) + ")")
      .Cell("-")
      .Cell("-")
      .Cell("-")
      .Cell("-")
      .Cell(offline::LowerBound(instance, params.m, model));
  return table;
}

Table RunE14Lookahead(const E14Params& params) {
  Table table({"algorithm", "reconfigs", "drops", "total_cost",
               "cost_vs_lb"});
  const CostModel model{params.delta};

  std::vector<workload::ColorSpec> specs = {
      {2, 0.7}, {4, 0.7}, {8, 0.5}, {8, 0.5}, {16, 0.4}, {32, 0.3}};
  workload::BurstyOptions gen;
  gen.rounds = params.rounds;
  gen.p_off_to_on = 0.03;
  gen.p_on_to_off = 0.1;
  gen.seed = params.seed;
  Instance instance = MakeBursty(specs, gen);

  EngineOptions options;
  options.num_resources = params.n;
  options.cost_model = model;
  const uint64_t lb = offline::LowerBound(instance, params.m, model);
  auto ratio = [&](uint64_t cost) {
    return lb == 0 ? 0.0
                   : static_cast<double>(cost) / static_cast<double>(lb);
  };

  for (Round window : params.windows) {
    LookaheadGreedyPolicy::Params lp;
    lp.window = window;
    LookaheadGreedyPolicy policy(lp);
    RunResult r = RunPolicy(instance, policy, options);
    table.AddRow()
        .Cell("lookahead W=" + std::to_string(window))
        .Cell(r.cost.reconfigurations)
        .Cell(r.cost.drops)
        .Cell(r.total_cost(model))
        .Cell(ratio(r.total_cost(model)), 3);
  }

  auto pipeline = reduce::SolveOnline(instance, options);
  table.AddRow()
      .Cell("dlru-edf pipeline (online)")
      .Cell(pipeline.cost().reconfigurations)
      .Cell(pipeline.cost().drops)
      .Cell(pipeline.cost().total(model))
      .Cell(ratio(pipeline.cost().total(model)), 3);
  return table;
}

}  // namespace analysis
}  // namespace rrs
