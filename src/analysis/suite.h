// The experiment suite as data: every experiment of DESIGN.md §4 with its
// id, the paper claim it measures, and a runner producing its Table. Drives
// the `run_experiments` exporter (CSV/JSON per experiment) and lets tests
// iterate the whole suite.
//
// E9/E11/E12 are google-benchmark microbenchmarks and live in their bench
// binaries; they have no Table form and are not listed here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/table.h"

namespace rrs {
namespace analysis {

struct ExperimentSpec {
  std::string id;      // "E1", ...
  std::string title;
  std::string claim;   // the paper claim under measurement
  std::function<Table()> run;  // default parameters
};

// All table-producing experiments in id order.
std::vector<ExperimentSpec> ExperimentSuite();

}  // namespace analysis
}  // namespace rrs
