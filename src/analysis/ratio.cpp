#include "analysis/ratio.h"

#include <algorithm>

#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "offline/robust_optimal.h"
#include "parallel/thread_pool.h"
#include "workload/uncertain.h"

namespace rrs {
namespace analysis {

namespace {

double SafeRatio(uint64_t numerator, uint64_t denominator) {
  if (denominator == 0) return numerator == 0 ? 1.0 : 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

}  // namespace

RatioReport MeasureRatio(const Instance& instance, uint64_t online_cost,
                         uint32_t m, const CostModel& model,
                         uint64_t max_states) {
  offline::OptimalOptions options;
  options.num_resources = m;
  options.cost_model = model;
  options.max_states = max_states;
  const offline::OptimalResult optimal = offline::SolveOptimal(instance, options);

  RatioReport out;
  out.exact = optimal.exact;
  out.online_cost = online_cost;
  out.opt_lower = optimal.lower_bound;
  out.opt_upper = optimal.upper_bound;
  out.states_expanded = optimal.states_expanded;
  out.ratio_lower = SafeRatio(online_cost, optimal.upper_bound);
  out.ratio_upper = SafeRatio(online_cost, optimal.lower_bound);
  return out;
}

std::optional<ExactRatio> MeasureExactRatio(const Instance& instance,
                                            uint64_t online_cost, uint32_t m,
                                            const CostModel& model,
                                            uint64_t max_states) {
  const RatioReport report =
      MeasureRatio(instance, online_cost, m, model, max_states);
  if (!report.exact) return std::nullopt;

  ExactRatio out;
  out.online_cost = online_cost;
  out.optimal_cost = report.opt_upper;
  out.ratio = report.ratio_lower;
  return out;
}

RatioBracket MeasureRatioBracket(const Instance& instance,
                                 uint64_t online_cost, uint32_t m,
                                 const CostModel& model) {
  RatioBracket out;
  out.online_cost = online_cost;
  out.lower_bound = offline::LowerBound(instance, m, model);
  auto heuristic = offline::ClairvoyantCost(instance, m, model);
  out.heuristic_cost = heuristic.total_cost;
  out.heuristic_policy = heuristic.best_policy;
  out.ratio_lower = SafeRatio(online_cost, out.heuristic_cost);
  out.ratio_upper = SafeRatio(online_cost, out.lower_bound);
  return out;
}

std::vector<RatioBracket> MeasureRatioBrackets(
    ThreadPool& pool, const Instance& instance,
    std::span<const uint64_t> online_costs, uint32_t m,
    const CostModel& model) {
  // The two certified bounds are independent; overlap them.
  auto lb_future =
      pool.Submit([&] { return offline::LowerBound(instance, m, model); });
  auto heuristic = offline::ClairvoyantCost(instance, m, model);
  const uint64_t lower_bound = lb_future.get();

  std::vector<RatioBracket> out;
  out.reserve(online_costs.size());
  for (uint64_t cost : online_costs) {
    RatioBracket bracket;
    bracket.online_cost = cost;
    bracket.lower_bound = lower_bound;
    bracket.heuristic_cost = heuristic.total_cost;
    bracket.heuristic_policy = heuristic.best_policy;
    bracket.ratio_lower = SafeRatio(cost, bracket.heuristic_cost);
    bracket.ratio_upper = SafeRatio(cost, bracket.lower_bound);
    out.push_back(std::move(bracket));
  }
  return out;
}

RobustRatioReport MeasureRobustRatio(const workload::UncertainInstance& set,
                                     uint64_t online_cost, uint32_t m,
                                     const CostModel& model,
                                     uint64_t max_states) {
  offline::RobustOptions options;
  options.num_resources = m;
  options.cost_model = model;
  options.max_states = max_states;
  const offline::RobustResult robust = offline::SolveRobust(set, options);

  RobustRatioReport out;
  out.exact = robust.exact;
  out.online_cost = online_cost;
  out.opt_lower = robust.lower_bound;
  out.opt_upper = robust.upper_bound;
  out.states_expanded = robust.states_expanded;
  out.ratio_lower = SafeRatio(online_cost, robust.upper_bound);
  out.ratio_upper = SafeRatio(online_cost, robust.lower_bound);
  return out;
}

}  // namespace analysis
}  // namespace rrs
