// Thin wrapper around the Engine adding wall-clock timing and a flat report
// row, used by examples and the experiment harness. Runs execute through a
// pooled thread-local Engine session (core/session.h) — repeated reports on
// one harness thread reuse the engine arena instead of rebuilding it.
#pragma once

#include <string>

#include "core/engine.h"

namespace rrs {
namespace analysis {

struct PolicyReport {
  std::string policy;
  CostBreakdown cost;
  uint64_t total_cost = 0;
  uint64_t executed = 0;
  uint64_t arrived = 0;
  Round rounds = 0;
  double wall_seconds = 0;
  // Structured per-run snapshot (phase times, per-color drops/reconfigs,
  // policy counters via SchedulerPolicy::ExportMetrics). Phase times and
  // per-color vectors are empty at RRS_OBS_LEVEL=0; counters are always
  // populated.
  obs::Telemetry telemetry;

  double jobs_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(arrived) / wall_seconds : 0;
  }
  double rounds_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(rounds) / wall_seconds : 0;
  }
};

PolicyReport RunAndReport(const Instance& instance, SchedulerPolicy& policy,
                          const EngineOptions& options);

}  // namespace analysis
}  // namespace rrs
