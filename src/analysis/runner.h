// Thin wrapper around Engine::Run adding wall-clock timing and a flat report
// row, used by examples and the experiment harness.
#pragma once

#include <map>
#include <string>

#include "core/engine.h"

namespace rrs {
namespace analysis {

struct PolicyReport {
  std::string policy;
  CostBreakdown cost;
  uint64_t total_cost = 0;
  uint64_t executed = 0;
  uint64_t arrived = 0;
  Round rounds = 0;
  double wall_seconds = 0;
  std::map<std::string, double> counters;
  // Structured per-run snapshot (phase times, per-color drops/reconfigs,
  // policy counters); empty at RRS_OBS_LEVEL=0. `counters` above stays the
  // legacy flat view.
  obs::Telemetry telemetry;

  double jobs_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(arrived) / wall_seconds : 0;
  }
  double rounds_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(rounds) / wall_seconds : 0;
  }
};

PolicyReport RunAndReport(const Instance& instance, SchedulerPolicy& policy,
                          const EngineOptions& options);

}  // namespace analysis
}  // namespace rrs
