#include "analysis/timeline.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rrs {
namespace analysis {

// Forwards to the engine's view while counting actual recolorings (the
// engine only charges real changes, so compare before setting).
class TimelinePolicy::CountingView : public ResourceView {
 public:
  CountingView(ResourceView& inner, uint64_t& counter)
      : ResourceView(inner.pending_table(), inner.pending_stride()),
        inner_(inner),
        counter_(counter) {}

  uint32_t num_resources() const override { return inner_.num_resources(); }
  ColorId color_of(ResourceId r) const override { return inner_.color_of(r); }
  void SetColor(ResourceId r, ColorId c) override {
    if (inner_.color_of(r) != c) ++counter_;
    inner_.SetColor(r, c);
  }
  Round earliest_deadline(ColorId c) const override {
    return inner_.earliest_deadline(c);
  }
  const std::vector<ColorId>& nonidle_colors() const override {
    return inner_.nonidle_colors();
  }

 private:
  ResourceView& inner_;
  uint64_t& counter_;
};

void TimelinePolicy::Reset(const Instance& instance,
                           const EngineOptions& options) {
  resources_ = options.num_resources;
  mini_rounds_ = options.mini_rounds_per_round;
  samples_.clear();
  backlog_ = 0;
  inner_.Reset(instance, options);
}

RoundSample& TimelinePolicy::SampleFor(Round k) {
  while (samples_.size() <= static_cast<size_t>(k)) {
    RoundSample s;
    s.round = static_cast<Round>(samples_.size());
    samples_.push_back(s);
  }
  return samples_[static_cast<size_t>(k)];
}

void TimelinePolicy::OnJobsDropped(Round k, ColorId c, uint64_t count,
                                   std::span<const JobId> jobs) {
  SampleFor(k).drops += count;
  inner_.OnJobsDropped(k, c, count, jobs);
}

void TimelinePolicy::OnArrivals(Round k, ColorId c, uint64_t count) {
  SampleFor(k).arrivals += count;
  inner_.OnArrivals(k, c, count);
}

void TimelinePolicy::Reconfigure(Round k, int mini, ResourceView& view) {
  RoundSample& sample = SampleFor(k);
  if (mini == 0) {
    // Pre-execution backlog: sum of pending over nonidle colors. Stored in
    // `backlog`; the post-run pass in samples()/ToTable() converts the
    // series into executed counts.
    uint64_t backlog = 0;
    for (ColorId c : view.nonidle_colors()) backlog += view.pending_count(c);
    sample.backlog = backlog;
  }
  CountingView counting(view, sample.reconfigs);
  inner_.Reconfigure(k, mini, counting);
}

namespace {

// Derives executed(k) from the recorded pre-execution backlogs:
//   Bpre(k+1) = Bpre(k) - exec(k) - drops(k+1) + arrivals(k+1)
// and for the final round everything pending executes (the engine runs to
// the horizon, where all jobs are resolved and nothing drops afterwards).
void FinalizeSamples(std::vector<RoundSample>& samples, uint32_t resources,
                     int mini_rounds) {
  const double capacity =
      static_cast<double>(resources) * static_cast<double>(mini_rounds);
  for (size_t k = 0; k < samples.size(); ++k) {
    uint64_t executed;
    if (k + 1 < samples.size()) {
      const uint64_t b_now = samples[k].backlog;
      const uint64_t b_next = samples[k + 1].backlog +
                              samples[k + 1].drops - samples[k + 1].arrivals;
      executed = b_now >= b_next ? b_now - b_next : 0;
    } else {
      executed = samples[k].backlog;
    }
    samples[k].executed = executed;
    samples[k].utilization =
        capacity > 0 ? static_cast<double>(executed) / capacity : 0;
  }
}

}  // namespace

Table TimelinePolicy::ToTable() const {
  std::vector<RoundSample> finished = samples_;
  FinalizeSamples(finished, resources_, mini_rounds_);
  Table table({"round", "arrivals", "drops", "reconfigs", "executed",
               "backlog", "utilization"});
  for (const RoundSample& s : finished) {
    table.AddRow()
        .Cell(static_cast<int64_t>(s.round))
        .Cell(s.arrivals)
        .Cell(s.drops)
        .Cell(s.reconfigs)
        .Cell(s.executed)
        .Cell(s.backlog)
        .Cell(s.utilization, 3);
  }
  return table;
}

std::string TimelinePolicy::Sparkline(const std::string& series,
                                      size_t width) const {
  std::vector<RoundSample> finished = samples_;
  FinalizeSamples(finished, resources_, mini_rounds_);

  auto value_of = [&](const RoundSample& s) -> double {
    if (series == "arrivals") return static_cast<double>(s.arrivals);
    if (series == "drops") return static_cast<double>(s.drops);
    if (series == "reconfigs") return static_cast<double>(s.reconfigs);
    if (series == "executed") return static_cast<double>(s.executed);
    if (series == "backlog") return static_cast<double>(s.backlog);
    if (series == "utilization") return s.utilization;
    RRS_CHECK(false) << "unknown timeline series '" << series << "'";
    return 0;
  };

  if (finished.empty() || width == 0) return "";
  width = std::min(width, finished.size());
  std::vector<double> buckets(width, 0);
  for (size_t i = 0; i < finished.size(); ++i) {
    size_t b = i * width / finished.size();
    buckets[b] += value_of(finished[i]);
  }
  // Mean per bucket (buckets can differ by one round in size).
  for (size_t b = 0; b < width; ++b) {
    size_t lo = b * finished.size() / width;
    size_t hi = (b + 1) * finished.size() / width;
    size_t span = std::max<size_t>(1, hi - lo);
    buckets[b] /= static_cast<double>(span);
  }
  double peak = 0;
  for (double v : buckets) peak = std::max(peak, v);
  static const char kLevels[] = " .:-=+*#@";
  const size_t levels = sizeof(kLevels) - 2;
  std::string out;
  out.reserve(width);
  for (double v : buckets) {
    size_t level =
        peak > 0 ? static_cast<size_t>(std::lround(v / peak *
                                                   static_cast<double>(levels)))
                 : 0;
    out.push_back(kLevels[std::min(level, levels)]);
  }
  return out;
}

std::string RenderGantt(const Schedule& schedule, const Instance& instance,
                        Round first_round, Round last_round) {
  RRS_CHECK_LE(first_round, last_round);
  RRS_CHECK_LE(last_round - first_round, 512) << "Gantt window too wide";
  RRS_CHECK_LE(schedule.num_resources(), 64u) << "too many resources to draw";
  const size_t cols = static_cast<size_t>(last_round - first_round) + 1;
  const size_t rows = schedule.num_resources();

  // Replay reconfigurations in timeline order to know each resource's color
  // per round; mark executions.
  std::vector<ReconfigAction> reconfigs = schedule.reconfigs();
  std::stable_sort(reconfigs.begin(), reconfigs.end(),
                   [](const ReconfigAction& a, const ReconfigAction& b) {
                     if (a.round != b.round) return a.round < b.round;
                     return a.mini < b.mini;
                   });
  std::vector<std::string> grid(rows, std::string(cols, '.'));
  std::vector<ColorId> color(rows, kNoColor);
  size_t next_reconfig = 0;
  std::vector<std::vector<uint8_t>> executed(
      rows, std::vector<uint8_t>(cols, 0));
  for (const ExecAction& e : schedule.executions()) {
    if (e.round < first_round || e.round > last_round) continue;
    executed[e.resource][static_cast<size_t>(e.round - first_round)] = 1;
  }

  for (Round k = 0; k <= last_round; ++k) {
    while (next_reconfig < reconfigs.size() &&
           reconfigs[next_reconfig].round <= k) {
      const ReconfigAction& a = reconfigs[next_reconfig++];
      if (a.round == k) color[a.resource] = a.to;
    }
    if (k < first_round) continue;
    const size_t col = static_cast<size_t>(k - first_round);
    for (size_t r = 0; r < rows; ++r) {
      if (color[r] == kNoColor) continue;
      char ch = static_cast<char>('a' + color[r] % 26);
      if (executed[r][col]) ch = static_cast<char>(ch - 'a' + 'A');
      grid[r][col] = ch;
    }
  }

  std::string out;
  out += "rounds " + std::to_string(first_round) + ".." +
         std::to_string(last_round) + " (uppercase = executed a job; '.' = black)\n";
  for (size_t r = 0; r < rows; ++r) {
    out += "r" + std::to_string(r) + (r < 10 ? "  |" : " |");
    out += grid[r];
    out += "|\n";
  }
  (void)instance;
  return out;
}

}  // namespace analysis
}  // namespace rrs
