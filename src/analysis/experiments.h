// The experiment suite: one function per experiment of DESIGN.md §4, each
// returning a printable/CSV-able Table. The paper (IPPS 2007) has no
// empirical tables or figures — its evaluation is analytic (Theorems 1-3,
// Lemmas 3.1-3.5, Appendices A and B) — so each experiment here turns one
// analytic claim into a measured table. Bench binaries are thin wrappers
// around these functions; tests call them directly and assert the claims.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/table.h"

namespace rrs {
namespace analysis {

// ---- E1: Appendix A — ΔLRU is not resource competitive --------------------
// Sweeps the short-term delay exponent j (k = j + k_offset) and reports the
// certified ratio cost(ΔLRU, n) / cost(handmade OFF, 1 resource) against the
// paper's asymptotic prediction 2^{j+1} / (nΔ). Claim: ratio grows ~2x per
// j step, i.e. ΔLRU is not constant-competitive at any resource advantage.
struct E1Params {
  uint32_t n = 4;
  uint64_t delta = 2;
  int j_min = 3;
  int j_max = 9;
  int k_offset = 4;  // k = j + k_offset
};
Table RunE1DlruAdversary(const E1Params& params);

// ---- E2: Appendix B — EDF is not resource competitive ---------------------
// Sweeps k (fixed j) and reports cost(EDF, n) / cost(handmade OFF, 1
// resource) against the prediction 2^{k-j-1} / (n/2 + 1). Claim: ratio grows
// ~2x per k step (thrashing).
struct E2Params {
  uint32_t n = 4;
  uint64_t delta = 5;
  int j = 3;
  int k_min = 5;
  int k_max = 10;
};
Table RunE2EdfAdversary(const E2Params& params);

// ---- E3: Theorem 1 — ΔLRU-EDF is resource competitive ---------------------
// Random rate-limited batched instances small enough for the exact offline
// solver; reports the mean/max exact competitive ratio per instance scale.
// Claim: the max ratio stays bounded by a constant as the input grows.
struct E3Params {
  uint32_t n = 8;   // online resources
  uint32_t m = 1;   // offline resources
  uint64_t delta = 2;
  std::vector<Round> delays = {1, 2, 4};  // one color per delay bound
  double rate = 0.4;                      // per-color mean jobs/round
  std::vector<Round> rounds_list = {8, 16, 32};
  int num_seeds = 50;
  uint64_t seed = 7;
  uint64_t max_states = 4'000'000;
};
Table RunE3CompetitiveSmall(const E3Params& params);

// ---- E4: resource augmentation sweep ---------------------------------------
// Full pipeline cost vs the certified OPT bracket [LowerBound, Clairvoyant]
// as the resource advantage n/m grows. Claim: the ratio falls steeply with
// the first doublings of n and flattens to a constant.
struct E4Params {
  std::vector<uint32_t> ns = {4, 8, 16, 32, 64};
  uint32_t m = 2;
  uint64_t delta = 8;
  Round rounds = 2048;
  uint64_t seed = 11;
};
Table RunE4Augmentation(const E4Params& params);

// ---- E5: Theorems 2-3 — reduction overhead ---------------------------------
// On each workload family: direct ΔLRU-EDF run (no guarantees off the
// rate-limited case) vs the guaranteed VarBatch∘Distribute pipeline, both
// against the certified lower bound. Claim: the pipeline costs a constant
// factor over direct.
struct E5Params {
  uint32_t n = 8;
  uint32_t m = 2;
  uint64_t delta = 4;
  Round rounds = 1024;
  uint64_t seed = 3;
};
Table RunE5Reductions(const E5Params& params);

// ---- E6: introduction scenario — thrash vs underutilize -------------------
// Background + intermittent short-term jobs; sweeps the burst gap. Claim:
// greedy-edf pays reconfigurations (thrashing), high-threshold lazy pays
// drops (underutilization), ΔLRU-EDF pays neither disproportionately.
struct E6Params {
  std::vector<Round> gap_blocks = {1, 2, 4, 8};
  uint32_t n = 8;
  uint64_t delta = 8;
  uint64_t seed = 5;
};
Table RunE6IntroScenario(const E6Params& params);

// ---- E7: the Lemma 3.2 drop chain ------------------------------------------
// Measures EligibleDrop_{ΔLRU-EDF(n)}(σ) <= Drop_{DS-Seq-EDF(m)}(α)
// <= Drop_{Par-EDF(m)}(α) with m = n/4 and α = the eligible-job subsequence.
// Claim: zero violations across seeds.
struct E7Params {
  uint32_t n = 8;  // m = n / 4 per Lemma 3.10
  uint64_t delta = 3;
  Round rounds = 64;
  double rate = 0.8;
  int num_seeds = 30;
  uint64_t seed = 17;
};
Table RunE7DropChain(const E7Params& params);

// ---- E8: Lemmas 3.3/3.4 — epoch bounds -------------------------------------
// Measures ReconfigCost vs 4·numEpochs·Δ and IneligibleDrop vs numEpochs·Δ
// across Δ. Claim: both bounds hold, with measurable slack.
struct E8Params {
  std::vector<uint64_t> deltas = {2, 4, 8, 16};
  uint32_t n = 8;
  Round rounds = 4096;
  double rate = 1.0;
  uint64_t seed = 23;
};
Table RunE8EpochBounds(const E8Params& params);

// ---- E10: design ablations --------------------------------------------------
// ΔLRU-EDF variants (LRU/EDF split, exit policy, replication) on bursty and
// router workloads through the full pipeline. Claim: the paper's n/4 + n/4
// replicated split is on the Pareto frontier.
struct E10Params {
  uint32_t n = 16;
  uint64_t delta = 8;
  Round rounds = 2048;
  uint64_t seed = 29;
};
Table RunE10Ablations(const E10Params& params);

// ---- E13: variable drop costs (extension) ----------------------------------
// The [Δ | c_ℓ | D_ℓ | ·] family of the authors' earlier work, supported by
// the engine as an extension: a premium service (high drop cost) shares the
// pool with best-effort traffic. Claim: the weight-aware baseline and
// ΔLRU-EDF keep the premium drop cost low where weight-blind greedy pays
// heavily; the certified weighted lower bound anchors the comparison.
struct E13Params {
  uint32_t n = 4;  // fewer resources than services: contention is forced
  uint32_t m = 2;
  uint64_t delta = 6;
  uint64_t premium_weight = 8;
  Round rounds = 1024;
  uint64_t seed = 47;
};
Table RunE13WeightedDrops(const E13Params& params);

// ---- E14: the value of lookahead (future-work probe) ----------------------
// The paper's algorithm is fully online. Sweeping a semi-online greedy's
// lookahead window W quantifies what the online setting costs: W = 0 is
// pending-only greedy; large W approaches clairvoyance. Claim: cost falls
// with W with diminishing returns, and the fully-online ΔLRU-EDF pipeline
// sits within the spread.
struct E14Params {
  std::vector<Round> windows = {0, 1, 2, 4, 8, 16, 32};
  uint32_t n = 8;
  uint32_t m = 2;
  uint64_t delta = 8;
  Round rounds = 1024;
  uint64_t seed = 53;
};
Table RunE14Lookahead(const E14Params& params);

// ---- E15: the proof pipeline's constants, measured -------------------------
// Theorem 3's proof routes OPT(I) through Lemma 5.3 (Punctualize, 7x
// resources) and Lemma 4.1 (Aggregate, 3x more) to obtain an offline
// schedule on the fully transformed instance, then invokes Theorem 1. This
// experiment executes that exact chain on random instances and reports the
// actual constants: offline-chain cost / OPT (the reductions' blowup) and
// online pipeline cost / OPT (the end-to-end ratio).
struct E15Params {
  std::vector<Round> rounds_list = {8, 16, 24};
  int num_seeds = 25;
  uint32_t n = 8;       // online resources for the pipeline
  uint64_t delta = 2;
  double rate = 0.5;
  uint64_t seed = 59;
  uint64_t max_states = 4'000'000;
};
Table RunE15ProofPipeline(const E15Params& params);

}  // namespace analysis
}  // namespace rrs
