// Timeline instrumentation: per-round time series of a run (backlog,
// executions, reconfigurations, drops, resource utilization), recorded by a
// transparent policy wrapper, exportable as CSV, and renderable as compact
// ASCII sparklines. Also an ASCII Gantt renderer for (small) Schedules:
// rounds across, resources down, one letter per color — the quickest way to
// see thrashing vs underutilization with your own eyes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"
#include "util/table.h"

namespace rrs {
namespace analysis {

struct RoundSample {
  Round round = 0;
  uint64_t arrivals = 0;
  uint64_t drops = 0;
  uint64_t reconfigs = 0;   // resource recolorings this round
  uint64_t executed = 0;    // jobs executed this round
  uint64_t backlog = 0;     // pending jobs after the round
  double utilization = 0;   // executed / (resources * mini_rounds)
};

// Wraps any policy; forwards everything and samples each round.
class TimelinePolicy : public SchedulerPolicy {
 public:
  explicit TimelinePolicy(SchedulerPolicy& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  void Reset(const Instance& instance, const EngineOptions& options) override;
  void OnJobsDropped(Round k, ColorId c, uint64_t count,
                     std::span<const JobId> jobs) override;
  void AfterDropPhase(Round k) override { inner_.AfterDropPhase(k); }
  void OnArrivals(Round k, ColorId c, uint64_t count) override;
  void AfterArrivalPhase(Round k) override { inner_.AfterArrivalPhase(k); }
  void Reconfigure(Round k, int mini, ResourceView& view) override;
  void ExportMetrics(obs::Registry& registry) const override {
    inner_.ExportMetrics(registry);
  }

  const std::vector<RoundSample>& samples() const { return samples_; }

  // Series rendering: one character per bucket, 8 intensity levels scaled to
  // the series max. `width` buckets (rounds are aggregated evenly).
  std::string Sparkline(const std::string& series, size_t width = 64) const;

  // Full per-round CSV (round, arrivals, drops, reconfigs, executed,
  // backlog, utilization).
  Table ToTable() const;

 private:
  // Counting view: forwards to the engine view, counts recolorings and
  // executions are derived from backlog deltas.
  class CountingView;

  RoundSample& SampleFor(Round k);

  SchedulerPolicy& inner_;
  uint32_t resources_ = 0;
  int mini_rounds_ = 1;
  std::vector<RoundSample> samples_;
  uint64_t backlog_ = 0;
};

// Renders a recorded Schedule as an ASCII Gantt chart: one row per resource,
// one column per round in [first_round, last_round], '.' for black/idle
// configuration, letters a-z cycling over colors, uppercase when the
// resource executed a job that round. Intended for small instances.
std::string RenderGantt(const Schedule& schedule, const Instance& instance,
                        Round first_round, Round last_round);

}  // namespace analysis
}  // namespace rrs
