// Competitive-ratio measurement helpers.
//
// Two regimes:
//  - solver-backed: MeasureRatio runs offline::SolveOptimal and reports the
//    exact ratio when the search completes, or the solver's certified
//    [lower, upper] bracket on OPT (and the induced ratio bracket) when the
//    state budget runs out — budget exhaustion degrades, it never fails;
//  - solver-free: a bracket [online/heuristic-OFF, online/LB] whose
//    lower end under-reports and upper end over-reports the true ratio
//    (offline::ClairvoyantCost and offline::LowerBound), for instances where
//    even a bounded search is too much (experiment E4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {

class ThreadPool;

namespace workload {
class UncertainInstance;
}  // namespace workload

namespace analysis {

struct ExactRatio {
  uint64_t online_cost = 0;
  uint64_t optimal_cost = 0;
  double ratio = 0;  // online / max(optimal, 1); 1.0 when both are zero
};

// Solver-backed ratio report: exact when the search completed, otherwise the
// certified OPT bracket it returned. states_expanded records the search
// effort either way (deterministic, so comparable across runs).
struct RatioReport {
  bool exact = false;
  uint64_t online_cost = 0;
  uint64_t opt_lower = 0;  // == opt_upper when exact
  uint64_t opt_upper = 0;
  uint64_t states_expanded = 0;
  // online/opt_upper <= true ratio <= online/opt_lower; equal when exact.
  double ratio_lower = 0;
  double ratio_upper = 0;
};

RatioReport MeasureRatio(const Instance& instance, uint64_t online_cost,
                         uint32_t m, const CostModel& model,
                         uint64_t max_states = 5'000'000);

// Exact ratio; nullopt if the optimal solver exceeds its state budget.
// Thin wrapper over MeasureRatio for callers that only want exact answers.
std::optional<ExactRatio> MeasureExactRatio(const Instance& instance,
                                            uint64_t online_cost, uint32_t m,
                                            const CostModel& model,
                                            uint64_t max_states = 5'000'000);

struct RatioBracket {
  uint64_t online_cost = 0;
  uint64_t lower_bound = 0;      // certified LB on OPT
  uint64_t heuristic_cost = 0;   // certified UB on OPT
  std::string heuristic_policy;
  // online/heuristic <= true ratio <= online/lower_bound.
  double ratio_lower = 0;
  double ratio_upper = 0;
};

RatioBracket MeasureRatioBracket(const Instance& instance,
                                 uint64_t online_cost, uint32_t m,
                                 const CostModel& model);

// Batched bracket for several online costs against the same
// (instance, m, model). The certified bounds depend only on those shared
// arguments, so the lower bound and the clairvoyant heuristic are computed
// once — concurrently on `pool` — instead of once per online cost.
// out[i] is the bracket for online_costs[i].
std::vector<RatioBracket> MeasureRatioBrackets(
    ThreadPool& pool, const Instance& instance,
    std::span<const uint64_t> online_costs, uint32_t m,
    const CostModel& model);

// Robust (interval-uncertainty) ratio report: the certified OPT bracket from
// offline::SolveRobust over the whole window set, and the worst-case ratio
// bracket it induces for an online cost guaranteed across the set —
//   online/opt_upper <= worst-case true ratio <= online/opt_lower
// for every concrete trace. `exact` records search completion; exhaustion
// only widens the bracket.
struct RobustRatioReport {
  bool exact = false;
  uint64_t online_cost = 0;
  uint64_t opt_lower = 0;
  uint64_t opt_upper = 0;
  uint64_t states_expanded = 0;
  double ratio_lower = 0;
  double ratio_upper = 0;
};

RobustRatioReport MeasureRobustRatio(const workload::UncertainInstance& set,
                                     uint64_t online_cost, uint32_t m,
                                     const CostModel& model,
                                     uint64_t max_states = 5'000'000);

}  // namespace analysis
}  // namespace rrs
