// Experiments E3, E4, E7: competitive-ratio measurements against the exact
// offline optimum, the certified OPT bracket, and the Lemma 3.2 drop chain.
#include <algorithm>
#include <array>
#include <atomic>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/ratio.h"
#include "core/engine.h"
#include "offline/optimal.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "reduce/aggregate.h"
#include "reduce/pipeline.h"
#include "reduce/punctualize.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/par_edf.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/synthetic.h"

namespace rrs {
namespace analysis {

namespace {

std::vector<workload::ColorSpec> SpecsFor(const std::vector<Round>& delays,
                                          double rate) {
  std::vector<workload::ColorSpec> specs;
  specs.reserve(delays.size());
  for (Round d : delays) specs.push_back({d, rate});
  return specs;
}

// Removes the given jobs from an instance (used to build the eligible-job
// subsequence α of Section 3.2).
Instance RemoveJobs(const Instance& instance, std::vector<JobId> removed) {
  std::sort(removed.begin(), removed.end());
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  size_t r = 0;
  for (JobId id = 0; id < instance.num_jobs(); ++id) {
    if (r < removed.size() && removed[r] == id) {
      ++r;
      continue;
    }
    builder.AddJob(instance.job(id).color, instance.job(id).arrival);
  }
  return builder.Build();
}

}  // namespace

Table RunE3CompetitiveSmall(const E3Params& params) {
  // Column order is load-bearing (tests index seeds_solved and max_ratio);
  // the bracket columns for budget-exhausted seeds are appended at the end.
  Table table({"rounds", "jobs_mean", "seeds_solved", "seeds_unsolved",
               "mean_ratio", "max_ratio", "mean_online_cost",
               "mean_opt_cost", "bracket_ratio_lo_mean",
               "bracket_ratio_hi_mean", "mean_states_expanded"});
  const CostModel model{params.delta};

  for (Round rounds : params.rounds_list) {
    struct SeedOutcome {
      bool solved = false;
      double ratio = 0;
      double ratio_lower = 0;
      double ratio_upper = 0;
      uint64_t online_cost = 0;
      uint64_t opt_cost = 0;
      uint64_t states_expanded = 0;
      uint64_t jobs = 0;
    };
    std::vector<SeedOutcome> outcomes(static_cast<size_t>(params.num_seeds));

    ParallelFor(GlobalThreadPool(), 0, params.num_seeds, [&](int64_t s) {
      Rng seeder(params.seed + static_cast<uint64_t>(s) * 7919 +
                 static_cast<uint64_t>(rounds));
      workload::PoissonOptions gen;
      gen.rounds = rounds;
      gen.rate_limited = true;
      gen.seed = seeder.Next();
      Instance instance =
          MakePoisson(SpecsFor(params.delays, params.rate), gen);
      if (instance.num_jobs() == 0) return;

      DlruEdfPolicy policy;
      EngineOptions options;
      options.num_resources = params.n;
      options.cost_model = model;
      RunResult online = RunPolicy(instance, policy, options);

      // Budget exhaustion no longer discards the seed: the solver returns a
      // certified OPT bracket, reported in the trailing columns.
      RatioReport report =
          MeasureRatio(instance, online.total_cost(model), params.m, model,
                       params.max_states);
      SeedOutcome& out = outcomes[static_cast<size_t>(s)];
      out.jobs = instance.num_jobs();
      out.states_expanded = report.states_expanded;
      if (report.exact) {
        out.solved = true;
        out.ratio = report.ratio_lower;
        out.online_cost = report.online_cost;
        out.opt_cost = report.opt_upper;
      } else {
        out.ratio_lower = report.ratio_lower;
        out.ratio_upper = report.ratio_upper;
      }
    });

    RunningStats ratio_stats, online_stats, opt_stats, job_stats;
    RunningStats bracket_lo_stats, bracket_hi_stats, states_stats;
    int unsolved = 0;
    for (const SeedOutcome& out : outcomes) {
      if (out.jobs == 0) continue;  // empty draw, skipped
      job_stats.Add(static_cast<double>(out.jobs));
      states_stats.Add(static_cast<double>(out.states_expanded));
      if (!out.solved) {
        ++unsolved;
        bracket_lo_stats.Add(out.ratio_lower);
        bracket_hi_stats.Add(out.ratio_upper);
        continue;
      }
      ratio_stats.Add(out.ratio);
      online_stats.Add(static_cast<double>(out.online_cost));
      opt_stats.Add(static_cast<double>(out.opt_cost));
    }
    table.AddRow()
        .Cell(static_cast<int64_t>(rounds))
        .Cell(job_stats.mean(), 1)
        .Cell(static_cast<int64_t>(ratio_stats.count()))
        .Cell(static_cast<int64_t>(unsolved))
        .Cell(ratio_stats.mean(), 3)
        .Cell(ratio_stats.max(), 3)
        .Cell(online_stats.mean(), 1)
        .Cell(opt_stats.mean(), 1)
        .Cell(bracket_lo_stats.mean(), 3)
        .Cell(bracket_hi_stats.mean(), 3)
        .Cell(states_stats.mean(), 0);
  }
  return table;
}

Table RunE4Augmentation(const E4Params& params) {
  Table table({"n", "n/m", "pipeline_cost", "reconfigs", "drops",
               "opt_lower_bound", "opt_heuristic", "heuristic_policy",
               "ratio_vs_heuristic", "ratio_vs_lb"});
  const CostModel model{params.delta};

  workload::ZipfOptions gen;
  gen.num_colors = 12;
  gen.delay_choices = {2, 4, 8, 16, 32};
  gen.jobs_per_round = 6.0;
  gen.zipf_exponent = 1.1;
  gen.rounds = params.rounds;
  gen.seed = params.seed;
  Instance instance = workload::MakeZipf(gen);

  // The online runs are independent across n, and the bracket's certified
  // bounds depend only on (instance, m, model) — run the former in parallel
  // and compute the latter once via the batch API.
  struct OnlineOutcome {
    uint64_t cost = 0;
    uint64_t reconfigs = 0;
    uint64_t drops = 0;
  };
  std::vector<OnlineOutcome> online(params.ns.size());
  ParallelFor(GlobalThreadPool(), 0, static_cast<int64_t>(params.ns.size()),
              [&](int64_t i) {
                EngineOptions options;
                options.num_resources = params.ns[static_cast<size_t>(i)];
                options.cost_model = model;
                auto pipeline = reduce::SolveOnline(instance, options);
                OnlineOutcome& out = online[static_cast<size_t>(i)];
                out.cost = pipeline.cost().total(model);
                out.reconfigs = pipeline.cost().reconfigurations;
                out.drops = pipeline.cost().drops;
              });

  std::vector<uint64_t> costs;
  costs.reserve(online.size());
  for (const OnlineOutcome& out : online) costs.push_back(out.cost);
  std::vector<RatioBracket> brackets = MeasureRatioBrackets(
      GlobalThreadPool(), instance, costs, params.m, model);

  for (size_t i = 0; i < params.ns.size(); ++i) {
    const uint32_t n = params.ns[i];
    const RatioBracket& bracket = brackets[i];
    table.AddRow()
        .Cell(static_cast<uint64_t>(n))
        .Cell(static_cast<double>(n) / static_cast<double>(params.m), 1)
        .Cell(online[i].cost)
        .Cell(online[i].reconfigs)
        .Cell(online[i].drops)
        .Cell(bracket.lower_bound)
        .Cell(bracket.heuristic_cost)
        .Cell(bracket.heuristic_policy)
        .Cell(bracket.ratio_lower, 3)
        .Cell(bracket.ratio_upper, 3);
  }
  return table;
}

Table RunE7DropChain(const E7Params& params) {
  RRS_CHECK_EQ(params.n % 4, 0u) << "E7 requires n divisible by 4";
  const uint32_t m = params.n / 4;  // Lemma 3.10's n = 4m coupling
  const CostModel model{params.delta};

  Table table({"seeds", "mean_eligible_drop", "mean_dsseqedf_alpha_drop",
               "mean_paredf_alpha_drop", "mean_total_drop",
               "chain_violations"});

  RunningStats eligible_stats, dsseq_stats, paredf_stats, total_stats;
  std::atomic<int> violations{0};
  std::vector<std::array<double, 4>> rows(
      static_cast<size_t>(params.num_seeds),
      std::array<double, 4>{-1, -1, -1, -1});

  ParallelFor(GlobalThreadPool(), 0, params.num_seeds, [&](int64_t s) {
    Rng seeder(params.seed + static_cast<uint64_t>(s) * 104729);
    workload::PoissonOptions gen;
    gen.rounds = params.rounds;
    gen.rate_limited = true;
    gen.seed = seeder.Next();
    std::vector<workload::ColorSpec> specs = {
        {1, params.rate}, {2, params.rate}, {4, params.rate},
        {8, params.rate}, {8, params.rate}, {16, params.rate}};
    Instance instance = MakePoisson(specs, gen);
    if (instance.num_jobs() == 0) return;

    DlruEdfPolicy policy;
    policy.set_collect_ineligible_jobs(true);
    EngineOptions options;
    options.num_resources = params.n;
    options.cost_model = model;
    RunResult online = RunPolicy(instance, policy, options);

    const uint64_t eligible_drop = policy.eligible_drop_cost();
    Instance alpha = RemoveJobs(instance, policy.ineligible_job_ids());

    EdfPolicy ds_seq_edf(/*replicate=*/false);
    EngineOptions ds_options;
    ds_options.num_resources = m;
    ds_options.mini_rounds_per_round = 2;  // double speed
    ds_options.cost_model = model;
    RunResult ds = RunPolicy(alpha, ds_seq_edf, ds_options);

    const uint64_t paredf_drop = ParEdfDropCost(alpha, m);

    // The Lemma 3.2 chain under test: EligibleDrop <= Drop_{DS-Seq-EDF}(α).
    // (Drop_{DS-Seq-EDF}(α) vs Drop_{Par-EDF}(α) is Corollary 3.1 and is
    // reported but not flagged: Par-EDF on α is reported as context.)
    if (eligible_drop > ds.cost.drops) violations.fetch_add(1);
    rows[static_cast<size_t>(s)] = {
        static_cast<double>(eligible_drop), static_cast<double>(ds.cost.drops),
        static_cast<double>(paredf_drop),
        static_cast<double>(online.cost.drops)};
  });

  for (const auto& row : rows) {
    if (row[0] < 0) continue;
    eligible_stats.Add(row[0]);
    dsseq_stats.Add(row[1]);
    paredf_stats.Add(row[2]);
    total_stats.Add(row[3]);
  }
  table.AddRow()
      .Cell(static_cast<int64_t>(eligible_stats.count()))
      .Cell(eligible_stats.mean(), 2)
      .Cell(dsseq_stats.mean(), 2)
      .Cell(paredf_stats.mean(), 2)
      .Cell(total_stats.mean(), 2)
      .Cell(static_cast<int64_t>(violations.load()));
  return table;
}

Table RunE15ProofPipeline(const E15Params& params) {
  Table table({"rounds", "seeds", "mean_opt", "mean_offline_chain",
               "mean_online_pipeline", "chain/opt", "online/opt"});
  const CostModel model{params.delta};

  for (Round rounds : params.rounds_list) {
    struct Outcome {
      bool ok = false;
      uint64_t opt = 0;
      uint64_t chain = 0;
      uint64_t online = 0;
    };
    std::vector<Outcome> outcomes(static_cast<size_t>(params.num_seeds));

    ParallelFor(GlobalThreadPool(), 0, params.num_seeds, [&](int64_t s) {
      Rng seeder(params.seed + static_cast<uint64_t>(s) * 6151 +
                 static_cast<uint64_t>(rounds));
      std::vector<workload::ColorSpec> specs = {
          {1, params.rate}, {2, params.rate}, {4, params.rate}};
      workload::PoissonOptions gen;
      gen.rounds = rounds;
      gen.seed = seeder.Next();
      Instance instance = MakePoisson(specs, gen);
      if (instance.num_jobs() == 0) return;

      offline::OptimalOptions opt_options;
      opt_options.num_resources = 1;
      opt_options.cost_model = model;
      opt_options.max_states = params.max_states;
      opt_options.reconstruct_schedule = true;
      offline::OptimalResult opt = offline::SolveOptimal(instance, opt_options);
      if (!opt.exact || !opt.schedule) return;

      // The proof chain: OPT -> Punctualize (VarBatch inst) -> Aggregate
      // (Distribute inst); its validator-certified cost on the fully
      // transformed instance.
      auto vb = reduce::VarBatchInstance(instance);
      auto punctual =
          reduce::PunctualizeSchedule(instance, *opt.schedule, vb);
      auto dt = reduce::DistributeInstance(vb.transformed);
      auto aggregated =
          reduce::AggregateSchedule(vb.transformed, punctual.schedule, dt);
      auto chain_check = aggregated.schedule.Validate(dt.transformed);
      if (!chain_check.ok) return;

      EngineOptions options;
      options.num_resources = params.n;
      options.cost_model = model;
      auto pipeline = reduce::SolveOnline(instance, options);

      Outcome& out = outcomes[static_cast<size_t>(s)];
      out.ok = true;
      out.opt = opt.total_cost;
      out.chain = chain_check.cost.total(model);
      out.online = pipeline.cost().total(model);
    });

    RunningStats opt_stats, chain_stats, online_stats;
    for (const Outcome& out : outcomes) {
      if (!out.ok) continue;
      opt_stats.Add(static_cast<double>(out.opt));
      chain_stats.Add(static_cast<double>(out.chain));
      online_stats.Add(static_cast<double>(out.online));
    }
    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    table.AddRow()
        .Cell(static_cast<int64_t>(rounds))
        .Cell(static_cast<int64_t>(opt_stats.count()))
        .Cell(opt_stats.mean(), 2)
        .Cell(chain_stats.mean(), 2)
        .Cell(online_stats.mean(), 2)
        .Cell(ratio(chain_stats.mean(), opt_stats.mean()), 3)
        .Cell(ratio(online_stats.mean(), opt_stats.mean()), 3);
  }
  return table;
}

}  // namespace analysis
}  // namespace rrs
