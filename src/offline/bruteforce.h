// Brute-force exact offline solver: plain exhaustive recursion over per-round
// configuration choices with no canonicalization, no dominance pruning, and
// no WLOG restrictions beyond "execute the earliest-deadline pending job of
// the resource's color" (which is exchange-optimal, see optimal.h).
//
// Exponentially slower than offline::SolveOptimal, but *independent* of it:
// this solver recurses over raw (resource -> color) assignments with
// vector-of-vector pending queues, sharing neither the packed span encoding
// nor the pruning machinery of the branch-and-bound search (nor the
// unordered_map layering of offline/dp_reference), so agreement on random
// instances is strong evidence all of them are correct. Used only in tests
// and strictly for very small instances (the differential suite stays at
// m <= 2, <= 3 colors).
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {
namespace offline {

struct BruteForceOptions {
  uint32_t num_resources = 1;
  CostModel cost_model;
  // Recursion node budget; nullopt is returned when exceeded.
  uint64_t max_nodes = 20'000'000;
};

std::optional<uint64_t> SolveBruteForce(const Instance& instance,
                                        const BruteForceOptions& options);

}  // namespace offline
}  // namespace rrs
