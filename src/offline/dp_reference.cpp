#include "offline/dp_reference.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace offline {

namespace {

// Black (unconfigured) sentinel inside state encodings: one past the last
// real color, so sorted configs are canonical.
struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Pending jobs of one color: (relative deadline, count), sorted ascending.
using ColorPending = std::vector<std::pair<uint32_t, uint32_t>>;

struct State {
  std::vector<uint32_t> config;        // sorted, size m, black = num_colors
  std::vector<ColorPending> pending;   // per color

  std::vector<uint32_t> Encode() const {
    std::vector<uint32_t> key;
    key.reserve(config.size() + pending.size() * 3);
    key.insert(key.end(), config.begin(), config.end());
    for (const ColorPending& p : pending) {
      key.push_back(static_cast<uint32_t>(p.size()));
      for (const auto& [rel, count] : p) {
        key.push_back(rel);
        key.push_back(count);
      }
    }
    return key;
  }
};

// Multiset overlap of two sorted vectors.
uint32_t SortedOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  uint32_t overlap = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// Enumerates all sorted multisets of size m over the sorted alphabet.
void EnumerateConfigs(const std::vector<uint32_t>& alphabet, uint32_t m,
                      size_t from, std::vector<uint32_t>& current,
                      std::vector<std::vector<uint32_t>>& out) {
  if (current.size() == m) {
    out.push_back(current);
    return;
  }
  for (size_t i = from; i < alphabet.size(); ++i) {
    current.push_back(alphabet[i]);
    EnumerateConfigs(alphabet, m, i, current, out);
    current.pop_back();
  }
}

}  // namespace

std::optional<DpReferenceResult> SolveLayeredDpReference(
    const Instance& instance, const DpReferenceOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  const uint32_t m = options.num_resources;
  const uint32_t num_colors = static_cast<uint32_t>(instance.num_colors());
  const uint32_t kBlack = num_colors;
  const uint64_t delta = options.cost_model.delta;

  if (instance.num_jobs() == 0) return DpReferenceResult{};

  // Per-round per-color arrival counts, gathered once.
  auto arrivals_of = [&](Round k) {
    std::vector<std::pair<ColorId, uint32_t>> out;
    auto jobs = instance.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      ColorId c = jobs[i].color;
      uint32_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      out.emplace_back(c, count);
    }
    return out;
  };

  // Layer k: canonical state -> min cost, for states after the arrival phase
  // of round k.
  std::unordered_map<std::vector<uint32_t>, uint64_t, VecHash> layer;
  std::unordered_map<std::vector<uint32_t>, uint64_t, VecHash> next_layer;

  State initial;
  initial.config.assign(m, kBlack);
  initial.pending.assign(num_colors, {});
  for (const auto& [c, count] : arrivals_of(0)) {
    initial.pending[c].emplace_back(
        static_cast<uint32_t>(instance.delay_bound(c)), count);
  }
  layer.emplace(initial.Encode(), 0);

  uint64_t states_expanded = 0;
  const Round horizon = instance.horizon();

  // Decoding helper: rebuild a State from its key.
  auto decode = [&](const std::vector<uint32_t>& key) {
    State s;
    s.config.assign(key.begin(), key.begin() + m);
    s.pending.assign(num_colors, {});
    size_t pos = m;
    for (uint32_t c = 0; c < num_colors; ++c) {
      uint32_t len = key[pos++];
      s.pending[c].reserve(len);
      for (uint32_t i = 0; i < len; ++i) {
        uint32_t rel = key[pos++];
        uint32_t count = key[pos++];
        s.pending[c].emplace_back(rel, count);
      }
    }
    return s;
  };

  std::vector<std::vector<uint32_t>> configs;
  std::vector<uint32_t> scratch;

  for (Round k = 0; k < horizon; ++k) {
    next_layer.clear();
    auto next_arrivals = arrivals_of(k + 1);

    for (const auto& [key, base_cost] : layer) {
      if (++states_expanded > options.max_states) return std::nullopt;
      State s = decode(key);

      // Alphabet: current colors ∪ nonidle colors (reconfiguring to an idle
      // color is dominated; "keep" is covered by including current colors).
      std::vector<uint32_t> alphabet = s.config;
      for (uint32_t c = 0; c < num_colors; ++c) {
        if (!s.pending[c].empty()) alphabet.push_back(c);
      }
      std::sort(alphabet.begin(), alphabet.end());
      alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                     alphabet.end());

      configs.clear();
      scratch.clear();
      EnumerateConfigs(alphabet, m, 0, scratch, configs);

      for (const std::vector<uint32_t>& config : configs) {
        uint64_t cost =
            base_cost + delta * (m - SortedOverlap(s.config, config));

        // Execution phase: each resource executes the earliest-deadline
        // pending job of its color.
        State t;
        t.config = config;
        t.pending = s.pending;
        for (size_t i = 0; i < config.size();) {
          uint32_t c = config[i];
          size_t j = i;
          while (j < config.size() && config[j] == c) ++j;
          uint32_t copies = static_cast<uint32_t>(j - i);
          i = j;
          if (c == kBlack) continue;
          ColorPending& p = t.pending[c];
          while (copies > 0 && !p.empty()) {
            uint32_t take = std::min(copies, p.front().second);
            p.front().second -= take;
            copies -= take;
            if (p.front().second == 0) p.erase(p.begin());
          }
        }

        // Advance to round k+1: decrement relative deadlines, drop rel==1.
        for (uint32_t c = 0; c < num_colors; ++c) {
          ColorPending& p = t.pending[c];
          size_t out = 0;
          for (auto& [rel, count] : p) {
            if (rel == 1) {
              // Dropped in round k+1's drop phase (weighted).
              cost += count * instance.drop_cost(c);
            } else {
              p[out++] = {rel - 1, count};
            }
          }
          p.resize(out);
        }
        // Arrivals of round k+1.
        for (const auto& [c, count] : next_arrivals) {
          t.pending[c].emplace_back(
              static_cast<uint32_t>(instance.delay_bound(c)), count);
        }

        auto enc = t.Encode();
        auto [it, inserted] = next_layer.emplace(std::move(enc), cost);
        if (!inserted && cost < it->second) it->second = cost;
      }
    }
    layer.swap(next_layer);
  }

  uint64_t best = static_cast<uint64_t>(-1);
  for (const auto& [key, cost] : layer) best = std::min(best, cost);
  RRS_CHECK(!layer.empty());

  DpReferenceResult result;
  result.total_cost = best;
  result.states_expanded = states_expanded;
  return result;
}

}  // namespace offline
}  // namespace rrs
