#include "offline/lower_bound.h"

#include <algorithm>

#include "sched/par_edf.h"
#include "workload/uncertain.h"

namespace rrs {
namespace offline {

uint64_t DropLowerBound(const Instance& instance, uint32_t m) {
  // Par-EDF maximizes the number of executed jobs, so every m-resource
  // schedule drops at least ParEdfDropCost jobs; with variable drop costs,
  // each of those costs at least the cheapest color's weight.
  uint64_t count = ParEdfDropCost(instance, m);
  if (count == 0) return 0;
  uint64_t min_weight = static_cast<uint64_t>(-1);
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    if (instance.jobs_per_color()[c] > 0) {
      min_weight = std::min(min_weight, instance.drop_cost(c));
    }
  }
  return count * min_weight;
}

uint64_t ColorLowerBound(const Instance& instance, const CostModel& model) {
  // Per color: OFF either configures it at least once (>= Δ) or drops all
  // its jobs (count * drop cost).
  uint64_t total = 0;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    uint64_t count = instance.jobs_per_color()[c];
    if (count == 0) continue;
    total += std::min(count * instance.drop_cost(c), model.delta);
  }
  return total;
}

uint64_t LowerBound(const Instance& instance, uint32_t m,
                    const CostModel& model) {
  return std::max(DropLowerBound(instance, m), ColorLowerBound(instance, model));
}

uint64_t CapacityRelaxedDrops(std::span<const uint32_t> rle, uint32_t m) {
  uint64_t cum = 0;
  uint64_t worst = 0;
  for (size_t i = 0; i + 1 < rle.size(); i += 2) {
    const uint64_t rel = rle[i];
    cum += rle[i + 1];
    const uint64_t capacity = rel * m;
    if (cum > capacity) worst = std::max(worst, cum - capacity);
  }
  return worst;
}

uint64_t CapacityRelaxedDropsEnvelope(std::span<const uint32_t> rle3,
                                      uint32_t m, bool pessimistic) {
  const size_t count_off = pessimistic ? 2 : 1;
  uint64_t cum = 0;
  uint64_t worst = 0;
  for (size_t i = 0; i + 2 < rle3.size(); i += 3) {
    const uint64_t rel = rle3[i];
    cum += rle3[i + count_off];
    const uint64_t capacity = rel * m;
    if (cum > capacity) worst = std::max(worst, cum - capacity);
  }
  return worst;
}

uint64_t RobustLowerBound(const workload::UncertainInstance& set, uint32_t m,
                          const CostModel& model) {
  return LowerBound(set.ForcedInstance(), m, model);
}

}  // namespace offline
}  // namespace rrs
