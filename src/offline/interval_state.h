// Packed interval-valued search states for the robust (interval-uncertainty)
// offline solver, plus the containment predicates its dominance merging uses.
//
// Layout (uint32 words, mirroring offline/optimal.cpp's concrete states):
//
//   [config multiset: m sorted words, black = num_colors]
//   [per color: len, then len triples (rel, lo, hi)]
//
// where `rel` is the relative deadline (strictly ascending within a color),
// and [lo, hi] brackets how many jobs of that bucket are pending: `lo` under
// the optimistic arrival envelope (only forced, zero-width-window jobs) and
// `hi` under the pessimistic envelope (every windowed job present at every
// round of its window). Invariants: lo <= hi and hi >= 1 per bucket (a
// bucket whose hi reaches 0 is elided). A zero-width window set collapses to
// lo == hi everywhere — the concrete solver's states with counts doubled up.
//
// Containment ("A contains B"): at equal config multiset, A's envelopes
// bracket B's pointwise in the cumulative domain — for every horizon t,
//
//   cum_lo_A(t) <= cum_lo_B(t)   and   cum_hi_B(t) <= cum_hi_A(t)
//
// per color. Then every pending-profile behavior reachable from B under some
// concrete trace is also covered by A's envelopes, so once A's accumulated
// cost interval also contains B's, B is redundant for *both* bracket sides
// and the solver may prune it (the dominance rule; soundness argument in
// DESIGN.md §3.14). Cumulative — not bucket-wise — comparison matters: a
// profile can contain another whose buckets cross it (tests pin this via the
// golden corpus).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rrs {
namespace offline {

// One pending bucket of an interval profile, used by tests and encoding
// helpers; the solver itself works on raw packed words.
struct IntervalBucket {
  uint32_t rel = 0;  // relative deadline, >= 1
  uint32_t lo = 0;   // optimistic pending count
  uint32_t hi = 0;   // pessimistic pending count, >= max(lo, 1)
};

// True when envelope profile `a` contains envelope profile `b`: for every
// horizon t, cum_lo_a(t) <= cum_lo_b(t) and cum_hi_b(t) <= cum_hi_a(t).
// Profiles are interleaved (rel, lo, hi) triples ascending by rel; `alen`
// and `blen` count triples.
bool IntervalProfileContains(const uint32_t* a, uint32_t alen,
                             const uint32_t* b, uint32_t blen);

// True when state `a` contains state `b`: identical config multiset (first
// m words) and per-color profile containment. Spans use the packed layout
// above and must describe the same (m, num_colors) shape.
bool IntervalStateContains(std::span<const uint32_t> a,
                           std::span<const uint32_t> b, uint32_t m,
                           uint32_t num_colors);

// The robust solver's dominance predicate: `a` makes `b` redundant when `a`
// contains `b` and `a`'s accumulated cost interval contains `b`'s
// ([a_cost_lo, a_cost_hi] ⊇ [b_cost_lo, b_cost_hi]). Pruning `b` preserves
// both certified bracket sides; it is never sound in reverse unless the
// states are identical (mutual containment forces equal spans and costs).
bool IntervalStateDominates(std::span<const uint32_t> a, uint64_t a_cost_lo,
                            uint64_t a_cost_hi, std::span<const uint32_t> b,
                            uint64_t b_cost_lo, uint64_t b_cost_hi, uint32_t m,
                            uint32_t num_colors);

// Packs (config, per-color buckets) into the layout above. `config` must be
// sorted ascending with black = num_colors; buckets per color must be
// strictly ascending in rel with lo <= hi and hi >= 1. The layout is
// snapshot-stable: tests pin the exact word sequence.
std::vector<uint32_t> EncodeIntervalState(
    std::span<const uint32_t> config,
    const std::vector<std::vector<IntervalBucket>>& per_color);

}  // namespace offline
}  // namespace rrs
