#include "offline/bruteforce.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace offline {

namespace {

// Pending jobs of one color: (absolute deadline, count), ascending.
using ColorPending = std::vector<std::pair<Round, uint64_t>>;

struct Search {
  const Instance& instance;
  uint32_t m;
  uint64_t delta;
  uint64_t max_nodes;
  uint64_t nodes = 0;
  bool exhausted = false;
  uint64_t best = static_cast<uint64_t>(-1);
  mutable std::vector<uint64_t> counts_scratch;

  explicit Search(const Instance& inst) : instance(inst), m(1), delta(1),
                                          max_nodes(0) {}

  void AddArrivals(Round k, std::vector<ColorPending>& pending) const {
    // Accumulate a full per-color count first: jobs within a round are not
    // guaranteed color-sorted, and appending one group per consecutive run
    // would create several same-deadline groups for a color — the drop
    // phase removes only the front group per round, so later duplicates
    // would silently escape their deadline.
    counts_scratch.assign(instance.num_colors(), 0);
    for (const Job& job : instance.jobs_in_round(k)) ++counts_scratch[job.color];
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      if (counts_scratch[c] == 0) continue;
      // Deadlines stay strictly ascending: earlier arrivals of c have
      // strictly earlier deadlines (same delay bound, earlier round).
      pending[c].emplace_back(k + instance.delay_bound(c), counts_scratch[c]);
    }
  }

  // Explore round k (state: post-arrival) with the given config and pending.
  void ExploreRound(Round k, const std::vector<ColorId>& config,
             const std::vector<ColorPending>& pending, uint64_t cost) {
    if (cost >= best) return;
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    if (k == instance.horizon()) {
      best = std::min(best, cost);
      return;
    }
    // Enumerate per-resource choices: keep, or ANY color (no WLOG
    // restriction; this is the point of the cross-check).
    std::vector<ColorId> next(config);
    EnumerateResource(k, 0, config, next, pending, cost);
  }

  void EnumerateResource(Round k, uint32_t r, const std::vector<ColorId>& old,
                         std::vector<ColorId>& next,
                         const std::vector<ColorPending>& pending,
                         uint64_t cost) {
    if (exhausted || cost >= best) return;
    if (r == m) {
      Apply(k, next, pending, cost);
      return;
    }
    // Keep first (cheapest) for better branch-and-bound ordering.
    next[r] = old[r];
    EnumerateResource(k, r + 1, old, next, pending, cost);
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      if (c == old[r]) continue;
      next[r] = c;
      EnumerateResource(k, r + 1, old, next, pending, cost + delta);
    }
    next[r] = old[r];
  }

  void Apply(Round k, const std::vector<ColorId>& config,
             std::vector<ColorPending> pending, uint64_t cost) {
    // Execution phase: earliest-deadline job per configured resource.
    for (ColorId c : config) {
      if (c == kNoColor) continue;
      ColorPending& p = pending[c];
      if (p.empty()) continue;
      if (--p.front().second == 0) p.erase(p.begin());
    }
    // Advance: drop phase of round k+1, then its arrivals. A `while` (not
    // `if`): every pending group whose deadline has arrived must pay, even
    // if the invariant of one group per deadline were ever relaxed.
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      ColorPending& p = pending[c];
      while (!p.empty() && p.front().first <= k + 1) {
        cost += p.front().second * instance.drop_cost(c);
        p.erase(p.begin());
      }
    }
    if (cost >= best) return;
    AddArrivals(k + 1, pending);
    ExploreRound(k + 1, config, pending, cost);
  }
};

}  // namespace

std::optional<uint64_t> SolveBruteForce(const Instance& instance,
                                        const BruteForceOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  if (instance.num_jobs() == 0) return 0;

  Search search(instance);
  search.m = options.num_resources;
  search.delta = options.cost_model.delta;
  search.max_nodes = options.max_nodes;

  std::vector<ColorId> config(options.num_resources, kNoColor);
  std::vector<ColorPending> pending(instance.num_colors());
  search.AddArrivals(0, pending);
  search.ExploreRound(0, config, pending, 0);

  if (search.exhausted) return std::nullopt;
  return search.best;
}

}  // namespace offline
}  // namespace rrs
