#include "offline/optimal.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace offline {

namespace {

// Black (unconfigured) sentinel inside state encodings: one past the last
// real color, so sorted configs are canonical.
struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Pending jobs of one color: (relative deadline, count), sorted ascending.
using ColorPending = std::vector<std::pair<uint32_t, uint32_t>>;

struct State {
  std::vector<uint32_t> config;        // sorted, size m, black = num_colors
  std::vector<ColorPending> pending;   // per color

  std::vector<uint32_t> Encode() const {
    std::vector<uint32_t> key;
    key.reserve(config.size() + pending.size() * 3);
    key.insert(key.end(), config.begin(), config.end());
    for (const ColorPending& p : pending) {
      key.push_back(static_cast<uint32_t>(p.size()));
      for (const auto& [rel, count] : p) {
        key.push_back(rel);
        key.push_back(count);
      }
    }
    return key;
  }
};

// Multiset overlap of two sorted vectors.
uint32_t SortedOverlap(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  uint32_t overlap = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// Replays a per-round configuration-multiset sequence against the instance,
// producing a concrete Schedule with real job ids. Resource assignment keeps
// as many resources in place as the multiset overlap allows (matching the
// DP's reconfiguration cost), reassigning the rest deterministically;
// executions pick the earliest-deadline (FIFO) pending job per resource.
Schedule ReplayConfigs(const Instance& instance, uint32_t m, uint32_t black,
                       const std::vector<std::vector<uint32_t>>& configs) {
  Schedule schedule(m, 1);
  std::vector<uint32_t> resource(m, black);
  std::vector<std::deque<JobId>> pending(instance.num_colors());

  for (Round k = 0; k < static_cast<Round>(configs.size()); ++k) {
    // Drop phase: expire deadline-k jobs.
    for (auto& queue : pending) {
      while (!queue.empty() && instance.deadline(queue.front()) == k) {
        queue.pop_front();
      }
    }
    // Arrival phase.
    auto jobs = instance.jobs_in_round(k);
    if (!jobs.empty()) {
      JobId id = instance.first_job_in_round(k);
      for (size_t i = 0; i < jobs.size(); ++i) {
        pending[jobs[i].color].push_back(id + static_cast<JobId>(i));
      }
    }
    // Reconfiguration phase: realize the target multiset with minimal
    // changes. need[c] = multiplicity of c in the target.
    const std::vector<uint32_t>& target = configs[static_cast<size_t>(k)];
    std::map<uint32_t, uint32_t> need;
    for (uint32_t c : target) ++need[c];
    std::vector<uint8_t> keep(m, 0);
    for (uint32_t r = 0; r < m; ++r) {
      auto it = need.find(resource[r]);
      if (it != need.end() && it->second > 0) {
        keep[r] = 1;
        --it->second;
      }
    }
    std::vector<uint32_t> leftovers;
    for (const auto& [c, count] : need) {
      for (uint32_t i = 0; i < count; ++i) leftovers.push_back(c);
    }
    size_t next_leftover = 0;
    for (uint32_t r = 0; r < m; ++r) {
      if (keep[r]) continue;
      RRS_CHECK_LT(next_leftover, leftovers.size());
      uint32_t c = leftovers[next_leftover++];
      resource[r] = c;
      schedule.AddReconfig(k, 0, r,
                           c == black ? kNoColor : static_cast<ColorId>(c));
    }
    // Execution phase.
    for (uint32_t r = 0; r < m; ++r) {
      uint32_t c = resource[r];
      if (c == black) continue;
      auto& queue = pending[c];
      if (queue.empty()) continue;
      schedule.AddExecution(k, 0, r, queue.front());
      queue.pop_front();
    }
  }
  return schedule;
}

// Enumerates all sorted multisets of size m over the sorted alphabet.
void EnumerateConfigs(const std::vector<uint32_t>& alphabet, uint32_t m,
                      size_t from, std::vector<uint32_t>& current,
                      std::vector<std::vector<uint32_t>>& out) {
  if (current.size() == m) {
    out.push_back(current);
    return;
  }
  for (size_t i = from; i < alphabet.size(); ++i) {
    current.push_back(alphabet[i]);
    EnumerateConfigs(alphabet, m, i, current, out);
    current.pop_back();
  }
}

}  // namespace

std::optional<OptimalResult> SolveOptimal(const Instance& instance,
                                          const OptimalOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  const uint32_t m = options.num_resources;
  const uint32_t num_colors = static_cast<uint32_t>(instance.num_colors());
  const uint32_t kBlack = num_colors;
  const uint64_t delta = options.cost_model.delta;

  if (instance.num_jobs() == 0) {
    OptimalResult empty;
    if (options.reconstruct_schedule) empty.schedule = Schedule(m, 1);
    return empty;
  }

  // Per-round per-color arrival counts, gathered once.
  auto arrivals_of = [&](Round k) {
    std::vector<std::pair<ColorId, uint32_t>> out;
    auto jobs = instance.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      ColorId c = jobs[i].color;
      uint32_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      out.emplace_back(c, count);
    }
    return out;
  };

  // Layer k: canonical state -> min cost, for states after the arrival phase
  // of round k.
  std::unordered_map<std::vector<uint32_t>, uint64_t, VecHash> layer;
  std::unordered_map<std::vector<uint32_t>, uint64_t, VecHash> next_layer;

  // Parent links for schedule reconstruction: per round, best predecessor
  // state and the configuration used during that round.
  struct Parent {
    std::vector<uint32_t> prev_key;
    std::vector<uint32_t> config;
  };
  std::vector<std::unordered_map<std::vector<uint32_t>, Parent, VecHash>>
      parents;

  State initial;
  initial.config.assign(m, kBlack);
  initial.pending.assign(num_colors, {});
  for (const auto& [c, count] : arrivals_of(0)) {
    initial.pending[c].emplace_back(
        static_cast<uint32_t>(instance.delay_bound(c)), count);
  }
  layer.emplace(initial.Encode(), 0);

  uint64_t states_expanded = 0;
  const Round horizon = instance.horizon();

  // Decoding helper: rebuild a State from its key.
  auto decode = [&](const std::vector<uint32_t>& key) {
    State s;
    s.config.assign(key.begin(), key.begin() + m);
    s.pending.assign(num_colors, {});
    size_t pos = m;
    for (uint32_t c = 0; c < num_colors; ++c) {
      uint32_t len = key[pos++];
      s.pending[c].reserve(len);
      for (uint32_t i = 0; i < len; ++i) {
        uint32_t rel = key[pos++];
        uint32_t count = key[pos++];
        s.pending[c].emplace_back(rel, count);
      }
    }
    return s;
  };

  std::vector<std::vector<uint32_t>> configs;
  std::vector<uint32_t> scratch;

  if (options.reconstruct_schedule) {
    parents.resize(static_cast<size_t>(horizon));
  }

  for (Round k = 0; k < horizon; ++k) {
    next_layer.clear();
    auto next_arrivals = arrivals_of(k + 1);
    auto* parent_map =
        options.reconstruct_schedule ? &parents[static_cast<size_t>(k)]
                                     : nullptr;

    for (const auto& [key, base_cost] : layer) {
      if (++states_expanded > options.max_states) return std::nullopt;
      State s = decode(key);

      // Alphabet: current colors ∪ nonidle colors (reconfiguring to an idle
      // color is dominated; "keep" is covered by including current colors).
      std::vector<uint32_t> alphabet = s.config;
      for (uint32_t c = 0; c < num_colors; ++c) {
        if (!s.pending[c].empty()) alphabet.push_back(c);
      }
      std::sort(alphabet.begin(), alphabet.end());
      alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                     alphabet.end());

      configs.clear();
      scratch.clear();
      EnumerateConfigs(alphabet, m, 0, scratch, configs);

      for (const std::vector<uint32_t>& config : configs) {
        uint64_t cost =
            base_cost + delta * (m - SortedOverlap(s.config, config));

        // Execution phase: each resource executes the earliest-deadline
        // pending job of its color.
        State t;
        t.config = config;
        t.pending = s.pending;
        for (size_t i = 0; i < config.size();) {
          uint32_t c = config[i];
          size_t j = i;
          while (j < config.size() && config[j] == c) ++j;
          uint32_t copies = static_cast<uint32_t>(j - i);
          i = j;
          if (c == kBlack) continue;
          ColorPending& p = t.pending[c];
          while (copies > 0 && !p.empty()) {
            uint32_t take = std::min(copies, p.front().second);
            p.front().second -= take;
            copies -= take;
            if (p.front().second == 0) p.erase(p.begin());
          }
        }

        // Advance to round k+1: decrement relative deadlines, drop rel==1.
        for (uint32_t c = 0; c < num_colors; ++c) {
          ColorPending& p = t.pending[c];
          size_t out = 0;
          for (auto& [rel, count] : p) {
            if (rel == 1) {
              // Dropped in round k+1's drop phase (weighted).
              cost += count * instance.drop_cost(c);
            } else {
              p[out++] = {rel - 1, count};
            }
          }
          p.resize(out);
        }
        // Arrivals of round k+1.
        for (const auto& [c, count] : next_arrivals) {
          t.pending[c].emplace_back(
              static_cast<uint32_t>(instance.delay_bound(c)), count);
        }

        auto enc = t.Encode();
        auto [it, inserted] = next_layer.emplace(enc, cost);
        bool improved = inserted || cost < it->second;
        if (!inserted && cost < it->second) it->second = cost;
        if (improved && parent_map != nullptr) {
          (*parent_map)[enc] = Parent{key, config};
        }
      }
    }
    layer.swap(next_layer);
  }

  uint64_t best = static_cast<uint64_t>(-1);
  const std::vector<uint32_t>* best_key = nullptr;
  for (const auto& [key, cost] : layer) {
    if (cost < best) {
      best = cost;
      best_key = &key;
    }
  }
  RRS_CHECK(!layer.empty());

  OptimalResult result;
  result.total_cost = best;
  result.states_expanded = states_expanded;

  if (options.reconstruct_schedule) {
    // Backtrack the per-round configurations of the best path, then replay
    // them against the instance with real job ids.
    std::vector<std::vector<uint32_t>> configs(static_cast<size_t>(horizon));
    std::vector<uint32_t> cursor = *best_key;
    for (Round k = horizon; k-- > 0;) {
      const auto& parent_map = parents[static_cast<size_t>(k)];
      auto it = parent_map.find(cursor);
      RRS_CHECK(it != parent_map.end()) << "broken parent chain at round " << k;
      configs[static_cast<size_t>(k)] = it->second.config;
      cursor = it->second.prev_key;
    }
    result.schedule = ReplayConfigs(instance, m, kBlack, configs);
  }
  return result;
}

}  // namespace offline
}  // namespace rrs
