#include "offline/optimal.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/scope.h"
#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace rrs {
namespace offline {

namespace {

constexpr uint32_t kNoIndex = 0xffffffffu;
// Merge shards per layer. Fixed (not derived from the pool size) so the
// canonical layer order — shard by config hash, span-lexicographic inside a
// shard — is identical for every thread count.
constexpr uint32_t kNumShards = 32;
// Dominance is quadratic per config group; each state is checked against at
// most this many cheaper groupmates, which keeps the pass linear-ish while
// still catching the dense equal-config clusters where dominance pays.
constexpr uint32_t kDominanceScanCap = 32;

uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// FNV-1a over the words with a final avalanche: the table probes use the low
// bits and the shard split uses the high bits, so both need mixing.
uint64_t HashSpan(const uint32_t* p, uint32_t n) {
  uint64_t h = 1469598103934665603ULL ^ (uint64_t{n} << 32);
  for (uint32_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

// Multiset overlap of two sorted uint32 spans of equal length m.
uint32_t SortedOverlap(const uint32_t* a, const uint32_t* b, uint32_t m) {
  uint32_t overlap = 0;
  uint32_t i = 0, j = 0;
  while (i < m && j < m) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// One canonical state: a contiguous uint32 span in an arena —
// [config (m sorted words, black = num_colors)] then [per color: length,
// (rel, count) pairs ascending by rel] — plus search bookkeeping.
struct Node {
  uint64_t hash = 0;
  uint64_t cost = 0;
  uint32_t offset = 0;  // into the owning store's arena
  uint32_t len = 0;     // span length in words
  uint32_t parent = kNoIndex;  // index into the previous layer's nodes
};

// Arena + node list + open-addressing intern table. Single-writer; chunk
// expansion and shard merge each own one, so the hot path takes no locks and
// performs no per-state heap allocation (arena/node vectors grow amortized).
struct NodeStore {
  std::vector<uint32_t> arena;
  std::vector<Node> nodes;
  std::vector<uint32_t> slots;  // node indices; kNoIndex = empty
  uint64_t mask = 0;

  const uint32_t* span(const Node& n) const { return arena.data() + n.offset; }

  void Reset(size_t expected) {
    arena.clear();
    nodes.clear();
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    slots.assign(cap, kNoIndex);
    mask = cap - 1;
  }

  void Rehash() {
    size_t cap = slots.size() * 2;
    slots.assign(cap, kNoIndex);
    mask = cap - 1;
    for (uint32_t i = 0; i < nodes.size(); ++i) {
      uint64_t pos = nodes[i].hash & mask;
      while (slots[pos] != kNoIndex) pos = (pos + 1) & mask;
      slots[pos] = i;
    }
  }

  // Interns (span, cost, parent), keeping the minimum (cost, parent) per
  // state. That pair is a total order, so the surviving entry is independent
  // of insertion order — the root of thread-count determinism.
  void Intern(uint64_t hash, const uint32_t* sp, uint32_t len, uint64_t cost,
              uint32_t parent) {
    uint64_t pos = hash & mask;
    for (;;) {
      uint32_t idx = slots[pos];
      if (idx == kNoIndex) break;
      Node& n = nodes[idx];
      if (n.hash == hash && n.len == len &&
          std::memcmp(arena.data() + n.offset, sp, len * sizeof(uint32_t)) ==
              0) {
        if (cost < n.cost || (cost == n.cost && parent < n.parent)) {
          n.cost = cost;
          n.parent = parent;
        }
        return;
      }
      pos = (pos + 1) & mask;
    }
    Node n;
    n.hash = hash;
    n.cost = cost;
    n.offset = static_cast<uint32_t>(arena.size());
    n.len = len;
    n.parent = parent;
    arena.insert(arena.end(), sp, sp + len);
    slots[pos] = static_cast<uint32_t>(nodes.size());
    nodes.push_back(n);
    if (nodes.size() * 4 >= slots.size() * 3) Rehash();
  }
};

// A finalized layer: nodes in canonical order (config-hash shard, then
// span-lexicographic) over one contiguous arena.
struct PackedLayer {
  std::vector<uint32_t> arena;
  std::vector<Node> nodes;

  const uint32_t* span(const Node& n) const { return arena.data() + n.offset; }
};

// True when profile `a` is pointwise cumulative-dominated: for every horizon
// t, a has at most as many jobs due within t as b. Profiles are (rel, count)
// pairs ascending by rel.
bool ProfileDominates(const uint32_t* a, uint32_t alen, const uint32_t* b,
                      uint32_t blen) {
  uint64_t cum_a = 0, cum_b = 0;
  uint32_t j = 0;
  for (uint32_t i = 0; i < alen; ++i) {
    cum_a += a[2 * i + 1];
    const uint32_t rel = a[2 * i];
    while (j < blen && b[2 * j] <= rel) {
      cum_b += b[2 * j + 1];
      ++j;
    }
    if (cum_a > cum_b) return false;
  }
  return true;
}

// Replays a per-round configuration-multiset sequence against the instance,
// producing a concrete Schedule with real job ids. Resource assignment keeps
// as many resources in place as the multiset overlap allows (matching the
// search's reconfiguration cost), reassigning the rest deterministically;
// executions pick the earliest-deadline (FIFO) pending job per resource.
Schedule ReplayConfigs(const Instance& instance, uint32_t m, uint32_t black,
                       const std::vector<std::vector<uint32_t>>& configs) {
  Schedule schedule(m, 1);
  std::vector<uint32_t> resource(m, black);
  std::vector<std::deque<JobId>> pending(instance.num_colors());

  for (Round k = 0; k < static_cast<Round>(configs.size()); ++k) {
    // Drop phase: expire deadline-k jobs.
    for (auto& queue : pending) {
      while (!queue.empty() && instance.deadline(queue.front()) == k) {
        queue.pop_front();
      }
    }
    // Arrival phase.
    auto jobs = instance.jobs_in_round(k);
    if (!jobs.empty()) {
      JobId id = instance.first_job_in_round(k);
      for (size_t i = 0; i < jobs.size(); ++i) {
        pending[jobs[i].color].push_back(id + static_cast<JobId>(i));
      }
    }
    // Reconfiguration phase: realize the target multiset with minimal
    // changes. need[c] = multiplicity of c in the target.
    const std::vector<uint32_t>& target = configs[static_cast<size_t>(k)];
    std::map<uint32_t, uint32_t> need;
    for (uint32_t c : target) ++need[c];
    std::vector<uint8_t> keep(m, 0);
    for (uint32_t r = 0; r < m; ++r) {
      auto it = need.find(resource[r]);
      if (it != need.end() && it->second > 0) {
        keep[r] = 1;
        --it->second;
      }
    }
    std::vector<uint32_t> leftovers;
    for (const auto& [c, count] : need) {
      for (uint32_t i = 0; i < count; ++i) leftovers.push_back(c);
    }
    size_t next_leftover = 0;
    for (uint32_t r = 0; r < m; ++r) {
      if (keep[r]) continue;
      RRS_CHECK_LT(next_leftover, leftovers.size());
      uint32_t c = leftovers[next_leftover++];
      resource[r] = c;
      schedule.AddReconfig(k, 0, r,
                           c == black ? kNoColor : static_cast<ColorId>(c));
    }
    // Execution phase.
    for (uint32_t r = 0; r < m; ++r) {
      uint32_t c = resource[r];
      if (c == black) continue;
      auto& queue = pending[c];
      if (queue.empty()) continue;
      schedule.AddExecution(k, 0, r, queue.front());
      queue.pop_front();
    }
  }
  return schedule;
}

// Per-chunk expansion context: an intern store, the shard partition of its
// nodes, tallies, and all scratch buffers — everything a worker touches is
// chunk-local.
struct ExpandCtx {
  NodeStore store;
  std::array<std::vector<uint32_t>, kNumShards> by_shard;
  uint64_t generated = 0;
  uint64_t pruned = 0;

  // Scratch (reused across every parent/config of the chunk).
  std::vector<uint32_t> col_off;   // per color: offset of RLE in parent span
  std::vector<uint32_t> col_len;   // per color: RLE pair count
  std::vector<uint32_t> alphabet;  // candidate config colors, sorted
  std::vector<uint8_t> in_alphabet;
  std::vector<uint32_t> cfg;       // config being enumerated
  std::vector<uint32_t> exec;      // per color: executions under cfg
  std::vector<uint32_t> child;     // child span under construction
};

class Solver {
 public:
  Solver(const Instance& instance, const OptimalOptions& options)
      : instance_(instance),
        options_(options),
        m_(options.num_resources),
        num_colors_(static_cast<uint32_t>(instance.num_colors())),
        black_(num_colors_),
        delta_(options.cost_model.delta),
        horizon_(instance.horizon()) {}

  OptimalResult Run();

 private:
  void BuildArrivals();
  void MakeInitialLayer(PackedLayer& layer) const;
  uint64_t Heuristic(const uint32_t* span) const;
  void ExpandChunk(const PackedLayer& cur, size_t lo, size_t hi, Round k,
                   ExpandCtx& ctx) const;
  void EmitChildren(const PackedLayer& cur, uint32_t parent_index, Round k,
                    ExpandCtx& ctx) const;
  void EnumerateConfigs(const PackedLayer& cur, uint32_t parent_index, Round k,
                        size_t alpha_from, ExpandCtx& ctx) const;
  void ProcessConfig(const PackedLayer& cur, uint32_t parent_index, Round k,
                     ExpandCtx& ctx) const;
  uint64_t MergeShard(const std::vector<ExpandCtx>& chunks, uint32_t shard,
                      NodeStore& out) const;
  template <typename Fn>
  void ForIndices(int64_t n, Fn&& fn) const {
    if (options_.pool == nullptr) {
      for (int64_t i = 0; i < n; ++i) fn(i);
    } else {
      ParallelFor(*options_.pool, 0, n, fn);
    }
  }

  const Instance& instance_;
  const OptimalOptions& options_;
  const uint32_t m_;
  const uint32_t num_colors_;
  const uint32_t black_;
  const uint64_t delta_;
  const Round horizon_;

  // Dense per-round per-color arrival counts, gathered once.
  std::vector<std::vector<uint32_t>> arrivals_;
  uint64_t incumbent_ = ~uint64_t{0};
};

void Solver::BuildArrivals() {
  arrivals_.assign(static_cast<size_t>(horizon_) + 1,
                   std::vector<uint32_t>(num_colors_, 0));
  for (const Job& job : instance_.jobs()) {
    ++arrivals_[static_cast<size_t>(job.arrival)][job.color];
  }
}

void Solver::MakeInitialLayer(PackedLayer& layer) const {
  std::vector<uint32_t> span(m_, black_);
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t count = arrivals_[0][c];
    if (count == 0) {
      span.push_back(0);
    } else {
      span.push_back(1);
      span.push_back(static_cast<uint32_t>(instance_.delay_bound(c)));
      span.push_back(count);
    }
  }
  Node root;
  root.hash = HashSpan(span.data(), static_cast<uint32_t>(span.size()));
  root.cost = 0;
  root.offset = 0;
  root.len = static_cast<uint32_t>(span.size());
  root.parent = kNoIndex;
  layer.arena = std::move(span);
  layer.nodes = {root};
}

// Admissible lower bound on the completion cost of a state: per color, the
// capacity-relaxed EDF drops (the color owns all m resources, reconfiguration
// free — CapacityRelaxedDrops, a per-profile generalization of the Par-EDF
// drop leg of offline::LowerBound), and for colors outside the current
// config the ColorLowerBound alternative min(drop everything, one
// reconfiguration + relaxed drops). Each color's term charges only that
// color's drops and a reconfiguration *to that color*, so the sum never
// exceeds any completion's true remaining cost.
uint64_t Solver::Heuristic(const uint32_t* span) const {
  uint64_t h = 0;
  size_t pos = m_;
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t len = span[pos++];
    if (len == 0) continue;
    const uint32_t* rle = span + pos;
    pos += 2 * static_cast<size_t>(len);
    uint64_t pend = 0;
    for (uint32_t i = 0; i < len; ++i) pend += rle[2 * i + 1];
    const uint64_t w = instance_.drop_cost(c);
    uint64_t leg = CapacityRelaxedDrops({rle, 2 * static_cast<size_t>(len)},
                                        m_) * w;
    bool in_config = false;
    for (uint32_t r = 0; r < m_; ++r) {
      if (span[r] == c) {
        in_config = true;
        break;
      }
    }
    if (!in_config) leg = std::min(pend * w, delta_ + leg);
    h += leg;
  }
  return h;
}

void Solver::EmitChildren(const PackedLayer& cur, uint32_t parent_index,
                          Round k, ExpandCtx& ctx) const {
  const Node& node = cur.nodes[parent_index];
  const uint32_t* span = cur.span(node);

  // Index the parent's per-color RLE sections.
  size_t pos = m_;
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t len = span[pos++];
    ctx.col_len[c] = len;
    ctx.col_off[c] = static_cast<uint32_t>(pos);
    pos += 2 * static_cast<size_t>(len);
  }

  // Alphabet: current colors ∪ nonidle colors (reconfiguring to an idle
  // color is dominated; "keep" is covered by including current colors).
  ctx.alphabet.clear();
  for (uint32_t r = 0; r < m_; ++r) {
    const uint32_t c = span[r];
    if (!ctx.in_alphabet[c]) {
      ctx.in_alphabet[c] = 1;
      ctx.alphabet.push_back(c);
    }
  }
  for (uint32_t c = 0; c < num_colors_; ++c) {
    if (ctx.col_len[c] != 0 && !ctx.in_alphabet[c]) {
      ctx.in_alphabet[c] = 1;
      ctx.alphabet.push_back(c);
    }
  }
  std::sort(ctx.alphabet.begin(), ctx.alphabet.end());
  for (uint32_t c : ctx.alphabet) ctx.in_alphabet[c] = 0;

  ctx.cfg.clear();
  EnumerateConfigs(cur, parent_index, k, 0, ctx);
}

void Solver::EnumerateConfigs(const PackedLayer& cur, uint32_t parent_index,
                              Round k, size_t alpha_from,
                              ExpandCtx& ctx) const {
  if (ctx.cfg.size() == m_) {
    ProcessConfig(cur, parent_index, k, ctx);
    return;
  }
  for (size_t i = alpha_from; i < ctx.alphabet.size(); ++i) {
    ctx.cfg.push_back(ctx.alphabet[i]);
    EnumerateConfigs(cur, parent_index, k, i, ctx);
    ctx.cfg.pop_back();
  }
}

void Solver::ProcessConfig(const PackedLayer& cur, uint32_t parent_index,
                           Round k, ExpandCtx& ctx) const {
  const Node& node = cur.nodes[parent_index];
  const uint32_t* span = cur.span(node);
  const std::vector<uint32_t>& next_arrivals =
      arrivals_[static_cast<size_t>(k) + 1];

  uint64_t cost =
      node.cost + delta_ * (m_ - SortedOverlap(span, ctx.cfg.data(), m_));

  // Execution counts per color under this config (cfg is sorted).
  for (uint32_t i = 0; i < m_;) {
    const uint32_t c = ctx.cfg[i];
    uint32_t j = i;
    while (j < m_ && ctx.cfg[j] == c) ++j;
    if (c != black_) ctx.exec[c] = j - i;
    i = j;
  }

  // Build the child span in place: executions consume the earliest-deadline
  // entries, survivors advance one round (rel - 1; rel == 1 drops), arrivals
  // of round k+1 append at rel = D_c (strictly above every survivor).
  ctx.child.clear();
  ctx.child.insert(ctx.child.end(), ctx.cfg.begin(), ctx.cfg.end());
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const size_t len_pos = ctx.child.size();
    ctx.child.push_back(0);
    uint32_t out_len = 0;
    uint32_t remaining_exec = ctx.exec[c];
    const uint32_t* rle = span + ctx.col_off[c];  // col_off is span-relative
    const uint64_t w = instance_.drop_cost(c);
    for (uint32_t i = 0; i < ctx.col_len[c]; ++i) {
      const uint32_t rel = rle[2 * i];
      uint32_t count = rle[2 * i + 1];
      const uint32_t take = std::min(remaining_exec, count);
      remaining_exec -= take;
      count -= take;
      if (count == 0) continue;
      if (rel == 1) {
        cost += count * w;  // dropped in round k+1's drop phase (weighted)
        continue;
      }
      ctx.child.push_back(rel - 1);
      ctx.child.push_back(count);
      ++out_len;
    }
    const uint32_t arriving = next_arrivals[c];
    if (arriving != 0) {
      ctx.child.push_back(static_cast<uint32_t>(instance_.delay_bound(c)));
      ctx.child.push_back(arriving);
      ++out_len;
    }
    ctx.child[len_pos] = out_len;
  }
  for (uint32_t c : ctx.cfg) {
    if (c != black_) ctx.exec[c] = 0;
  }

  ++ctx.generated;
  if (options_.prune_bound && cost + Heuristic(ctx.child.data()) > incumbent_) {
    ++ctx.pruned;
    return;
  }
  const uint32_t len = static_cast<uint32_t>(ctx.child.size());
  ctx.store.Intern(HashSpan(ctx.child.data(), len), ctx.child.data(), len,
                   cost, parent_index);
}

void Solver::ExpandChunk(const PackedLayer& cur, size_t lo, size_t hi, Round k,
                         ExpandCtx& ctx) const {
  ctx.store.Reset((hi - lo) * 4);
  for (auto& list : ctx.by_shard) list.clear();
  ctx.generated = 0;
  ctx.pruned = 0;
  ctx.col_off.resize(num_colors_);
  ctx.col_len.resize(num_colors_);
  ctx.in_alphabet.assign(num_colors_ + 1, 0);
  ctx.exec.assign(num_colors_, 0);

  for (size_t i = lo; i < hi; ++i) {
    EmitChildren(cur, static_cast<uint32_t>(i), k, ctx);
  }
  // Partition by config shard (hash of the first m words): states sharing a
  // config land in the same shard, which makes config groups contiguous
  // after the per-shard lexicographic sort — dominance needs that.
  for (uint32_t i = 0; i < ctx.store.nodes.size(); ++i) {
    const uint64_t h = HashSpan(ctx.store.span(ctx.store.nodes[i]), m_);
    ctx.by_shard[h >> 59].push_back(i);
  }
}

// Merges one shard's candidates from every chunk (min-cost reduction), sorts
// span-lexicographically, and applies the dominance rule. Returns the number
// of dominated states removed.
uint64_t Solver::MergeShard(const std::vector<ExpandCtx>& chunks,
                            uint32_t shard, NodeStore& out) const {
  size_t expected = 0;
  for (const ExpandCtx& ctx : chunks) expected += ctx.by_shard[shard].size();
  if (expected == 0) {
    // Thin layers leave most shards empty; skip the table reset entirely —
    // at 32 shards x horizon layers the resets would dominate small solves.
    out.arena.clear();
    out.nodes.clear();
    return 0;
  }
  out.Reset(expected + 1);
  for (const ExpandCtx& ctx : chunks) {
    for (uint32_t idx : ctx.by_shard[shard]) {
      const Node& n = ctx.store.nodes[idx];
      out.Intern(n.hash, ctx.store.span(n), n.len, n.cost, n.parent);
    }
  }

  std::sort(out.nodes.begin(), out.nodes.end(),
            [&](const Node& a, const Node& b) {
              return std::lexicographical_compare(
                  out.span(a), out.span(a) + a.len, out.span(b),
                  out.span(b) + b.len);
            });

  if (!options_.prune_dominance || out.nodes.size() < 2) return 0;

  // Config groups are contiguous after the sort (the span starts with the
  // config words). Within a group, order by cost (stable: lexicographic
  // order breaks ties) and kill any state pointwise cumulative-dominated by
  // an earlier — no costlier — survivor.
  std::vector<Node>& nodes = out.nodes;
  std::vector<uint8_t> dead(nodes.size(), 0);
  std::vector<uint32_t> group;
  uint64_t removed = 0;
  auto same_config = [&](const Node& a, const Node& b) {
    return std::memcmp(out.span(a), out.span(b), m_ * sizeof(uint32_t)) == 0;
  };
  auto dominates = [&](const Node& a, const Node& b) {
    const uint32_t* pa = out.span(a);
    const uint32_t* pb = out.span(b);
    size_t ia = m_, ib = m_;
    for (uint32_t c = 0; c < num_colors_; ++c) {
      const uint32_t la = pa[ia++];
      const uint32_t lb = pb[ib++];
      if (!ProfileDominates(pa + ia, la, pb + ib, lb)) return false;
      ia += 2 * static_cast<size_t>(la);
      ib += 2 * static_cast<size_t>(lb);
    }
    return true;
  };

  size_t g0 = 0;
  while (g0 < nodes.size()) {
    size_t g1 = g0 + 1;
    while (g1 < nodes.size() && same_config(nodes[g0], nodes[g1])) ++g1;
    if (g1 - g0 >= 2) {
      group.resize(g1 - g0);
      for (size_t i = 0; i < group.size(); ++i) {
        group[i] = static_cast<uint32_t>(g0 + i);
      }
      std::stable_sort(group.begin(), group.end(),
                       [&](uint32_t a, uint32_t b) {
                         return nodes[a].cost < nodes[b].cost;
                       });
      for (size_t j = 1; j < group.size(); ++j) {
        uint32_t scanned = 0;
        for (size_t i = 0; i < j && scanned < kDominanceScanCap; ++i) {
          if (dead[group[i]]) continue;
          ++scanned;
          if (dominates(nodes[group[i]], nodes[group[j]])) {
            dead[group[j]] = 1;
            ++removed;
            break;
          }
        }
      }
    }
    g0 = g1;
  }
  if (removed != 0) {
    size_t w = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!dead[i]) nodes[w++] = nodes[i];
    }
    nodes.resize(w);
  }
  return removed;
}

OptimalResult Solver::Run() {
  OptimalResult result;

  if (instance_.num_jobs() == 0) {
    result.exact = true;
    if (options_.reconstruct_schedule) result.schedule = Schedule(m_, 1);
    return result;
  }

  BuildArrivals();

  // Incumbent: the clairvoyant portfolio (ΔLRU-EDF, greedy/lazy variants,
  // static partition) replayed at m resources — a certified upper bound on
  // OPT, so pruning at `g + h > incumbent` (strictly above) can never prune
  // every optimal path, and the final layer is provably nonempty.
  incumbent_ = ClairvoyantCost(instance_, m_, options_.cost_model).total_cost;
  result.upper_bound = incumbent_;

  const size_t threads =
      options_.pool == nullptr ? 0 : options_.pool->thread_count();

  std::vector<PackedLayer> history;  // populated only when reconstructing
  PackedLayer cur;
  MakeInitialLayer(cur);

  obs::LogHistogram layer_widths;
  std::vector<ExpandCtx> chunks;
  std::vector<NodeStore> shard_out(kNumShards);
  PackedLayer next;  // ping-pongs with cur so layer buffers are reused
  bool exhausted = false;

  for (Round k = 0; k < horizon_; ++k) {
    const size_t width = cur.nodes.size();
    layer_widths.Record(width);
    result.max_layer_width = std::max<uint64_t>(result.max_layer_width, width);
    if (result.states_expanded + width > options_.max_states) {
      exhausted = true;
      break;
    }
    result.states_expanded += width;

    // Chunked expansion: fixed ranges; the chunk count only affects work
    // partitioning, never the merged layer (the intern order is a total
    // order on (cost, parent)).
    const size_t num_chunks = std::clamp<size_t>(
        width / 64, 1, std::max<size_t>(1, 4 * (threads + 1)));
    chunks.resize(num_chunks);
    ForIndices(static_cast<int64_t>(num_chunks), [&](int64_t i) {
      const size_t lo = width * static_cast<size_t>(i) / num_chunks;
      const size_t hi = width * (static_cast<size_t>(i) + 1) / num_chunks;
      ExpandChunk(cur, lo, hi, k, chunks[static_cast<size_t>(i)]);
    });
    for (const ExpandCtx& ctx : chunks) {
      result.states_generated += ctx.generated;
      result.pruned_bound += ctx.pruned;
    }

    // Sharded min-cost merge + canonical sort + dominance, then one
    // contiguous next layer in shard order.
    std::array<uint64_t, kNumShards> dominated{};
    ForIndices(kNumShards, [&](int64_t s) {
      dominated[static_cast<size_t>(s)] =
          MergeShard(chunks, static_cast<uint32_t>(s),
                     shard_out[static_cast<size_t>(s)]);
    });
    for (uint64_t d : dominated) result.pruned_dominated += d;

    size_t total_nodes = 0, total_words = 0;
    std::array<size_t, kNumShards> node_base{}, word_base{};
    for (uint32_t s = 0; s < kNumShards; ++s) {
      node_base[s] = total_nodes;
      word_base[s] = total_words;
      total_nodes += shard_out[s].nodes.size();
      for (const Node& n : shard_out[s].nodes) total_words += n.len;
    }
    RRS_CHECK_GT(total_nodes, 0u) << "empty layer despite admissible pruning";

    next.arena.resize(total_words);
    next.nodes.resize(total_nodes);
    ForIndices(kNumShards, [&](int64_t si) {
      const uint32_t s = static_cast<uint32_t>(si);
      size_t word = word_base[s];
      size_t slot = node_base[s];
      for (const Node& n : shard_out[s].nodes) {
        Node copy = n;
        copy.offset = static_cast<uint32_t>(word);
        std::memcpy(next.arena.data() + word, shard_out[s].span(n),
                    n.len * sizeof(uint32_t));
        word += n.len;
        next.nodes[slot++] = copy;
      }
    });

    if (options_.reconstruct_schedule) {
      history.push_back(std::move(cur));
      cur = std::move(next);
      next = PackedLayer{};
    } else {
      std::swap(cur, next);  // keep both buffers alive for reuse
    }
  }

  if (!exhausted) {
    layer_widths.Record(cur.nodes.size());
    result.max_layer_width =
        std::max<uint64_t>(result.max_layer_width, cur.nodes.size());
  }

  if (exhausted) {
    // Certified bracket: every completion passes through (a dominating
    // surrogate of) a frontier state, so the minimum admissible frontier
    // bound lower-bounds OPT; the incumbent upper-bounds it.
    const size_t width = cur.nodes.size();
    std::vector<uint64_t> chunk_min(
        std::max<size_t>(1, std::min<size_t>(width, 4 * (threads + 1))),
        ~uint64_t{0});
    const size_t num_chunks = chunk_min.size();
    ForIndices(static_cast<int64_t>(num_chunks), [&](int64_t i) {
      const size_t lo = width * static_cast<size_t>(i) / num_chunks;
      const size_t hi = width * (static_cast<size_t>(i) + 1) / num_chunks;
      uint64_t best = ~uint64_t{0};
      for (size_t j = lo; j < hi; ++j) {
        const Node& n = cur.nodes[j];
        best = std::min(best, n.cost + Heuristic(cur.span(n)));
      }
      chunk_min[static_cast<size_t>(i)] = best;
    });
    uint64_t frontier = ~uint64_t{0};
    for (uint64_t v : chunk_min) frontier = std::min(frontier, v);
    result.exact = false;
    result.lower_bound = std::max(
        std::min(frontier, incumbent_),
        LowerBound(instance_, m_, options_.cost_model));
    result.total_cost = result.upper_bound;
  } else {
    uint64_t best = ~uint64_t{0};
    uint32_t best_index = kNoIndex;
    for (uint32_t i = 0; i < cur.nodes.size(); ++i) {
      if (cur.nodes[i].cost < best) {
        best = cur.nodes[i].cost;
        best_index = i;
      }
    }
    RRS_CHECK(best_index != kNoIndex);
    result.exact = true;
    result.total_cost = best;
    result.lower_bound = best;
    result.upper_bound = best;

    if (options_.reconstruct_schedule) {
      // Backtrack the per-round configurations of the best path — each
      // layer-(k+1) state's config multiset is the configuration used during
      // round k — then replay them against the instance with real job ids.
      history.push_back(std::move(cur));
      std::vector<std::vector<uint32_t>> configs(
          static_cast<size_t>(horizon_));
      uint32_t idx = best_index;
      for (Round k = horizon_; k-- > 0;) {
        const PackedLayer& layer = history[static_cast<size_t>(k) + 1];
        const Node& n = layer.nodes[idx];
        const uint32_t* span = layer.span(n);
        configs[static_cast<size_t>(k)].assign(span, span + m_);
        RRS_CHECK(n.parent != kNoIndex || k == 0)
            << "broken parent chain at round " << k;
        idx = n.parent;
      }
      result.schedule = ReplayConfigs(instance_, m_, black_, configs);
    }
  }

  if (obs::Scope* scope = obs::EffectiveScope(options_.obs_scope)) {
    const std::pair<std::string_view, uint64_t> counters[] = {
        {"offline.solves", 1},
        {"offline.solves_exact", result.exact ? 1u : 0u},
        {"offline.states_expanded", result.states_expanded},
        {"offline.states_generated", result.states_generated},
        {"offline.pruned_bound", result.pruned_bound},
        {"offline.pruned_dominated", result.pruned_dominated},
    };
    scope->AbsorbCounters(counters);
    scope->AbsorbHistogram("offline.layer_width", layer_widths);
  }
  return result;
}

}  // namespace

OptimalResult SolveOptimal(const Instance& instance,
                           const OptimalOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  Solver solver(instance, options);
  return solver.Run();
}

}  // namespace offline
}  // namespace rrs
