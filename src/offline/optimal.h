// Exact offline optimal cost via a cost-bounded, lower-bound-pruned,
// layer-parallel branch-and-bound search over packed canonical states. This
// is the OFF of the paper's competitive analysis, computed exactly where the
// search completes and bracketed where it does not; experiment E3 measures
// ΔLRU-EDF's empirical competitive ratio against it.
//
// State after the arrival phase of round k:
//   - the multiset of resource colors (resources are interchangeable, so the
//     sorted multiset is canonical);
//   - per color, the multiset of *relative* deadlines of pending jobs
//     (unit jobs collapse to (relative deadline, count) pairs; relative
//     encoding maximizes state sharing across rounds).
//
// States are packed: each state is a contiguous uint32 span in a per-layer
// arena — [config multiset (m words, sorted, black = num_colors)] followed by
// [per color: length, then (rel, count) RLE pairs] — keyed by a mixed 64-bit
// hash of the span. The hot loop interns child spans into open-addressing
// tables without ever materializing a per-state object or per-state heap
// allocation.
//
// Transition (one round): choose the next color multiset C' over
// {colors with pending work} ∪ {current colors} — reconfiguring to an idle
// color is dominated, since the reconfiguration can always be postponed to
// the round of first use at equal cost — pay Δ·(m − |C ∩ C'| as multisets)
// (an optimal assignment keeps matching resources in place), then each
// resource executes the earliest-deadline pending job of its color
// (exchange-optimal within a color; idling a resource whose color has
// pending work is dominated because executing any job never increases cost),
// then advance: jobs reaching deadline drop at their color's drop cost,
// round-(k+1) arrivals join.
//
// Pruning (both exactness-preserving; see DESIGN.md §"Offline solver"):
//   - admissible bound: an incumbent upper bound is seeded from the
//     clairvoyant policy portfolio (which replays ΔLRU-EDF among others);
//     a child with g + h strictly above it is dead, where h is the per-state
//     admissible completion bound (per-color capacity-relaxed EDF drops and
//     minimum future reconfiguration cost, generalizing offline/lower_bound);
//   - dominance: at equal config multiset, a state whose per-color pending
//     profile is pointwise cumulative-dominated by a state of no greater
//     cost cannot lead to a better completion and is dead.
//
// Parallelism: each layer's states are expanded in independent chunks on the
// supplied ThreadPool, then merged by min-cost reduction into config-sharded
// open-addressing tables and canonically sorted — no locks on the hot path,
// and results (costs, bracket, expansion counts, reconstructed schedule) are
// bit-identical for every thread count, including pool == nullptr.
//
// Complexity is exponential; the solver enforces an expansion budget checked
// at layer granularity and degrades gracefully beyond it: instead of failing,
// it returns a certified [lower_bound, upper_bound] bracket on OPT (the best
// frontier bound and the incumbent). Honest envelope with pruning: m <= 4
// resources, <= 6 colors, horizon <= ~128 at moderate load (validated against
// offline::SolveBruteForce on small instances and the retained reference DP).
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {

class ThreadPool;

namespace obs {
class Scope;
}  // namespace obs

namespace offline {

struct OptimalOptions {
  uint32_t num_resources = 1;
  CostModel cost_model;
  // Expansion budget, checked before each layer: when the next layer would
  // push the total expansions past this, the search stops and the result
  // carries exact == false with a certified [lower_bound, upper_bound]
  // bracket instead of the exact optimum.
  uint64_t max_states = 5'000'000;
  // Also reconstruct an optimal Schedule (with real JobIds) by backtracking
  // the search and replaying the chosen configuration sequence. The schedule
  // is suitable for Schedule::Validate, whose recomputed cost must equal
  // total_cost (tests pin this). Present only when the solve is exact.
  // Costs extra memory (every layer is retained for parent links).
  bool reconstruct_schedule = false;
  // Worker pool for layer-parallel expansion; nullptr runs single-threaded.
  // Results are identical for every pool size.
  ThreadPool* pool = nullptr;
  // Optional observability scope: records offline.* counters (expansions,
  // prune counts) and the offline.layer_width histogram. Falls back to the
  // global scope; null disables.
  obs::Scope* obs_scope = nullptr;
  // Testing/ablation knobs; both default on. Disabling prune_bound also
  // skips the incumbent replay (pure layered DP + dominance).
  bool prune_bound = true;
  bool prune_dominance = true;
};

struct OptimalResult {
  // True when the search completed within max_states: total_cost ==
  // lower_bound == upper_bound is the exact optimum. False on budget
  // exhaustion: [lower_bound, upper_bound] is a certified bracket on OPT
  // (lower: best admissible frontier bound, floored by offline::LowerBound;
  // upper: the incumbent portfolio replay) and total_cost == upper_bound.
  bool exact = false;
  uint64_t total_cost = 0;
  uint64_t lower_bound = 0;
  uint64_t upper_bound = 0;
  // Search effort: states expanded (sum of layer widths), children generated
  // before dedup, prune tallies, and the widest layer. All deterministic.
  uint64_t states_expanded = 0;
  uint64_t states_generated = 0;
  uint64_t pruned_bound = 0;
  uint64_t pruned_dominated = 0;
  uint64_t max_layer_width = 0;
  // Present iff reconstruct_schedule was set and the solve is exact.
  std::optional<Schedule> schedule;
};

// Minimum total cost over all offline schedules with the given number of
// resources: exact when the budget suffices, otherwise a certified bracket
// (see OptimalResult::exact). Never fails.
OptimalResult SolveOptimal(const Instance& instance,
                           const OptimalOptions& options);

}  // namespace offline
}  // namespace rrs
