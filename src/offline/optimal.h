// Exact offline optimal cost via forward dynamic programming over canonical
// simulation states. This is the OFF of the paper's competitive analysis,
// computed exactly; experiment E3 measures ΔLRU-EDF's empirical competitive
// ratio against it.
//
// State after the arrival phase of round k:
//   - the multiset of resource colors (resources are interchangeable, so the
//     sorted multiset is canonical);
//   - per color, the multiset of *relative* deadlines of pending jobs
//     (unit jobs collapse to (relative deadline, count) pairs; relative
//     encoding maximizes state sharing across rounds).
//
// Transition (one round): choose the next color multiset C' over
// {colors with pending work} ∪ {current colors} — reconfiguring to an idle
// color is dominated, since the reconfiguration can always be postponed to
// the round of first use at equal cost — pay Δ·(m − |C ∩ C'| as multisets)
// (an optimal assignment keeps matching resources in place), then each
// resource executes the earliest-deadline pending job of its color
// (exchange-optimal within a color; idling a resource whose color has
// pending work is dominated because executing any job never increases cost),
// then advance: jobs reaching deadline drop at unit cost, round-(k+1)
// arrivals join.
//
// Complexity is exponential; the solver enforces an expansion budget and
// fails loudly beyond it. Intended envelope: m <= 3 resources, <= 4 colors,
// horizon <= ~64, a few dozen jobs.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {
namespace offline {

struct OptimalOptions {
  uint32_t num_resources = 1;
  CostModel cost_model;
  // Abort (return nullopt) if the DP expands more than this many states.
  uint64_t max_states = 5'000'000;
  // Also reconstruct an optimal Schedule (with real JobIds) by backtracking
  // the DP and replaying the chosen configuration sequence. The schedule is
  // suitable for Schedule::Validate, whose recomputed cost must equal
  // total_cost (tests pin this). Costs extra memory (parent links per
  // state).
  bool reconstruct_schedule = false;
};

struct OptimalResult {
  uint64_t total_cost = 0;
  uint64_t states_expanded = 0;
  // Present iff reconstruct_schedule was set.
  std::optional<Schedule> schedule;
};

// Exact minimum total cost over all offline schedules with the given number
// of resources. Returns nullopt if the state budget is exceeded.
std::optional<OptimalResult> SolveOptimal(const Instance& instance,
                                          const OptimalOptions& options);

}  // namespace offline
}  // namespace rrs
