#include "offline/robust_optimal.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/scope.h"
#include "offline/clairvoyant.h"
#include "offline/interval_state.h"
#include "offline/lower_bound.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "workload/uncertain.h"

namespace rrs {
namespace offline {

namespace {

constexpr uint32_t kNoIndex = 0xffffffffu;
// Same sharding/scan constants as optimal.cpp: fixed shard count keeps the
// canonical layer order identical for every thread count, and the capped
// quadratic dominance scan stays linear-ish per config group.
constexpr uint32_t kNumShards = 32;
constexpr uint32_t kDominanceScanCap = 32;

uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashSpan(const uint32_t* p, uint32_t n) {
  uint64_t h = 1469598103934665603ULL ^ (uint64_t{n} << 32);
  for (uint32_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

uint32_t SortedOverlap(const uint32_t* a, const uint32_t* b, uint32_t m) {
  uint32_t overlap = 0;
  uint32_t i = 0, j = 0;
  while (i < m && j < m) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// One interval state: a packed span (see offline/interval_state.h) plus the
// accumulated cost interval. No parent link: the robust solver never
// reconstructs schedules, and component-wise min interning (below) has no
// path identity to preserve.
struct Node {
  uint64_t hash = 0;
  uint64_t cost_lo = 0;
  uint64_t cost_hi = 0;
  uint32_t offset = 0;
  uint32_t len = 0;
};

// Arena + node list + open-addressing intern table, single-writer, mirroring
// optimal.cpp's NodeStore.
struct NodeStore {
  std::vector<uint32_t> arena;
  std::vector<Node> nodes;
  std::vector<uint32_t> slots;
  uint64_t mask = 0;

  const uint32_t* span(const Node& n) const { return arena.data() + n.offset; }

  void Reset(size_t expected) {
    arena.clear();
    nodes.clear();
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    slots.assign(cap, kNoIndex);
    mask = cap - 1;
  }

  void Rehash() {
    size_t cap = slots.size() * 2;
    slots.assign(cap, kNoIndex);
    mask = cap - 1;
    for (uint32_t i = 0; i < nodes.size(); ++i) {
      uint64_t pos = nodes[i].hash & mask;
      while (slots[pos] != kNoIndex) pos = (pos + 1) & mask;
      slots[pos] = i;
    }
  }

  // Interns (span, cost interval), keeping the component-wise minimum of
  // both cost sides. Each side's minimum is achieved by some real path into
  // the state, so both bracket legs stay certified, and component-wise min
  // is commutative/associative — the surviving pair is independent of
  // insertion order, the root of thread-count determinism.
  void Intern(uint64_t hash, const uint32_t* sp, uint32_t len, uint64_t cost_lo,
              uint64_t cost_hi) {
    uint64_t pos = hash & mask;
    for (;;) {
      uint32_t idx = slots[pos];
      if (idx == kNoIndex) break;
      Node& n = nodes[idx];
      if (n.hash == hash && n.len == len &&
          std::memcmp(arena.data() + n.offset, sp, len * sizeof(uint32_t)) ==
              0) {
        n.cost_lo = std::min(n.cost_lo, cost_lo);
        n.cost_hi = std::min(n.cost_hi, cost_hi);
        return;
      }
      pos = (pos + 1) & mask;
    }
    Node n;
    n.hash = hash;
    n.cost_lo = cost_lo;
    n.cost_hi = cost_hi;
    n.offset = static_cast<uint32_t>(arena.size());
    n.len = len;
    arena.insert(arena.end(), sp, sp + len);
    slots[pos] = static_cast<uint32_t>(nodes.size());
    nodes.push_back(n);
    if (nodes.size() * 4 >= slots.size() * 3) Rehash();
  }
};

struct PackedLayer {
  std::vector<uint32_t> arena;
  std::vector<Node> nodes;

  const uint32_t* span(const Node& n) const { return arena.data() + n.offset; }
};

struct ExpandCtx {
  NodeStore store;
  std::array<std::vector<uint32_t>, kNumShards> by_shard;
  uint64_t generated = 0;
  uint64_t pruned = 0;

  std::vector<uint32_t> col_off;
  std::vector<uint32_t> col_len;
  std::vector<uint32_t> alphabet;
  std::vector<uint8_t> in_alphabet;
  std::vector<uint32_t> cfg;
  std::vector<uint32_t> exec;
  std::vector<uint32_t> child;
};

class RobustSolver {
 public:
  RobustSolver(const workload::UncertainInstance& set,
               const RobustOptions& options)
      : set_(set),
        options_(options),
        m_(options.num_resources),
        num_colors_(static_cast<uint32_t>(set.num_colors())),
        black_(num_colors_),
        delta_(options.cost_model.delta),
        horizon_(set.horizon()) {}

  RobustResult Run();

 private:
  void BuildArrivalEnvelopes();
  void MakeInitialLayer(PackedLayer& layer) const;
  uint64_t Heuristic(const uint32_t* span) const;
  void ExpandChunk(const PackedLayer& cur, size_t lo, size_t hi, Round k,
                   ExpandCtx& ctx) const;
  void EmitChildren(const PackedLayer& cur, uint32_t parent_index, Round k,
                    ExpandCtx& ctx) const;
  void EnumerateConfigs(const PackedLayer& cur, uint32_t parent_index, Round k,
                        size_t alpha_from, ExpandCtx& ctx) const;
  void ProcessConfig(const PackedLayer& cur, uint32_t parent_index, Round k,
                     ExpandCtx& ctx) const;
  uint64_t MergeShard(const std::vector<ExpandCtx>& chunks, uint32_t shard,
                      NodeStore& out) const;
  template <typename Fn>
  void ForIndices(int64_t n, Fn&& fn) const {
    if (options_.pool == nullptr) {
      for (int64_t i = 0; i < n; ++i) fn(i);
    } else {
      ParallelFor(*options_.pool, 0, n, fn);
    }
  }

  const workload::UncertainInstance& set_;
  const RobustOptions& options_;
  const uint32_t m_;
  const uint32_t num_colors_;
  const uint32_t black_;
  const uint64_t delta_;
  const Round horizon_;

  // Dense per-round per-color arrival envelopes: `lo` counts only forced
  // (zero-width-window) jobs pinned to the round; `hi` counts every job
  // whose window covers the round (the pessimistic duplication).
  std::vector<std::vector<uint32_t>> arrivals_lo_;
  std::vector<std::vector<uint32_t>> arrivals_hi_;
  uint64_t incumbent_hi_ = ~uint64_t{0};
};

void RobustSolver::BuildArrivalEnvelopes() {
  arrivals_lo_.assign(static_cast<size_t>(horizon_) + 1,
                      std::vector<uint32_t>(num_colors_, 0));
  arrivals_hi_.assign(static_cast<size_t>(horizon_) + 1,
                      std::vector<uint32_t>(num_colors_, 0));
  for (const workload::WindowedJob& job : set_.jobs()) {
    if (job.release_lo == job.release_hi) {
      ++arrivals_lo_[static_cast<size_t>(job.release_lo)][job.color];
    }
    for (Round r = job.release_lo; r <= job.release_hi; ++r) {
      ++arrivals_hi_[static_cast<size_t>(r)][job.color];
    }
  }
}

void RobustSolver::MakeInitialLayer(PackedLayer& layer) const {
  std::vector<uint32_t> span(m_, black_);
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t hi = arrivals_hi_[0][c];
    if (hi == 0) {
      span.push_back(0);
    } else {
      span.push_back(1);
      span.push_back(static_cast<uint32_t>(set_.delay_bound(c)));
      span.push_back(arrivals_lo_[0][c]);
      span.push_back(hi);
    }
  }
  Node root;
  root.hash = HashSpan(span.data(), static_cast<uint32_t>(span.size()));
  root.cost_lo = 0;
  root.cost_hi = 0;
  root.offset = 0;
  root.len = static_cast<uint32_t>(span.size());
  layer.arena = std::move(span);
  layer.nodes = {root};
}

// Admissible completion bound for the *optimistic* envelope: the concrete
// solver's per-state heuristic evaluated on the lo counts. Along any config
// path, cost_lo + Heuristic never exceeds the path's cost on the forced
// sub-instance — which never exceeds its cost on any concrete trace — so
// pruning at cost_lo + Heuristic strictly above the pessimistic incumbent
// can only remove paths that are worse than the incumbent on every trace.
// (The pessimistic-envelope Hall leg must NOT prune here: it can exceed a
// trace-optimal path's true cost and would break the lower bracket.)
uint64_t RobustSolver::Heuristic(const uint32_t* span) const {
  uint64_t h = 0;
  size_t pos = m_;
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t len = span[pos++];
    if (len == 0) continue;
    const uint32_t* rle = span + pos;
    pos += 3 * static_cast<size_t>(len);
    uint64_t pend_lo = 0;
    for (uint32_t i = 0; i < len; ++i) pend_lo += rle[3 * i + 1];
    const uint64_t w = set_.drop_cost(c);
    uint64_t leg = CapacityRelaxedDropsEnvelope(
                       {rle, 3 * static_cast<size_t>(len)}, m_,
                       /*pessimistic=*/false) *
                   w;
    bool in_config = false;
    for (uint32_t r = 0; r < m_; ++r) {
      if (span[r] == c) {
        in_config = true;
        break;
      }
    }
    if (!in_config) leg = std::min(pend_lo * w, delta_ + leg);
    h += leg;
  }
  return h;
}

void RobustSolver::EmitChildren(const PackedLayer& cur, uint32_t parent_index,
                                Round k, ExpandCtx& ctx) const {
  const Node& node = cur.nodes[parent_index];
  const uint32_t* span = cur.span(node);

  size_t pos = m_;
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const uint32_t len = span[pos++];
    ctx.col_len[c] = len;
    ctx.col_off[c] = static_cast<uint32_t>(pos);
    pos += 3 * static_cast<size_t>(len);
  }

  // Alphabet: current colors ∪ colors with any pessimistic pending (every
  // stored bucket has hi >= 1). Reconfiguring to a color no trace can have
  // pending is dominated on every trace, exactly as in the concrete solver.
  ctx.alphabet.clear();
  for (uint32_t r = 0; r < m_; ++r) {
    const uint32_t c = span[r];
    if (!ctx.in_alphabet[c]) {
      ctx.in_alphabet[c] = 1;
      ctx.alphabet.push_back(c);
    }
  }
  for (uint32_t c = 0; c < num_colors_; ++c) {
    if (ctx.col_len[c] != 0 && !ctx.in_alphabet[c]) {
      ctx.in_alphabet[c] = 1;
      ctx.alphabet.push_back(c);
    }
  }
  std::sort(ctx.alphabet.begin(), ctx.alphabet.end());
  for (uint32_t c : ctx.alphabet) ctx.in_alphabet[c] = 0;

  ctx.cfg.clear();
  EnumerateConfigs(cur, parent_index, k, 0, ctx);
}

void RobustSolver::EnumerateConfigs(const PackedLayer& cur,
                                    uint32_t parent_index, Round k,
                                    size_t alpha_from, ExpandCtx& ctx) const {
  if (ctx.cfg.size() == m_) {
    ProcessConfig(cur, parent_index, k, ctx);
    return;
  }
  for (size_t i = alpha_from; i < ctx.alphabet.size(); ++i) {
    ctx.cfg.push_back(ctx.alphabet[i]);
    EnumerateConfigs(cur, parent_index, k, i, ctx);
    ctx.cfg.pop_back();
  }
}

void RobustSolver::ProcessConfig(const PackedLayer& cur, uint32_t parent_index,
                                 Round k, ExpandCtx& ctx) const {
  const Node& node = cur.nodes[parent_index];
  const uint32_t* span = cur.span(node);
  const std::vector<uint32_t>& next_lo = arrivals_lo_[static_cast<size_t>(k) + 1];
  const std::vector<uint32_t>& next_hi = arrivals_hi_[static_cast<size_t>(k) + 1];

  // Reconfiguration cost is trace-independent: both envelope legs pay it.
  const uint64_t reconfig =
      delta_ * (m_ - SortedOverlap(span, ctx.cfg.data(), m_));
  uint64_t cost_lo = node.cost_lo + reconfig;
  uint64_t cost_hi = node.cost_hi + reconfig;

  for (uint32_t i = 0; i < m_;) {
    const uint32_t c = ctx.cfg[i];
    uint32_t j = i;
    while (j < m_ && ctx.cfg[j] == c) ++j;
    if (c != black_) ctx.exec[c] = j - i;
    i = j;
  }

  // Both envelopes execute earliest-deadline-first with the same resource
  // counts but consume their own counts; the remaining-execution budgets are
  // tracked independently (the lo side runs out of work earlier). Bucket
  // remainders at rel == 1 drop on each side at the color's weight.
  ctx.child.clear();
  ctx.child.insert(ctx.child.end(), ctx.cfg.begin(), ctx.cfg.end());
  for (uint32_t c = 0; c < num_colors_; ++c) {
    const size_t len_pos = ctx.child.size();
    ctx.child.push_back(0);
    uint32_t out_len = 0;
    uint32_t remaining_lo = ctx.exec[c];
    uint32_t remaining_hi = ctx.exec[c];
    const uint32_t* rle = span + ctx.col_off[c];
    const uint64_t w = set_.drop_cost(c);
    for (uint32_t i = 0; i < ctx.col_len[c]; ++i) {
      const uint32_t rel = rle[3 * i];
      uint32_t lo = rle[3 * i + 1];
      uint32_t hi = rle[3 * i + 2];
      const uint32_t take_lo = std::min(remaining_lo, lo);
      remaining_lo -= take_lo;
      lo -= take_lo;
      const uint32_t take_hi = std::min(remaining_hi, hi);
      remaining_hi -= take_hi;
      hi -= take_hi;
      if (hi == 0) continue;  // lo <= hi is preserved, so lo == 0 too
      if (rel == 1) {
        cost_lo += lo * w;
        cost_hi += hi * w;
        continue;
      }
      ctx.child.push_back(rel - 1);
      ctx.child.push_back(lo);
      ctx.child.push_back(hi);
      ++out_len;
    }
    const uint32_t arriving_hi = next_hi[c];
    if (arriving_hi != 0) {
      ctx.child.push_back(static_cast<uint32_t>(set_.delay_bound(c)));
      ctx.child.push_back(next_lo[c]);
      ctx.child.push_back(arriving_hi);
      ++out_len;
    }
    ctx.child[len_pos] = out_len;
  }
  for (uint32_t c : ctx.cfg) {
    if (c != black_) ctx.exec[c] = 0;
  }

  ++ctx.generated;
  if (options_.prune_bound &&
      cost_lo + Heuristic(ctx.child.data()) > incumbent_hi_) {
    ++ctx.pruned;
    return;
  }
  const uint32_t len = static_cast<uint32_t>(ctx.child.size());
  ctx.store.Intern(HashSpan(ctx.child.data(), len), ctx.child.data(), len,
                   cost_lo, cost_hi);
}

void RobustSolver::ExpandChunk(const PackedLayer& cur, size_t lo, size_t hi,
                               Round k, ExpandCtx& ctx) const {
  ctx.store.Reset((hi - lo) * 4);
  for (auto& list : ctx.by_shard) list.clear();
  ctx.generated = 0;
  ctx.pruned = 0;
  ctx.col_off.resize(num_colors_);
  ctx.col_len.resize(num_colors_);
  ctx.in_alphabet.assign(num_colors_ + 1, 0);
  ctx.exec.assign(num_colors_, 0);

  for (size_t i = lo; i < hi; ++i) {
    EmitChildren(cur, static_cast<uint32_t>(i), k, ctx);
  }
  for (uint32_t i = 0; i < ctx.store.nodes.size(); ++i) {
    const uint64_t h = HashSpan(ctx.store.span(ctx.store.nodes[i]), m_);
    ctx.by_shard[h >> 59].push_back(i);
  }
}

uint64_t RobustSolver::MergeShard(const std::vector<ExpandCtx>& chunks,
                                  uint32_t shard, NodeStore& out) const {
  size_t expected = 0;
  for (const ExpandCtx& ctx : chunks) expected += ctx.by_shard[shard].size();
  if (expected == 0) {
    out.arena.clear();
    out.nodes.clear();
    return 0;
  }
  out.Reset(expected + 1);
  for (const ExpandCtx& ctx : chunks) {
    for (uint32_t idx : ctx.by_shard[shard]) {
      const Node& n = ctx.store.nodes[idx];
      out.Intern(n.hash, ctx.store.span(n), n.len, n.cost_lo, n.cost_hi);
    }
  }

  std::sort(out.nodes.begin(), out.nodes.end(),
            [&](const Node& a, const Node& b) {
              return std::lexicographical_compare(
                  out.span(a), out.span(a) + a.len, out.span(b),
                  out.span(b) + b.len);
            });

  if (!options_.prune_dominance || out.nodes.size() < 2) return 0;

  // Config groups are contiguous after the sort. A dominator needs
  // cost_lo <= and cost_hi >= its victim's, so ordering each group by
  // (cost_lo ascending, cost_hi descending) puts every possible dominator
  // before its victims (stable: the canonical sort breaks ties) and the
  // earlier-survivor scan of the concrete solver carries over. Mutual
  // containment would force identical spans — impossible after interning —
  // so a kill chain always ends at a live container (containment is
  // transitive), preserving both bracket sides.
  std::vector<Node>& nodes = out.nodes;
  std::vector<uint8_t> dead(nodes.size(), 0);
  std::vector<uint32_t> group;
  uint64_t removed = 0;
  auto same_config = [&](const Node& a, const Node& b) {
    return std::memcmp(out.span(a), out.span(b), m_ * sizeof(uint32_t)) == 0;
  };

  size_t g0 = 0;
  while (g0 < nodes.size()) {
    size_t g1 = g0 + 1;
    while (g1 < nodes.size() && same_config(nodes[g0], nodes[g1])) ++g1;
    if (g1 - g0 >= 2) {
      group.resize(g1 - g0);
      for (size_t i = 0; i < group.size(); ++i) {
        group[i] = static_cast<uint32_t>(g0 + i);
      }
      std::stable_sort(group.begin(), group.end(),
                       [&](uint32_t a, uint32_t b) {
                         if (nodes[a].cost_lo != nodes[b].cost_lo) {
                           return nodes[a].cost_lo < nodes[b].cost_lo;
                         }
                         return nodes[a].cost_hi > nodes[b].cost_hi;
                       });
      for (size_t j = 1; j < group.size(); ++j) {
        const Node& b = nodes[group[j]];
        uint32_t scanned = 0;
        for (size_t i = 0; i < j && scanned < kDominanceScanCap; ++i) {
          if (dead[group[i]]) continue;
          ++scanned;
          const Node& a = nodes[group[i]];
          if (IntervalStateDominates({out.span(a), a.len}, a.cost_lo,
                                     a.cost_hi, {out.span(b), b.len},
                                     b.cost_lo, b.cost_hi, m_, num_colors_)) {
            dead[group[j]] = 1;
            ++removed;
            break;
          }
        }
      }
    }
    g0 = g1;
  }
  if (removed != 0) {
    size_t w = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!dead[i]) nodes[w++] = nodes[i];
    }
    nodes.resize(w);
  }
  return removed;
}

RobustResult RobustSolver::Run() {
  RobustResult result;

  if (set_.num_jobs() == 0) {
    result.exact = true;
    return result;
  }

  BuildArrivalEnvelopes();

  // Incumbent: the clairvoyant portfolio replayed against the pessimistic
  // envelope instance. Any schedule's cost on the pessimistic instance
  // upper-bounds its cost on every member trace (each trace is a per-round,
  // per-color sub-instance), so this is a certified robust upper bound, and
  // the pruned search's final layer is provably nonempty (the path that is
  // optimal for the pessimistic instance survives every prune).
  const Instance pessimistic = set_.PessimisticInstance();
  incumbent_hi_ =
      ClairvoyantCost(pessimistic, m_, options_.cost_model).total_cost;
  result.upper_bound = incumbent_hi_;

  const size_t threads =
      options_.pool == nullptr ? 0 : options_.pool->thread_count();

  PackedLayer cur;
  MakeInitialLayer(cur);

  obs::LogHistogram layer_widths;
  std::vector<ExpandCtx> chunks;
  std::vector<NodeStore> shard_out(kNumShards);
  PackedLayer next;
  bool exhausted = false;

  for (Round k = 0; k < horizon_; ++k) {
    const size_t width = cur.nodes.size();
    layer_widths.Record(width);
    result.max_layer_width = std::max<uint64_t>(result.max_layer_width, width);
    if (result.states_expanded + width > options_.max_states) {
      exhausted = true;
      break;
    }
    result.states_expanded += width;

    const size_t num_chunks = std::clamp<size_t>(
        width / 64, 1, std::max<size_t>(1, 4 * (threads + 1)));
    chunks.resize(num_chunks);
    ForIndices(static_cast<int64_t>(num_chunks), [&](int64_t i) {
      const size_t lo = width * static_cast<size_t>(i) / num_chunks;
      const size_t hi = width * (static_cast<size_t>(i) + 1) / num_chunks;
      ExpandChunk(cur, lo, hi, k, chunks[static_cast<size_t>(i)]);
    });
    for (const ExpandCtx& ctx : chunks) {
      result.states_generated += ctx.generated;
      result.pruned_bound += ctx.pruned;
    }

    std::array<uint64_t, kNumShards> dominated{};
    ForIndices(kNumShards, [&](int64_t s) {
      dominated[static_cast<size_t>(s)] =
          MergeShard(chunks, static_cast<uint32_t>(s),
                     shard_out[static_cast<size_t>(s)]);
    });
    for (uint64_t d : dominated) result.pruned_dominated += d;

    size_t total_nodes = 0, total_words = 0;
    std::array<size_t, kNumShards> node_base{}, word_base{};
    for (uint32_t s = 0; s < kNumShards; ++s) {
      node_base[s] = total_nodes;
      word_base[s] = total_words;
      total_nodes += shard_out[s].nodes.size();
      for (const Node& n : shard_out[s].nodes) total_words += n.len;
    }
    RRS_CHECK_GT(total_nodes, 0u) << "empty layer despite admissible pruning";

    next.arena.resize(total_words);
    next.nodes.resize(total_nodes);
    ForIndices(kNumShards, [&](int64_t si) {
      const uint32_t s = static_cast<uint32_t>(si);
      size_t word = word_base[s];
      size_t slot = node_base[s];
      for (const Node& n : shard_out[s].nodes) {
        Node copy = n;
        copy.offset = static_cast<uint32_t>(word);
        std::memcpy(next.arena.data() + word, shard_out[s].span(n),
                    n.len * sizeof(uint32_t));
        word += n.len;
        next.nodes[slot++] = copy;
      }
    });
    std::swap(cur, next);
  }

  if (!exhausted) {
    layer_widths.Record(cur.nodes.size());
    result.max_layer_width =
        std::max<uint64_t>(result.max_layer_width, cur.nodes.size());
  }

  const uint64_t forced_floor =
      RobustLowerBound(set_, m_, options_.cost_model);

  if (exhausted) {
    // Certified bracket: every trace's optimal path either reaches the
    // frontier through (a container of) some node — whose cost_lo plus the
    // admissible optimistic bound lower-bounds its cost — or was bound-
    // pruned, which certifies its cost exceeds the incumbent.
    const size_t width = cur.nodes.size();
    std::vector<uint64_t> chunk_min(
        std::max<size_t>(1, std::min<size_t>(width, 4 * (threads + 1))),
        ~uint64_t{0});
    const size_t num_chunks = chunk_min.size();
    ForIndices(static_cast<int64_t>(num_chunks), [&](int64_t i) {
      const size_t lo = width * static_cast<size_t>(i) / num_chunks;
      const size_t hi = width * (static_cast<size_t>(i) + 1) / num_chunks;
      uint64_t best = ~uint64_t{0};
      for (size_t j = lo; j < hi; ++j) {
        const Node& n = cur.nodes[j];
        best = std::min(best, n.cost_lo + Heuristic(cur.span(n)));
      }
      chunk_min[static_cast<size_t>(i)] = best;
    });
    uint64_t frontier = ~uint64_t{0};
    for (uint64_t v : chunk_min) frontier = std::min(frontier, v);
    result.exact = false;
    result.lower_bound =
        std::max(std::min(frontier, incumbent_hi_), forced_floor);
    result.upper_bound = incumbent_hi_;
  } else {
    uint64_t best_lo = ~uint64_t{0};
    uint64_t best_hi = ~uint64_t{0};
    for (const Node& n : cur.nodes) {
      best_lo = std::min(best_lo, n.cost_lo);
      best_hi = std::min(best_hi, n.cost_hi);
    }
    result.exact = true;
    // Lower: the minimum final cost_lo is OPT of the forced sub-instance
    // restricted to surviving paths; bound-pruned paths certify their traces'
    // optima exceed the incumbent, hence the min. Upper: any single complete
    // path's cost_hi bounds every trace's optimum from above, as does the
    // incumbent.
    result.lower_bound =
        std::max(std::min(best_lo, incumbent_hi_), forced_floor);
    result.upper_bound = std::min(best_hi, incumbent_hi_);
  }

  if (obs::Scope* scope = obs::EffectiveScope(options_.obs_scope)) {
    const std::pair<std::string_view, uint64_t> counters[] = {
        {"offline.robust.solves", 1},
        {"offline.robust.solves_exact", result.exact ? 1u : 0u},
        {"offline.robust.states_expanded", result.states_expanded},
        {"offline.robust.states_generated", result.states_generated},
        {"offline.robust.pruned_bound", result.pruned_bound},
        {"offline.robust.pruned_dominated", result.pruned_dominated},
    };
    scope->AbsorbCounters(counters);
    scope->AbsorbHistogram("offline.robust.layer_width", layer_widths);
  }
  return result;
}

}  // namespace

RobustResult SolveRobust(const workload::UncertainInstance& set,
                         const RobustOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  RobustSolver solver(set, options);
  return solver.Run();
}

}  // namespace offline
}  // namespace rrs
