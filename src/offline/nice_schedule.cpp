#include "offline/nice_schedule.h"

#include <algorithm>
#include <map>
#include <vector>

#include "sched/par_edf.h"
#include "util/check.h"

namespace rrs {
namespace offline {

std::optional<NiceScheduleResult> BuildNiceDoubleSpeedSchedule(
    const Instance& instance, uint32_t m) {
  RRS_CHECK_GE(m, 1u);
  if (!instance.IsRateLimited() || !instance.DelayBoundsArePowersOfTwo()) {
    return std::nullopt;
  }
  if (ParEdfDropCost(instance, m) != 0) return std::nullopt;  // not nice
  if (instance.num_jobs() == 0) {
    NiceScheduleResult empty;
    empty.schedule = Schedule(m, 2);
    return empty;
  }

  // Columns are global mini-rounds: column t = (round t/2, mini t%2).
  const Round horizon = instance.horizon();
  std::vector<uint32_t> column_fill(static_cast<size_t>(2 * horizon), 0);

  // Colors grouped by delay bound; batches indexed by (color, block round).
  std::map<Round, std::vector<ColorId>> by_delay;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    by_delay[instance.delay_bound(c)].push_back(c);
  }

  struct Placement {
    Round round;
    int mini;
    ResourceId resource;
    JobId job;
    ColorId color;
  };
  std::vector<Placement> placements;
  placements.reserve(instance.num_jobs());

  // Per (color, block) job lists, gathered once: jobs of color c arriving at
  // round r (batched inputs only have arrivals at multiples of D_c).
  // Iterate ascending delay bound -> ascending block -> consistent color
  // order, exactly as the proof does.
  for (const auto& [p, colors] : by_delay) {
    for (Round block_start = 0; block_start < instance.num_request_rounds();
         block_start += p) {
      for (ColorId c : colors) {
        // Collect this batch's job ids.
        auto jobs = instance.jobs_in_round(block_start);
        std::vector<JobId> batch;
        if (!jobs.empty()) {
          JobId base = instance.first_job_in_round(block_start);
          for (size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i].color == c) batch.push_back(base + static_cast<JobId>(i));
          }
        }
        if (batch.empty()) continue;
        RRS_CHECK_LE(batch.size(), static_cast<size_t>(p))
            << "input not rate-limited";

        // First |X| non-full columns of block(p, i)'s 2p columns.
        const size_t col_lo = static_cast<size_t>(2 * block_start);
        const size_t col_hi = static_cast<size_t>(2 * (block_start + p));
        size_t placed = 0;
        size_t nonfull_seen = 0;
        for (size_t t = col_lo; t < col_hi && placed < batch.size(); ++t) {
          if (column_fill[t] >= m) continue;
          ++nonfull_seen;
          const ResourceId r = static_cast<ResourceId>(column_fill[t]++);
          placements.push_back(Placement{static_cast<Round>(t / 2),
                                         static_cast<int>(t % 2), r,
                                         batch[placed], c});
          ++placed;
        }
        // The Lemma 3.8 counting argument: a nice input always leaves at
        // least |X| (indeed at least p) non-full columns for each batch.
        RRS_CHECK_EQ(placed, batch.size())
            << "Lemma 3.8 violated: only " << nonfull_seen
            << " non-full columns for a batch of " << batch.size()
            << " (color " << c << ", block at " << block_start << ")";
      }
    }
  }

  // Realize the placements: per resource in (round, mini) order, emit a
  // reconfiguration whenever the required color changes.
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.resource != b.resource) return a.resource < b.resource;
              if (a.round != b.round) return a.round < b.round;
              return a.mini < b.mini;
            });
  NiceScheduleResult result;
  result.schedule = Schedule(m, 2);
  ResourceId current_resource = static_cast<ResourceId>(-1);
  ColorId current_color = kNoColor;
  for (const Placement& p : placements) {
    if (p.resource != current_resource) {
      current_resource = p.resource;
      current_color = kNoColor;
    }
    if (p.color != current_color) {
      result.schedule.AddReconfig(p.round, p.mini, p.resource, p.color);
      current_color = p.color;
    }
    result.schedule.AddExecution(p.round, p.mini, p.resource, p.job);
    ++result.executed;
  }
  RRS_CHECK_EQ(result.executed, instance.num_jobs());
  return result;
}

}  // namespace offline
}  // namespace rrs
