// The constructive schedule of Lemma 3.8, built exactly as the proof does.
//
// An input σ (rate-limited [Δ | 1 | D_ℓ | D_ℓ], power-of-two delay bounds)
// is *nice* if Par-EDF with m resources drops nothing on it. Lemma 3.8
// proves that a double-speed schedule on m resources then executes ALL jobs,
// by construction:
//
//   process delay bounds in increasing order; within a delay bound p, block
//   by block; within block(p, i), color by color (consistent order). For a
//   color's batch X (all |X| <= p jobs arrive at round i·p), pick the first
//   |X| non-full columns of the block's 2p mini-round columns and place one
//   job in a free slot of each.
//
// The proof's counting argument — at least half the block's columns are
// non-full when X is placed — is executed here as a hard runtime check, so
// every successful construction is a mechanical witness of the lemma on
// that input. The returned Schedule (m resources, 2 mini-rounds) carries the
// reconfigurations needed to realize the placement and is certified by
// Schedule::Validate in the tests.
#pragma once

#include <cstdint>
#include <optional>

#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {
namespace offline {

struct NiceScheduleResult {
  Schedule schedule{0, 2};
  uint64_t executed = 0;
};

// Returns nullopt when the input is not nice for m resources (Par-EDF drops
// something) or violates the structural preconditions; otherwise the
// Lemma 3.8 schedule executing every job.
std::optional<NiceScheduleResult> BuildNiceDoubleSpeedSchedule(
    const Instance& instance, uint32_t m);

}  // namespace offline
}  // namespace rrs
