// Robust offline analysis over an interval-uncertainty set: certified
// [lower, upper] brackets on OPT valid for *every* concrete trace obtainable
// by pinning each job to one round of its arrival window.
//
// The search mirrors offline/optimal.cpp — packed arena-backed states,
// layer-parallel chunked expansion, config-sharded merging, bit-identical
// across thread counts — but each state is interval-valued (see
// offline/interval_state.h): per-color RLE deadline profiles carry
// [optimistic, pessimistic] pending bounds and the accumulated cost is an
// interval [cost_lo, cost_hi]. The two envelopes evolve in lock-step under a
// shared configuration choice:
//
//   - the lo side replays the *forced* sub-instance (zero-width jobs only),
//     so along any config path, cost_lo <= that path's cost on every
//     concrete trace — and min over complete paths of cost_lo lower-bounds
//     min over traces of OPT;
//   - the hi side replays the *pessimistic* duplicated instance (every job
//     present at each round of its window), so cost_hi >= that path's cost
//     on every concrete trace — and any single complete path's cost_hi
//     upper-bounds max over traces of OPT.
//
// Pruning (both bracket-preserving; soundness in DESIGN.md §3.14):
//   - bound: an incumbent upper bound is seeded from the clairvoyant
//     portfolio replayed against the pessimistic envelope instance; a child
//     whose cost_lo plus the admissible optimistic-envelope Hall bound is
//     strictly above it cannot improve either bracket side;
//   - dominance: interval containment (IntervalStateDominates) — a state
//     whose envelopes and cost interval are bracketed by a groupmate's is
//     redundant for both sides.
//
// With zero-width windows both envelopes coincide and the search collapses
// to the concrete solver's: the bracket equals [OPT, OPT] bit-exactly
// (differential tests pin this against SolveOptimal on the full corpus).
#pragma once

#include <cstdint>

#include "core/cost.h"

namespace rrs {

class ThreadPool;

namespace obs {
class Scope;
}  // namespace obs

namespace workload {
class UncertainInstance;
}  // namespace workload

namespace offline {

struct RobustOptions {
  uint32_t num_resources = 1;
  CostModel cost_model;
  // Expansion budget, checked at layer granularity like OptimalOptions: on
  // exhaustion the result carries exact == false with a (wider but still
  // certified) bracket from the frontier and the incumbent.
  uint64_t max_states = 5'000'000;
  // Worker pool for layer-parallel expansion; nullptr runs single-threaded.
  // Results are identical for every pool size.
  ThreadPool* pool = nullptr;
  // Optional observability scope: records offline.robust.* counters and the
  // offline.robust.layer_width histogram. Falls back to the global scope;
  // null disables.
  obs::Scope* obs_scope = nullptr;
  // Testing/ablation knobs; both default on. The incumbent replay always
  // runs (the upper bracket needs it); these only gate the pruning itself.
  bool prune_bound = true;
  bool prune_dominance = true;
};

struct RobustResult {
  // True when the search completed within max_states. Either way,
  //   lower_bound <= OPT(σ) <= upper_bound   for every concrete trace σ
  // in the set; exhaustion only widens the bracket, never invalidates it.
  bool exact = false;
  uint64_t lower_bound = 0;
  uint64_t upper_bound = 0;
  // Search effort, deterministic across thread counts.
  uint64_t states_expanded = 0;
  uint64_t states_generated = 0;
  uint64_t pruned_bound = 0;
  uint64_t pruned_dominated = 0;
  uint64_t max_layer_width = 0;
};

// Certified robust OPT bracket over the uncertainty set. Never fails.
RobustResult SolveRobust(const workload::UncertainInstance& set,
                         const RobustOptions& options);

}  // namespace offline
}  // namespace rrs
