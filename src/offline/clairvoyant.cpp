#include "offline/clairvoyant.h"

#include <memory>
#include <vector>

#include "core/engine.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/greedy.h"
#include "util/check.h"

namespace rrs {
namespace offline {

ClairvoyantResult ClairvoyantCost(const Instance& instance, uint32_t m,
                                  const CostModel& model) {
  RRS_CHECK_GE(m, 1u);
  std::vector<std::unique_ptr<SchedulerPolicy>> portfolio;
  portfolio.push_back(std::make_unique<GreedyEdfPolicy>());
  portfolio.push_back(std::make_unique<LazyGreedyPolicy>(1));
  if (model.delta >= 2) {
    portfolio.push_back(std::make_unique<LazyGreedyPolicy>(model.delta / 2));
    portfolio.push_back(std::make_unique<LazyGreedyPolicy>(model.delta));
  }
  portfolio.push_back(std::make_unique<StaticPartitionPolicy>());
  if (m >= 2 && m % 2 == 0) {
    portfolio.push_back(std::make_unique<EdfPolicy>(true));
  }
  if (m >= 4 && m % 4 == 0) {
    portfolio.push_back(std::make_unique<DlruEdfPolicy>());
  }

  EngineOptions options;
  options.num_resources = m;
  options.cost_model = model;

  ClairvoyantResult best;
  bool first = true;
  for (const auto& policy : portfolio) {
    RunResult result = RunPolicy(instance, *policy, options);
    uint64_t cost = result.total_cost(model);
    if (first || cost < best.total_cost) {
      first = false;
      best.total_cost = cost;
      best.breakdown = result.cost;
      best.best_policy = policy->name();
    }
  }
  return best;
}

}  // namespace offline
}  // namespace rrs
