// Clairvoyant-OFF proxy for instances beyond the exact solver's reach.
//
// Any feasible m-resource schedule upper-bounds OPT, so the minimum cost over
// a portfolio of m-resource policies is a certified upper bound on the
// optimal offline cost. Together with offline::LowerBound this brackets OPT:
//
//     LowerBound <= OPT <= ClairvoyantCost
//
// and any online/OFF ratio reported against ClairvoyantCost is a lower bound
// on the true ratio, while the same ratio against LowerBound is an upper
// bound. Experiment E4 reports both.
//
// The portfolio: greedy-edf, lazy-greedy at thresholds {1, Δ/2, Δ}, static
// partition, and — where m permits — edf and dlru-edf.
#pragma once

#include <cstdint>
#include <string>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {
namespace offline {

struct ClairvoyantResult {
  uint64_t total_cost = 0;
  CostBreakdown breakdown;
  std::string best_policy;
};

ClairvoyantResult ClairvoyantCost(const Instance& instance, uint32_t m,
                                  const CostModel& model);

}  // namespace offline
}  // namespace rrs
