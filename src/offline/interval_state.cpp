#include "offline/interval_state.h"

#include <cstring>
#include <limits>

#include "util/check.h"

namespace rrs {
namespace offline {

bool IntervalProfileContains(const uint32_t* a, uint32_t alen,
                             const uint32_t* b, uint32_t blen) {
  // Both cumulative functions are step functions whose breakpoints are the
  // rels of either profile, so checking right after each merged breakpoint
  // covers every horizon t.
  uint64_t a_lo = 0, a_hi = 0, b_lo = 0, b_hi = 0;
  uint32_t i = 0, j = 0;
  while (i < alen || j < blen) {
    const uint32_t ra =
        i < alen ? a[3 * i] : std::numeric_limits<uint32_t>::max();
    const uint32_t rb =
        j < blen ? b[3 * j] : std::numeric_limits<uint32_t>::max();
    const uint32_t t = ra < rb ? ra : rb;
    if (ra == t) {
      a_lo += a[3 * i + 1];
      a_hi += a[3 * i + 2];
      ++i;
    }
    if (rb == t) {
      b_lo += b[3 * j + 1];
      b_hi += b[3 * j + 2];
      ++j;
    }
    if (a_lo > b_lo || b_hi > a_hi) return false;
  }
  return true;
}

bool IntervalStateContains(std::span<const uint32_t> a,
                           std::span<const uint32_t> b, uint32_t m,
                           uint32_t num_colors) {
  if (std::memcmp(a.data(), b.data(), m * sizeof(uint32_t)) != 0) return false;
  size_t ia = m, ib = m;
  for (uint32_t c = 0; c < num_colors; ++c) {
    const uint32_t la = a[ia++];
    const uint32_t lb = b[ib++];
    if (!IntervalProfileContains(a.data() + ia, la, b.data() + ib, lb)) {
      return false;
    }
    ia += 3 * static_cast<size_t>(la);
    ib += 3 * static_cast<size_t>(lb);
  }
  return true;
}

bool IntervalStateDominates(std::span<const uint32_t> a, uint64_t a_cost_lo,
                            uint64_t a_cost_hi, std::span<const uint32_t> b,
                            uint64_t b_cost_lo, uint64_t b_cost_hi, uint32_t m,
                            uint32_t num_colors) {
  if (a_cost_lo > b_cost_lo || a_cost_hi < b_cost_hi) return false;
  return IntervalStateContains(a, b, m, num_colors);
}

std::vector<uint32_t> EncodeIntervalState(
    std::span<const uint32_t> config,
    const std::vector<std::vector<IntervalBucket>>& per_color) {
  std::vector<uint32_t> out(config.begin(), config.end());
  for (const std::vector<IntervalBucket>& buckets : per_color) {
    out.push_back(static_cast<uint32_t>(buckets.size()));
    uint32_t prev_rel = 0;
    for (const IntervalBucket& bucket : buckets) {
      RRS_CHECK_GT(bucket.rel, prev_rel);
      RRS_CHECK_LE(bucket.lo, bucket.hi);
      RRS_CHECK_GE(bucket.hi, 1u);
      prev_rel = bucket.rel;
      out.push_back(bucket.rel);
      out.push_back(bucket.lo);
      out.push_back(bucket.hi);
    }
  }
  return out;
}

}  // namespace offline
}  // namespace rrs
