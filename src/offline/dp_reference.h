// The pre-optimization exact offline solver, kept verbatim as a correctness
// oracle and performance baseline: a single-threaded layered DP over
// canonical states keyed by heap-allocated vector<uint32_t> in an
// unordered_map, with no pruning. bench_offline_solver measures the packed
// branch-and-bound solver's states/s against it (the ≥10x packing claim),
// and the offline differential suite cross-checks all three solvers
// (SolveOptimal, SolveBruteForce, this) on small instances.
//
// Do not optimize this file — its value is being the slow, obviously-correct
// reference. Honest envelope: m <= 3, <= 4 colors, horizon <= ~64.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {
namespace offline {

struct DpReferenceOptions {
  uint32_t num_resources = 1;
  CostModel cost_model;
  uint64_t max_states = 5'000'000;
};

struct DpReferenceResult {
  uint64_t total_cost = 0;
  uint64_t states_expanded = 0;
};

// Exact minimum offline cost via the reference layered DP, or nullopt when
// the expansion budget is exceeded (the historical failure mode the packed
// solver's bracket replaced).
std::optional<DpReferenceResult> SolveLayeredDpReference(
    const Instance& instance, const DpReferenceOptions& options);

}  // namespace offline
}  // namespace rrs
