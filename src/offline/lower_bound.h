// Certified lower bounds on the optimal offline cost, used as ratio
// denominators where the exact solver is out of reach (experiment E4).
//
//   LB_drop   = DropCost_ParEDF(σ, m)        (Lemma 3.7: Par-EDF drops lower-
//               bound any m-resource algorithm's drops, and drop cost lower-
//               bounds total cost)
//   LB_color  = Σ_ℓ min(Δ, #jobs of ℓ)       (every color with jobs either
//               gets configured at least once — one reconfiguration, cost Δ —
//               or all its jobs drop; the argument of Lemma 3.1 /
//               Corollary 3.3)
//   LowerBound = max(LB_drop, LB_color)
//
// Both legs hold for every schedule with m resources, so the max does too.
#pragma once

#include <cstdint>
#include <span>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {
namespace workload {
class UncertainInstance;
}  // namespace workload

namespace offline {

uint64_t DropLowerBound(const Instance& instance, uint32_t m);
uint64_t ColorLowerBound(const Instance& instance, const CostModel& model);
uint64_t LowerBound(const Instance& instance, uint32_t m,
                    const CostModel& model);

// Minimum number of drops forced by a single color's pending-deadline
// profile when that color owns all m resources and reconfiguration is free —
// the capacity-m relaxation behind the exact solver's admissible per-state
// bound (a per-profile generalization of the Par-EDF drop leg above).
//
// `rle` is interleaved (relative deadline, count) pairs with strictly
// ascending deadlines; a job at relative deadline r has exactly r execution
// slots left. By Hall's condition the forced drops are
// max_i(cum_i − m·rel_i)⁺ over the RLE prefixes, and EDF achieves that.
uint64_t CapacityRelaxedDrops(std::span<const uint32_t> rle, uint32_t m);

// The same Hall-bound leg over one envelope of an *interval* profile
// (interleaved (rel, lo, hi) triples, see offline/interval_state.h):
// `pessimistic` selects the hi counts, otherwise lo. Admissible for the
// corresponding envelope instance by the argument above.
uint64_t CapacityRelaxedDropsEnvelope(std::span<const uint32_t> rle3,
                                      uint32_t m, bool pessimistic);

// Generalization of LowerBound to an interval-uncertainty set: every
// concrete trace in the set is a superset of the forced (zero-width-window)
// sub-instance, and OPT is monotone under adding jobs, so the forced
// instance's bound lower-bounds OPT of every member trace.
uint64_t RobustLowerBound(const workload::UncertainInstance& set, uint32_t m,
                          const CostModel& model);

}  // namespace offline
}  // namespace rrs
