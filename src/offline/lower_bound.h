// Certified lower bounds on the optimal offline cost, used as ratio
// denominators where the exact solver is out of reach (experiment E4).
//
//   LB_drop   = DropCost_ParEDF(σ, m)        (Lemma 3.7: Par-EDF drops lower-
//               bound any m-resource algorithm's drops, and drop cost lower-
//               bounds total cost)
//   LB_color  = Σ_ℓ min(Δ, #jobs of ℓ)       (every color with jobs either
//               gets configured at least once — one reconfiguration, cost Δ —
//               or all its jobs drop; the argument of Lemma 3.1 /
//               Corollary 3.3)
//   LowerBound = max(LB_drop, LB_color)
//
// Both legs hold for every schedule with m resources, so the max does too.
#pragma once

#include <cstdint>

#include "core/cost.h"
#include "core/instance.h"

namespace rrs {
namespace offline {

uint64_t DropLowerBound(const Instance& instance, uint32_t m);
uint64_t ColorLowerBound(const Instance& instance, const CostModel& model);
uint64_t LowerBound(const Instance& instance, uint32_t m,
                    const CostModel& model);

}  // namespace offline
}  // namespace rrs
