#include "obs/telemetry.h"

#include <cstdio>

#include "obs/metrics.h"

namespace rrs {
namespace obs {

const char* PhaseName(int phase) {
  switch (phase) {
    case kPhaseDrop:
      return "drop";
    case kPhaseArrival:
      return "arrival";
    case kPhaseReconfig:
      return "reconfig";
    case kPhaseExecute:
      return "execute";
    default:
      return "unknown";
  }
}

PhaseStat SummarizePhase(const LogHistogram& hist) {
  PhaseStat stat;
  stat.samples = hist.count();
  stat.total_ns = hist.sum();
  stat.p50_ns = hist.Quantile(0.5);
  stat.p99_ns = hist.Quantile(0.99);
  stat.max_ns = hist.max();
  return stat;
}

std::string Telemetry::SummaryLine() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "telemetry: rounds=%llu drops=%llu reconfigs=%llu executed=%llu",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(drops),
                static_cast<unsigned long long>(reconfigs),
                static_cast<unsigned long long>(executed));
  std::string out = buf;
  for (int p = 0; p < kNumPhases; ++p) {
    if (phase[p].samples == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s[p50/p99]=%.0f/%.0fns", PhaseName(p),
                  phase[p].p50_ns, phase[p].p99_ns);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace rrs
