#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace rrs {
namespace obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(Options options) : options_(options), epoch_ns_(NowNs()) {}

TraceTrack* Tracer::RegisterTrack(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t tid = static_cast<uint32_t>(tracks_.size());
  tracks_.emplace_back(
      TraceTrack(std::move(name), tid, std::max<size_t>(options_.events_per_track, 1)));
  return &tracks_.back();
}

TraceTrack* Tracer::ThreadTrack() {
  // Cached per (thread, tracer). A thread that alternates between tracers
  // re-registers; our usage is one tracer per process at a time.
  thread_local Tracer* cached_tracer = nullptr;
  thread_local TraceTrack* cached_track = nullptr;
  if (cached_tracer != this) {
    TraceTrack* track = RegisterTrack("thread");
    track->name_ += "-" + std::to_string(track->tid_);
    cached_track = track;
    cached_tracer = this;
  }
  return cached_track;
}

size_t Tracer::num_tracks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracks_.size();
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const TraceTrack& t : tracks_) dropped += t.dropped();
  return dropped;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  auto append = [&](const char* line) {
    if (!first) out += ",\n";
    out += line;
    first = false;
  };
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                "\"args\":{\"name\":\"rrsched\"}}");
  append(buf);
  for (const TraceTrack& track : tracks_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  track.tid_, track.name_.c_str());
    append(buf);
  }
  for (const TraceTrack& track : tracks_) {
    const size_t cap = track.ring_.size();
    const size_t stored = static_cast<size_t>(
        std::min<uint64_t>(track.emitted_, static_cast<uint64_t>(cap)));
    // Oldest-first: when the ring wrapped, the oldest event sits at next_.
    const size_t start = track.emitted_ > cap ? track.next_ : 0;
    for (size_t i = 0; i < stored; ++i) {
      const TraceTrack::Event& e = track.ring_[(start + i) % cap];
      // ts/dur in microseconds (Chrome's unit), relative to tracer epoch.
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"rrs\",\"ph\":\"X\",\"pid\":1,"
          "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"round\":%llu}}",
          e.name, track.tid_,
          static_cast<double>(e.ts_ns - epoch_ns_) / 1000.0,
          static_cast<double>(e.dur_ns) / 1000.0,
          static_cast<unsigned long long>(e.arg));
      append(buf);
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace obs
}  // namespace rrs
