#include "obs/scope.h"

#include <cstdio>

namespace rrs {
namespace obs {

namespace {

Scope* g_global_scope = nullptr;

}  // namespace

Scope* GlobalScope() { return g_global_scope; }
void SetGlobalScope(Scope* scope) { g_global_scope = scope; }

void Scope::Absorb(const Telemetry& telemetry, const LogHistogram* phase_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++runs_absorbed_;
  registry_.counter("engine.runs").Add(1);
  registry_.counter("engine.rounds").Add(telemetry.rounds);
  registry_.counter("engine.arrived").Add(telemetry.arrived);
  registry_.counter("engine.executed").Add(telemetry.executed);
  registry_.counter("engine.drops").Add(telemetry.drops);
  registry_.counter("engine.reconfigs").Add(telemetry.reconfigs);
  for (size_t c = 0; c < telemetry.drops_per_color.size(); ++c) {
    if (telemetry.drops_per_color[c] != 0) {
      registry_.counter("engine.drops.color" + std::to_string(c))
          .Add(telemetry.drops_per_color[c]);
    }
  }
  for (size_t c = 0; c < telemetry.reconfigs_per_color.size(); ++c) {
    if (telemetry.reconfigs_per_color[c] != 0) {
      registry_.counter("engine.reconfigs.color" + std::to_string(c))
          .Add(telemetry.reconfigs_per_color[c]);
    }
  }
  if (phase_ns != nullptr) {
    for (int p = 0; p < kNumPhases; ++p) {
      if (phase_ns[p].count() != 0) {
        registry_.histogram(std::string("engine.phase.") + PhaseName(p) + ".ns")
            .Merge(phase_ns[p]);
      }
    }
  }
  for (const auto& [name, value] : telemetry.counters) {
    // Policy counters are per-run totals; summing across runs matches the
    // counter semantics of every exporter we feed.
    registry_.counter("policy." + name).Add(static_cast<uint64_t>(value));
  }
}

void Scope::AbsorbCounters(
    std::span<const std::pair<std::string_view, uint64_t>> counters) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, delta] : counters) {
    registry_.counter(name).Add(delta);
  }
}

void Scope::AbsorbHistogram(std::string_view name,
                            const LogHistogram& histogram) {
  if (histogram.count() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  registry_.histogram(name).Merge(histogram);
}

void Scope::AbsorbGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_.gauge(name).Set(value);
}

std::string Scope::RenderPrometheus(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registry_.ToPrometheus(prefix);
}

std::string Scope::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registry_.ToJson();
}

std::string Scope::SummaryLine() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Const view of the aggregate; counter() would insert, so go through
  // Values() which only reads.
  const auto values = registry_.Values();
  auto value_of = [&](const char* name) -> unsigned long long {
    auto it = values.find(name);
    return it == values.end() ? 0ull
                              : static_cast<unsigned long long>(it->second);
  };
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "telemetry: runs=%llu rounds=%llu drops=%llu reconfigs=%llu "
                "executed=%llu",
                static_cast<unsigned long long>(runs_absorbed_),
                value_of("engine.rounds"), value_of("engine.drops"),
                value_of("engine.reconfigs"), value_of("engine.executed"));
  std::string out = buf;
  for (int p = 0; p < kNumPhases; ++p) {
    const std::string name =
        std::string("engine.phase.") + PhaseName(p) + ".ns";
    const LogHistogram* hist = registry_.FindHistogram(name);
    if (hist == nullptr || hist->count() == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s[p50/p99]=%.0f/%.0fns", PhaseName(p),
                  hist->Quantile(0.5), hist->Quantile(0.99));
    out += buf;
  }
  return out;
}

#if RRS_OBS_LEVEL >= 1

RunInstruments::RunInstruments(Scope* scope, const char* engine_name) {
  Rebind(scope, engine_name);
}

void RunInstruments::Rebind(Scope* scope, const char* engine_name) {
  scope_ = EffectiveScope(scope);
  tracer_ = nullptr;
  for (int p = 0; p < kNumPhases; ++p) {
    tracks_[p] = nullptr;
    phase_ns_[p].Reset();
  }
  if (scope_ == nullptr) return;
  sample_mask_ = scope_->sample_mask();
  Tracer* tracer = scope_->tracer();
  if (tracer != nullptr) {
    const std::string base =
        "run" + std::to_string(scope_->NextRunId()) + "/" + engine_name + "/";
    for (int p = 0; p < kNumPhases; ++p) {
      tracks_[p] = tracer->RegisterTrack(base + PhaseName(p));
    }
    tracer_ = tracer;
  }
}

void RunInstruments::Finalize(Telemetry& telemetry) {
  for (int p = 0; p < kNumPhases; ++p) {
    telemetry.phase[p] = SummarizePhase(phase_ns_[p]);
  }
  if (scope_ != nullptr) scope_->Absorb(telemetry, phase_ns_);
}

#endif  // RRS_OBS_LEVEL >= 1

}  // namespace obs
}  // namespace rrs
