#include "obs/export_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rrs {
namespace obs {

namespace {

// send(2) loop with MSG_NOSIGNAL: a scraper hanging up mid-response must not
// SIGPIPE the fleet process.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int status, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\nContent-Type: " +
                    std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

// Reads until the end of the request head ("\r\n\r\n") or the peer stops
// sending. GET requests have no body, so the head is the whole request.
std::string ReadRequestHead(int fd) {
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  return request;
}

}  // namespace

ExportServer::ExportServer(Options options) : options_(std::move(options)) {
  if (options_.scope != nullptr) {
    Scope* scope = options_.scope;
    const std::string prefix = options_.prefix;
    Handle("/metrics.json", "application/json",
           [scope] { return scope->RenderJson(); });
    Handle("/metrics", "text/plain; version=0.0.4", [this, scope, prefix] {
      std::string body = scope->RenderPrometheus(prefix);
      for (const Handler& section : metrics_sections_) body += section();
      return body;
    });
  }
  Handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
}

ExportServer::~ExportServer() { Stop(); }

void ExportServer::Handle(std::string path, std::string content_type,
                          Handler handler) {
  routes_.push_back({std::move(path), std::move(content_type),
                     std::move(handler)});
}

void ExportServer::AddMetricsSection(Handler section) {
  metrics_sections_.push_back(std::move(section));
}

bool ExportServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  running_ = true;
  return true;
}

void ExportServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void ExportServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExportServer::HandleConnection(int fd) {
  const std::string request = ReadRequestHead(fd);
  const size_t line_end = request.find("\r\n");
  const std::string line =
      request.substr(0, line_end == std::string::npos ? 0 : line_end);
  if (line.rfind("GET ", 0) != 0) {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "GET only\n"));
    return;
  }
  size_t path_end = line.find(' ', 4);
  if (path_end == std::string::npos) path_end = line.size();
  std::string path = line.substr(4, path_end - 4);
  // Scrapers may append query params (?format=...); routes ignore them.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    SendAll(fd, HttpResponse(200, "OK", route.content_type, route.handler()));
    return;
  }
  SendAll(fd, HttpResponse(404, "Not Found", "text/plain", "not found\n"));
}

std::string HttpGet(const std::string& host, uint16_t port,
                    const std::string& path, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::string();
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("inet_pton(" + host + ")");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return fail(std::string("connect: ") + std::strerror(errno));
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return fail(std::string("send: ") + std::strerror(errno));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return fail("malformed response");
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    return fail(status_line);
  }
  return response.substr(head_end + 4);
}

}  // namespace obs
}  // namespace rrs
