#include "obs/export_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "net/socket.h"

namespace rrs {
namespace obs {

namespace {

// Shared EINTR/MSG_NOSIGNAL send loop (net/socket.h): a scraper hanging up
// mid-response must not SIGPIPE the fleet process.
bool SendAll(int fd, std::string_view data) {
  return net::SendAll(fd, data.data(), data.size());
}

std::string HttpResponse(int status, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\nContent-Type: " +
                    std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

// Reads until the end of the request head ("\r\n\r\n") or the peer stops
// sending. GET requests have no body, so the head is the whole request.
std::string ReadRequestHead(int fd) {
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  return request;
}

}  // namespace

ExportServer::ExportServer(Options options) : options_(std::move(options)) {
  if (options_.scope != nullptr) {
    Scope* scope = options_.scope;
    const std::string prefix = options_.prefix;
    Handle("/metrics.json", "application/json",
           [scope] { return scope->RenderJson(); });
    Handle("/metrics", "text/plain; version=0.0.4", [this, scope, prefix] {
      std::string body = scope->RenderPrometheus(prefix);
      for (const Handler& section : metrics_sections_) body += section();
      return body;
    });
  }
  Handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
}

ExportServer::~ExportServer() { Stop(); }

void ExportServer::Handle(std::string path, std::string content_type,
                          Handler handler) {
  routes_.push_back({std::move(path), std::move(content_type),
                     std::move(handler)});
}

void ExportServer::AddMetricsSection(Handler section) {
  metrics_sections_.push_back(std::move(section));
}

bool ExportServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  running_ = true;
  return true;
}

void ExportServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void ExportServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExportServer::HandleConnection(int fd) {
  const std::string request = ReadRequestHead(fd);
  const size_t line_end = request.find("\r\n");
  const std::string line =
      request.substr(0, line_end == std::string::npos ? 0 : line_end);
  if (line.rfind("GET ", 0) != 0) {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "GET only\n"));
    return;
  }
  size_t path_end = line.find(' ', 4);
  if (path_end == std::string::npos) path_end = line.size();
  std::string path = line.substr(4, path_end - 4);
  // Scrapers may append query params (?format=...); routes ignore them.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    SendAll(fd, HttpResponse(200, "OK", route.content_type, route.handler()));
    return;
  }
  SendAll(fd, HttpResponse(404, "Not Found", "text/plain", "not found\n"));
}

namespace {

// Case-insensitive Content-Length extraction from a response head.
bool FindContentLength(std::string_view head, size_t* length) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name != "content-length") continue;
    size_t at = colon + 1;
    while (at < line.size() && line[at] == ' ') ++at;
    *length = 0;
    bool any = false;
    for (; at < line.size() && line[at] >= '0' && line[at] <= '9'; ++at) {
      *length = *length * 10 + static_cast<size_t>(line[at] - '0');
      any = true;
    }
    return any;
  }
  return false;
}

}  // namespace

std::string HttpGet(const std::string& host, uint16_t port,
                    const std::string& path, std::string* error,
                    int64_t timeout_ms) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::string();
  };
  // One deadline spans the whole request: connect-to-last-body-byte. A
  // wedged worker's scrape endpoint fails in bounded time.
  const net::Deadline deadline = net::Deadline::In(timeout_ms);
  const int fd = net::ConnectTcp(host, port, error);
  if (fd < 0) return std::string();
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!net::SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return fail(std::string("send: ") + std::strerror(errno));
  }
  // Read until the end of the head, then loop until Content-Length bytes of
  // body have arrived (short reads and dribbling servers included). Without
  // Content-Length, fall back to read-until-EOF (Connection: close).
  std::string response;
  size_t head_end = std::string::npos;
  char buf[4096];
  auto recv_chunk = [&]() -> ptrdiff_t {
    const ptrdiff_t n = net::RecvSome(fd, buf, sizeof(buf), deadline);
    if (n > 0) response.append(buf, static_cast<size_t>(n));
    return n;
  };
  while (head_end == std::string::npos) {
    const ptrdiff_t n = recv_chunk();
    if (n < 0) {
      ::close(fd);
      return fail(errno == ETIMEDOUT
                      ? "timeout waiting for response head from " + host +
                            ":" + std::to_string(port) + path
                      : std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;  // EOF: head_end search below decides if that is ok
    if (response.size() > 1 << 20) {
      ::close(fd);
      return fail("response head exceeds 1 MiB");
    }
    head_end = response.find("\r\n\r\n");
  }
  if (head_end == std::string::npos) {
    ::close(fd);
    return fail("malformed response (no header terminator)");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  size_t content_length = 0;
  const bool has_length = FindContentLength(
      std::string_view(response).substr(0, head_end), &content_length);
  const size_t body_start = head_end + 4;
  if (has_length) {
    while (response.size() - body_start < content_length) {
      const ptrdiff_t n = recv_chunk();
      if (n < 0) {
        ::close(fd);
        return fail(errno == ETIMEDOUT
                        ? "timeout mid-body: got " +
                              std::to_string(response.size() - body_start) +
                              " of " + std::to_string(content_length) +
                              " bytes"
                        : std::string("recv: ") + std::strerror(errno));
      }
      if (n == 0) {
        ::close(fd);
        return fail("connection closed mid-body: got " +
                    std::to_string(response.size() - body_start) + " of " +
                    std::to_string(content_length) + " bytes");
      }
    }
  } else {
    for (;;) {
      const ptrdiff_t n = recv_chunk();
      if (n == 0) break;
      if (n < 0) {
        ::close(fd);
        return fail(errno == ETIMEDOUT
                        ? "timeout reading un-lengthed body"
                        : std::string("recv: ") + std::strerror(errno));
      }
    }
  }
  ::close(fd);
  if (status_line.find(" 200 ") == std::string::npos) {
    return fail(status_line);
  }
  std::string body = response.substr(body_start);
  if (has_length && body.size() > content_length) body.resize(content_length);
  return body;
}

}  // namespace obs
}  // namespace rrs
