#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace rrs {
namespace obs {

// ---- LogHistogram ---------------------------------------------------------

uint32_t LogHistogram::BucketOf(uint64_t value) {
  if (value < kUnitBuckets) return static_cast<uint32_t>(value);
  const uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(value));
  // Top bit plus the next 3 bits select the sub-bucket within [2^msb,
  // 2^(msb+1)); msb >= 4 here because value >= 16.
  const uint32_t sub =
      static_cast<uint32_t>(value >> (msb - 3)) & (kSubBuckets - 1);
  return kUnitBuckets + (msb - 4) * kSubBuckets + sub;
}

uint64_t LogHistogram::BucketLo(uint32_t i) {
  if (i < kUnitBuckets) return i;
  const uint32_t msb = 4 + (i - kUnitBuckets) / kSubBuckets;
  const uint32_t sub = (i - kUnitBuckets) % kSubBuckets;
  return (uint64_t{1} << msb) + (uint64_t{sub} << (msb - 3));
}

uint64_t LogHistogram::BucketHi(uint32_t i) {
  if (i < kUnitBuckets) return i + 1;
  const uint32_t msb = 4 + (i - kUnitBuckets) / kSubBuckets;
  return BucketLo(i) + (uint64_t{1} << (msb - 3));
}

void LogHistogram::Record(uint64_t value) {
  ++buckets_[BucketOf(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void LogHistogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketOf(value)] += count;
  count_ += count;
  sum_ += value * count;
  max_ = std::max(max_, value);
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk buckets.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate inside the bucket by rank position.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      const double lo = static_cast<double>(BucketLo(i));
      const double hi = static_cast<double>(BucketHi(i));
      return std::min(lo + frac * (hi - lo), static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (uint32_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LogHistogram::MergeDiff(const LogHistogram& cur,
                             const LogHistogram& baseline) {
  // count_ == count_ fast path: nothing recorded since the baseline copy.
  if (cur.count_ == baseline.count_) {
    max_ = std::max(max_, cur.max_);
    return;
  }
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += cur.buckets_[i] - baseline.buckets_[i];
  }
  count_ += cur.count_ - baseline.count_;
  sum_ += cur.sum_ - baseline.sum_;
  max_ = std::max(max_, cur.max_);
}

void LogHistogram::Reset() {
  // count_ == 0 implies every bucket (and sum_/max_) is already zero: Record
  // bumps count_ with every bucket increment and Merge adds counts in step.
  // Run-scoped instruments Reset per rebind but record only when a scope
  // samples, so the empty case skips the 4 KiB bucket clear.
  if (count_ == 0) return;
  *this = LogHistogram();
}

// ---- Registry -------------------------------------------------------------

namespace {

template <typename Map, typename Value>
Value& Lookup(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Value>()).first;
  }
  return *it->second;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return Lookup<decltype(counters_), Counter>(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return Lookup<decltype(gauges_), Gauge>(gauges_, name);
}

LogHistogram& Registry::histogram(std::string_view name) {
  return Lookup<decltype(histograms_), LogHistogram>(histograms_, name);
}

const Counter* Registry::FindCounter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const LogHistogram* Registry::FindHistogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).Add(c->value);
  for (const auto& [name, g] : other.gauges_) gauge(name).Set(g->value);
  for (const auto& [name, h] : other.histograms_) histogram(name).Merge(*h);
}

std::map<std::string, double> Registry::Values() const {
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c->value);
  }
  for (const auto& [name, g] : gauges_) out[name] = g->value;
  return out;
}

std::string Registry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(c->value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatDouble(g->value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + std::to_string(h->sum()) +
           ", \"mean\": " + FormatDouble(h->mean()) +
           ", \"p50\": " + FormatDouble(h->Quantile(0.5)) +
           ", \"p90\": " + FormatDouble(h->Quantile(0.9)) +
           ", \"p99\": " + FormatDouble(h->Quantile(0.99)) +
           ", \"max\": " + std::to_string(h->max()) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Emits the `# HELP`/`# TYPE` preamble for `metric` unless an earlier raw
// name already sanitized onto it — the exposition format forbids repeated
// metadata lines for one metric, and sanitization can collapse distinct raw
// names (e.g. "a.b" and "a-b") onto one exposition name.
void EmitMetadata(std::string& out, std::vector<std::string>& emitted,
                  const std::string& metric, std::string_view raw_name,
                  std::string_view type) {
  if (std::find(emitted.begin(), emitted.end(), metric) != emitted.end()) {
    return;
  }
  emitted.push_back(metric);
  out += "# HELP " + metric + " rrs instrument ";
  // HELP text is free-form but newlines/backslashes must be escaped exactly
  // like label values; the raw name may contain either.
  out += PromEscapeLabel(raw_name);
  out += "\n# TYPE " + metric + " " + std::string(type) + "\n";
}

}  // namespace

std::string Registry::ToPrometheus(std::string_view prefix) const {
  std::string out;
  std::vector<std::string> emitted;
  emitted.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    const std::string metric = PromMetricName(prefix, name);
    EmitMetadata(out, emitted, metric, name, "counter");
    out += metric + " " + std::to_string(c->value) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string metric = PromMetricName(prefix, name);
    EmitMetadata(out, emitted, metric, name, "gauge");
    out += metric + " " + FormatDouble(g->value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string metric = PromMetricName(prefix, name);
    EmitMetadata(out, emitted, metric, name, "summary");
    for (double q : {0.5, 0.9, 0.99}) {
      out += metric + "{quantile=\"" + FormatDouble(q) + "\"} " +
             FormatDouble(h->Quantile(q)) + "\n";
    }
    out += metric + "_sum " + std::to_string(h->sum()) + "\n";
    out += metric + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

// ---- Prometheus exposition helpers ----------------------------------------

std::string PromMetricName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PromEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace rrs
