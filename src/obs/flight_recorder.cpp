#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

namespace rrs {
namespace obs {

namespace {

constexpr char kFlightMagic[8] = {'R', 'R', 'S', 'F', 'L', 'T', 'R', 'C'};
constexpr uint32_t kFlightVersion = 1;

// write(2) loop, EINTR-tolerant. The only I/O primitive the dump path uses,
// so the whole path stays async-signal-safe.
bool WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

const char* FlightEventTypeName(uint32_t type) {
  switch (type) {
    case kFlightTick: return "tick";
    case kFlightAdmit: return "admit";
    case kFlightFinish: return "finish";
    case kFlightKillWorker: return "kill-worker";
    case kFlightEvict: return "evict";
    case kFlightRestore: return "restore";
    case kFlightRebalance: return "rebalance";
    case kFlightSlabOpen: return "slab-open";
    case kFlightSlabClose: return "slab-close";
    case kFlightSloExhausted: return "slo-exhausted";
    case kFlightMark: return "mark";
    default: return "invalid";
  }
}

void FlightRing::Record(uint32_t type, uint32_t arg0, uint64_t arg1,
                        uint64_t arg2) {
  RecordAt(NowNs(), type, arg0, arg1, arg2);
}

void FlightRing::RecordAt(uint64_t ts_ns, uint32_t type, uint32_t arg0,
                          uint64_t arg1, uint64_t arg2) {
  const uint64_t seq = head_.load(std::memory_order_relaxed);
  FlightEvent& e = events_[seq & mask_];
  e.ts_ns = ts_ns;
  e.type = type;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg2 = arg2;
  head_.store(seq + 1, std::memory_order_release);
}

FlightRecorder::FlightRecorder(Options options) {
#if RRS_OBS_LEVEL >= 1
  capacity_ = std::bit_ceil(
      static_cast<uint64_t>(options.ring_capacity < 2 ? 2
                                                      : options.ring_capacity));
  max_rings_ = options.max_rings;
  slab_ = std::make_unique<FlightEvent[]>(capacity_ * max_rings_);
  rings_ = std::make_unique<FlightRing[]>(max_rings_);
#else
  (void)options;  // level 0: no slab, Ring() stays null, dumps are empty
#endif
}

FlightRing* FlightRecorder::Ring(std::string_view name) {
  if (max_rings_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(register_mutex_);
  const uint32_t n = num_rings_.load(std::memory_order_relaxed);
  char truncated[kFlightRingNameLen] = {};
  std::memcpy(truncated, name.data(),
              std::min(name.size(), kFlightRingNameLen - 1));
  for (uint32_t i = 0; i < n; ++i) {
    if (std::strcmp(rings_[i].name_, truncated) == 0) return &rings_[i];
  }
  if (n >= max_rings_) return nullptr;
  FlightRing& ring = rings_[n];
  std::memcpy(ring.name_, truncated, kFlightRingNameLen);
  ring.events_ = slab_.get() + static_cast<uint64_t>(n) * capacity_;
  ring.mask_ = capacity_ - 1;
  num_rings_.store(n + 1, std::memory_order_release);
  return &ring;
}

bool FlightRecorder::DumpToFd(int fd) const {
  const uint32_t n = num_rings_.load(std::memory_order_acquire);
  char header[24];
  std::memcpy(header, kFlightMagic, 8);
  std::memcpy(header + 8, &kFlightVersion, 4);
  std::memcpy(header + 12, &n, 4);
  std::memcpy(header + 16, &capacity_, 8);
  if (!WriteAll(fd, header, sizeof(header))) return false;
  for (uint32_t i = 0; i < n; ++i) {
    const FlightRing& ring = rings_[i];
    const uint64_t head = ring.head_.load(std::memory_order_acquire);
    if (!WriteAll(fd, ring.name_, kFlightRingNameLen)) return false;
    if (!WriteAll(fd, &head, 8)) return false;
    if (!WriteAll(fd, ring.events_, capacity_ * sizeof(FlightEvent))) {
      return false;
    }
  }
  return true;
}

bool FlightRecorder::DumpToFile(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = DumpToFd(fd);
  ::close(fd);
  return ok;
}

// ---- Crash handler --------------------------------------------------------

namespace {

// Static slots: signal handlers get no arguments, so the recorder and path
// live in process globals written before any fault can fire.
const FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[256] = {};

void FlightCrashHandler(int sig) {
  const FlightRecorder* recorder = g_crash_recorder;
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->DumpToFd(fd);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition before we ran; re-raising
  // terminates with the original signal (keeps exit status and core dumps).
  ::raise(sig);
}

}  // namespace

void InstallFlightCrashHandler(const FlightRecorder* recorder,
                               const char* path) {
  g_crash_recorder = recorder;
  if (path != nullptr) {
    std::strncpy(g_crash_path, path, sizeof(g_crash_path) - 1);
    g_crash_path[sizeof(g_crash_path) - 1] = '\0';
  } else {
    g_crash_path[0] = '\0';
  }
  if (recorder == nullptr) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FlightCrashHandler;
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGABRT, &action, nullptr);
  ::sigaction(SIGSEGV, &action, nullptr);
}

// ---- Decoder --------------------------------------------------------------

bool DecodeFlightDump(std::string_view bytes, DecodedFlight* out,
                      std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (bytes.size() < 24) return fail("truncated header");
  if (std::memcmp(bytes.data(), kFlightMagic, 8) != 0) {
    return fail("bad magic");
  }
  uint32_t version = 0, ring_count = 0;
  uint64_t capacity = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&ring_count, bytes.data() + 12, 4);
  std::memcpy(&capacity, bytes.data() + 16, 8);
  if (version != kFlightVersion) return fail("unsupported version");
  out->version = version;
  out->ring_capacity = capacity;
  out->rings.clear();
  size_t at = 24;
  const size_t ring_bytes =
      kFlightRingNameLen + 8 + capacity * sizeof(FlightEvent);
  for (uint32_t i = 0; i < ring_count; ++i) {
    if (bytes.size() - at < ring_bytes) return fail("truncated ring");
    DecodedFlightRing ring;
    const char* name = bytes.data() + at;
    ring.name.assign(name, strnlen(name, kFlightRingNameLen));
    uint64_t head = 0;
    std::memcpy(&head, bytes.data() + at + kFlightRingNameLen, 8);
    ring.recorded = head;
    const char* slots = bytes.data() + at + kFlightRingNameLen + 8;
    // Oldest retained event first: below one wrap that is slot 0; after a
    // wrap it is the slot head points at (about to be overwritten next).
    const uint64_t retained = head < capacity ? head : capacity;
    const uint64_t start = head < capacity ? 0 : head & (capacity - 1);
    ring.events.reserve(retained);
    for (uint64_t k = 0; k < retained; ++k) {
      FlightEvent event;
      std::memcpy(&event, slots + ((start + k) & (capacity - 1)) * 32, 32);
      // A crash can tear the slot the writer was filling; drop anything the
      // vocabulary does not cover rather than mislead the post-mortem.
      if (event.type == kFlightInvalid ||
          event.type >= kNumFlightEventTypes) {
        continue;
      }
      ring.events.push_back(event);
    }
    out->rings.push_back(std::move(ring));
    at += ring_bytes;
  }
  return true;
}

std::string FormatFlightEvent(const FlightEvent& event, uint64_t epoch_ns) {
  const double ms =
      static_cast<double>(event.ts_ns - epoch_ns) / 1e6;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "+%10.3fms %-13s arg0=%u arg1=%llu arg2=%llu", ms,
                FlightEventTypeName(event.type), event.arg0,
                static_cast<unsigned long long>(event.arg1),
                static_cast<unsigned long long>(event.arg2));
  return buf;
}

}  // namespace obs
}  // namespace rrs
