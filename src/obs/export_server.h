// Dependency-free HTTP exposition server for live fleet scrapes.
//
// Serves the Prometheus text format and JSON snapshots of a running fleet
// without stopping workers: every handler renders under the owning
// structure's own lock (Scope::RenderPrometheus, SloTracker's published
// per-shard snapshots), so a scrape observes the aggregate exactly as of the
// last absorb/publish — never a half-written registry.
//
// Scope: GET-only, one thread, Connection: close, loopback by default.
// This is a metrics endpoint for `curl`/Prometheus/fleet_top, not a web
// server; anything beyond "GET <path>" gets a 400/404/405.
//
// Routes installed by default when a Scope is attached:
//   /metrics       Prometheus text exposition (plus registered sections)
//   /metrics.json  Registry::ToJson snapshot
//   /healthz       "ok"
// Additional routes (e.g. /tenants) are registered with Handle() before
// Start(); fleet glue adds its SLO section to /metrics with
// AddMetricsSection().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/scope.h"

namespace rrs {
namespace obs {

class ExportServer {
 public:
  // Produces one response body per request; must be internally synchronized
  // (it runs on the server thread while workers mutate the fleet).
  using Handler = std::function<std::string()>;

  struct Options {
    uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
    std::string bind_address = "127.0.0.1";
    Scope* scope = nullptr;  // not owned; enables /metrics + /metrics.json
    std::string prefix = "rrs";  // metric name prefix for /metrics
  };

  explicit ExportServer(Options options);
  ~ExportServer();  // stops and joins the serving thread

  ExportServer(const ExportServer&) = delete;
  ExportServer& operator=(const ExportServer&) = delete;

  // Registers `path` -> body producer. Call before Start() (the route table
  // is read without a lock once the thread is serving).
  void Handle(std::string path, std::string content_type, Handler handler);

  // Appends a producer whose output is concatenated after the Scope's
  // exposition in /metrics — how the SLO tracker contributes its per-shard
  // section to the same scrape. Call before Start().
  void AddMetricsSection(Handler section);

  // Binds, listens, and spawns the serving thread. False (with *error set)
  // when the bind fails; safe to call once.
  bool Start(std::string* error = nullptr);

  // Idempotent; joins the serving thread.
  void Stop();

  bool running() const { return running_; }
  uint16_t port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    Handler handler;
  };

  void Serve();
  void HandleConnection(int fd);

  Options options_;
  std::vector<Route> routes_;
  std::vector<Handler> metrics_sections_;
  std::thread thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
  // Written by Stop(), read by the serving thread between polls. Plain bool
  // would be a race; this is the only cross-thread state.
  std::atomic<bool> stop_{false};
};

// Minimal blocking HTTP/1.1 GET for tests and fleet_top: returns the
// response body on HTTP 200, empty string otherwise (*error carries the
// status line or errno text).
//
// The whole request shares one deadline (`timeout_ms`; < 0 = no deadline):
// a stalled or wedged server turns into an ETIMEDOUT error instead of a
// forever-hung scraper. Bodies are assembled with a short-read loop against
// the response's Content-Length, so a server that dribbles the body in
// small writes — or a kernel that returns partial reads — still yields the
// complete payload; a connection that closes short of Content-Length is an
// error, not a silently truncated body.
std::string HttpGet(const std::string& host, uint16_t port,
                    const std::string& path, std::string* error = nullptr,
                    int64_t timeout_ms = 5000);

}  // namespace obs
}  // namespace rrs
