// Metrics registry: named counters, gauges, and log-linear (HDR-style)
// histograms.
//
// Handles are registered once (a map lookup, cold) and updated through
// stable pointers on the hot path (a single add/store into a cache-line-
// aligned slot — registration heap-allocates each instrument separately so
// two hot instruments never share a line, and a Registry-wide rehash can
// never move a handle out from under a writer).
//
// A Registry is single-writer: engine runs keep a run-local registry (or the
// fixed instrument block in obs::RunInstruments) and fold it into a shared
// aggregate under obs::Scope's mutex at end of run. Nothing here is atomic
// by design — cross-thread aggregation is the Scope's job, which keeps the
// hot-path update a plain increment.
//
// Exports: JSON (machine-readable snapshot) and Prometheus text exposition
// (counters/gauges as-is, histograms as quantile summaries).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/level.h"

namespace rrs {
namespace obs {

// A monotonically increasing count. Aligned to its own cache line so hot
// counters handed out by one registry never false-share.
struct alignas(64) Counter {
  uint64_t value = 0;

  void Add(uint64_t delta = 1) { value += delta; }
};

// A last-write-wins instantaneous value.
struct alignas(64) Gauge {
  double value = 0;

  void Set(double v) { value = v; }
};

// Log-linear histogram over uint64 values (HDR-histogram bucket layout):
// values below 2^4 get exact unit buckets; above that, each power-of-two
// range splits into 8 linear sub-buckets, so relative error is bounded by
// 12.5% across the full 64-bit range at a fixed 496-bucket footprint. Record
// is branch-light (a count-leading-zeros and two shifts) and allocation-free,
// which is what lets the engine keep one per phase on the hot path.
class LogHistogram {
 public:
  static constexpr uint32_t kSubBuckets = 8;   // per power-of-two range
  static constexpr uint32_t kUnitBuckets = 2 * kSubBuckets;  // exact 0..15
  static constexpr uint32_t kNumBuckets =
      kUnitBuckets + (64 - 4) * kSubBuckets;  // 496

  void Record(uint64_t value);
  // Records `value` `count` times in O(1) — what lets end-of-run absorption
  // fold per-color drop totals into a by-delay-class histogram without
  // replaying every dropped job.
  void RecordMany(uint64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  // Quantile by linear interpolation inside the containing bucket; q in
  // [0, 1]. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  void Merge(const LogHistogram& other);
  // Folds in the delta cur - baseline, where `baseline` is a copy of `cur`
  // taken earlier (both grow-only accumulators of the same stream). Lets a
  // periodic absorber pull "what's new since last time" out of a cumulative
  // histogram without the writer double-recording into a separate pending
  // histogram on its hot path. max() folds cur's cumulative max: for a
  // running absorb-delta stream the merged max still equals the max over
  // all events absorbed so far.
  void MergeDiff(const LogHistogram& cur, const LogHistogram& baseline);
  void Reset();

  // Bucket introspection (exports/tests): value range [lo, hi) of bucket i.
  static uint64_t BucketLo(uint32_t i);
  static uint64_t BucketHi(uint32_t i);
  uint64_t bucket_count(uint32_t i) const { return buckets_[i]; }

 private:
  static uint32_t BucketOf(uint64_t value);

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Name-keyed instrument store. Lookup by name returns a stable reference for
// the registry's lifetime; repeated lookups of one name return the same
// instrument.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LogHistogram& histogram(std::string_view name);

  // Read-only probes: null when the instrument was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const LogHistogram* FindHistogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Folds `other` into this registry: counters add, histograms merge,
  // gauges take the other side's value. Not thread-safe; callers serialize
  // (obs::Scope wraps this in a mutex).
  void MergeFrom(const Registry& other);

  // Counters and gauges flattened to name -> value (histograms excluded).
  std::map<std::string, double> Values() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // mean, p50, p90, p99, max}}} with names sorted.
  std::string ToJson() const;

  // Prometheus text exposition: counters/gauges verbatim, histograms as
  // summaries (quantile 0.5/0.9/0.99 + _sum/_count). Metric names are
  // prefixed and sanitized to [a-zA-Z0-9_:] (PromMetricName); every metric
  // carries # HELP and # TYPE lines, emitted once per *sanitized* name even
  // when several raw names collapse onto it (duplicate metadata lines are
  // invalid exposition format).
  std::string ToPrometheus(std::string_view prefix = "rrs") const;

 private:
  // unique_ptr storage: handles stay valid across map rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>>
      histograms_;
};

// ---- Prometheus exposition helpers ----------------------------------------
// Shared by Registry::ToPrometheus and every other exposition producer
// (fleet::SloTracker's per-shard section, the export server).

// `prefix_name` with every character outside [a-zA-Z0-9_:] replaced by '_'.
// An empty raw name yields "prefix_" — still a legal metric name, since the
// prefix supplies a legal leading character. Names never need rejection
// outright: the prefix guarantees a sound first character and substitution
// makes the rest legal.
std::string PromMetricName(std::string_view prefix, std::string_view name);

// Escapes a label *value* per the exposition format: backslash, double
// quote, and newline become \\, \", and \n. Everything else (including other
// control characters and UTF-8) passes through verbatim.
std::string PromEscapeLabel(std::string_view value);

}  // namespace obs
}  // namespace rrs
