// obs::Scope — the handle engines and harnesses share to opt a run into
// observability, plus obs::RunInstruments, the run-local instrument block
// the engines actually touch on the hot path.
//
// Threading model: a Scope may be shared by many concurrent engine runs
// (parallel sweeps). Each run keeps all hot-path state run-local (plain
// uint64 counters, fixed LogHistograms — no sharing, no atomics) and folds
// one finished run into the scope's aggregate Registry under a mutex
// (Scope::Absorb). Trace events go straight to the scope's Tracer, whose
// per-track rings are single-writer by construction (each run registers its
// own phase tracks; pool workers use per-thread tracks).
//
// Cost model: with no scope attached a run pays one pointer test per phase
// boundary. With a scope attached (metrics only), phase wall times are
// *sampled* — every 2^sample_shift rounds (default 32) — so the steady-state
// clock overhead is ~3% of rounds, measured (not assumed) by the perf gate:
// bench_baseline attaches a scope to every cell, and tools/bench_compare.py
// holds the result inside the 15% budget. Attaching a Tracer switches to
// per-round timestamps (a trace with 31/32 rounds missing is useless), which
// is the explicitly-requested expensive mode.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "core/types.h"
#include "obs/level.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace rrs {
namespace obs {

class Scope {
 public:
  struct Options {
    // Phase wall times are measured on rounds where (k & (2^shift - 1)) == 0.
    uint32_t sample_shift = 5;
    Tracer* tracer = nullptr;  // not owned; null = metrics only
  };

  Scope() = default;
  explicit Scope(Options options) : options_(options) {}

  Tracer* tracer() const { return options_.tracer; }
  void set_tracer(Tracer* tracer) { options_.tracer = tracer; }
  uint32_t sample_mask() const { return (1u << options_.sample_shift) - 1; }

  // Monotonic id naming each run's trace tracks ("run3/engine/drop").
  uint64_t NextRunId() {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_run_id_++;
  }

  // Folds one finished run into the aggregate registry (thread-safe):
  // engine.* counters, per-color drop/reconfig counters, per-phase duration
  // histograms, and the run's structured policy counters.
  void Absorb(const Telemetry& telemetry, const LogHistogram* phase_ns);

  // Generic absorption for non-engine producers (e.g. the offline solver):
  // adds each (name, delta) into the aggregate counters / merges a finished
  // run-local histogram, thread-safe. Cold path — callers batch at end of
  // run, never per event.
  void AbsorbCounters(
      std::span<const std::pair<std::string_view, uint64_t>> counters);
  void AbsorbHistogram(std::string_view name, const LogHistogram& histogram);
  void AbsorbGauge(std::string_view name, double value);

  // The cross-run aggregate. Safe to read once all runs absorbed (the
  // reference is unsynchronized; Absorb is the only concurrent writer).
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  uint64_t runs_absorbed() const { return runs_absorbed_; }

  // Consistent snapshots for live scrapes: render the aggregate under the
  // same mutex Absorb takes, so an export server can read while runs are
  // still folding in. (registry() stays the unsynchronized post-run view.)
  std::string RenderPrometheus(std::string_view prefix = "rrs") const;
  std::string RenderJson() const;

  // One-line summary of everything absorbed so far (runs, drops, reconfigs,
  // phase p50/p99) — what run_experiments prints after each experiment.
  std::string SummaryLine() const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  Registry registry_;
  uint64_t next_run_id_ = 0;
  uint64_t runs_absorbed_ = 0;
};

// Process-global fallback scope: engines use the run's explicit
// EngineOptions scope when set, else this. Install/clear from a
// single-threaded section (a plain pointer, unsynchronized by design).
Scope* GlobalScope();
void SetGlobalScope(Scope* scope);

inline Scope* EffectiveScope(Scope* explicit_scope) {
  return explicit_scope != nullptr ? explicit_scope : GlobalScope();
}

#if RRS_OBS_LEVEL >= 1

// Run-local instruments: constructed at the top of Engine::Run /
// StreamEngine / RunPolicyReference, updated inline during the round loop,
// summarized into RunResult::telemetry and absorbed into the scope at the
// end. All state is owned by the running thread.
class RunInstruments {
 public:
  // `scope` may be null (falls back to the global scope, which may also be
  // null — then only the always-on structured counters are kept).
  RunInstruments(Scope* scope, const char* engine_name);

  // Unbound instruments for session cores constructed before their first
  // tenant; Rebind before the first run.
  RunInstruments() = default;

  // Re-arms the instruments for a new run on a (possibly different) scope:
  // clears the phase histograms and registers fresh trace tracks. This is
  // what lets one session object serve many tenants without reconstructing
  // its instrument block.
  void Rebind(Scope* scope, const char* engine_name);

  bool active() const { return scope_ != nullptr; }
  bool tracing() const { return tracer_ != nullptr; }

  // Whether round k's phase boundaries should take timestamps.
  bool ShouldSample(Round k) const {
    return scope_ != nullptr &&
           (tracer_ != nullptr ||
            (static_cast<uint64_t>(k) & sample_mask_) == 0);
  }

  // Records phase duration [t0, t1) for round k; emits a trace span when a
  // tracer is attached. Only call on sampled rounds.
  void RecordPhase(int phase, Round k, uint64_t t0, uint64_t t1) {
    phase_ns_[phase].Record(t1 - t0);
    if (tracer_ != nullptr) {
      tracer_->Emit(tracks_[phase], PhaseName(phase), t0, t1 - t0,
                    static_cast<uint64_t>(k));
    }
  }

  // Zero-duration "recolor" marker on the reconfig track (policy decisions
  // become visible in the trace). Only called when tracing.
  void EmitRecolor(Round k, ResourceId r) {
    if (tracer_ != nullptr) {
      tracer_->Emit(tracks_[kPhaseReconfig], "recolor", NowNs(), 0,
                    static_cast<uint64_t>(k));
      (void)r;
    }
  }

  const LogHistogram* phase_histograms() const { return phase_ns_; }

  // Fills telemetry's phase summaries and folds the run into the scope (if
  // any). Call once, after the telemetry counters are populated.
  void Finalize(Telemetry& telemetry);

 private:
  Scope* scope_ = nullptr;
  Tracer* tracer_ = nullptr;
  uint32_t sample_mask_ = 31;
  TraceTrack* tracks_[kNumPhases] = {};
  LogHistogram phase_ns_[kNumPhases];
};

#else  // RRS_OBS_LEVEL == 0: every member erases to a constant.

class RunInstruments {
 public:
  RunInstruments() = default;
  RunInstruments(Scope*, const char*) {}
  void Rebind(Scope*, const char*) {}
  static constexpr bool active() { return false; }
  static constexpr bool tracing() { return false; }
  static constexpr bool ShouldSample(Round) { return false; }
  void RecordPhase(int, Round, uint64_t, uint64_t) {}
  void EmitRecolor(Round, ResourceId) {}
  void Finalize(Telemetry&) {}
};

#endif

}  // namespace obs
}  // namespace rrs
