// Telemetry: the structured per-run snapshot carried by RunResult.
//
// The snapshot is cheap plain data — cost totals, per-color drop/reconfig
// vectors, per-phase wall-time summaries (from sampled LogHistograms), and a
// flat counter map fed by SchedulerPolicy::ExportMetrics — so harness code
// can aggregate it without touching the obs runtime.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/level.h"

namespace rrs {
namespace obs {

class LogHistogram;

// The engine's four round phases, in model order (Section 2).
enum EnginePhase : int {
  kPhaseDrop = 0,
  kPhaseArrival = 1,
  kPhaseReconfig = 2,
  kPhaseExecute = 3,
  kNumPhases = 4,
};

const char* PhaseName(int phase);  // "drop", "arrival", "reconfig", "execute"

// Summary of one phase's sampled wall-time distribution (nanoseconds).
struct PhaseStat {
  uint64_t samples = 0;
  uint64_t total_ns = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  uint64_t max_ns = 0;
};

PhaseStat SummarizePhase(const LogHistogram& hist);

struct Telemetry {
  uint64_t arrived = 0;
  uint64_t executed = 0;
  uint64_t drops = 0;
  uint64_t reconfigs = 0;
  uint64_t rounds = 0;

  std::vector<uint64_t> drops_per_color;
  std::vector<uint64_t> reconfigs_per_color;

  PhaseStat phase[kNumPhases];

  // Structured policy/extension counters (SchedulerPolicy::ExportMetrics,
  // flattened).
  std::map<std::string, double> counters;

  // One-line human summary: drops, reconfigs, and per-phase p50/p99 — the
  // self-describing footer every experiment run prints.
  std::string SummaryLine() const;
};

}  // namespace obs
}  // namespace rrs
