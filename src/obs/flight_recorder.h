// Crash-time flight recorder: fixed-size single-writer rings of structured
// binary events, dumpable from a signal handler.
//
// The fleet runners record tick boundaries, fault injections, slab occupancy
// transitions, and SLO budget exhaustion into per-worker rings (one writer
// per ring, no locks, no allocation after construction). When the process
// aborts mid-run, a SIGABRT/SIGSEGV handler installed via
// InstallFlightCrashHandler writes every ring to a post-mortem file using
// only async-signal-safe calls (open/write/close); tools/flight_decode
// pretty-prints the dump.
//
// The dump tolerates a torn in-flight event (the crash may interrupt a
// writer mid-Record): head is published with a release store after the slot
// is fully written, and the decoder drops any slot whose type field is out
// of range.
//
// At RRS_OBS_LEVEL=0 the recorder allocates nothing and Ring() returns
// nullptr; DumpToFd still writes a valid zero-ring dump so crash-handler
// wiring needs no level checks. The decoder half (DecodeFlightDump,
// FormatFlightEvent) is compiled at every level — a level-0 build must still
// read dumps produced by instrumented builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/level.h"

namespace rrs {
namespace obs {

// Event vocabulary. Values are part of the dump format: append only.
enum FlightEventType : uint32_t {
  kFlightInvalid = 0,  // never recorded; what a torn/empty slot decodes as
  kFlightTick = 1,            // arg0=shard/worker, arg1=tick index
  kFlightAdmit = 2,           // arg0=shard/worker, arg1=job index
  kFlightFinish = 3,          // arg0=shard/worker, arg1=job index
  kFlightKillWorker = 4,      // arg0=worker, arg1=sessions evicted
  kFlightEvict = 5,           // arg0=worker, arg1=job index, arg2=delay ticks
  kFlightRestore = 6,         // arg0=worker, arg1=job index
  kFlightRebalance = 7,       // arg0=from worker, arg1=to worker, arg2=job
  kFlightSlabOpen = 8,        // arg0=shard, arg1=live slabs after open
  kFlightSlabClose = 9,       // arg0=shard, arg1=live slabs after close
  kFlightSloExhausted = 10,   // arg0=shard, arg1=tenant, arg2=window index
  kFlightMark = 11,           // free-form marker (tests, tools)
  kNumFlightEventTypes = 12,
};

// Stable short name for an event type ("tick", "evict", ...); "invalid" for
// out-of-range values.
const char* FlightEventTypeName(uint32_t type);

// One 32-byte slot. Field meaning depends on type (see enum comments).
struct FlightEvent {
  uint64_t ts_ns = 0;  // CLOCK_MONOTONIC, absolute
  uint32_t type = 0;
  uint32_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};
static_assert(sizeof(FlightEvent) == 32, "dump format assumes 32-byte slots");

inline constexpr size_t kFlightRingNameLen = 32;  // incl. NUL, dump format

// One single-writer ring. Record is wait-free: a relaxed head read, a slot
// write, a release head store. Readers (the dump path) take an acquire load
// of head and accept that the slot at head may be torn.
class FlightRing {
 public:
  void Record(uint32_t type, uint32_t arg0 = 0, uint64_t arg1 = 0,
              uint64_t arg2 = 0);
  // Record with a caller-supplied CLOCK_MONOTONIC stamp. Hot loops that emit
  // many events per tick (the fleet runners: one admit + one finish per
  // session) read the clock once at the tick barrier and stamp every event
  // in the tick with it — tick-granular timestamps, but ring order still
  // gives exact event ordering, and the per-event clock read (the dominant
  // Record cost at fleet scale) disappears.
  void RecordAt(uint64_t ts_ns, uint32_t type, uint32_t arg0 = 0,
                uint64_t arg1 = 0, uint64_t arg2 = 0);

  // Total events ever recorded (>= retained count once the ring wraps).
  uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  std::string_view name() const { return name_; }

 private:
  friend class FlightRecorder;

  char name_[kFlightRingNameLen] = {};
  FlightEvent* events_ = nullptr;  // capacity slots inside the recorder slab
  uint64_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

// Owns the ring directory and one pre-allocated event slab. Rings are
// registered once per worker (a mutex-guarded name lookup, cold) and
// recorded into lock-free afterwards; pointers stay stable for the
// recorder's lifetime.
class FlightRecorder {
 public:
  struct Options {
    uint32_t ring_capacity = 1024;  // events per ring; rounded up to 2^k
    uint32_t max_rings = 64;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);

  // Get-or-register the ring named `name` (truncated to 31 chars). Returns
  // nullptr when the directory is full or at RRS_OBS_LEVEL=0 — callers keep
  // the null and simply never record.
  FlightRing* Ring(std::string_view name);

  // Writes the dump using only async-signal-safe calls (write(2) loop, no
  // allocation). Safe to call from a signal handler while writers are live;
  // returns false on short/failed write.
  bool DumpToFd(int fd) const;

  // Convenience wrapper: open(path, TRUNC) + DumpToFd + close.
  bool DumpToFile(const char* path) const;

  uint32_t num_rings() const {
    return num_rings_.load(std::memory_order_acquire);
  }
  uint64_t ring_capacity() const { return capacity_; }

 private:
  uint64_t capacity_ = 0;
  uint32_t max_rings_ = 0;
  std::unique_ptr<FlightEvent[]> slab_;
  std::unique_ptr<FlightRing[]> rings_;
  std::atomic<uint32_t> num_rings_{0};
  std::mutex register_mutex_;
};

// Installs a SIGABRT+SIGSEGV handler that dumps `recorder` to `path` and
// re-raises with the default disposition (SA_RESETHAND), so the process
// still dies with the original signal after the dump. One recorder/path per
// process (static slots); pass nullptr to uninstall the hook's state (the
// handlers stay but become no-ops).
void InstallFlightCrashHandler(const FlightRecorder* recorder,
                               const char* path);

// ---- Decoder (compiled at every obs level) --------------------------------

struct DecodedFlightRing {
  std::string name;
  uint64_t recorded = 0;  // total ever recorded (retained <= capacity)
  std::vector<FlightEvent> events;  // oldest first, torn slots dropped
};

struct DecodedFlight {
  uint32_t version = 0;
  uint64_t ring_capacity = 0;
  std::vector<DecodedFlightRing> rings;
};

// Parses dump bytes. Returns false (with *error set) on bad magic, version,
// or truncation.
bool DecodeFlightDump(std::string_view bytes, DecodedFlight* out,
                      std::string* error);

// "+123.456ms tick worker=2 arg1=17 arg2=0" — timestamp relative to
// `epoch_ns` (pass the dump's earliest timestamp for aligned output).
std::string FormatFlightEvent(const FlightEvent& event, uint64_t epoch_ns);

}  // namespace obs
}  // namespace rrs
