// Phase-scoped tracer with a ring-buffer sink and a Chrome trace_event
// exporter.
//
// Model: a Tracer owns a set of named *tracks* (rendered as rows in
// chrome://tracing / Perfetto, one synthetic tid per track). Each track is a
// fixed-capacity ring of complete events — when a track overflows, the
// oldest events are overwritten and the drop is counted, so tracing is
// always bounded-memory and safe to leave attached to a long run.
//
// Concurrency contract: RegisterTrack/ThreadTrack are thread-safe (mutex);
// Emit on a given track is lock- and allocation-free but single-writer —
// exactly one thread writes a track at a time. Engine runs register their
// own per-phase tracks (one writer: the run's thread); ParallelFor workers
// get per-thread tracks via ThreadTrack(), so sweep tasks running on the
// pool trace concurrently without sharing a ring. Export (ToChromeJson)
// takes the mutex and must only run after writers quiesce.
//
// The export is standard Chrome trace_event JSON ("X" complete events with
// per-track thread_name metadata), loadable in chrome://tracing and
// https://ui.perfetto.dev. One event per line, which also keeps it trivially
// greppable and machine-checkable (tests/obs_test.cpp round-trips it).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/level.h"

namespace rrs {
namespace obs {

// Monotonic timestamp in nanoseconds (steady_clock).
uint64_t NowNs();

// One track's ring. Opaque to callers; obtained from Tracer::RegisterTrack.
class TraceTrack {
 public:
  struct Event {
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;
    const char* name = nullptr;  // must outlive the tracer (string literals)
    uint64_t arg = 0;            // exported as args.round
  };

  const std::string& name() const { return name_; }
  uint64_t emitted() const { return emitted_; }
  uint64_t dropped() const {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }

 private:
  friend class Tracer;

  TraceTrack(std::string name, uint32_t tid, size_t capacity)
      : name_(std::move(name)), tid_(tid), ring_(capacity) {}

  void Push(const Event& e) {
    ring_[next_] = e;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++emitted_;
  }

  std::string name_;
  uint32_t tid_;
  std::vector<Event> ring_;
  size_t next_ = 0;
  uint64_t emitted_ = 0;
};

class Tracer {
 public:
  struct Options {
    size_t events_per_track = size_t{1} << 14;  // 16K events, ~640KB/track
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options);

  // Creates a named track. The returned pointer is stable for the tracer's
  // lifetime. Thread-safe.
  TraceTrack* RegisterTrack(std::string name);

  // The calling thread's auto-registered track ("thread-<n>"), cached
  // per-thread so repeat calls are a pointer compare. Thread-safe.
  TraceTrack* ThreadTrack();

  // Records a complete event on `track`. Single-writer per track (see file
  // comment); lock-free and allocation-free.
  void Emit(TraceTrack* track, const char* name, uint64_t ts_ns,
            uint64_t dur_ns, uint64_t arg = 0) {
    track->Push({ts_ns, dur_ns, name, arg});
  }

  uint64_t epoch_ns() const { return epoch_ns_; }
  size_t num_tracks() const;
  uint64_t dropped_events() const;  // total across tracks

  // Chrome trace_event JSON. Call after all writers have finished.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  const Options options_;
  const uint64_t epoch_ns_;
  mutable std::mutex mutex_;        // guards tracks_ structure, not rings
  std::deque<TraceTrack> tracks_;   // deque: stable element addresses
};

#if RRS_OBS_LEVEL >= 1

// RAII span: times its scope and emits one complete event on destruction.
// A null tracer (or track) makes the span free apart from one branch.
class Span {
 public:
  Span(Tracer* tracer, TraceTrack* track, const char* name, uint64_t arg = 0)
      : tracer_(track != nullptr ? tracer : nullptr),
        track_(track),
        name_(name),
        arg_(arg),
        start_ns_(tracer_ != nullptr ? NowNs() : 0) {}

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->Emit(track_, name_, start_ns_, NowNs() - start_ns_, arg_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  TraceTrack* track_;
  const char* name_;
  uint64_t arg_;
  uint64_t start_ns_;
};

#else  // RRS_OBS_LEVEL == 0: spans erase to nothing.

class Span {
 public:
  Span(Tracer*, TraceTrack*, const char*, uint64_t = 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif

}  // namespace obs
}  // namespace rrs
