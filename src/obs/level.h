// Compile-time observability level (RRS_OBS_LEVEL).
//
//   0  — instrumentation erased: engines take no timestamps, emit no trace
//        events, keep no per-color telemetry, and RunResult::telemetry stays
//        empty; hot paths compile to exactly the uninstrumented code (the
//        gating predicates are constexpr-false, so the optimizer removes the
//        branches and the clock calls behind them).
//   1  — default: structured telemetry + sampled per-phase wall-time
//        histograms on every run, trace spans when a Tracer is attached to
//        the run's obs::Scope.
//
// The level is a whole-build property (a PUBLIC compile definition on the
// rrsched target, set by the RRS_OBS_LEVEL CMake cache variable), so every
// translation unit — library, tests, benches — agrees on it.
#pragma once

#ifndef RRS_OBS_LEVEL
#define RRS_OBS_LEVEL 1
#endif

namespace rrs {
namespace obs {

inline constexpr int kLevel = RRS_OBS_LEVEL;
inline constexpr bool kEnabled = RRS_OBS_LEVEL >= 1;

}  // namespace obs
}  // namespace rrs
