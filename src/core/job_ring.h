// Per-color pending FIFO: a power-of-two ring over SoA (job id, deadline)
// arrays. A color's deadlines arrive in nondecreasing order, so FIFO order
// is earliest-deadline order. Capacity starts small and doubles on demand,
// so a ring holds roughly the color's *maximum backlog* — typically orders
// of magnitude below its total job count — which keeps the working set
// cache-resident and round-over-round memory reuse high (unlike a
// total-jobs-sized slab, whose tail writes only ever touch cold lines).
// Capacity is session-owned: clear() empties the ring but keeps the arrays,
// so a reused session serves its next tenant allocation-free.
//
// Extracted from core/engine.cpp so the lane-parallel fleet core
// (fleet/batch_engine) can step per-lane rings through the same structure
// the scalar Engine uses — bit-identical ring contents are the foundation
// of the batched path's differential guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "snapshot/codec.h"
#include "util/check.h"

namespace rrs {

class JobRing {
 public:
  bool empty() const { return size_ == 0; }
  uint32_t size() const { return size_; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  JobId front_job() const {
    RRS_DCHECK(size_ > 0);
    return job_[head_];
  }
  Round front_deadline() const {
    RRS_DCHECK(size_ > 0);
    return deadline_[head_];
  }
  // The i-th entry after the front (i < size()).
  Round deadline_at(uint32_t i) const {
    RRS_DCHECK(i < size_);
    return deadline_[(head_ + i) & mask_];
  }
  JobId job_at(uint32_t i) const {
    RRS_DCHECK(i < size_);
    return job_[(head_ + i) & mask_];
  }

  // Grows (never shrinks) to hold at least `n` entries. Sessions call this
  // at bind time with the tenant's per-color backlog bound
  // (Instance::max_backlog), so the round loop never grows a ring mid-run:
  // all ring allocation happens at the tenant boundary, where a warm session
  // of sufficient capacity performs none at all.
  void Reserve(uint32_t n) {
    while (n > capacity()) Grow();
  }

  // Appends `count` jobs with consecutive ids [first, first + count) and a
  // common deadline.
  void push_run(JobId first, Round deadline, uint32_t count) {
    while (size_ + count > capacity()) Grow();
    uint32_t at = (head_ + size_) & mask_;
    for (uint32_t m = 0; m < count; ++m) {
      job_[at] = first + m;
      deadline_[at] = deadline;
      at = (at + 1) & mask_;
    }
    size_ += count;
  }

  void pop_n(uint32_t n) {
    RRS_DCHECK(n <= size_);
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  // True when the first n entries are contiguous in memory (no wraparound),
  // i.e. they can be exposed as a span without copying.
  bool front_contiguous(uint32_t n) const { return head_ + n <= capacity(); }
  const JobId* front_ptr() const { return &job_[head_]; }

  // Checkpoint/restore: entries in FIFO order. Capacity and head position
  // are deliberately not saved — they are layout, not state; a restored ring
  // re-packs from index 0 and regrows on demand.
  void SaveState(snapshot::Writer& w) const {
    w.PutU64(size_);
    for (uint32_t i = 0; i < size_; ++i) w.PutU64(job_at(i));
    for (uint32_t i = 0; i < size_; ++i) w.PutI64(deadline_at(i));
  }
  void LoadState(snapshot::Reader& r) {
    clear();
    const uint32_t n = r.GetU32();
    while (n > capacity()) Grow();
    for (uint32_t i = 0; i < n; ++i) job_[i] = r.GetU32();
    for (uint32_t i = 0; i < n; ++i) deadline_[i] = r.GetI64();
    size_ = n;
  }

 private:
  uint32_t capacity() const { return static_cast<uint32_t>(job_.size()); }

  void Grow() {
    const uint32_t old_cap = capacity();
    const uint32_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
    std::vector<JobId> job(new_cap);
    std::vector<Round> deadline(new_cap);
    for (uint32_t i = 0; i < size_; ++i) {
      const uint32_t at = (head_ + i) & mask_;
      job[i] = job_[at];
      deadline[i] = deadline_[at];
    }
    job_ = std::move(job);
    deadline_ = std::move(deadline);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<JobId> job_;
  std::vector<Round> deadline_;
  uint32_t head_ = 0;
  uint32_t size_ = 0;
  uint32_t mask_ = 0;  // capacity - 1 (capacity is a power of two, or 0)
};

}  // namespace rrs
