// Shared end-of-run telemetry assembly for the replay engines (Engine and
// RunPolicyReference): merges the legacy CollectCounters map with the
// structured ExportMetrics registry, fills RunResult::telemetry, and folds
// the run into the obs::Scope via RunInstruments::Finalize.
//
// Internal header (engine implementations only).
#pragma once

#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/scope.h"

namespace rrs {
namespace internal {

inline void FinalizeRunTelemetry(SchedulerPolicy& policy,
                                 obs::RunInstruments& instruments,
                                 std::vector<uint64_t>&& reconfigs_per_color,
                                 RunResult& result) {
  // Legacy path first, structured values win on name collision. The merge
  // runs at every obs level (it is end-of-run, not hot path), so policies
  // migrated to ExportMetrics keep their policy_counters entries even when
  // the instrumentation layer is compiled out.
  policy.CollectCounters(result.policy_counters);
  obs::Registry policy_registry;
  policy.ExportMetrics(policy_registry);
  for (const auto& [name, value] : policy_registry.Values()) {
    result.policy_counters[name] = value;
  }
#if RRS_OBS_LEVEL >= 1
  obs::Telemetry& telemetry = result.telemetry;
  telemetry.arrived = result.arrived;
  telemetry.executed = result.executed;
  telemetry.drops = result.cost.drops;
  telemetry.reconfigs = result.cost.reconfigurations;
  telemetry.rounds = static_cast<uint64_t>(result.rounds_simulated);
  telemetry.drops_per_color = result.drops_per_color;
  telemetry.reconfigs_per_color = std::move(reconfigs_per_color);
  telemetry.counters = result.policy_counters;
  instruments.Finalize(telemetry);
#else
  (void)instruments;
  (void)reconfigs_per_color;
#endif
}

}  // namespace internal
}  // namespace rrs
