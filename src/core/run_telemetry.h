// Shared end-of-run telemetry assembly for the replay engines (Engine and
// RunPolicyReference): snapshots the policy's structured ExportMetrics
// registry into RunResult::telemetry.counters, fills the rest of the
// telemetry block, and folds the run into the obs::Scope via
// RunInstruments::Finalize.
//
// The counters snapshot runs at every obs level (it is end-of-run, not hot
// path), so harness code can read policy counters even when the
// instrumentation layer is compiled out; the phase timings and per-color
// vectors require RRS_OBS_LEVEL >= 1.
//
// Internal header (engine implementations only).
#pragma once

#include <vector>

#include "core/engine.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/scope.h"

namespace rrs {
namespace internal {

inline void FinalizeRunTelemetry(const SchedulerPolicy& policy,
                                 obs::RunInstruments& instruments,
                                 const std::vector<uint64_t>& reconfigs_per_color,
                                 RunResult& result) {
  obs::Telemetry& telemetry = result.telemetry;
  telemetry.counters.clear();
  obs::Registry policy_registry;
  policy.ExportMetrics(policy_registry);
  for (const auto& [name, value] : policy_registry.Values()) {
    telemetry.counters[name] = value;
  }
#if RRS_OBS_LEVEL >= 1
  telemetry.arrived = result.arrived;
  telemetry.executed = result.executed;
  telemetry.drops = result.cost.drops;
  telemetry.reconfigs = result.cost.reconfigurations;
  telemetry.rounds = static_cast<uint64_t>(result.rounds_simulated);
  telemetry.drops_per_color = result.drops_per_color;
  telemetry.reconfigs_per_color = reconfigs_per_color;
  instruments.Finalize(telemetry);
#else
  (void)instruments;
  (void)reconfigs_per_color;
#endif
}

}  // namespace internal
}  // namespace rrs
