// The round-phase simulation engine for [Δ | 1 | D_ℓ | ·] (Section 2).
//
// The engine is the single source of truth for model semantics: the
// drop/arrival/reconfiguration/execution phase order, unit-job pending state,
// cost accounting (Δ per actual recoloring, 1 per drop), and the optional
// mini-round doubling used by double-speed algorithms. Policies only decide
// resource colors; everything else is fixed by the model.
//
// Per-color pending jobs live in power-of-two SoA rings (JobRing) sized to
// the color's maximum *backlog*, not its total job count: a color's
// deadlines arrive in nondecreasing order (deadline = arrival + D_ℓ with
// D_ℓ fixed per color), so FIFO order *is* earliest-deadline order and
// drop-phase expiry only ever advances the ring head. Ring capacity is
// reused round over round, so per-run setup is O(num_colors) and the round
// loop allocates nothing in steady state (gated by bench/bench_baseline).
// Expiry scanning uses a timing wheel keyed by deadline mod (max D_ℓ + 1),
// armed during the arrival phase, so a round's drop phase touches only
// colors that can actually expire in it.
// See src/core/engine.cpp (SimState) and DESIGN.md §"Engine internals".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"
#include "obs/telemetry.h"

namespace rrs {

struct RunResult {
  CostBreakdown cost;
  uint64_t executed = 0;
  uint64_t arrived = 0;
  Round rounds_simulated = 0;
  std::vector<uint64_t> drops_per_color;
  // Structured per-run snapshot: cost totals, per-color drop/reconfig
  // vectors, sampled per-phase wall-time summaries, and merged policy
  // counters. Empty at RRS_OBS_LEVEL=0.
  obs::Telemetry telemetry;
  // DEPRECATED: string-map view of telemetry.counters, kept for one release;
  // read telemetry.counters instead.
  std::map<std::string, double> policy_counters;
  std::optional<Schedule> schedule;  // present iff options.record_schedule

  uint64_t total_cost(const CostModel& model) const {
    return cost.total(model);
  }
};

class Engine {
 public:
  Engine(const Instance& instance, EngineOptions options);

  // Runs the policy over the whole instance (rounds 0..horizon inclusive, so
  // every job either executes or drops) and returns the outcome.
  RunResult Run(SchedulerPolicy& policy);

  const EngineOptions& options() const { return options_; }

 private:
  // ResourceView implementation handed to the policy each reconfig phase.
  class View;

  const Instance& instance_;
  EngineOptions options_;
};

// Convenience helper: construct an engine and run one policy.
RunResult RunPolicy(const Instance& instance, SchedulerPolicy& policy,
                    const EngineOptions& options);

}  // namespace rrs
