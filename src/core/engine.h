// The round-phase simulation engine for [Δ | 1 | D_ℓ | ·] (Section 2).
//
// The engine is the single source of truth for model semantics: the
// drop/arrival/reconfiguration/execution phase order, unit-job pending state,
// cost accounting (Δ per actual recoloring, 1 per drop), and the optional
// mini-round doubling used by double-speed algorithms. Policies only decide
// resource colors; everything else is fixed by the model.
//
// Per-color pending jobs live in power-of-two SoA rings (JobRing) sized to
// the color's maximum *backlog*, not its total job count: a color's
// deadlines arrive in nondecreasing order (deadline = arrival + D_ℓ with
// D_ℓ fixed per color), so FIFO order *is* earliest-deadline order and
// drop-phase expiry only ever advances the ring head. Ring capacity is
// reused round over round, so per-run setup is O(num_colors) and the round
// loop allocates nothing in steady state (gated by bench/bench_baseline).
// Expiry scanning uses a timing wheel keyed by deadline mod (max D_ℓ + 1),
// armed during the arrival phase, so a round's drop phase touches only
// colors that can actually expire in it.
//
// Engine is a *session core* (core/session.h): one object serves an
// unbounded series of tenants. Reset(instance[, options]) rebinds it in
// place — the SimState behind the pimpl is the session's arena, its rings,
// wheel, and scratch buffers are reused across tenants and only grow when a
// tenant's shape exceeds everything seen before. Runs can execute whole
// (Run) or incrementally (BeginRun / StepRounds / FinishRun), which is what
// lets fleet/FleetRunner interleave thousands of sessions in round buckets.
// See src/core/engine.cpp (SimState) and DESIGN.md §3.8.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"
#include "obs/telemetry.h"
#include "workload/arrival_source.h"

namespace rrs {

struct RunResult {
  CostBreakdown cost;
  uint64_t executed = 0;
  uint64_t arrived = 0;
  Round rounds_simulated = 0;
  std::vector<uint64_t> drops_per_color;
  // Structured per-run snapshot: cost totals, per-color drop/reconfig
  // vectors, sampled per-phase wall-time summaries, and the policy's
  // counters (SchedulerPolicy::ExportMetrics). The counters are populated
  // at every obs level; the phase/per-color fields are empty at
  // RRS_OBS_LEVEL=0.
  obs::Telemetry telemetry;
  std::optional<Schedule> schedule;  // present iff options.record_schedule

  uint64_t total_cost(const CostModel& model) const {
    return cost.total(model);
  }
};

class Engine {
 public:
  // An unbound session; Reset(...) before the first run.
  Engine();
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  // Constructs and binds in one step (the classic single-tenant shape).
  Engine(const Instance& instance, EngineOptions options);

  // Rebinds the session to a new tenant in place (Session rule 1): sizes
  // the simulation state for the instance without releasing capacity
  // acquired for earlier tenants. `instance` must outlive all runs against
  // it. Illegal while a run is open. Internally this binds the engine's own
  // InstanceSource adapter — every run pulls arrivals through a source
  // cursor; the Instance form is the materialized special case.
  void Reset(const Instance& instance, EngineOptions options);
  // Same-options rebind (keeps the options from the previous bind).
  void Reset(const Instance& instance);

  // Rebinds the session to a streaming tenant: arrivals are pulled from
  // `source` (NextRound per simulated round, Reset at BeginRun), and the
  // policy sees source.shape() as its Instance. `source` must outlive all
  // runs against it and not be shared with another engine. Results are
  // bit-identical to running the materialized equivalent
  // (workload::Materialize) of the source.
  void Reset(workload::ArrivalSource& source, EngineOptions options);
  void Reset(workload::ArrivalSource& source);

  // Runs the policy over the whole instance (rounds 0..horizon inclusive, so
  // every job either executes or drops) and returns the outcome.
  RunResult Run(SchedulerPolicy& policy);

  // ---- Incremental session stepping (FleetRunner's interface) ----------
  //
  //   engine.BeginRun(policy);
  //   while (engine.StepRounds(bucket)) {}
  //   engine.FinishRun(result);
  //
  // is equivalent to result = engine.Run(policy) for any bucket size.

  // Opens a run: clears all per-run state, resets the policy. One run may
  // be open at a time.
  void BeginRun(SchedulerPolicy& policy);

  // Simulates up to max_rounds further rounds; returns true while rounds
  // remain. max_rounds must be >= 1.
  bool StepRounds(Round max_rounds);

  // Closes the run and fills `result` (overwriting it; its buffers are
  // reused). Requires StepRounds to have exhausted the horizon.
  void FinishRun(RunResult& result);

  // Closes an open run without producing a result, at any point. The fault
  // paths (worker kill, tenant eviction) snapshot a run and then abandon the
  // local copy; the session is immediately reusable for another tenant.
  void AbortRun();

  bool running() const { return running_; }
  // The next round BeginRun/StepRounds will simulate.
  Round next_round() const { return next_round_; }

  // Mid-run accumulators (valid while a run is open): the cost and execution
  // count over the rounds simulated so far. Golden-trace tests hash these
  // per round; ChaosFleetRunner reads them for its progress counters.
  const CostBreakdown& run_cost() const { return state_cost(); }
  uint64_t run_executed() const { return state_executed(); }

  // ---- Checkpoint/restore (snapshot/codec.h) ---------------------------
  //
  // SnapshotRun serializes the open run at a StepRounds boundary: the full
  // SimState (rings, wheel, pending counts, accumulators) followed by the
  // policy's state. RestoreRun is the inverse: on a session Reset against
  // the *same* instance and options it opens a run (BeginRun semantics:
  // resets the policy, rebinds the arena) and overwrites the fresh state
  // from the snapshot. Stepping the restored session to the horizon yields
  // results bit-identical to the uninterrupted run — on this engine, or on
  // any other engine bound to an equal instance (worker migration).
  // Recording runs (options.record_schedule) cannot be snapshotted: the
  // partial Schedule is an unbounded log, not session state.
  //
  // Source-bound sessions: the engine snapshot's byte format is unchanged
  // (it never contains source state). On restore, the bound source is
  // repositioned — from `source_state` (a reader over the source's own
  // SaveState words; O(source state), the dist migration path) when given,
  // else by SeekRound replay (deterministic re-execution).
  void SnapshotRun(snapshot::Writer& w) const;
  void RestoreRun(SchedulerPolicy& policy, snapshot::Reader& r,
                  snapshot::Reader* source_state = nullptr);

  const EngineOptions& options() const { return options_; }
  // The bound tenant's Instance: the full instance when Instance-bound, the
  // source's shape() (color table) when source-bound.
  const Instance& instance() const { return *instance_; }
  // The bound arrival source (the engine-owned InstanceSource adapter when
  // Instance-bound).
  const workload::ArrivalSource& source() const {
    if (external_source_ != nullptr) return *external_source_;
    return own_source_;
  }

 private:
  // ResourceView implementation handed to the policy each reconfig phase.
  class View;
  struct SimState;

  workload::ArrivalSource& src() {
    if (external_source_ != nullptr) return *external_source_;
    return own_source_;
  }

  // Out-of-line peeks into the pimpl for the mid-run accessors.
  const CostBreakdown& state_cost() const;
  uint64_t state_executed() const;

  const Instance* instance_ = nullptr;
  // Non-null iff bound via Reset(ArrivalSource&); otherwise own_source_
  // (the InstanceSource adapter) backs the run.
  workload::ArrivalSource* external_source_ = nullptr;
  workload::InstanceSource own_source_;
  // Cached source stats: a jobless shape's Instance carries no horizon, so
  // the round loop bounds come from the source at bind time.
  Round horizon_ = 0;
  Round request_rounds_ = 0;
  EngineOptions options_;
  // The session arena: all simulation state, reused across tenants.
  std::unique_ptr<SimState> state_;
  std::unique_ptr<View> view_;
  SchedulerPolicy* policy_ = nullptr;  // non-null while a run is open
  Round next_round_ = 0;
  bool running_ = false;
};

// Convenience helper: construct a fresh engine and run one policy. This is
// deliberately *not* pooled — differential tests use it as the
// fresh-construction oracle that session reuse must match bit for bit.
RunResult RunPolicy(const Instance& instance, SchedulerPolicy& policy,
                    const EngineOptions& options);

}  // namespace rrs
