// Cost accounting: total cost = Δ · (#reconfigurations) + (#dropped jobs).
#pragma once

#include <cstdint>
#include <string>

namespace rrs {

// The [Δ | 1 | ...] cost model: a fixed positive integer reconfiguration cost
// and unit drop cost. The paper assumes Δ is a positive integer; we keep that
// assumption (generalization to arbitrary Δ is straightforward per the paper).
struct CostModel {
  uint64_t delta = 1;
};

struct CostBreakdown {
  uint64_t reconfigurations = 0;
  uint64_t drops = 0;           // dropped-job COUNT
  uint64_t weighted_drops = 0;  // Σ per-color drop costs; == drops when every
                                // color has the paper's unit drop cost

  uint64_t reconfig_cost(const CostModel& model) const {
    return reconfigurations * model.delta;
  }
  uint64_t drop_cost() const { return weighted_drops; }
  uint64_t total(const CostModel& model) const {
    return reconfig_cost(model) + drop_cost();
  }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    reconfigurations += o.reconfigurations;
    drops += o.drops;
    weighted_drops += o.weighted_drops;
    return *this;
  }

  friend bool operator==(const CostBreakdown&, const CostBreakdown&) = default;

  std::string ToString(const CostModel& model) const {
    return "reconfigs=" + std::to_string(reconfigurations) +
           " drops=" + std::to_string(drops) +
           " total=" + std::to_string(total(model));
  }
};

// Convenience for the common unit-drop-cost case.
inline CostBreakdown UnitCosts(uint64_t reconfigurations, uint64_t drops) {
  return CostBreakdown{reconfigurations, drops, drops};
}

}  // namespace rrs
