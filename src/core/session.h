// The Session contract: how one long-lived object serves an unbounded
// series of tenants/instances, and the pool that recycles such objects.
//
// Every session core in the library (core/Engine, core/StreamEngine,
// reduce/OnlineSolver, reduce/PipelineSession, and through them every
// sched/ policy) obeys three rules:
//
//   1. *Rebind in place.* `Reset(next tenant)` reinitializes the object for
//      a new instance/color table without reconstructing it. All buffers —
//      pending rings, timing wheels, policy scratch, instrument blocks —
//      are owned by the session and reused; Reset only re-sizes them when
//      the tenant's shape (color count, resource count, max delay bound)
//      actually grows. The session's buffers are its arena: allocation
//      happens on first growth to a shape, never again at that shape.
//
//   2. *Zero steady-state allocation.* Once a session has served one tenant
//      of a given shape, serving further tenants of that shape performs no
//      steady-state heap allocation in the round loop (the same contract
//      the engines already make per run, extended across runs; gated by
//      bench/bench_fleet's counting-allocator measurement).
//
//   3. *Bit-identical results.* A run through a reused session produces a
//      RunResult identical to a run through a freshly constructed engine —
//      no state may leak between tenants. tests/fleet_test.cpp pins this
//      differentially for every registry policy.
//
// SessionPool is the recycling primitive built on that contract: fleet
// shards and analysis harnesses Acquire a session (recycled if available,
// created via the factory otherwise), Reset it onto their tenant, and
// Release it when the tenant completes. The pool is deliberately
// single-threaded: each fleet shard owns one pool, so pooling costs no
// synchronization (shard → worker affinity makes the pool single-writer).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace rrs {

template <typename SessionT>
class SessionPool {
 public:
  using Factory = std::function<std::unique_ptr<SessionT>()>;

  // Default factory requires SessionT to be default-constructible.
  SessionPool() : factory_([] { return std::make_unique<SessionT>(); }) {}
  explicit SessionPool(Factory factory) : factory_(std::move(factory)) {}

  // Returns a recycled session if one is free, otherwise creates one.
  std::unique_ptr<SessionT> Acquire() {
    if (!free_.empty()) {
      std::unique_ptr<SessionT> s = std::move(free_.back());
      free_.pop_back();
      ++recycled_;
      return s;
    }
    ++created_;
    return factory_();
  }

  // Returns a session to the pool for reuse. The caller must not retain
  // references into it.
  void Release(std::unique_ptr<SessionT> session) {
    free_.push_back(std::move(session));
  }

  size_t idle() const { return free_.size(); }
  // Sessions created because the pool was empty (pool growth).
  uint64_t created() const { return created_; }
  // Acquire calls served by recycling an existing session.
  uint64_t recycled() const { return recycled_; }

 private:
  Factory factory_;
  std::vector<std::unique_ptr<SessionT>> free_;
  uint64_t created_ = 0;
  uint64_t recycled_ = 0;
};

}  // namespace rrs
