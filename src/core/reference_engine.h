// ReferenceEngine: the retained seed replay engine, kept verbatim as an
// independent oracle for the optimized (ring + timing-wheel) Engine.
//
// This is the seed implementation of Engine::Run (per-color std::deque
// pending queues, per-resource execution pops). It is deliberately NOT
// optimized: its value is that it shares none of the optimized engine's data
// layout, so tests/differential_test.cpp can cross-check the two on
// randomized instances and pin exact cost equality (drops, weighted drops,
// reconfigurations, executed). Semantics changes to the model must land in
// both engines — the differential suite is the contract.
#pragma once

#include "core/engine.h"
#include "core/instance.h"
#include "core/policy.h"

namespace rrs {

// Runs `policy` over the whole instance with the retained deque-based engine;
// the result is field-for-field comparable with Engine::Run.
RunResult RunPolicyReference(const Instance& instance, SchedulerPolicy& policy,
                             const EngineOptions& options);

}  // namespace rrs
