#include "core/schedule.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/str.h"

namespace rrs {

Schedule::Schedule(uint32_t num_resources, int mini_rounds_per_round)
    : num_resources_(num_resources), mini_rounds_(mini_rounds_per_round) {
  RRS_CHECK_GE(mini_rounds_per_round, 1);
}

void Schedule::AddReconfig(Round round, int mini, ResourceId resource,
                           ColorId to) {
  reconfigs_.push_back(ReconfigAction{round, mini, resource, to});
}

void Schedule::AddExecution(Round round, int mini, ResourceId resource,
                            JobId job) {
  executions_.push_back(ExecAction{round, mini, resource, job});
}

void Schedule::Serialize(std::ostream& out) const {
  out << "rrsched-schedule 1 " << num_resources_ << " " << mini_rounds_
      << "\n";
  for (const ReconfigAction& a : reconfigs_) {
    out << "r " << a.round << " " << a.mini << " " << a.resource << " "
        << (a.to == kNoColor ? int64_t{-1} : static_cast<int64_t>(a.to))
        << "\n";
  }
  for (const ExecAction& a : executions_) {
    out << "x " << a.round << " " << a.mini << " " << a.resource << " "
        << a.job << "\n";
  }
}

Schedule Schedule::Deserialize(std::istream& in) {
  std::string line;
  RRS_CHECK(static_cast<bool>(std::getline(in, line)))
      << "empty schedule stream";
  auto header = Split(std::string(Trim(line)), ' ');
  std::erase_if(header, [](const std::string& f) { return f.empty(); });
  RRS_CHECK(header.size() == 4 && header[0] == "rrsched-schedule" &&
            header[1] == "1")
      << "bad schedule header: " << line;
  auto resources = ParseUint(header[2]);
  auto minis = ParseInt(header[3]);
  RRS_CHECK(resources.has_value() && minis.has_value());
  Schedule schedule(static_cast<uint32_t>(*resources),
                    static_cast<int>(*minis));

  while (std::getline(in, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = Split(std::string(sv), ' ');
    std::erase_if(fields, [](const std::string& f) { return f.empty(); });
    RRS_CHECK_EQ(fields.size(), 5u) << "bad schedule line: " << line;
    auto round = ParseInt(fields[1]);
    auto mini = ParseInt(fields[2]);
    auto resource = ParseUint(fields[3]);
    RRS_CHECK(round && mini && resource) << "bad schedule line: " << line;
    if (fields[0] == "r") {
      auto color = ParseInt(fields[4]);
      RRS_CHECK(color.has_value()) << "bad color: " << fields[4];
      schedule.AddReconfig(*round, static_cast<int>(*mini),
                           static_cast<ResourceId>(*resource),
                           *color < 0 ? kNoColor
                                      : static_cast<ColorId>(*color));
    } else if (fields[0] == "x") {
      auto job = ParseUint(fields[4]);
      RRS_CHECK(job.has_value()) << "bad job id: " << fields[4];
      schedule.AddExecution(*round, static_cast<int>(*mini),
                            static_cast<ResourceId>(*resource),
                            static_cast<JobId>(*job));
    } else {
      RRS_CHECK(false) << "unknown schedule directive: " << fields[0];
    }
  }
  return schedule;
}

bool Schedule::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  Serialize(out);
  return static_cast<bool>(out);
}

Schedule Schedule::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  RRS_CHECK(static_cast<bool>(in)) << "cannot open schedule file " << path;
  return Deserialize(in);
}

CostBreakdown Schedule::Cost(const Instance& instance) const {
  CostBreakdown cost;
  cost.reconfigurations = reconfigs_.size();
  RRS_CHECK_LE(executions_.size(), instance.num_jobs());
  cost.drops = instance.num_jobs() - executions_.size();
  // Weighted drop cost: total job weight minus executed weight.
  uint64_t total_weight = 0;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    total_weight += instance.jobs_per_color()[c] * instance.drop_cost(c);
  }
  uint64_t executed_weight = 0;
  for (const ExecAction& a : executions_) {
    executed_weight += instance.drop_cost(instance.job(a.job).color);
  }
  cost.weighted_drops = total_weight - executed_weight;
  return cost;
}

namespace {

// A merged timeline event: reconfigs apply before executions within the same
// (round, mini) per the model's phase order.
struct Event {
  Round round;
  int mini;
  int kind;  // 0 = reconfig, 1 = execution
  size_t index;
};

std::string Where(Round round, int mini, ResourceId resource) {
  std::ostringstream os;
  os << "round " << round << " mini " << mini << " resource " << resource;
  return os.str();
}

}  // namespace

ValidationResult Schedule::Validate(const Instance& instance) const {
  ValidationResult result;
  auto fail = [&](const std::string& msg) {
    result.ok = false;
    result.error = msg;
    return result;
  };

  std::vector<Event> events;
  events.reserve(reconfigs_.size() + executions_.size());
  for (size_t i = 0; i < reconfigs_.size(); ++i) {
    const auto& a = reconfigs_[i];
    events.push_back(Event{a.round, a.mini, 0, i});
  }
  for (size_t i = 0; i < executions_.size(); ++i) {
    const auto& a = executions_[i];
    events.push_back(Event{a.round, a.mini, 1, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.round != b.round) return a.round < b.round;
    if (a.mini != b.mini) return a.mini < b.mini;
    return a.kind < b.kind;
  });

  std::vector<ColorId> color(num_resources_, kNoColor);
  std::vector<uint8_t> executed(instance.num_jobs(), 0);
  // Detects two executions on the same (resource, round, mini): stores the
  // last (round, mini) each resource executed in.
  std::vector<std::pair<Round, int>> last_exec(
      num_resources_, {-1, -1});

  for (const Event& ev : events) {
    if (ev.kind == 0) {
      const ReconfigAction& a = reconfigs_[ev.index];
      if (a.round < 0) return fail("reconfig in negative round");
      if (a.mini < 0 || a.mini >= mini_rounds_) {
        return fail("reconfig mini-round out of range at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.resource >= num_resources_) {
        return fail("reconfig on unknown resource at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.to != kNoColor && a.to >= instance.num_colors()) {
        return fail("reconfig to unknown color at " +
                    Where(a.round, a.mini, a.resource));
      }
      color[a.resource] = a.to;
    } else {
      const ExecAction& a = executions_[ev.index];
      if (a.mini < 0 || a.mini >= mini_rounds_) {
        return fail("execution mini-round out of range at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.resource >= num_resources_) {
        return fail("execution on unknown resource at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.job >= instance.num_jobs()) {
        return fail("execution of unknown job at " +
                    Where(a.round, a.mini, a.resource));
      }
      const Job& job = instance.job(a.job);
      if (color[a.resource] != job.color) {
        return fail("resource not configured with job's color at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.round < job.arrival) {
        return fail("job " + std::to_string(a.job) + " executed before arrival at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (a.round >= instance.deadline(a.job)) {
        return fail("job " + std::to_string(a.job) + " executed at/after deadline at " +
                    Where(a.round, a.mini, a.resource));
      }
      if (executed[a.job]) {
        return fail("job " + std::to_string(a.job) + " executed twice");
      }
      if (last_exec[a.resource] == std::make_pair(a.round, a.mini)) {
        return fail("two executions in one slot at " +
                    Where(a.round, a.mini, a.resource));
      }
      executed[a.job] = 1;
      last_exec[a.resource] = {a.round, a.mini};
    }
  }

  result.ok = true;
  result.executed = executions_.size();
  result.cost = Cost(instance);
  return result;
}

}  // namespace rrs
