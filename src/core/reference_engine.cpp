#include "core/reference_engine.h"

#include <deque>
#include <utility>
#include <vector>

#include "core/run_telemetry.h"
#include "obs/scope.h"
#include "util/check.h"

namespace rrs {

namespace {

// The seed engine's per-run state, retained verbatim (see header).
struct RefState {
  explicit RefState(const Instance& instance, const EngineOptions& options)
      : instance(instance),
        resource_color(options.num_resources, kNoColor),
        pending(instance.num_colors()),
        pending_n(instance.num_colors(), 0),
        in_nonidle_list(instance.num_colors(), 0),
        expiry_buckets(static_cast<size_t>(instance.horizon()) + 1),
        last_bucket_round(instance.num_colors(), -1) {
#if RRS_OBS_LEVEL >= 1
    reconfigs_per_color.assign(instance.num_colors(), 0);
#endif
  }

  const Instance& instance;
  std::vector<ColorId> resource_color;
  std::vector<std::deque<JobId>> pending;  // FIFO == earliest-deadline order
  std::vector<uint64_t> pending_n;         // pending[c].size(), for the view
  std::vector<ColorId> nonidle_list;       // lazily compacted
  std::vector<uint8_t> in_nonidle_list;
  std::vector<std::vector<ColorId>> expiry_buckets;  // round -> colors
  std::vector<Round> last_bucket_round;  // dedupe bucket pushes per color
#if RRS_OBS_LEVEL >= 1
  std::vector<uint64_t> reconfigs_per_color;  // telemetry (kNoColor excluded)
#endif

  void AddPending(ColorId c, JobId job) {
    if (pending[c].empty() && !in_nonidle_list[c]) {
      in_nonidle_list[c] = 1;
      nonidle_list.push_back(c);
    }
    pending[c].push_back(job);
    ++pending_n[c];
  }

  void CompactNonidle() {
    size_t out = 0;
    for (size_t i = 0; i < nonidle_list.size(); ++i) {
      ColorId c = nonidle_list[i];
      if (!pending[c].empty()) {
        nonidle_list[out++] = c;
      } else {
        in_nonidle_list[c] = 0;
      }
    }
    nonidle_list.resize(out);
  }
};

class RefView : public ResourceView {
 public:
  RefView(RefState& state, const EngineOptions& options, CostBreakdown& cost,
          Schedule* schedule, obs::RunInstruments& instruments)
      : ResourceView(state.pending_n.data()),
        state_(state),
        options_(options),
        cost_(cost),
        schedule_(schedule),
        instruments_(instruments) {}

  void SetPhase(Round round, int mini) {
    round_ = round;
    mini_ = mini;
    compacted_ = false;
  }

  uint32_t num_resources() const override { return options_.num_resources; }

  ColorId color_of(ResourceId r) const override {
    RRS_DCHECK(r < state_.resource_color.size());
    return state_.resource_color[r];
  }

  void SetColor(ResourceId r, ColorId c) override {
    RRS_CHECK_LT(r, state_.resource_color.size());
    RRS_CHECK(c == kNoColor || c < state_.instance.num_colors())
        << "SetColor to unknown color " << c;
    if (state_.resource_color[r] == c) return;
    state_.resource_color[r] = c;
    ++cost_.reconfigurations;
#if RRS_OBS_LEVEL >= 1
    if (c != kNoColor) ++state_.reconfigs_per_color[c];
    if (instruments_.tracing()) instruments_.EmitRecolor(round_, r);
#endif
    if (schedule_ != nullptr) {
      schedule_->AddReconfig(round_, mini_, r, c);
    }
  }

  Round earliest_deadline(ColorId c) const override {
    RRS_CHECK(!state_.pending[c].empty())
        << "earliest_deadline on idle color " << c;
    return state_.instance.deadline(state_.pending[c].front());
  }

  const std::vector<ColorId>& nonidle_colors() const override {
    if (!compacted_) {
      state_.CompactNonidle();
      compacted_ = true;
    }
    return state_.nonidle_list;
  }

 private:
  RefState& state_;
  const EngineOptions& options_;
  CostBreakdown& cost_;
  Schedule* schedule_;
  obs::RunInstruments& instruments_;
  Round round_ = 0;
  int mini_ = 0;
  mutable bool compacted_ = false;
};

}  // namespace

RunResult RunPolicyReference(const Instance& instance, SchedulerPolicy& policy,
                             const EngineOptions& options) {
  RRS_CHECK_GE(options.num_resources, 1u);
  RRS_CHECK_GE(options.mini_rounds_per_round, 1);
  RRS_CHECK_GE(options.cost_model.delta, 1u);

  RunResult result;
  result.drops_per_color.assign(instance.num_colors(), 0);
  result.arrived = instance.num_jobs();

  Schedule schedule(options.num_resources, options.mini_rounds_per_round);
  Schedule* schedule_ptr = options.record_schedule ? &schedule : nullptr;

  RefState state(instance, options);
  obs::RunInstruments instruments(options.obs_scope, "reference");
  RefView view(state, options, result.cost, schedule_ptr, instruments);

  policy.Reset(instance, options);

  std::vector<JobId> dropped_scratch;
  const Round horizon = instance.horizon();
  for (Round k = 0; k <= horizon; ++k) {
    const bool obs_sampled = instruments.ShouldSample(k);
    uint64_t obs_t0 = obs_sampled ? obs::NowNs() : 0;

    // ---- Drop phase: jobs with deadline == k are dropped. ----
    if (k < static_cast<Round>(state.expiry_buckets.size())) {
      for (ColorId c : state.expiry_buckets[static_cast<size_t>(k)]) {
        dropped_scratch.clear();
        auto& queue = state.pending[c];
        while (!queue.empty() && instance.deadline(queue.front()) == k) {
          dropped_scratch.push_back(queue.front());
          queue.pop_front();
        }
        if (!dropped_scratch.empty()) {
          state.pending_n[c] -= dropped_scratch.size();
          result.cost.drops += dropped_scratch.size();
          result.cost.weighted_drops +=
              dropped_scratch.size() * instance.drop_cost(c);
          result.drops_per_color[c] += dropped_scratch.size();
          policy.OnJobsDropped(k, c, dropped_scratch.size(), dropped_scratch);
        }
      }
    }
    policy.AfterDropPhase(k);
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments.RecordPhase(obs::kPhaseDrop, k, obs_t0, t);
      obs_t0 = t;
    }

    // ---- Arrival phase: request k. ----
    auto arrivals = instance.jobs_in_round(k);
    if (!arrivals.empty()) {
      JobId id = instance.first_job_in_round(k);
      size_t i = 0;
      while (i < arrivals.size()) {
        ColorId c = arrivals[i].color;
        uint64_t count = 0;
        size_t j = i;
        while (j < arrivals.size() && arrivals[j].color == c) {
          state.AddPending(c, id + static_cast<JobId>(j));
          ++count;
          ++j;
        }
        Round deadline = k + instance.delay_bound(c);
        RRS_CHECK_LE(deadline, horizon);
        if (state.last_bucket_round[c] != deadline) {
          state.last_bucket_round[c] = deadline;
          state.expiry_buckets[static_cast<size_t>(deadline)].push_back(c);
        }
        policy.OnArrivals(k, c, count);
        i = j;
      }
    }
    policy.AfterArrivalPhase(k);
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments.RecordPhase(obs::kPhaseArrival, k, obs_t0, t);
      obs_t0 = t;
    }

    // ---- Mini-rounds: reconfiguration + execution phases. ----
    for (int mini = 0; mini < options.mini_rounds_per_round; ++mini) {
      view.SetPhase(k, mini);
      policy.Reconfigure(k, mini, view);
      if (obs_sampled) {
        const uint64_t t = obs::NowNs();
        instruments.RecordPhase(obs::kPhaseReconfig, k, obs_t0, t);
        obs_t0 = t;
      }

      for (ResourceId r = 0; r < options.num_resources; ++r) {
        ColorId c = state.resource_color[r];
        if (c == kNoColor) continue;
        auto& queue = state.pending[c];
        if (queue.empty()) continue;
        JobId job = queue.front();
        queue.pop_front();
        --state.pending_n[c];
        ++result.executed;
        if (schedule_ptr != nullptr) {
          schedule_ptr->AddExecution(k, mini, r, job);
        }
      }
      if (obs_sampled) {
        const uint64_t t = obs::NowNs();
        instruments.RecordPhase(obs::kPhaseExecute, k, obs_t0, t);
        obs_t0 = t;
      }
    }
  }

  RRS_CHECK_EQ(result.executed + result.cost.drops, result.arrived)
      << "reference engine accounting mismatch";

  result.rounds_simulated = horizon + 1;
#if RRS_OBS_LEVEL >= 1
  internal::FinalizeRunTelemetry(policy, instruments,
                                 state.reconfigs_per_color, result);
#else
  internal::FinalizeRunTelemetry(policy, instruments, {}, result);
#endif
  if (schedule_ptr != nullptr) result.schedule = std::move(schedule);
  return result;
}

}  // namespace rrs
