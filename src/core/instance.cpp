#include "core/instance.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/str.h"

namespace rrs {

ColorId InstanceBuilder::AddColor(Round delay_bound, std::string name,
                                  uint64_t drop_cost) {
  RRS_CHECK_GE(delay_bound, 1) << "delay bound must be a positive integer";
  RRS_CHECK_GE(drop_cost, 1u) << "drop cost must be a positive integer";
  ColorId id = static_cast<ColorId>(delay_bounds_.size());
  delay_bounds_.push_back(delay_bound);
  drop_costs_.push_back(drop_cost);
  if (name.empty()) name = "c" + std::to_string(id);
  names_.push_back(std::move(name));
  return id;
}

void InstanceBuilder::AddJob(ColorId color, Round arrival) {
  RRS_CHECK_LT(color, delay_bounds_.size()) << "unknown color";
  RRS_CHECK_GE(arrival, 0);
  jobs_.push_back(Job{color, arrival});
}

void InstanceBuilder::AddJobs(ColorId color, Round arrival, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) AddJob(color, arrival);
}

Instance InstanceBuilder::Build() {
  Instance inst;
  inst.delay_bounds_ = std::move(delay_bounds_);
  inst.drop_costs_ = std::move(drop_costs_);
  inst.names_ = std::move(names_);
  inst.jobs_ = std::move(jobs_);
  delay_bounds_.clear();
  drop_costs_.clear();
  names_.clear();
  jobs_.clear();

  std::stable_sort(inst.jobs_.begin(), inst.jobs_.end(),
                   [](const Job& a, const Job& b) { return a.arrival < b.arrival; });

  inst.jobs_per_color_.assign(inst.delay_bounds_.size(), 0);
  Round max_arrival = -1;
  Round max_deadline = 0;
  for (const Job& j : inst.jobs_) {
    ++inst.jobs_per_color_[j.color];
    max_arrival = std::max(max_arrival, j.arrival);
    max_deadline = std::max(max_deadline, j.arrival + inst.delay_bounds_[j.color]);
  }
  inst.num_request_rounds_ = max_arrival + 1;
  inst.horizon_ = max_deadline;

  // Per-color backlog bound: the max number of color-c arrivals in any
  // window of D_c consecutive rounds (a pending job's arrival is at most
  // D_c - 1 rounds old). Jobs are sorted by arrival, so one pass splits
  // them into per-color (arrival, count) runs and a two-pointer sweep per
  // color computes the windowed max.
  const size_t num_colors = inst.delay_bounds_.size();
  std::vector<std::vector<std::pair<Round, uint32_t>>> runs(num_colors);
  for (const Job& j : inst.jobs_) {
    auto& r = runs[j.color];
    if (r.empty() || r.back().first != j.arrival) {
      r.emplace_back(j.arrival, 1);
    } else {
      ++r.back().second;
    }
  }
  inst.max_backlog_.assign(num_colors, 0);
  for (size_t c = 0; c < num_colors; ++c) {
    const Round d = inst.delay_bounds_[c];
    uint64_t window = 0, best = 0;
    size_t lo = 0;
    for (size_t hi = 0; hi < runs[c].size(); ++hi) {
      window += runs[c][hi].second;
      while (runs[c][lo].first <= runs[c][hi].first - d) {
        window -= runs[c][lo++].second;
      }
      best = std::max(best, window);
    }
    inst.max_backlog_[c] = static_cast<uint32_t>(best);
  }

  // CSR offsets: round_offsets_[r] = index of first job with arrival >= r.
  inst.round_offsets_.assign(static_cast<size_t>(inst.num_request_rounds_) + 1, 0);
  for (const Job& j : inst.jobs_) {
    ++inst.round_offsets_[static_cast<size_t>(j.arrival) + 1];
  }
  for (size_t r = 1; r < inst.round_offsets_.size(); ++r) {
    inst.round_offsets_[r] += inst.round_offsets_[r - 1];
  }
  return inst;
}

const std::string& Instance::color_name(ColorId c) const {
  RRS_CHECK_LT(c, names_.size());
  return names_[c];
}

bool Instance::HasUnitDropCosts() const {
  return std::all_of(drop_costs_.begin(), drop_costs_.end(),
                     [](uint64_t w) { return w == 1; });
}

std::span<const Job> Instance::jobs_in_round(Round r) const {
  if (r < 0 || r >= num_request_rounds_) return {};
  size_t lo = round_offsets_[static_cast<size_t>(r)];
  size_t hi = round_offsets_[static_cast<size_t>(r) + 1];
  return std::span<const Job>(jobs_.data() + lo, hi - lo);
}

JobId Instance::first_job_in_round(Round r) const {
  RRS_CHECK_GE(r, 0);
  RRS_CHECK_LT(r, num_request_rounds_);
  return static_cast<JobId>(round_offsets_[static_cast<size_t>(r)]);
}

bool Instance::IsBatched() const {
  for (const Job& j : jobs_) {
    if (j.arrival % delay_bounds_[j.color] != 0) return false;
  }
  return true;
}

bool Instance::IsRateLimited() const {
  if (!IsBatched()) return false;
  // Count per (color, arrival round); arrivals are sorted by round, so a
  // single pass with a per-color "current round count" suffices.
  std::vector<Round> last_round(delay_bounds_.size(), -1);
  std::vector<Round> count(delay_bounds_.size(), 0);
  for (const Job& j : jobs_) {
    if (last_round[j.color] != j.arrival) {
      last_round[j.color] = j.arrival;
      count[j.color] = 0;
    }
    if (++count[j.color] > delay_bounds_[j.color]) return false;
  }
  return true;
}

bool Instance::DelayBoundsArePowersOfTwo() const {
  return std::all_of(delay_bounds_.begin(), delay_bounds_.end(),
                     [](Round d) { return IsPowerOfTwo(d); });
}

void Instance::Serialize(std::ostream& out) const {
  out << "rrsched-trace 1\n";
  for (size_t c = 0; c < delay_bounds_.size(); ++c) {
    out << "color " << delay_bounds_[c] << " " << names_[c];
    if (drop_costs_[c] != 1) out << " " << drop_costs_[c];
    out << "\n";
  }
  // Run-length encode consecutive identical jobs for compactness.
  size_t i = 0;
  while (i < jobs_.size()) {
    size_t j = i;
    while (j < jobs_.size() && jobs_[j] == jobs_[i]) ++j;
    out << "job " << jobs_[i].color << " " << jobs_[i].arrival;
    if (j - i > 1) out << " " << (j - i);
    out << "\n";
    i = j;
  }
}

Instance Instance::Deserialize(std::istream& in) {
  InstanceBuilder builder;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = Split(std::string(sv), ' ');
    // Drop empty fields from repeated spaces.
    std::erase_if(fields, [](const std::string& f) { return f.empty(); });
    RRS_CHECK(!fields.empty());
    if (fields[0] == "rrsched-trace") {
      RRS_CHECK_GE(fields.size(), 2u);
      RRS_CHECK(fields[1] == "1") << "unsupported trace version " << fields[1];
      saw_header = true;
    } else if (fields[0] == "color") {
      RRS_CHECK(saw_header) << "trace missing header";
      RRS_CHECK_GE(fields.size(), 2u);
      auto d = ParseInt(fields[1]);
      RRS_CHECK(d.has_value()) << "bad delay bound: " << fields[1];
      uint64_t drop_cost = 1;
      if (fields.size() >= 4) {
        auto w = ParseUint(fields[3]);
        RRS_CHECK(w.has_value()) << "bad drop cost: " << fields[3];
        drop_cost = *w;
      }
      builder.AddColor(*d, fields.size() >= 3 ? fields[2] : std::string(),
                       drop_cost);
    } else if (fields[0] == "job") {
      RRS_CHECK(saw_header) << "trace missing header";
      RRS_CHECK_GE(fields.size(), 3u);
      auto c = ParseUint(fields[1]);
      auto a = ParseInt(fields[2]);
      RRS_CHECK(c.has_value() && a.has_value()) << "bad job line: " << line;
      uint64_t count = 1;
      if (fields.size() >= 4) {
        auto n = ParseUint(fields[3]);
        RRS_CHECK(n.has_value()) << "bad job count: " << fields[3];
        count = *n;
      }
      builder.AddJobs(static_cast<ColorId>(*c), *a, count);
    } else {
      RRS_CHECK(false) << "unknown trace directive: " << fields[0];
    }
  }
  RRS_CHECK(saw_header) << "not an rrsched trace";
  return builder.Build();
}

bool Instance::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  Serialize(out);
  return static_cast<bool>(out);
}

Instance Instance::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  RRS_CHECK(static_cast<bool>(in)) << "cannot open trace file " << path;
  return Deserialize(in);
}

std::string Instance::Summary() const {
  std::ostringstream os;
  os << num_colors() << " colors, " << num_jobs() << " jobs, "
     << num_request_rounds_ << " request rounds, horizon " << horizon_;
  std::map<Round, size_t> by_delay;
  for (Round d : delay_bounds_) ++by_delay[d];
  os << "; delay bounds:";
  for (const auto& [d, n] : by_delay) os << " " << d << "x" << n;
  return os.str();
}

Round FloorPowerOfTwo(Round v) {
  RRS_CHECK_GE(v, 1);
  Round p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace rrs
