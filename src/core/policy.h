// The online-scheduler interface driven by the Engine.
//
// The engine owns the ground truth of the model (pending jobs, resource
// colors, cost accounting, the four-phase round structure) and calls into the
// policy at well-defined points:
//
//   round k:
//     drop phase      -> OnJobsDropped(k, color, count) per affected color,
//                        then AfterDropPhase(k)
//     arrival phase   -> OnArrivals(k, color, count) per arriving color,
//                        then AfterArrivalPhase(k)
//     per mini-round: -> Reconfigure(k, mini, view)  [policy recolors
//                        resources through the view; engine charges Δ per
//                        actual color change]
//     execution phase -> engine executes one earliest-deadline pending job of
//                        each resource's color (no policy involvement; the
//                        model fixes this behavior)
//
// Policies are single-threaded and owned by one engine run at a time; Reset()
// is called before each run so one policy object can be reused across runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/cost.h"
#include "core/instance.h"
#include "core/types.h"
#include "snapshot/codec.h"

namespace rrs {

namespace obs {
class Registry;
class Scope;
}  // namespace obs

struct EngineOptions {
  uint32_t num_resources = 1;
  int mini_rounds_per_round = 1;  // 2 = double-speed (Section 3.3)
  CostModel cost_model;
  bool record_schedule = false;
  // Optional observability scope (src/obs/scope.h): when set (or when a
  // global scope is installed), the run populates per-phase wall-time
  // histograms and per-color counters, and emits trace spans if the scope
  // carries a Tracer. Null = no timing, structured telemetry only.
  obs::Scope* obs_scope = nullptr;
};

// Engine-provided window onto the simulation state during a reconfiguration
// phase. SetColor is the only mutating operation available to policies.
//
// pending_count is deliberately NOT virtual: every engine maintains a dense
// per-color pending-count table and hands the view a pointer to it, so the
// ranking loops that query pending counts for every eligible color each
// round (ΔLRU-EDF, EDF, greedy) pay one array load instead of a virtual
// dispatch into engine-specific queue structures.
class ResourceView {
 public:
  virtual ~ResourceView() = default;

  virtual uint32_t num_resources() const = 0;
  virtual ColorId color_of(ResourceId r) const = 0;

  // Recolors resource r. A change to a different color costs Δ and is
  // recorded; setting the current color is a no-op (no cost).
  virtual void SetColor(ResourceId r, ColorId c) = 0;

  // Pending color-c jobs; O(1), non-virtual (see class comment). The table
  // is strided so lane views over the batched fleet's SoA slabs (one entry
  // per [color][lane], stride = lane width) share this fast path; scalar
  // engines use stride 1.
  uint64_t pending_count(ColorId c) const {
    return pending_by_color_[static_cast<size_t>(c) * pending_stride_];
  }

  // The engine's per-color pending table (indexed by ColorId times
  // pending_stride); lets wrapper views forward the non-virtual fast path.
  const uint64_t* pending_table() const { return pending_by_color_; }
  size_t pending_stride() const { return pending_stride_; }

  // Earliest deadline among pending color-c jobs; requires pending_count > 0.
  virtual Round earliest_deadline(ColorId c) const = 0;

  // Colors with at least one pending job (unordered).
  virtual const std::vector<ColorId>& nonidle_colors() const = 0;

 protected:
  // `pending_by_color` must stay valid (with num_colors strided entries) for
  // the view's lifetime; the owning engine keeps it current across phases.
  explicit ResourceView(const uint64_t* pending_by_color, size_t stride = 1)
      : pending_by_color_(pending_by_color), pending_stride_(stride) {}

  // Repoints the pending table. Session engines keep one view alive across
  // tenants and the table's storage may move when Reset grows it for a
  // larger color universe.
  void set_pending_table(const uint64_t* pending_by_color, size_t stride = 1) {
    pending_by_color_ = pending_by_color;
    pending_stride_ = stride;
  }

 private:
  const uint64_t* pending_by_color_;
  size_t pending_stride_ = 1;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string name() const = 0;

  // Called once before each run. The instance and options outlive the run.
  virtual void Reset(const Instance& instance, const EngineOptions& options) = 0;

  // Drop phase of round k dropped `count` color-c jobs. `jobs` carries their
  // ids when the driver knows them (Engine replaying an Instance) and is
  // empty in streaming mode (StreamEngine); ids are valid for the duration
  // of the call only.
  virtual void OnJobsDropped(Round k, ColorId c, uint64_t count,
                             std::span<const JobId> jobs) {
    (void)k;
    (void)c;
    (void)count;
    (void)jobs;
  }
  virtual void AfterDropPhase(Round k) { (void)k; }

  // Arrival phase of round k delivered `count` color-c jobs.
  virtual void OnArrivals(Round k, ColorId c, uint64_t count) {
    (void)k;
    (void)c;
    (void)count;
  }
  virtual void AfterArrivalPhase(Round k) { (void)k; }

  // Reconfiguration phase of mini-round (k, mini).
  virtual void Reconfigure(Round k, int mini, ResourceView& view) = 0;

  // Structured instrumentation: called once at end of run with a run-local
  // obs::Registry; policies register named counters/gauges/histograms (epoch
  // counts, eligible/ineligible drop split, ...). The values land in
  // RunResult::telemetry.counters and in the scope's aggregate registry.
  virtual void ExportMetrics(obs::Registry& registry) const {
    (void)registry;
  }

  // Checkpoint/restore (snapshot/codec.h). SaveState appends every piece of
  // run state that influences future decisions; LoadState is called on a
  // policy already Reset against the same instance and options and must
  // leave it indistinguishable from the saved one. Engines call these as
  // part of their own snapshot/restore at round boundaries, so policies only
  // see state between rounds (per-phase scratch need not be saved). The
  // default covers stateless policies (EDF, greedy, lookahead: every
  // decision derives from engine state the engine itself snapshots).
  virtual void SaveState(snapshot::Writer& w) const { (void)w; }
  virtual void LoadState(snapshot::Reader& r) { (void)r; }
};

}  // namespace rrs
