// Problem instances for [Δ | 1 | D_ℓ | batch]: the color table (per-color
// delay bounds), the request sequence (jobs grouped by arrival round), and
// structural predicates (batched, rate-limited, power-of-two delay bounds)
// used to validate the preconditions of each algorithm and reduction.
//
// Instances are immutable once built; InstanceBuilder performs construction.
// Jobs carry dense JobIds (their index in jobs()), which schedules and the
// validator use to refer to them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/types.h"
#include "util/check.h"

namespace rrs {

class Instance;

class InstanceBuilder {
 public:
  // Adds a color with the given delay bound (>= 1). Returns its ColorId.
  // drop_cost is the per-job cost of dropping this color's jobs; the paper's
  // model is unit drop cost (the default), and the Section-3 guarantees only
  // apply there, but the engine/validator support the variable-drop-cost
  // [Δ | c_ℓ | D_ℓ | ·] family of the authors' earlier work as an extension.
  ColorId AddColor(Round delay_bound, std::string name = {},
                   uint64_t drop_cost = 1);

  // Adds a unit job of an existing color arriving at `arrival` (>= 0).
  // Returns the provisional job index (stable: Build() keeps insertion order
  // within a round and orders rounds ascending).
  void AddJob(ColorId color, Round arrival);

  // Adds `count` identical jobs.
  void AddJobs(ColorId color, Round arrival, uint64_t count);

  size_t num_colors() const { return delay_bounds_.size(); }
  size_t num_jobs() const { return jobs_.size(); }

  // Finalizes into an immutable Instance. The builder is left empty.
  Instance Build();

 private:
  std::vector<Round> delay_bounds_;
  std::vector<uint64_t> drop_costs_;
  std::vector<std::string> names_;
  std::vector<Job> jobs_;
};

class Instance {
 public:
  Instance() = default;

  size_t num_colors() const { return delay_bounds_.size(); }
  size_t num_jobs() const { return jobs_.size(); }

  // Hot accessors are inline (header-defined): the engine and the ranking
  // loops call them hundreds of times per simulated round, so they must
  // compile down to a bounds-checked-in-debug array load.
  Round delay_bound(ColorId c) const {
    RRS_DCHECK(c < delay_bounds_.size());
    return delay_bounds_[c];
  }
  uint64_t drop_cost(ColorId c) const {
    RRS_DCHECK(c < drop_costs_.size());
    return drop_costs_[c];
  }
  const std::string& color_name(ColorId c) const;

  // True when every color has the paper's unit drop cost (the precondition
  // of the Section 3-5 guarantees).
  bool HasUnitDropCosts() const;

  const Job& job(JobId id) const {
    RRS_DCHECK(id < jobs_.size());
    return jobs_[id];
  }
  Round deadline(JobId id) const {
    const Job& j = job(id);
    return j.arrival + delay_bounds_[j.color];
  }
  std::span<const Job> jobs() const { return jobs_; }

  // Jobs arriving in round r (empty span if none). JobIds of the span are
  // contiguous starting at first_job_in_round(r).
  std::span<const Job> jobs_in_round(Round r) const;
  JobId first_job_in_round(Round r) const;

  // Number of rounds with arrivals: max arrival + 1 (0 if no jobs).
  Round num_request_rounds() const { return num_request_rounds_; }

  // The last round that must be simulated so every job either executes or
  // drops: the maximum deadline over all jobs (0 if no jobs).
  Round horizon() const { return horizon_; }

  // Per-color total job count.
  const std::vector<uint64_t>& jobs_per_color() const {
    return jobs_per_color_;
  }

  // Upper bound on the number of color-c jobs simultaneously pending in any
  // round: the maximum number of color-c arrivals over any window of D_c
  // consecutive rounds. Every pending job's deadline lies in (k, k + D_c],
  // so its arrival lies in (k - D_c, k] — executions only shrink the set.
  // Sessions use this to pre-size per-color rings at bind time, making the
  // round loop allocation-free by construction (not just after warm-up).
  uint32_t max_backlog(ColorId c) const {
    RRS_DCHECK(c < max_backlog_.size());
    return max_backlog_[c];
  }
  const std::vector<uint32_t>& max_backlog_per_color() const {
    return max_backlog_;
  }

  // --- Structural predicates -------------------------------------------

  // True if every color-ℓ job arrives at an integral multiple of D_ℓ
  // (the [Δ | 1 | D_ℓ | D_ℓ] batching condition).
  bool IsBatched() const;

  // True if batched AND at most D_ℓ color-ℓ jobs arrive per batch round
  // (the rate-limited condition of Section 3).
  bool IsRateLimited() const;

  // True if every delay bound is a power of two.
  bool DelayBoundsArePowersOfTwo() const;

  // --- Serialization ----------------------------------------------------
  // Text trace format:
  //   # comment
  //   rrsched-trace 1
  //   color <delay_bound> [name]
  //   job <color_id> <arrival> [count]
  void Serialize(std::ostream& out) const;
  static Instance Deserialize(std::istream& in);

  bool SaveToFile(const std::string& path) const;
  static Instance LoadFromFile(const std::string& path);

  std::string Summary() const;

 private:
  friend class InstanceBuilder;

  std::vector<Round> delay_bounds_;
  std::vector<uint64_t> drop_costs_;
  std::vector<std::string> names_;
  std::vector<Job> jobs_;                 // sorted by arrival (stable)
  std::vector<uint32_t> round_offsets_;   // CSR: round -> first job index
  std::vector<uint64_t> jobs_per_color_;
  std::vector<uint32_t> max_backlog_;     // windowed-max arrivals per color
  Round num_request_rounds_ = 0;
  Round horizon_ = 0;
};

inline bool IsPowerOfTwo(Round v) { return v > 0 && (v & (v - 1)) == 0; }

// Largest power of two <= v (v >= 1).
Round FloorPowerOfTwo(Round v);

}  // namespace rrs
