#include "core/stream_engine.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

namespace {

Instance ColorsOnlyInstance(const std::vector<Round>& delay_bounds) {
  InstanceBuilder builder;
  for (Round d : delay_bounds) builder.AddColor(d);
  return builder.Build();
}

}  // namespace

// Policy-facing view over the streaming state.
class StreamEngine::View : public ResourceView {
 public:
  View(StreamEngine& engine, int mini) : engine_(engine), mini_(mini) {}

  uint32_t num_resources() const override {
    return engine_.options_.num_resources;
  }

  ColorId color_of(ResourceId r) const override {
    return engine_.resource_color_[r];
  }

  void SetColor(ResourceId r, ColorId c) override {
    RRS_CHECK_LT(r, engine_.resource_color_.size());
    RRS_CHECK(c == kNoColor || c < engine_.num_colors());
    if (engine_.resource_color_[r] == c) return;
    engine_.resource_color_[r] = c;
    ++engine_.cost_.reconfigurations;
    engine_.outcome_.reconfigs.emplace_back(r, c);
  }

  uint64_t pending_count(ColorId c) const override {
    return engine_.pending_count(c);
  }

  Round earliest_deadline(ColorId c) const override {
    RRS_CHECK(!engine_.pending_[c].empty());
    return engine_.pending_[c].front().first;
  }

  const std::vector<ColorId>& nonidle_colors() const override {
    auto& list = engine_.nonidle_list_;
    size_t out = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      ColorId c = list[i];
      if (!engine_.pending_[c].empty()) {
        list[out++] = c;
      } else {
        engine_.in_nonidle_list_[c] = 0;
      }
    }
    list.resize(out);
    return list;
  }

 private:
  StreamEngine& engine_;
  [[maybe_unused]] int mini_;
};

StreamEngine::StreamEngine(std::vector<Round> delay_bounds,
                           SchedulerPolicy& policy, EngineOptions options)
    : instance_(ColorsOnlyInstance(delay_bounds)),
      policy_(policy),
      options_(options) {
  RRS_CHECK_GE(options_.num_resources, 1u);
  RRS_CHECK_GE(options_.mini_rounds_per_round, 1);
  RRS_CHECK(!options_.record_schedule)
      << "streaming mode has no job ids; schedule recording is unsupported";
  pending_.assign(instance_.num_colors(), {});
  in_nonidle_list_.assign(instance_.num_colors(), 0);
  last_expiry_push_.assign(instance_.num_colors(), -1);
  resource_color_.assign(options_.num_resources, kNoColor);
  arrivals_scratch_.assign(instance_.num_colors(), 0);
  policy_.Reset(instance_, options_);
}

uint64_t StreamEngine::pending_count(ColorId c) const {
  uint64_t total = 0;
  for (const auto& [deadline, count] : pending_[c]) total += count;
  return total;
}

const RoundOutcome& StreamEngine::Step(
    std::span<const std::pair<ColorId, uint64_t>> arrivals) {
  const Round k = round_;
  outcome_.round = k;
  outcome_.reconfigs.clear();
  outcome_.executions.clear();
  outcome_.drops.clear();

  // ---- Drop phase -------------------------------------------------------
  while (!expiry_.empty() && expiry_.top().first <= k) {
    auto [deadline, c] = expiry_.top();
    expiry_.pop();
    if (deadline < k) continue;  // stale lazy entry
    uint64_t dropped = 0;
    auto& queue = pending_[c];
    while (!queue.empty() && queue.front().first == k) {
      dropped += queue.front().second;
      queue.pop_front();
    }
    if (dropped > 0) {
      cost_.drops += dropped;
      cost_.weighted_drops += dropped * instance_.drop_cost(c);
      pending_total_ -= dropped;
      outcome_.drops.emplace_back(c, dropped);
      policy_.OnJobsDropped(k, c, dropped, {});
    }
    // Re-arm for the color's next deadline.
    if (!queue.empty() && last_expiry_push_[c] != queue.front().first) {
      last_expiry_push_[c] = queue.front().first;
      expiry_.emplace(queue.front().first, c);
    }
  }
  policy_.AfterDropPhase(k);

  // ---- Arrival phase ----------------------------------------------------
  touched_scratch_.clear();
  for (const auto& [c, count] : arrivals) {
    RRS_CHECK_LT(c, instance_.num_colors());
    if (count == 0) continue;
    if (arrivals_scratch_[c] == 0) touched_scratch_.push_back(c);
    arrivals_scratch_[c] += count;
  }
  for (ColorId c : touched_scratch_) {
    uint64_t count = arrivals_scratch_[c];
    arrivals_scratch_[c] = 0;
    const Round deadline = k + instance_.delay_bound(c);
    auto& queue = pending_[c];
    if (!queue.empty() && queue.back().first == deadline) {
      queue.back().second += count;
    } else {
      queue.emplace_back(deadline, count);
    }
    if (queue.size() == 1 && last_expiry_push_[c] != deadline) {
      last_expiry_push_[c] = deadline;
      expiry_.emplace(deadline, c);
    }
    if (!in_nonidle_list_[c]) {
      in_nonidle_list_[c] = 1;
      nonidle_list_.push_back(c);
    }
    arrived_ += count;
    pending_total_ += count;
    policy_.OnArrivals(k, c, count);
  }
  policy_.AfterArrivalPhase(k);

  // ---- Mini-rounds ------------------------------------------------------
  for (int mini = 0; mini < options_.mini_rounds_per_round; ++mini) {
    View view(*this, mini);
    policy_.Reconfigure(k, mini, view);

    for (ResourceId r = 0; r < options_.num_resources; ++r) {
      ColorId c = resource_color_[r];
      if (c == kNoColor) continue;
      auto& queue = pending_[c];
      if (queue.empty()) continue;
      if (--queue.front().second == 0) queue.pop_front();
      --pending_total_;
      ++executed_;
      if (!outcome_.executions.empty() &&
          outcome_.executions.back().first == c) {
        ++outcome_.executions.back().second;
      } else {
        outcome_.executions.emplace_back(c, 1);
      }
      // Keep the expiry heap armed for the new front deadline.
      if (!queue.empty() && last_expiry_push_[c] != queue.front().first) {
        last_expiry_push_[c] = queue.front().first;
        expiry_.emplace(queue.front().first, c);
      }
    }
  }

  ++round_;
  return outcome_;
}

void StreamEngine::Finish() {
  while (HasPending()) {
    Step({});
  }
  // One more drop phase cannot be pending: HasPending() counts every job.
}

}  // namespace rrs
