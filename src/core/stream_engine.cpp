#include "core/stream_engine.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "workload/arrival_source.h"

namespace rrs {

namespace {

Instance ColorsOnlyInstance(const std::vector<Round>& delay_bounds) {
  InstanceBuilder builder;
  for (Round d : delay_bounds) builder.AddColor(d);
  return builder.Build();
}

}  // namespace

void DeadlineRing::Grow() {
  const uint32_t old_cap = capacity();
  const uint32_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
  std::vector<Round> deadline(new_cap);
  std::vector<uint64_t> count(new_cap);
  for (uint32_t i = 0; i < size_; ++i) {
    const uint32_t at = (head_ + i) & mask_;
    deadline[i] = deadline_[at];
    count[i] = count_[at];
  }
  deadline_ = std::move(deadline);
  count_ = std::move(count);
  head_ = 0;
  mask_ = new_cap - 1;
}

// Policy-facing view over the streaming state.
class StreamEngine::View final : public ResourceView {
 public:
  View(StreamEngine& engine, int mini)
      : ResourceView(engine.pending_n_.data()), engine_(engine), mini_(mini) {}

  uint32_t num_resources() const final {
    return engine_.options_.num_resources;
  }

  ColorId color_of(ResourceId r) const final {
    return engine_.resource_color_[r];
  }

  void SetColor(ResourceId r, ColorId c) final {
    RRS_CHECK_LT(r, engine_.resource_color_.size());
    RRS_CHECK(c == kNoColor || c < engine_.num_colors());
    if (engine_.resource_color_[r] == c) return;
    engine_.resource_color_[r] = c;
    ++engine_.cost_.reconfigurations;
#if RRS_OBS_LEVEL >= 1
    if (c != kNoColor) ++engine_.reconfigs_per_color_[c];
    if (engine_.instruments_.tracing()) {
      engine_.instruments_.EmitRecolor(engine_.round_, r);
    }
#endif
    engine_.outcome_.reconfigs.emplace_back(r, c);
  }

  Round earliest_deadline(ColorId c) const final {
    RRS_CHECK(!engine_.pending_[c].empty());
    return engine_.pending_[c].front_deadline();
  }

  const std::vector<ColorId>& nonidle_colors() const final {
    auto& list = engine_.nonidle_list_;
    size_t out = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      ColorId c = list[i];
      if (engine_.pending_n_[c] != 0) {
        list[out++] = c;
      } else {
        engine_.in_nonidle_list_[c] = 0;
      }
    }
    list.resize(out);
    return list;
  }

 private:
  StreamEngine& engine_;
  [[maybe_unused]] int mini_;
};

StreamEngine::StreamEngine(std::vector<Round> delay_bounds,
                           SchedulerPolicy& policy, EngineOptions options)
    : instance_(ColorsOnlyInstance(delay_bounds)),
      policy_(policy),
      options_(options) {
  RRS_CHECK_GE(options_.num_resources, 1u);
  RRS_CHECK_GE(options_.mini_rounds_per_round, 1);
  RRS_CHECK(!options_.record_schedule)
      << "streaming mode has no job ids; schedule recording is unsupported";
  pending_.assign(instance_.num_colors(), {});
  Reset();
}

void StreamEngine::Reset() {
  const size_t num_colors = instance_.num_colors();
  // Same color table: empty the rings in place, keeping their arrays. All
  // remaining buffers are assigned at unchanged sizes, which reuses their
  // capacity — a warm session restarts allocation-free.
  for (auto& ring : pending_) ring.clear();
  pending_n_.assign(num_colors, 0);
  nonidle_list_.clear();
  nonidle_list_.reserve(num_colors);
  in_nonidle_list_.assign(num_colors, 0);
  expiry_.clear();
  last_expiry_push_.assign(num_colors, -1);
  resource_color_.assign(options_.num_resources, kNoColor);
  arrivals_scratch_.assign(num_colors, 0);
  touched_scratch_.clear();
  touched_scratch_.reserve(num_colors);
  exec_count_.assign(num_colors, 0);
  exec_touched_.clear();
  exec_touched_.reserve(num_colors);
  outcome_.round = 0;
  outcome_.reconfigs.clear();
  outcome_.executions.clear();
  outcome_.drops.clear();

  round_ = 0;
  cost_ = CostBreakdown{};
  arrived_ = 0;
  executed_ = 0;
  pending_total_ = 0;
#if RRS_OBS_LEVEL >= 1
  drops_per_color_.assign(num_colors, 0);
  reconfigs_per_color_.assign(num_colors, 0);
  absorbed_ = false;
#endif
  instruments_.Rebind(options_.obs_scope, "stream");
  ++tenants_served_;
  policy_.Reset(instance_, options_);
}

void StreamEngine::Reset(std::vector<Round> delay_bounds) {
  instance_ = ColorsOnlyInstance(delay_bounds);
  const size_t num_colors = instance_.num_colors();
  // Shape change: grow the per-color ring array (existing rings keep their
  // capacity; new colors start empty).
  if (pending_.size() < num_colors) pending_.resize(num_colors);
  Reset();
}

void StreamEngine::ArmExpiry(ColorId c) {
  // Deadlines are pushed strictly increasing per color, so dedup by the last
  // pushed value is exact.
  const Round front = pending_[c].front_deadline();
  if (last_expiry_push_[c] != front) {
    last_expiry_push_[c] = front;
    expiry_.emplace_back(front, c);
    std::push_heap(expiry_.begin(), expiry_.end(),
                   std::greater<std::pair<Round, ColorId>>{});
  }
}

const RoundOutcome& StreamEngine::Step(workload::ArrivalSource& source) {
  if (source.cursor() < source.num_request_rounds()) {
    RRS_CHECK_EQ(source.cursor(), round_)
        << "source cursor out of step with the stream";
    return Step(source.NextRound());
  }
  return Step({});
}

const RoundOutcome& StreamEngine::Step(
    std::span<const std::pair<ColorId, uint64_t>> arrivals) {
  const Round k = round_;
  outcome_.round = k;
  outcome_.reconfigs.clear();
  outcome_.executions.clear();
  outcome_.drops.clear();

  const bool obs_sampled = instruments_.ShouldSample(k);
  uint64_t obs_t0 = obs_sampled ? obs::NowNs() : 0;

  // ---- Drop phase -------------------------------------------------------
  while (!expiry_.empty() && expiry_.front().first <= k) {
    auto [deadline, c] = expiry_.front();
    std::pop_heap(expiry_.begin(), expiry_.end(),
                  std::greater<std::pair<Round, ColorId>>{});
    expiry_.pop_back();
    if (deadline < k) continue;  // stale lazy entry
    auto& ring = pending_[c];
    // A color's pending deadlines are distinct, so at most one entry — the
    // front — can carry deadline k.
    if (ring.empty() || ring.front_deadline() != k) continue;
    const uint64_t dropped = ring.front_count();
    ring.pop_front();
    pending_n_[c] -= dropped;
    pending_total_ -= dropped;
    cost_.drops += dropped;
    cost_.weighted_drops += dropped * instance_.drop_cost(c);
#if RRS_OBS_LEVEL >= 1
    drops_per_color_[c] += dropped;
#endif
    outcome_.drops.emplace_back(c, dropped);
    policy_.OnJobsDropped(k, c, dropped, {});
    // Re-arm for the color's next deadline.
    if (!ring.empty()) ArmExpiry(c);
  }
  policy_.AfterDropPhase(k);
  if (obs_sampled) {
    const uint64_t t = obs::NowNs();
    instruments_.RecordPhase(obs::kPhaseDrop, k, obs_t0, t);
    obs_t0 = t;
  }

  // ---- Arrival phase ----------------------------------------------------
  touched_scratch_.clear();
  for (const auto& [c, count] : arrivals) {
    RRS_CHECK_LT(c, instance_.num_colors());
    if (count == 0) continue;
    if (arrivals_scratch_[c] == 0) touched_scratch_.push_back(c);
    arrivals_scratch_[c] += count;
  }
  for (ColorId c : touched_scratch_) {
    uint64_t count = arrivals_scratch_[c];
    arrivals_scratch_[c] = 0;
    const Round deadline = k + instance_.delay_bound(c);
    auto& ring = pending_[c];
    if (!ring.empty() && ring.back_deadline() == deadline) {
      ring.back_count() += count;
    } else {
      ring.push_back(deadline, count);
    }
    if (ring.size() == 1) ArmExpiry(c);
    if (!in_nonidle_list_[c]) {
      in_nonidle_list_[c] = 1;
      nonidle_list_.push_back(c);
    }
    arrived_ += count;
    pending_n_[c] += count;
    pending_total_ += count;
    policy_.OnArrivals(k, c, count);
  }
  policy_.AfterArrivalPhase(k);
  if (obs_sampled) {
    const uint64_t t = obs::NowNs();
    instruments_.RecordPhase(obs::kPhaseArrival, k, obs_t0, t);
    obs_t0 = t;
  }

  // ---- Mini-rounds ------------------------------------------------------
  for (int mini = 0; mini < options_.mini_rounds_per_round; ++mini) {
    View view(*this, mini);
    policy_.Reconfigure(k, mini, view);
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments_.RecordPhase(obs::kPhaseReconfig, k, obs_t0, t);
      obs_t0 = t;
    }

    // Execution, batched: histogram resources by color, then bulk-consume
    // min(resources, pending) jobs per color. Identical totals and state to
    // the per-resource pop loop — each color-c resource executes one
    // earliest-deadline color-c job if one is pending — since unit jobs of
    // one color are interchangeable within a mini-round.
    exec_touched_.clear();
    for (ResourceId r = 0; r < options_.num_resources; ++r) {
      const ColorId c = resource_color_[r];
      if (c == kNoColor) continue;
      if (exec_count_[c]++ == 0) exec_touched_.push_back(c);
    }
    for (ColorId c : exec_touched_) {
      uint64_t take = std::min<uint64_t>(exec_count_[c], pending_n_[c]);
      exec_count_[c] = 0;
      if (take == 0) continue;
      pending_n_[c] -= take;
      pending_total_ -= take;
      executed_ += take;
      outcome_.executions.emplace_back(c, take);
      auto& ring = pending_[c];
      while (take > 0) {
        uint64_t& front = ring.front_count();
        if (take < front) {
          front -= take;
          break;
        }
        take -= front;
        ring.pop_front();
      }
      // Keep the expiry heap armed for the new front deadline.
      if (!ring.empty()) ArmExpiry(c);
    }
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments_.RecordPhase(obs::kPhaseExecute, k, obs_t0, t);
      obs_t0 = t;
    }
  }

  ++round_;
  return outcome_;
}

obs::Telemetry StreamEngine::SnapshotTelemetry() const {
  obs::Telemetry telemetry;
  telemetry.arrived = arrived_;
  telemetry.executed = executed_;
  telemetry.drops = cost_.drops;
  telemetry.reconfigs = cost_.reconfigurations;
  telemetry.rounds = static_cast<uint64_t>(round_);
  obs::Registry policy_registry;
  policy_.ExportMetrics(policy_registry);
  for (const auto& [name, value] : policy_registry.Values()) {
    telemetry.counters[name] = value;
  }
#if RRS_OBS_LEVEL >= 1
  telemetry.drops_per_color = drops_per_color_;
  telemetry.reconfigs_per_color = reconfigs_per_color_;
  const obs::LogHistogram* phase_ns = instruments_.phase_histograms();
  for (int p = 0; p < obs::kNumPhases; ++p) {
    telemetry.phase[p] = obs::SummarizePhase(phase_ns[p]);
  }
#endif
  return telemetry;
}

void StreamEngine::AbsorbIntoScope() {
#if RRS_OBS_LEVEL >= 1
  if (absorbed_ || !instruments_.active()) return;
  absorbed_ = true;
  obs::Telemetry telemetry = SnapshotTelemetry();
  instruments_.Finalize(telemetry);
#endif
}

void StreamEngine::SaveState(snapshot::Writer& w) const {
  w.BeginSection(snapshot::kTagStreamEngine);
  w.PutU64(instance_.num_colors());
  w.PutU32(options_.num_resources);
  w.PutI64(round_);
  w.PutU64(cost_.reconfigurations);
  w.PutU64(cost_.drops);
  w.PutU64(cost_.weighted_drops);
  w.PutU64(arrived_);
  w.PutU64(executed_);
  w.PutU64(pending_total_);
  for (size_t c = 0; c < instance_.num_colors(); ++c) {
    pending_[c].SaveState(w);
  }
  w.PutVec(pending_n_);
  w.PutVec(nonidle_list_);
  w.PutVec(in_nonidle_list_);
  // The expiry heap's raw vector: a valid heap layout stays a valid heap, so
  // the restored stream pops in the identical order, stale entries included.
  w.PutU64(expiry_.size());
  for (const auto& [deadline, c] : expiry_) {
    w.PutI64(deadline);
    w.PutU32(c);
  }
  w.PutVec(last_expiry_push_);
  w.PutVec(resource_color_);
#if RRS_OBS_LEVEL >= 1
  w.PutBool(true);
  w.PutVec(drops_per_color_);
  w.PutVec(reconfigs_per_color_);
#else
  w.PutBool(false);
#endif
  w.EndSection();

  policy_.SaveState(w);
}

void StreamEngine::LoadState(snapshot::Reader& r) {
  Reset();  // clean arena + Reset policy, ready to be overwritten
  r.BeginSection(snapshot::kTagStreamEngine);
  RRS_CHECK_EQ(r.GetU64(), instance_.num_colors())
      << "stream snapshot restored against a different color table";
  RRS_CHECK_EQ(r.GetU32(), options_.num_resources)
      << "stream snapshot restored with a different resource count";
  round_ = r.GetI64();
  cost_.reconfigurations = r.GetU64();
  cost_.drops = r.GetU64();
  cost_.weighted_drops = r.GetU64();
  arrived_ = r.GetU64();
  executed_ = r.GetU64();
  pending_total_ = r.GetU64();
  for (size_t c = 0; c < instance_.num_colors(); ++c) {
    pending_[c].LoadState(r);
  }
  r.GetVec(pending_n_);
  r.GetVec(nonidle_list_);
  r.GetVec(in_nonidle_list_);
  const uint64_t expiry_size = r.GetU64();
  expiry_.clear();
  expiry_.reserve(expiry_size);
  for (uint64_t i = 0; i < expiry_size; ++i) {
    const Round deadline = r.GetI64();
    expiry_.emplace_back(deadline, r.GetU32());
  }
  r.GetVec(last_expiry_push_);
  r.GetVec(resource_color_);
  const bool obs_fields = r.GetBool();
#if RRS_OBS_LEVEL >= 1
  RRS_CHECK(obs_fields)
      << "stream snapshot from an RRS_OBS_LEVEL=0 build lacks telemetry";
  r.GetVec(drops_per_color_);
  r.GetVec(reconfigs_per_color_);
#else
  RRS_CHECK(!obs_fields)
      << "stream snapshot carries telemetry this RRS_OBS_LEVEL=0 build drops";
#endif
  r.EndSection();
  RRS_CHECK_EQ(pending_n_.size(), instance_.num_colors());

  policy_.LoadState(r);
}

void StreamEngine::Finish() {
  while (HasPending()) {
    Step({});
  }
  // One more drop phase cannot be pending: HasPending() counts every job.
  AbsorbIntoScope();
}

}  // namespace rrs
