// The unit job of the model: a color, an arrival round, and (via its color's
// delay bound) a deadline. A job must execute on a resource of its color in
// the execution phase of some round r with arrival <= r < deadline; otherwise
// it is dropped in the drop phase of round `deadline` at unit cost.
#pragma once

#include "core/types.h"

namespace rrs {

struct Job {
  ColorId color = kNoColor;
  Round arrival = 0;

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace rrs
