// Recorded schedules and the independent legality validator.
//
// A Schedule is the complete record of what an algorithm (online policy,
// reduction pipeline, exact offline solver, or a hand-built Appendix
// construction) did: every reconfiguration and every job execution, tagged
// with (round, mini_round, resource). The validator replays a schedule
// against the originating Instance and re-derives its cost from first
// principles, so every algorithm in the repository is checked by code that
// shares nothing with the engine that produced the schedule.
//
// Mini-rounds: uni-speed schedules have 1 mini-round per round; double-speed
// schedules (DS-Seq-EDF, Section 3.3) have 2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/instance.h"
#include "core/types.h"

namespace rrs {

struct ReconfigAction {
  Round round = 0;
  int mini = 0;
  ResourceId resource = 0;
  ColorId to = kNoColor;

  friend bool operator==(const ReconfigAction&, const ReconfigAction&) = default;
};

struct ExecAction {
  Round round = 0;
  int mini = 0;
  ResourceId resource = 0;
  JobId job = kNoJob;

  friend bool operator==(const ExecAction&, const ExecAction&) = default;
};

struct ValidationResult {
  bool ok = false;
  std::string error;          // first failure, empty when ok
  CostBreakdown cost;         // recomputed from the schedule + instance
  uint64_t executed = 0;

  explicit operator bool() const { return ok; }
};

class Schedule {
 public:
  // Default-constructed schedules are empty placeholders (0 resources) to be
  // overwritten by assignment; validating one fails unless it has no actions.
  Schedule() = default;
  Schedule(uint32_t num_resources, int mini_rounds_per_round = 1);

  uint32_t num_resources() const { return num_resources_; }
  int mini_rounds_per_round() const { return mini_rounds_; }

  // Actions may be appended in any order; validation sorts a copy.
  void AddReconfig(Round round, int mini, ResourceId resource, ColorId to);
  void AddExecution(Round round, int mini, ResourceId resource, JobId job);

  const std::vector<ReconfigAction>& reconfigs() const { return reconfigs_; }
  const std::vector<ExecAction>& executions() const { return executions_; }

  uint64_t num_reconfigs() const { return reconfigs_.size(); }
  uint64_t num_executions() const { return executions_.size(); }

  // Cost assuming the schedule is legal for `instance`: Δ per reconfig plus
  // one per job of the instance that the schedule does not execute.
  CostBreakdown Cost(const Instance& instance) const;

  // --- Serialization ------------------------------------------------------
  // Text format:
  //   rrsched-schedule 1 <resources> <mini_rounds>
  //   r <round> <mini> <resource> <color>    (color -1 = black)
  //   x <round> <mini> <resource> <job>
  // A serialized (instance, schedule) pair is a certifiable artifact: anyone
  // can reload both and re-run Validate.
  void Serialize(std::ostream& out) const;
  static Schedule Deserialize(std::istream& in);
  bool SaveToFile(const std::string& path) const;
  static Schedule LoadFromFile(const std::string& path);

  // Full legality replay against `instance`:
  //  - every reconfiguration targets a valid resource/mini and an actual
  //    color (or kNoColor, i.e. back to black);
  //  - every execution happens on a resource currently configured with the
  //    job's color, within [arrival, deadline), at most one execution per
  //    (resource, round, mini), and no job executes twice;
  //  - the recomputed cost is returned.
  ValidationResult Validate(const Instance& instance) const;

 private:
  uint32_t num_resources_ = 0;
  int mini_rounds_ = 1;
  std::vector<ReconfigAction> reconfigs_;
  std::vector<ExecAction> executions_;
};

}  // namespace rrs
