// Fundamental identifier and time types of the scheduling model (Section 2 of
// the paper).
#pragma once

#include <cstdint>

namespace rrs {

// A job/resource color. The paper's "black" (unconfigured) state is kNoColor.
using ColorId = uint32_t;
inline constexpr ColorId kNoColor = static_cast<ColorId>(-1);

// Round index. Rounds are numbered from 0; deadlines and delay bounds live in
// the same space. Signed so that differences and "one before round 0" (-1)
// are representable.
using Round = int64_t;

// Dense job identifier: the index of the job within its Instance.
using JobId = uint32_t;
inline constexpr JobId kNoJob = static_cast<JobId>(-1);

// Resource (cache location) index.
using ResourceId = uint32_t;

}  // namespace rrs
