// StreamEngine: the incremental (truly online) counterpart of Engine.
//
// Engine replays a complete Instance — convenient for experiments and
// validation, but an actual deployment (a router data plane, a cluster
// manager) sees requests one round at a time and needs decisions back
// immediately. StreamEngine drives the same SchedulerPolicy interface with
// the same four-phase semantics, but is fed arrivals round by round via
// Step() and reports each round's reconfigurations, executions (as color
// counts; there are no job ids in streaming mode), and drops.
//
// Pending state is a per-color ring of (deadline, count) run-length entries.
// A color's pending deadlines are distinct and confined to the next D_c
// rounds, so the ring holds at most D_c entries; capacity grows (rarely, by
// doubling) toward that bound and the steady state allocates nothing.
// Per-color job totals live in a dense side table so pending_count is an O(1)
// array load shared with ResourceView's non-virtual fast path.
//
// Equivalence with Engine — same policy, same workload, same costs — is
// pinned by tests (stream_test.cpp, differential_test.cpp): the two
// implementations share the semantics, not the code, so the tests are the
// contract.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"
#include "obs/scope.h"
#include "util/check.h"

namespace rrs {

namespace workload {
class ArrivalSource;
}  // namespace workload

struct RoundOutcome {
  Round round = 0;
  // Reconfigurations applied this round, in application order across all
  // mini-rounds. Pairs are (resource, new color).
  std::vector<std::pair<ResourceId, ColorId>> reconfigs;
  // Executions this round as (color, count) pairs aggregated over resources
  // and mini-rounds.
  std::vector<std::pair<ColorId, uint64_t>> executions;
  // Jobs dropped in this round's drop phase, as (color, count).
  std::vector<std::pair<ColorId, uint64_t>> drops;
};

// FIFO ring of (deadline, count) run-length entries with power-of-two
// capacity. FIFO order == deadline order (deadlines are pushed strictly
// increasing per color).
class DeadlineRing {
 public:
  bool empty() const { return size_ == 0; }
  uint32_t size() const { return size_; }

  // Empties the ring, keeping its arrays (session reuse).
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  Round front_deadline() const {
    RRS_DCHECK(size_ > 0);
    return deadline_[head_];
  }
  uint64_t front_count() const {
    RRS_DCHECK(size_ > 0);
    return count_[head_];
  }
  uint64_t& front_count() {
    RRS_DCHECK(size_ > 0);
    return count_[head_];
  }

  void pop_front() {
    RRS_DCHECK(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void push_back(Round deadline, uint64_t count) {
    if (size_ == capacity()) Grow();
    const uint32_t at = (head_ + size_) & mask_;
    deadline_[at] = deadline;
    count_[at] = count;
    ++size_;
  }

  // The most recently pushed entry; requires !empty().
  Round back_deadline() const {
    RRS_DCHECK(size_ > 0);
    return deadline_[(head_ + size_ - 1) & mask_];
  }
  uint64_t& back_count() {
    RRS_DCHECK(size_ > 0);
    return count_[(head_ + size_ - 1) & mask_];
  }

  // Checkpoint/restore: RLE entries in FIFO order (layout — capacity, head
  // position — is not state and is rebuilt on demand).
  void SaveState(snapshot::Writer& w) const {
    w.PutU64(size_);
    for (uint32_t i = 0; i < size_; ++i) {
      const uint32_t at = (head_ + i) & mask_;
      w.PutI64(deadline_[at]);
      w.PutU64(count_[at]);
    }
  }
  void LoadState(snapshot::Reader& r) {
    clear();
    const uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      const Round deadline = r.GetI64();
      push_back(deadline, r.GetU64());
    }
  }

 private:
  uint32_t capacity() const { return static_cast<uint32_t>(deadline_.size()); }
  void Grow();

  std::vector<Round> deadline_;
  std::vector<uint64_t> count_;
  uint32_t head_ = 0;
  uint32_t size_ = 0;
  uint32_t mask_ = 0;  // capacity - 1 (capacity is a power of two, or 0)
};

class StreamEngine {
 public:
  // delay_bounds[c] is color c's delay bound. The policy is reset
  // immediately (against a jobless Instance carrying the color table).
  StreamEngine(std::vector<Round> delay_bounds, SchedulerPolicy& policy,
               EngineOptions options);

  // Session rebind (core/session.h): restarts the stream at round 0 for a
  // new tenant with the SAME color table — all pending state, costs, and
  // counters are cleared in place (rings and scratch keep their capacity;
  // zero steady-state allocation at a fixed shape) and the policy is reset.
  void Reset();

  // Session rebind with a NEW color table: rebuilds the jobless Instance
  // (this is the one shape-changing, allocating step) and then behaves like
  // Reset().
  void Reset(std::vector<Round> delay_bounds);

  size_t num_colors() const { return instance_.num_colors(); }
  Round current_round() const { return round_; }

  // Advances one round with the given arrivals (color, count). Colors may
  // repeat; counts accumulate. Returns the round's outcome (valid until the
  // next Step).
  const RoundOutcome& Step(
      std::span<const std::pair<ColorId, uint64_t>> arrivals);

  // Advances one round pulling arrivals from a streaming source: the
  // source's next round while it has one, an empty round afterwards. The
  // source's cursor must match current_round() while the source is live —
  // reset or restore the two together.
  const RoundOutcome& Step(workload::ArrivalSource& source);

  // True while any job is still pending.
  bool HasPending() const { return pending_total_ > 0; }

  // Tenants this session has served (1 after construction, +1 per Reset).
  uint64_t tenants_served() const { return tenants_served_; }

  // Advances empty rounds until no jobs are pending (each pending job either
  // executes or reaches its deadline). Bounded by the largest delay bound.
  void Finish();

  const CostBreakdown& cost() const { return cost_; }
  uint64_t arrived() const { return arrived_; }
  uint64_t executed() const { return executed_; }

  // Structured snapshot of everything seen so far: totals, per-color
  // drop/reconfig vectors, sampled per-phase wall-time summaries, and the
  // policy's merged counters. Callable at any round boundary. Near-empty at
  // RRS_OBS_LEVEL=0 (totals only).
  obs::Telemetry SnapshotTelemetry() const;

  // Folds the stream's telemetry into the attached obs::Scope (if any).
  // Called by Finish(); idempotent, so explicit calls for streams that never
  // drain are safe.
  void AbsorbIntoScope();

  // Checkpoint/restore at a round boundary (between Step calls): the full
  // pending state (RLE rings, expiry heap, resource colors, accumulators)
  // followed by the policy's state. LoadState Reset()s the session first,
  // so a restored stream — on this engine or any other with the same color
  // table, policy parameters, and options — continues bit-identically to
  // the saved one. tenants_served() is session-local and not restored.
  void SaveState(snapshot::Writer& w) const;
  void LoadState(snapshot::Reader& r);

 private:
  class View;
  friend class View;

  uint64_t pending_count(ColorId c) const { return pending_n_[c]; }

  // Pushes (front deadline, c) onto the expiry heap if not already armed.
  void ArmExpiry(ColorId c);

  Instance instance_;  // colors only; gives policies the color table
  SchedulerPolicy& policy_;
  EngineOptions options_;
  obs::RunInstruments instruments_;

  Round round_ = 0;
  CostBreakdown cost_;
  uint64_t arrived_ = 0;
  uint64_t executed_ = 0;
  uint64_t pending_total_ = 0;

  // Per color: ring of (deadline, count) entries plus a dense job total
  // (pending_n_ doubles as the view's pending table).
  std::vector<DeadlineRing> pending_;
  std::vector<uint64_t> pending_n_;
  std::vector<ColorId> nonidle_list_;  // lazily compacted
  std::vector<uint8_t> in_nonidle_list_;
  // Colors that may expire, keyed by deadline (lazy min-heap over a plain
  // vector — push_heap/pop_heap — so Reset can clear it without releasing
  // storage; duplicates ok).
  std::vector<std::pair<Round, ColorId>> expiry_;
  std::vector<Round> last_expiry_push_;  // dedupe heap pushes
  std::vector<ColorId> resource_color_;
  std::vector<uint64_t> arrivals_scratch_;
  std::vector<ColorId> touched_scratch_;
  // Execution-phase scratch: per-color resource histogram + touched list.
  std::vector<uint32_t> exec_count_;
  std::vector<ColorId> exec_touched_;
  RoundOutcome outcome_;
#if RRS_OBS_LEVEL >= 1
  std::vector<uint64_t> drops_per_color_;
  std::vector<uint64_t> reconfigs_per_color_;  // telemetry (kNoColor excluded)
  bool absorbed_ = false;
#endif
  uint64_t tenants_served_ = 0;  // Reset calls (including construction)
};

}  // namespace rrs
