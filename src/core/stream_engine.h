// StreamEngine: the incremental (truly online) counterpart of Engine.
//
// Engine replays a complete Instance — convenient for experiments and
// validation, but an actual deployment (a router data plane, a cluster
// manager) sees requests one round at a time and needs decisions back
// immediately. StreamEngine drives the same SchedulerPolicy interface with
// the same four-phase semantics, but is fed arrivals round by round via
// Step() and reports each round's reconfigurations, executions (as color
// counts; there are no job ids in streaming mode), and drops.
//
// Equivalence with Engine — same policy, same workload, same costs — is
// pinned by tests (stream_test.cpp): the two implementations share the
// semantics, not the code, so the tests are the contract.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/policy.h"

namespace rrs {

struct RoundOutcome {
  Round round = 0;
  // Reconfigurations applied this round, in application order across all
  // mini-rounds. Pairs are (resource, new color).
  std::vector<std::pair<ResourceId, ColorId>> reconfigs;
  // Executions this round as (color, count) pairs aggregated over resources
  // and mini-rounds.
  std::vector<std::pair<ColorId, uint64_t>> executions;
  // Jobs dropped in this round's drop phase, as (color, count).
  std::vector<std::pair<ColorId, uint64_t>> drops;
};

class StreamEngine {
 public:
  // delay_bounds[c] is color c's delay bound. The policy is reset
  // immediately (against a jobless Instance carrying the color table).
  StreamEngine(std::vector<Round> delay_bounds, SchedulerPolicy& policy,
               EngineOptions options);

  size_t num_colors() const { return instance_.num_colors(); }
  Round current_round() const { return round_; }

  // Advances one round with the given arrivals (color, count). Colors may
  // repeat; counts accumulate. Returns the round's outcome (valid until the
  // next Step).
  const RoundOutcome& Step(
      std::span<const std::pair<ColorId, uint64_t>> arrivals);

  // True while any job is still pending.
  bool HasPending() const { return pending_total_ > 0; }

  // Advances empty rounds until no jobs are pending (each pending job either
  // executes or reaches its deadline). Bounded by the largest delay bound.
  void Finish();

  const CostBreakdown& cost() const { return cost_; }
  uint64_t arrived() const { return arrived_; }
  uint64_t executed() const { return executed_; }

 private:
  class View;
  friend class View;

  uint64_t pending_count(ColorId c) const;

  Instance instance_;  // colors only; gives policies the color table
  SchedulerPolicy& policy_;
  EngineOptions options_;

  Round round_ = 0;
  CostBreakdown cost_;
  uint64_t arrived_ = 0;
  uint64_t executed_ = 0;
  uint64_t pending_total_ = 0;

  // Per color: FIFO of (deadline, count); FIFO order == deadline order.
  std::vector<std::deque<std::pair<Round, uint64_t>>> pending_;
  std::vector<ColorId> nonidle_list_;  // lazily compacted
  std::vector<uint8_t> in_nonidle_list_;
  // Colors that may expire, keyed by deadline (lazy min-heap; duplicates ok).
  std::priority_queue<std::pair<Round, ColorId>,
                      std::vector<std::pair<Round, ColorId>>,
                      std::greater<>>
      expiry_;
  std::vector<Round> last_expiry_push_;  // dedupe heap pushes
  std::vector<ColorId> resource_color_;
  std::vector<uint64_t> arrivals_scratch_;
  std::vector<ColorId> touched_scratch_;
  RoundOutcome outcome_;
};

}  // namespace rrs
