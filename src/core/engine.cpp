#include "core/engine.h"

#include <algorithm>

#include "core/job_ring.h"
#include "core/run_telemetry.h"
#include "obs/scope.h"
#include "util/check.h"

namespace rrs {

// The session arena: all mutable simulation state, owned by the Engine for
// its whole lifetime and rebound to each tenant by StartRun. Buffers are
// assigned (not reconstructed) per run, so capacity acquired for one tenant
// carries over to the next — after the first tenant of a given shape, runs
// perform no steady-state allocation (Session rules 1-2, core/session.h).
//
// The expiry schedule is a timing wheel over the next max-delay-bound
// rounds: when round k's arrival phase gives color c the deadline k + D_c,
// the color is pushed (deduplicated per deadline) into wheel slot
// (k + D_c) mod W with W > max D_ℓ, and round k's drop phase consumes
// exactly slot k mod W. Deadlines live at most max D_ℓ rounds, so a slot is
// always consumed (and cleared) before it is reused; any W > max D_ℓ gives
// the same slot contents per round, so the wheel keeps the largest size any
// tenant needed.
struct Engine::SimState {
  const Instance* instance = nullptr;
  EngineOptions options;

  std::vector<ColorId> resource_color;

  std::vector<JobRing> rings;
  // Dense per-color pending counts (== rings[c].size()), exported to the
  // policy through ResourceView's non-virtual pending_count.
  std::vector<uint64_t> pending_n;

  std::vector<ColorId> nonidle_list;  // lazily compacted
  std::vector<uint8_t> in_nonidle_list;

  // Timing-wheel expiry schedule: wheel[k % wheel.size()] holds the colors
  // with a pending deadline in round k (pushed during arrival phases,
  // deduplicated via last_wheel_push, cleared when consumed).
  std::vector<std::vector<ColorId>> wheel;
  std::vector<Round> last_wheel_push;

  // Execution-phase scratch: per-color resource histogram + touched list.
  std::vector<uint32_t> exec_count;
  std::vector<ColorId> exec_touched;
  std::vector<JobId> dropped_scratch;  // wrapped drop spans only

  // Per-run accumulators, kept here (not on the stack of Run) so a run can
  // pause between StepRounds calls.
  CostBreakdown cost;
  uint64_t executed = 0;
  // Jobs pulled from the source so far; doubles as the next dense JobId
  // (arrivals are numbered consecutively in emission order, which for an
  // InstanceSource reproduces the Instance's JobIds exactly).
  uint64_t arrived = 0;
  std::vector<uint64_t> drops_per_color;
  Schedule schedule;
  Schedule* schedule_ptr = nullptr;  // &schedule iff recording
  obs::RunInstruments instruments;

#if RRS_OBS_LEVEL >= 1
  // Per-color recoloring counts (telemetry); recolorings to black are only
  // in the aggregate total.
  std::vector<uint64_t> reconfigs_per_color;
#endif

  uint64_t pending_count(ColorId c) const { return pending_n[c]; }

  // Rebinds the arena to a tenant and clears all per-run state. O(num
  // colors + num resources + wheel size) writes, zero allocations once every
  // buffer has grown to the shape.
  void StartRun(const Instance& inst, const EngineOptions& opts,
                const workload::ArrivalSource& source) {
    instance = &inst;
    options = opts;
    const size_t num_colors = inst.num_colors();

    resource_color.assign(opts.num_resources, kNoColor);
    if (rings.size() < num_colors) rings.resize(num_colors);
    for (auto& ring : rings) ring.clear();
    // Pre-size each ring to the tenant's backlog bound so the round loop
    // never grows one mid-run: ring allocation happens here, at the tenant
    // boundary, and a reused session whose rings already fit performs none.
    // The bound comes from the source (a jobless shape Instance reports 0).
    uint32_t max_backlog_any = 0;
    for (ColorId c = 0; c < num_colors; ++c) {
      const uint32_t bound = source.max_backlog(c);
      rings[c].Reserve(bound);
      max_backlog_any = std::max(max_backlog_any, bound);
    }
    pending_n.assign(num_colors, 0);
    nonidle_list.clear();
    nonidle_list.reserve(num_colors);
    in_nonidle_list.assign(num_colors, 0);
    last_wheel_push.assign(num_colors, -1);
    exec_count.assign(num_colors, 0);
    exec_touched.clear();
    exec_touched.reserve(num_colors);
    dropped_scratch.clear();
    // A wrapped drop span copies at most one color's whole backlog.
    dropped_scratch.reserve(max_backlog_any);

    Round max_delay = 1;
    for (ColorId c = 0; c < num_colors; ++c) {
      max_delay = std::max(max_delay, inst.delay_bound(c));
    }
    const size_t wheel_size = static_cast<size_t>(max_delay) + 1;
    if (wheel.size() < wheel_size) wheel.resize(wheel_size);
    for (auto& slot : wheel) slot.clear();

    cost = CostBreakdown{};
    executed = 0;
    arrived = 0;
    drops_per_color.assign(num_colors, 0);
#if RRS_OBS_LEVEL >= 1
    reconfigs_per_color.assign(num_colors, 0);
#endif
    if (opts.record_schedule) {
      schedule = Schedule(opts.num_resources, opts.mini_rounds_per_round);
      schedule_ptr = &schedule;
    } else {
      schedule_ptr = nullptr;
    }
    instruments.Rebind(opts.obs_scope, "engine");
  }

  // Appends `count` jobs with consecutive ids and a common deadline to color
  // c, registering the deadline in the expiry wheel.
  void AddRun(ColorId c, JobId first, Round deadline, uint32_t count) {
    if (count == 0) return;
    if (pending_n[c] == 0 && !in_nonidle_list[c]) {
      in_nonidle_list[c] = 1;
      nonidle_list.push_back(c);
    }
    rings[c].push_run(first, deadline, count);
    pending_n[c] += count;
    if (last_wheel_push[c] != deadline) {
      last_wheel_push[c] = deadline;
      wheel[static_cast<size_t>(deadline) % wheel.size()].push_back(c);
    }
  }

  // Removes nonidle-list entries whose color went idle. Amortized O(1) per
  // idle transition.
  void CompactNonidle() {
    size_t out = 0;
    for (size_t i = 0; i < nonidle_list.size(); ++i) {
      ColorId c = nonidle_list[i];
      if (pending_n[c] != 0) {
        nonidle_list[out++] = c;
      } else {
        in_nonidle_list[c] = 0;
      }
    }
    nonidle_list.resize(out);
  }
};

// `final` so internal calls through View& devirtualize; policies still see
// the ResourceView interface. The view lives as long as the engine and is
// re-pointed at the pending table each BeginRun (its storage may move when
// a larger tenant grows it).
class Engine::View final : public ResourceView {
 public:
  explicit View(SimState& state)
      : ResourceView(state.pending_n.data()), state_(state) {}

  void Rebind() { set_pending_table(state_.pending_n.data()); }

  void SetPhase(Round round, int mini) {
    round_ = round;
    mini_ = mini;
    compacted_ = false;
  }

  uint32_t num_resources() const final {
    return state_.options.num_resources;
  }

  ColorId color_of(ResourceId r) const final {
    RRS_DCHECK(r < state_.resource_color.size());
    return state_.resource_color[r];
  }

  void SetColor(ResourceId r, ColorId c) final {
    RRS_CHECK_LT(r, state_.resource_color.size());
    RRS_CHECK(c == kNoColor || c < state_.instance->num_colors())
        << "SetColor to unknown color " << c;
    if (state_.resource_color[r] == c) return;
    state_.resource_color[r] = c;
    ++state_.cost.reconfigurations;
#if RRS_OBS_LEVEL >= 1
    if (c != kNoColor) ++state_.reconfigs_per_color[c];
    if (state_.instruments.tracing()) {
      state_.instruments.EmitRecolor(round_, r);
    }
#endif
    if (state_.schedule_ptr != nullptr) {
      state_.schedule_ptr->AddReconfig(round_, mini_, r, c);
    }
  }

  Round earliest_deadline(ColorId c) const final {
    RRS_CHECK(!state_.rings[c].empty())
        << "earliest_deadline on idle color " << c;
    return state_.rings[c].front_deadline();
  }

  const std::vector<ColorId>& nonidle_colors() const final {
    if (!compacted_) {
      state_.CompactNonidle();
      compacted_ = true;
    }
    return state_.nonidle_list;
  }

 private:
  SimState& state_;
  Round round_ = 0;
  int mini_ = 0;
  mutable bool compacted_ = false;
};

Engine::Engine() = default;
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Engine::Engine(const Instance& instance, EngineOptions options) {
  Reset(instance, options);
}

void Engine::Reset(const Instance& instance, EngineOptions options) {
  RRS_CHECK(!running_) << "Engine::Reset during an open run";
  RRS_CHECK_GE(options.num_resources, 1u);
  RRS_CHECK_GE(options.mini_rounds_per_round, 1);
  RRS_CHECK_GE(options.cost_model.delta, 1u);
  own_source_.Bind(instance);
  external_source_ = nullptr;
  instance_ = &instance;
  horizon_ = instance.horizon();
  request_rounds_ = instance.num_request_rounds();
  options_ = options;
  if (state_ == nullptr) state_ = std::make_unique<SimState>();
}

void Engine::Reset(const Instance& instance) { Reset(instance, options_); }

void Engine::Reset(workload::ArrivalSource& source, EngineOptions options) {
  RRS_CHECK(!running_) << "Engine::Reset during an open run";
  RRS_CHECK_GE(options.num_resources, 1u);
  RRS_CHECK_GE(options.mini_rounds_per_round, 1);
  RRS_CHECK_GE(options.cost_model.delta, 1u);
  external_source_ = &source;
  instance_ = &source.shape();
  horizon_ = source.horizon();
  request_rounds_ = source.num_request_rounds();
  options_ = options;
  if (state_ == nullptr) state_ = std::make_unique<SimState>();
}

void Engine::Reset(workload::ArrivalSource& source) { Reset(source, options_); }

RunResult Engine::Run(SchedulerPolicy& policy) {
  RunResult result;
  BeginRun(policy);
  StepRounds(horizon_ + 1);
  FinishRun(result);
  return result;
}

void Engine::BeginRun(SchedulerPolicy& policy) {
  RRS_CHECK(instance_ != nullptr) << "BeginRun on an unbound engine session";
  RRS_CHECK(!running_) << "BeginRun while a run is open";
  src().Reset();
  state_->StartRun(*instance_, options_, src());
  if (view_ == nullptr) view_ = std::make_unique<View>(*state_);
  view_->Rebind();
  policy.Reset(*instance_, options_);
  policy_ = &policy;
  next_round_ = 0;
  running_ = true;
}

bool Engine::StepRounds(Round max_rounds) {
  RRS_CHECK(running_) << "StepRounds without BeginRun";
  RRS_CHECK_GE(max_rounds, 1);
  SimState& state = *state_;
  SchedulerPolicy& policy = *policy_;
  View& view = *view_;
  obs::RunInstruments& instruments = state.instruments;
  Schedule* const schedule_ptr = state.schedule_ptr;

  workload::ArrivalSource& source = src();
  const bool instance_fed = external_source_ == nullptr;
  const Round horizon = horizon_;
  if (next_round_ > horizon) return false;
  const uint32_t num_resources = options_.num_resources;
  const size_t wheel_size = state.wheel.size();
  // Overflow-safe "min(horizon, next + max - 1)".
  const Round last = (max_rounds - 1 >= horizon - next_round_)
                         ? horizon
                         : next_round_ + max_rounds - 1;

  for (Round k = next_round_; k <= last; ++k) {
    // Phase wall times are sampled (every round only when tracing); with no
    // scope attached this folds to a single dead branch per round.
    const bool obs_sampled = instruments.ShouldSample(k);
    uint64_t obs_t0 = obs_sampled ? obs::NowNs() : 0;

    // ---- Drop phase: jobs with deadline == k are dropped. ----
    auto& slot = state.wheel[static_cast<size_t>(k) % wheel_size];
    if (!slot.empty()) {
      for (const ColorId c : slot) {
        auto& ring = state.rings[c];
        uint32_t n = 0;
        const uint32_t sz = ring.size();
        while (n < sz && ring.deadline_at(n) == k) ++n;
        if (n == 0) continue;
        std::span<const JobId> jobs;
        if (ring.front_contiguous(n)) {
          jobs = std::span<const JobId>(ring.front_ptr(), n);
        } else {
          state.dropped_scratch.clear();
          for (uint32_t i = 0; i < n; ++i) {
            state.dropped_scratch.push_back(ring.job_at(i));
          }
          jobs = state.dropped_scratch;
        }
        state.cost.drops += n;
        state.cost.weighted_drops += n * instance_->drop_cost(c);
        state.drops_per_color[c] += n;
        policy.OnJobsDropped(k, c, n, jobs);
        ring.pop_n(n);
        state.pending_n[c] -= n;
      }
      slot.clear();
    }
    policy.AfterDropPhase(k);
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments.RecordPhase(obs::kPhaseDrop, k, obs_t0, t);
      obs_t0 = t;
    }

    // ---- Arrival phase: request k, pulled from the bound source. ----
    // NextRound is called for every round below the request horizon (even
    // all-idle ones) so the source cursor tracks the simulated round. Runs
    // arrive grouped per color for the policy callback; ids are assigned
    // consecutively in emission order, matching the materialized JobIds.
    //
    // Instance-fed sessions take the inline loop over the job vector
    // instead of InstanceSource::NextRound: same coalescing, same ids, but
    // no per-round run-vector rebuild or virtual dispatch — the light-
    // policy cells of bench_baseline are arrival-bound and pay ~15% for
    // the indirection. The own-source cursor is re-synced once per
    // StepRounds call below, which is all snapshots observe.
    if (k < request_rounds_) {
      if (instance_fed) {
        auto arrivals = instance_->jobs_in_round(k);
        size_t i = 0;
        while (i < arrivals.size()) {
          const ColorId c = arrivals[i].color;
          const Round deadline = k + instance_->delay_bound(c);
          RRS_CHECK_LE(deadline, horizon);
          size_t j = i;
          while (j < arrivals.size() && arrivals[j].color == c) ++j;
          state.AddRun(c, static_cast<JobId>(state.arrived), deadline,
                       static_cast<uint32_t>(j - i));
          state.arrived += j - i;
          policy.OnArrivals(k, c, j - i);
          i = j;
        }
      } else {
        for (const auto& [c, count] : source.NextRound()) {
          if (count == 0) continue;
          const Round deadline = k + instance_->delay_bound(c);
          RRS_CHECK_LE(deadline, horizon);
          state.AddRun(c, static_cast<JobId>(state.arrived), deadline,
                       static_cast<uint32_t>(count));
          state.arrived += count;
          policy.OnArrivals(k, c, count);
        }
      }
    }
    policy.AfterArrivalPhase(k);
    if (obs_sampled) {
      const uint64_t t = obs::NowNs();
      instruments.RecordPhase(obs::kPhaseArrival, k, obs_t0, t);
      obs_t0 = t;
    }

    // ---- Mini-rounds: reconfiguration + execution phases. ----
    for (int mini = 0; mini < options_.mini_rounds_per_round; ++mini) {
      view.SetPhase(k, mini);
      policy.Reconfigure(k, mini, view);
      if (obs_sampled) {
        const uint64_t t = obs::NowNs();
        instruments.RecordPhase(obs::kPhaseReconfig, k, obs_t0, t);
        obs_t0 = t;
      }

      if (schedule_ptr == nullptr) {
        // Batched execution: count resources per color once, then bulk-
        // advance each color's ring. Equivalent to the per-resource pops
        // below — each of a color's R resources executes one of its P
        // earliest pending jobs, min(R, P) in total — but costs one pass
        // over resource_color plus one touch per active color.
        auto& count = state.exec_count;
        auto& touched = state.exec_touched;
        touched.clear();
        for (ResourceId r = 0; r < num_resources; ++r) {
          const ColorId c = state.resource_color[r];
          if (c == kNoColor) continue;
          if (count[c]++ == 0) touched.push_back(c);
        }
        for (ColorId c : touched) {
          const uint64_t take =
              std::min<uint64_t>(count[c], state.pending_n[c]);
          count[c] = 0;
          state.rings[c].pop_n(static_cast<uint32_t>(take));
          state.pending_n[c] -= take;
          state.executed += take;
        }
      } else {
        // Recording path: per-resource pops, so each execution is attributed
        // to its resource in resource order (the validator's expectation).
        for (ResourceId r = 0; r < num_resources; ++r) {
          const ColorId c = state.resource_color[r];
          if (c == kNoColor) continue;
          auto& ring = state.rings[c];
          if (ring.empty()) continue;
          const JobId job = ring.front_job();
          ring.pop_n(1);
          --state.pending_n[c];
          ++state.executed;
          schedule_ptr->AddExecution(k, mini, r, job);
        }
      }
      if (obs_sampled) {
        const uint64_t t = obs::NowNs();
        instruments.RecordPhase(obs::kPhaseExecute, k, obs_t0, t);
        obs_t0 = t;
      }
    }
  }

  next_round_ = last + 1;
  // Keep the own-source cursor at the simulated round so snapshot-time
  // invariants and SeekRound-based restores see a consistent source; O(1)
  // for an InstanceSource.
  if (instance_fed) source.SeekRound(next_round_);
  return next_round_ <= horizon;
}

void Engine::FinishRun(RunResult& result) {
  RRS_CHECK(running_) << "FinishRun without BeginRun";
  RRS_CHECK_GT(next_round_, horizon_) << "FinishRun before the horizon";
  SimState& state = *state_;

  result.cost = state.cost;
  result.executed = state.executed;
  result.arrived = state.arrived;
  result.rounds_simulated = horizon_ + 1;
  result.drops_per_color = state.drops_per_color;

  // Every job must have been executed or dropped by the horizon.
  RRS_CHECK_EQ(result.executed + result.cost.drops, result.arrived)
      << "engine accounting mismatch";

#if RRS_OBS_LEVEL >= 1
  internal::FinalizeRunTelemetry(*policy_, state.instruments,
                                 state.reconfigs_per_color, result);
#else
  internal::FinalizeRunTelemetry(*policy_, state.instruments, {}, result);
#endif
  if (state.schedule_ptr != nullptr) {
    result.schedule = std::move(state.schedule);
    state.schedule_ptr = nullptr;
  } else {
    result.schedule.reset();
  }
  policy_ = nullptr;
  running_ = false;
}

const CostBreakdown& Engine::state_cost() const {
  RRS_CHECK(running_) << "run_cost outside an open run";
  return state_->cost;
}

uint64_t Engine::state_executed() const {
  RRS_CHECK(running_) << "run_executed outside an open run";
  return state_->executed;
}

void Engine::SnapshotRun(snapshot::Writer& w) const {
  RRS_CHECK(running_) << "SnapshotRun without an open run";
  const SimState& state = *state_;
  RRS_CHECK(state.schedule_ptr == nullptr)
      << "recording runs cannot be snapshotted";

  w.BeginSection(snapshot::kTagEngine);
  // Shape words: restore must target an equal-shaped session.
  w.PutU64(instance_->num_colors());
  w.PutU32(options_.num_resources);
  w.PutI64(next_round_);
  w.PutVec(state.resource_color);
  for (size_t c = 0; c < instance_->num_colors(); ++c) {
    state.rings[c].SaveState(w);
  }
  w.PutVec(state.pending_n);
  w.PutVec(state.nonidle_list);
  w.PutVec(state.in_nonidle_list);
  // The wheel at its exact current size: slot membership of round k is
  // wheel[k % W], so the restored session must keep the same W even if its
  // own arena had grown a larger wheel for an earlier tenant.
  w.PutU64(state.wheel.size());
  for (const auto& slot : state.wheel) w.PutVec(slot);
  w.PutVec(state.last_wheel_push);
  w.PutU64(state.cost.reconfigurations);
  w.PutU64(state.cost.drops);
  w.PutU64(state.cost.weighted_drops);
  w.PutU64(state.executed);
  w.PutVec(state.drops_per_color);
#if RRS_OBS_LEVEL >= 1
  w.PutBool(true);
  w.PutVec(state.reconfigs_per_color);
#else
  w.PutBool(false);
#endif
  w.EndSection();

  policy_->SaveState(w);
}

void Engine::RestoreRun(SchedulerPolicy& policy, snapshot::Reader& r,
                        snapshot::Reader* source_state) {
  // BeginRun gives a fresh arena bound to this session's instance and a
  // Reset policy; the snapshot then overwrites the mutable state.
  BeginRun(policy);
  SimState& state = *state_;

  r.BeginSection(snapshot::kTagEngine);
  RRS_CHECK_EQ(r.GetU64(), instance_->num_colors())
      << "snapshot restored against a different color universe";
  RRS_CHECK_EQ(r.GetU32(), options_.num_resources)
      << "snapshot restored with a different resource count";
  next_round_ = r.GetI64();
  RRS_CHECK_LE(next_round_, horizon_ + 1);
  r.GetVec(state.resource_color);
  RRS_CHECK_EQ(state.resource_color.size(), options_.num_resources);
  for (size_t c = 0; c < instance_->num_colors(); ++c) {
    state.rings[c].LoadState(r);
    state.pending_n[c] = state.rings[c].size();
  }
  RRS_CHECK_EQ(r.GetU64(), state.pending_n.size());
  for (size_t c = 0; c < state.pending_n.size(); ++c) {
    RRS_CHECK_EQ(r.GetU64(), state.pending_n[c])
        << "snapshot pending count disagrees with ring contents for color "
        << c;
  }
  r.GetVec(state.nonidle_list);
  r.GetVec(state.in_nonidle_list);
  const size_t wheel_size = r.GetU64();
  RRS_CHECK_GE(wheel_size, 1u);
  state.wheel.resize(wheel_size);
  for (auto& slot : state.wheel) r.GetVec(slot);
  r.GetVec(state.last_wheel_push);
  state.cost.reconfigurations = r.GetU64();
  state.cost.drops = r.GetU64();
  state.cost.weighted_drops = r.GetU64();
  state.executed = r.GetU64();
  r.GetVec(state.drops_per_color);
  const bool obs_fields = r.GetBool();
#if RRS_OBS_LEVEL >= 1
  RRS_CHECK(obs_fields)
      << "snapshot from an RRS_OBS_LEVEL=0 build lacks telemetry state";
  r.GetVec(state.reconfigs_per_color);
#else
  RRS_CHECK(!obs_fields)
      << "snapshot carries telemetry state this RRS_OBS_LEVEL=0 build drops";
#endif
  r.EndSection();

  // The snapshot has no arrival counter (its byte format predates streaming
  // sources), but every arrived job is executed, dropped, or pending — and
  // ids are dense — so the count is derivable.
  uint64_t pending_total = 0;
  for (const uint64_t n : state.pending_n) pending_total += n;
  state.arrived = state.executed + state.cost.drops + pending_total;

  policy.LoadState(r);

  // Reposition the source at the snapshot round: from its own saved words
  // when provided (dist migration), else by deterministic replay.
  if (source_state != nullptr) {
    src().LoadState(*source_state);
    RRS_CHECK_EQ(src().cursor(), std::min(next_round_, request_rounds_))
        << "restored source state disagrees with the engine round";
  } else {
    src().SeekRound(next_round_);
  }
}

void Engine::AbortRun() {
  RRS_CHECK(running_) << "AbortRun without an open run";
  state_->schedule_ptr = nullptr;
  policy_ = nullptr;
  running_ = false;
}

RunResult RunPolicy(const Instance& instance, SchedulerPolicy& policy,
                    const EngineOptions& options) {
  Engine engine(instance, options);
  return engine.Run(policy);
}

}  // namespace rrs
