#include "core/engine.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

namespace {

// Mutable per-run simulation state, shared between the phase loop and the
// policy-facing view.
struct SimState {
  explicit SimState(const Instance& instance, const EngineOptions& options)
      : instance(instance),
        resource_color(options.num_resources, kNoColor),
        pending(instance.num_colors()),
        in_nonidle_list(instance.num_colors(), 0),
        expiry_buckets(static_cast<size_t>(instance.horizon()) + 1),
        last_bucket_round(instance.num_colors(), -1) {}

  const Instance& instance;
  std::vector<ColorId> resource_color;
  std::vector<std::deque<JobId>> pending;  // FIFO == earliest-deadline order
  std::vector<ColorId> nonidle_list;       // lazily compacted
  std::vector<uint8_t> in_nonidle_list;
  std::vector<std::vector<ColorId>> expiry_buckets;  // round -> colors
  std::vector<Round> last_bucket_round;  // dedupe bucket pushes per color

  uint64_t pending_count(ColorId c) const { return pending[c].size(); }

  void AddPending(ColorId c, JobId job) {
    if (pending[c].empty() && !in_nonidle_list[c]) {
      in_nonidle_list[c] = 1;
      nonidle_list.push_back(c);
    }
    pending[c].push_back(job);
  }

  // Removes nonidle-list entries whose color went idle. Amortized O(1) per
  // idle transition.
  void CompactNonidle() {
    size_t out = 0;
    for (size_t i = 0; i < nonidle_list.size(); ++i) {
      ColorId c = nonidle_list[i];
      if (!pending[c].empty()) {
        nonidle_list[out++] = c;
      } else {
        in_nonidle_list[c] = 0;
      }
    }
    nonidle_list.resize(out);
  }
};

}  // namespace

class Engine::View : public ResourceView {
 public:
  View(SimState& state, const EngineOptions& options, CostBreakdown& cost,
       Schedule* schedule)
      : state_(state), options_(options), cost_(cost), schedule_(schedule) {}

  void SetPhase(Round round, int mini) {
    round_ = round;
    mini_ = mini;
    compacted_ = false;
  }

  uint32_t num_resources() const override { return options_.num_resources; }

  ColorId color_of(ResourceId r) const override {
    RRS_DCHECK(r < state_.resource_color.size());
    return state_.resource_color[r];
  }

  void SetColor(ResourceId r, ColorId c) override {
    RRS_CHECK_LT(r, state_.resource_color.size());
    RRS_CHECK(c == kNoColor || c < state_.instance.num_colors())
        << "SetColor to unknown color " << c;
    if (state_.resource_color[r] == c) return;
    state_.resource_color[r] = c;
    ++cost_.reconfigurations;
    if (schedule_ != nullptr) {
      schedule_->AddReconfig(round_, mini_, r, c);
    }
  }

  uint64_t pending_count(ColorId c) const override {
    RRS_DCHECK(c < state_.pending.size());
    return state_.pending[c].size();
  }

  Round earliest_deadline(ColorId c) const override {
    RRS_CHECK(!state_.pending[c].empty())
        << "earliest_deadline on idle color " << c;
    return state_.instance.deadline(state_.pending[c].front());
  }

  const std::vector<ColorId>& nonidle_colors() const override {
    if (!compacted_) {
      state_.CompactNonidle();
      compacted_ = true;
    }
    return state_.nonidle_list;
  }

 private:
  SimState& state_;
  const EngineOptions& options_;
  CostBreakdown& cost_;
  Schedule* schedule_;
  Round round_ = 0;
  int mini_ = 0;
  mutable bool compacted_ = false;
};

Engine::Engine(const Instance& instance, EngineOptions options)
    : instance_(instance), options_(options) {
  RRS_CHECK_GE(options_.num_resources, 1u);
  RRS_CHECK_GE(options_.mini_rounds_per_round, 1);
  RRS_CHECK_GE(options_.cost_model.delta, 1u);
}

RunResult Engine::Run(SchedulerPolicy& policy) {
  RunResult result;
  result.drops_per_color.assign(instance_.num_colors(), 0);
  result.arrived = instance_.num_jobs();

  Schedule schedule(options_.num_resources, options_.mini_rounds_per_round);
  Schedule* schedule_ptr = options_.record_schedule ? &schedule : nullptr;

  SimState state(instance_, options_);
  View view(state, options_, result.cost, schedule_ptr);

  policy.Reset(instance_, options_);

  std::vector<JobId> dropped_scratch;
  const Round horizon = instance_.horizon();
  for (Round k = 0; k <= horizon; ++k) {
    // ---- Drop phase: jobs with deadline == k are dropped. ----
    if (k < static_cast<Round>(state.expiry_buckets.size())) {
      for (ColorId c : state.expiry_buckets[static_cast<size_t>(k)]) {
        dropped_scratch.clear();
        auto& queue = state.pending[c];
        while (!queue.empty() && instance_.deadline(queue.front()) == k) {
          dropped_scratch.push_back(queue.front());
          queue.pop_front();
        }
        if (!dropped_scratch.empty()) {
          result.cost.drops += dropped_scratch.size();
          result.cost.weighted_drops +=
              dropped_scratch.size() * instance_.drop_cost(c);
          result.drops_per_color[c] += dropped_scratch.size();
          policy.OnJobsDropped(k, c, dropped_scratch.size(), dropped_scratch);
        }
      }
    }
    policy.AfterDropPhase(k);

    // ---- Arrival phase: request k. ----
    auto arrivals = instance_.jobs_in_round(k);
    if (!arrivals.empty()) {
      JobId id = instance_.first_job_in_round(k);
      // Jobs within a round are grouped per color for the policy callback;
      // runs of equal colors are contiguous after a single pass because the
      // builder keeps insertion order and generators emit per-color runs.
      // Handle arbitrary interleavings anyway.
      size_t i = 0;
      while (i < arrivals.size()) {
        ColorId c = arrivals[i].color;
        uint64_t count = 0;
        size_t j = i;
        while (j < arrivals.size() && arrivals[j].color == c) {
          state.AddPending(c, id + static_cast<JobId>(j));
          ++count;
          ++j;
        }
        // Register expiry bucket once per (color, round).
        Round deadline = k + instance_.delay_bound(c);
        RRS_CHECK_LE(deadline, horizon);
        if (state.last_bucket_round[c] != deadline) {
          state.last_bucket_round[c] = deadline;
          state.expiry_buckets[static_cast<size_t>(deadline)].push_back(c);
        }
        policy.OnArrivals(k, c, count);
        i = j;
      }
    }
    policy.AfterArrivalPhase(k);

    // ---- Mini-rounds: reconfiguration + execution phases. ----
    for (int mini = 0; mini < options_.mini_rounds_per_round; ++mini) {
      view.SetPhase(k, mini);
      policy.Reconfigure(k, mini, view);

      for (ResourceId r = 0; r < options_.num_resources; ++r) {
        ColorId c = state.resource_color[r];
        if (c == kNoColor) continue;
        auto& queue = state.pending[c];
        if (queue.empty()) continue;
        JobId job = queue.front();
        queue.pop_front();
        ++result.executed;
        if (schedule_ptr != nullptr) {
          schedule_ptr->AddExecution(k, mini, r, job);
        }
      }
    }
  }

  // Every job must have been executed or dropped by the horizon.
  RRS_CHECK_EQ(result.executed + result.cost.drops, result.arrived)
      << "engine accounting mismatch";

  policy.CollectCounters(result.policy_counters);
  result.rounds_simulated = horizon + 1;
  if (schedule_ptr != nullptr) result.schedule = std::move(schedule);
  return result;
}

RunResult RunPolicy(const Instance& instance, SchedulerPolicy& policy,
                    const EngineOptions& options) {
  Engine engine(instance, options);
  return engine.Run(policy);
}

}  // namespace rrs
