// Small string helpers shared by trace IO, flags, and table rendering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rrs {

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Strict integer / double parsing: entire (trimmed) string must parse,
// otherwise nullopt.
std::optional<int64_t> ParseInt(std::string_view s);
std::optional<uint64_t> ParseUint(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Fixed-precision double formatting (avoids locale-dependent streams).
std::string FormatDouble(double v, int precision = 3);

// Human-readable count, e.g. 12345678 -> "12.3M".
std::string HumanCount(double v);

}  // namespace rrs
