#include "util/flags.h"

#include <sstream>

#include "util/check.h"
#include "util/str.h"

namespace rrs {

FlagSet::Flag& FlagSet::Define(const std::string& name, Type type,
                               const std::string& help) {
  RRS_CHECK(!flags_.count(name)) << "duplicate flag --" << name;
  Flag& f = flags_[name];
  f.type = type;
  f.help = help;
  return f;
}

FlagSet& FlagSet::DefineInt(const std::string& name, int64_t default_value,
                            const std::string& help) {
  Flag& f = Define(name, Type::kInt, help);
  f.int_value = default_value;
  f.default_repr = std::to_string(default_value);
  return *this;
}

FlagSet& FlagSet::DefineDouble(const std::string& name, double default_value,
                               const std::string& help) {
  Flag& f = Define(name, Type::kDouble, help);
  f.double_value = default_value;
  f.default_repr = FormatDouble(default_value, 6);
  return *this;
}

FlagSet& FlagSet::DefineBool(const std::string& name, bool default_value,
                             const std::string& help) {
  Flag& f = Define(name, Type::kBool, help);
  f.bool_value = default_value;
  f.default_repr = default_value ? "true" : "false";
  return *this;
}

FlagSet& FlagSet::DefineString(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  Flag& f = Define(name, Type::kString, help);
  f.string_value = default_value;
  f.default_repr = default_value;
  return *this;
}

bool FlagSet::SetFromString(Flag& flag, const std::string& name,
                            const std::string& value) {
  switch (flag.type) {
    case Type::kInt: {
      auto v = ParseInt(value);
      if (!v) {
        error_ = "flag --" + name + ": expected integer, got '" + value + "'";
        return false;
      }
      flag.int_value = *v;
      return true;
    }
    case Type::kDouble: {
      auto v = ParseDouble(value);
      if (!v) {
        error_ = "flag --" + name + ": expected number, got '" + value + "'";
        return false;
      }
      flag.double_value = *v;
      return true;
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        error_ = "flag --" + name + ": expected bool, got '" + value + "'";
        return false;
      }
      return true;
    }
    case Type::kString:
      flag.string_value = value;
      return true;
  }
  return false;
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    auto it = flags_.find(name);
    if (it == flags_.end() && StartsWith(name, "no-")) {
      // --no-foo for a bool flag foo.
      auto base = flags_.find(name.substr(3));
      if (base != flags_.end() && base->second.type == Type::kBool &&
          !has_value) {
        base->second.bool_value = false;
        continue;
      }
    }
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + ": missing value";
        return false;
      }
      value = argv[++i];
    }
    if (!SetFromString(flag, name, value)) return false;
  }
  return true;
}

const FlagSet::Flag& FlagSet::GetChecked(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  RRS_CHECK(it != flags_.end()) << "undefined flag --" << name;
  RRS_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return GetChecked(name, Type::kInt).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return GetChecked(name, Type::kDouble).double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return GetChecked(name, Type::kBool).bool_value;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).string_value;
}

std::string FlagSet::Help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_repr << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace rrs
