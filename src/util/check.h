// Lightweight runtime-check macros used throughout rrsched.
//
// RRS_CHECK(cond)        - always-on invariant check; aborts with location and
//                          an optional streamed message on failure.
// RRS_CHECK_OP(a, op, b) - comparison check that prints both operands.
// RRS_DCHECK(cond)       - debug-only check (compiled out in NDEBUG builds).
//
// These are used for *programming errors* (broken invariants, API misuse).
// Recoverable conditions use error returns or exceptions instead.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace rrs {
namespace internal {

// Terminates the process after printing a formatted check-failure message.
// Defined out of line so the fast path of a passing check stays small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Accumulates a streamed failure message and fires CheckFailed when
// destroyed. Used by the RRS_CHECK macro family.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rrs

#define RRS_CHECK(cond)                                               \
  if (cond) {                                                         \
  } else                                                              \
    ::rrs::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define RRS_CHECK_OP(a, op, b)                                        \
  if ((a)op(b)) {                                                     \
  } else                                                              \
    ::rrs::internal::CheckMessageBuilder(__FILE__, __LINE__,          \
                                         #a " " #op " " #b)           \
        << "(" << (a) << " vs " << (b) << ") "

#define RRS_CHECK_EQ(a, b) RRS_CHECK_OP(a, ==, b)
#define RRS_CHECK_NE(a, b) RRS_CHECK_OP(a, !=, b)
#define RRS_CHECK_LT(a, b) RRS_CHECK_OP(a, <, b)
#define RRS_CHECK_LE(a, b) RRS_CHECK_OP(a, <=, b)
#define RRS_CHECK_GT(a, b) RRS_CHECK_OP(a, >, b)
#define RRS_CHECK_GE(a, b) RRS_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define RRS_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::rrs::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define RRS_DCHECK(cond) RRS_CHECK(cond)
#endif
