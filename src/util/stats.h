// Streaming summary statistics and histograms for experiment reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rrs {

// Welford's online algorithm: numerically stable running mean/variance,
// plus min/max. O(1) per observation, no sample storage.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  // Half-width of the ~95% normal-approximation confidence interval on the
  // mean (1.96 * stderr); 0 for fewer than two samples.
  double ci95_halfwidth() const;

  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Stores all samples; supports exact quantiles. Used where sample counts are
// modest (per-experiment distributions), not in hot loops.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  // Exact quantile by linear interpolation between order statistics;
  // q in [0, 1]. Requires at least one sample.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width linear histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t total() const { return total_; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t bucket_count() const { return counts_.size(); }
  size_t bucket(size_t i) const { return counts_[i]; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const { return bucket_lo(i + 1); }

  // Renders an ASCII bar chart, one bucket per line, bars scaled to `width`.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace rrs
