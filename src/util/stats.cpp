#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace rrs {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  RRS_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  RRS_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) const {
  RRS_CHECK(!samples_.empty());
  RRS_CHECK_GE(q, 0.0);
  RRS_CHECK_LE(q, 1.0);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t i = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1 - frac) + samples_[i + 1] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  RRS_CHECK_LT(lo, hi);
  RRS_CHECK_GT(buckets, 0u);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    size_t i = static_cast<size_t>((x - lo_) / bucket_width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // rounding guard
    ++counts_[i];
  }
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

std::string Histogram::ToAscii(size_t width) const {
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t bar = counts_[i] * width / peak;
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_) os << "underflow " << underflow_ << "\n";
  if (overflow_) os << "overflow " << overflow_ << "\n";
  return os.str();
}

}  // namespace rrs
