#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace rrs {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[rrsched] CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace rrs
