#include "util/sha256.h"

#include <algorithm>
#include <cstring>

namespace rrs {
namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t RotR(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::Update(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  length_ += len;
  if (buffered_ > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (len >= sizeof(buffer_)) {
    Compress(bytes);
    bytes += sizeof(buffer_);
    len -= sizeof(buffer_);
  }
  if (len > 0) {
    std::memcpy(buffer_, bytes, len);
    buffered_ = len;
  }
}

void Sha256::UpdateU64(uint64_t v) {
  uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<uint8_t>(v >> (8 * i));
  Update(le, sizeof(le));
}

std::array<uint8_t, 32> Sha256::Finish() {
  const uint64_t bit_length = length_ * 8;
  const uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t be[8];
  for (int i = 0; i < 8; ++i) {
    be[i] = static_cast<uint8_t>(bit_length >> (8 * (7 - i)));
  }
  // Bypass length_ accounting for the length field itself (already final).
  std::memcpy(buffer_ + buffered_, be, sizeof(be));
  Compress(buffer_);
  buffered_ = 0;

  std::array<uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

std::string Sha256::FinishHex() {
  const std::array<uint8_t, 32> digest = Finish();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(64, '0');
  for (size_t i = 0; i < digest.size(); ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0xf];
  }
  return out;
}

std::string Sha256Hex(std::string_view data) {
  Sha256 hash;
  hash.Update(data);
  return hash.FinishHex();
}

}  // namespace rrs
