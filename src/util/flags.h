// Minimal command-line flag parser used by the examples and bench harness
// front-ends. Supports --name=value, --name value, and boolean --name /
// --no-name forms. Unknown flags are reported as errors so typos fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rrs {

class FlagSet {
 public:
  // Registers flags with defaults and help strings. Returns *this to allow
  // chaining during setup.
  FlagSet& DefineInt(const std::string& name, int64_t default_value,
                     const std::string& help);
  FlagSet& DefineDouble(const std::string& name, double default_value,
                        const std::string& help);
  FlagSet& DefineBool(const std::string& name, bool default_value,
                      const std::string& help);
  FlagSet& DefineString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);

  // Parses argv (skipping argv[0]). Non-flag arguments are collected into
  // positional(). Returns false and fills error() on malformed or unknown
  // flags. "--help" sets help_requested().
  bool Parse(int argc, const char* const* argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  bool help_requested() const { return help_requested_; }

  // Renders a usage/help string listing all flags with defaults.
  std::string Help(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
    std::string default_repr;
  };

  Flag& Define(const std::string& name, Type type, const std::string& help);
  bool SetFromString(Flag& flag, const std::string& name,
                     const std::string& value);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace rrs
