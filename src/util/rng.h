// Deterministic pseudo-random number generation for rrsched.
//
// All randomness in workload generation, experiments, and property tests
// flows through Rng (xoshiro256** seeded via SplitMix64), so every run is
// reproducible from a 64-bit seed. Rng satisfies the C++ UniformRandomBitGenerator
// requirements and can therefore be used with <random> distributions, but the
// distributions needed by the workload generators (uniform, Bernoulli,
// Poisson, exponential, Zipf, geometric) are provided here directly with
// stable cross-platform behavior (std:: distributions are not guaranteed to
// produce identical streams across standard libraries).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace rrs {

// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  // Raw 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  // Uniform integer in [0, bound), bound > 0. Uses Lemire's nearly-divisionless
  // rejection method for unbiased results.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  // product method for small means and PTRS-like normal approximation with
  // rejection fallback for large means; exact enough for workload synthesis.
  uint64_t Poisson(double mean);

  // Exponential with the given rate (> 0).
  double Exponential(double rate);

  // Geometric number of failures before first success, success prob p in (0,1].
  uint64_t Geometric(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; useful for giving each parallel
  // sweep task its own deterministic stream.
  Rng Fork();

  // Raw generator state, for checkpoint/restore (snapshot/codec.h). A
  // restored Rng continues the exact stream of the saved one, so a restored
  // tenant replays the identical arrival future.
  std::array<uint64_t, 4> SaveState() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void LoadState(const std::array<uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  uint64_t s_[4];
};

// Zipf(s, n) sampler over {0, 1, ..., n-1} with exponent s >= 0 (s = 0 is
// uniform). Precomputes the CDF once; sampling is O(log n) via binary search.
// Used to model skewed color popularity in synthetic workloads.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double exponent);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  // Probability mass of rank i (for tests).
  double Pmf(size_t i) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace rrs
