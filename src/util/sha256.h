// Minimal SHA-256 (FIPS 180-4) for content-addressed test artifacts.
//
// Used by the golden-trace regression suite to fingerprint per-round
// execution timelines: a 64-hex-character digest per (scenario, policy)
// pair is stable across platforms and standard libraries, unlike hashes
// built on std:: primitives. This is an integrity fingerprint for test
// artifacts, not an authentication primitive.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace rrs {

class Sha256 {
 public:
  Sha256() { Reset(); }

  // Restarts the hash (one object can fingerprint a series of inputs).
  void Reset();

  void Update(const void* data, size_t len);
  void Update(std::span<const uint8_t> bytes) {
    Update(bytes.data(), bytes.size());
  }
  void Update(std::string_view text) { Update(text.data(), text.size()); }

  // Appends one little-endian 64-bit word (the natural unit of the repo's
  // timelines and snapshot streams).
  void UpdateU64(uint64_t v);

  // Finalizes and returns the 32-byte digest. The object must be Reset()
  // before further Update calls.
  std::array<uint8_t, 32> Finish();

  // Finalizes and returns the digest as 64 lowercase hex characters.
  std::string FinishHex();

 private:
  void Compress(const uint8_t block[64]);

  uint32_t h_[8];
  uint64_t length_ = 0;  // total bytes absorbed
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

// One-shot convenience.
std::string Sha256Hex(std::string_view data);

}  // namespace rrs
