// Aligned ASCII table and CSV rendering for experiment output. Every bench
// binary prints its paper-reproduction table through this class so the
// formats stay consistent and machine-extractable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rrs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row construction. AddRow starts a new row; Cell variants append to it.
  Table& AddRow();
  Table& Cell(const std::string& value);
  Table& Cell(int64_t value);
  Table& Cell(uint64_t value);
  Table& Cell(double value, int precision = 3);

  // Convenience: adds a full row at once.
  Table& Row(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return headers_.size(); }
  const std::string& At(size_t row, size_t col) const;

  // Renders an aligned, pipe-separated ASCII table with a header rule.
  std::string ToAscii() const;

  // Renders RFC-4180-ish CSV (fields containing comma/quote/newline quoted).
  std::string ToCsv() const;

  // Renders a JSON array of row objects keyed by header; cells that parse as
  // numbers are emitted as numbers, everything else as strings. For
  // machine-readable experiment exports.
  std::string ToJson() const;

  // Writes CSV to a file path; returns false on IO failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rrs
