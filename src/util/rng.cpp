#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace rrs {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // An all-zero state is the one fixed point of xoshiro; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RRS_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RRS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Poisson(double mean) {
  RRS_CHECK_GE(mean, 0.0);
  if (mean == 0) return 0;
  if (mean < 30) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double prod = UniformDouble();
    uint64_t count = 0;
    while (prod > limit) {
      prod *= UniformDouble();
      ++count;
    }
    return count;
  }
  // For large means, split mean = m1 + m2 recursively so each piece stays in
  // the numerically stable range of the product method. Poisson(a + b) is the
  // sum of independent Poisson(a) and Poisson(b).
  double half = mean / 2;
  return Poisson(half) + Poisson(mean - half);
}

double Rng::Exponential(double rate) {
  RRS_CHECK_GT(rate, 0.0);
  // -log(1 - U) avoids log(0) since UniformDouble() < 1.
  return -std::log1p(-UniformDouble()) / rate;
}

uint64_t Rng::Geometric(double p) {
  RRS_CHECK_GT(p, 0.0);
  RRS_CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  double u = UniformDouble();
  return static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

Rng Rng::Fork() {
  // Jump-free forking: derive a child seed from two outputs. Streams are
  // statistically independent for experiment purposes.
  uint64_t a = Next();
  uint64_t b = Next();
  return Rng(a ^ Rotl(b, 29) ^ 0x9e3779b97f4a7c15ULL);
}

ZipfDistribution::ZipfDistribution(size_t n, double exponent)
    : exponent_(exponent) {
  RRS_CHECK_GT(n, 0u);
  RRS_CHECK_GE(exponent, 0.0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(size_t i) const {
  RRS_CHECK_LT(i, cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace rrs
