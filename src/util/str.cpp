#include "util/str.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rrs {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<uint64_t> ParseUint(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s[0] == '-') return std::nullopt;
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  double a = std::fabs(v);
  if (a >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (a >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (a >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  char buf[64];
  if (*suffix) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace rrs
