#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/str.h"

namespace rrs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RRS_CHECK(!headers_.empty());
}

Table& Table::AddRow() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::Cell(const std::string& value) {
  RRS_CHECK(!rows_.empty()) << "Cell() before AddRow()";
  RRS_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(int64_t value) { return Cell(std::to_string(value)); }
Table& Table::Cell(uint64_t value) { return Cell(std::to_string(value)); }

Table& Table::Cell(double value, int precision) {
  return Cell(FormatDouble(value, precision));
}

Table& Table::Row(std::vector<std::string> cells) {
  RRS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

const std::string& Table::At(size_t row, size_t col) const {
  RRS_CHECK_LT(row, rows_.size());
  RRS_CHECK_LT(col, rows_[row].size());
  return rows_[row][col];
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells,
                        std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };
  std::ostringstream os;
  render_row(headers_, os);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) render_row(row, os);
  return os.str();
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ",";
    os << CsvEscape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void JsonEscapeTo(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Table::ToJson() const {
  std::ostringstream os;
  os << "[";
  for (size_t row = 0; row < rows_.size(); ++row) {
    if (row) os << ",";
    os << "\n  {";
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      JsonEscapeTo(headers_[c], os);
      os << ": ";
      const std::string& value = c < rows_[row].size() ? rows_[row][c]
                                                       : std::string();
      // Numbers pass through unquoted; everything else is a string.
      if (auto i = ParseInt(value)) {
        os << *i;
      } else if (auto d = ParseDouble(value)) {
        os << FormatDouble(*d, 6);
      } else {
        JsonEscapeTo(value, os);
      }
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

}  // namespace rrs
