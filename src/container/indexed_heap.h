// IndexedHeap: a d-ary min-heap over dense integer keys [0, capacity) with
// O(log n) push/pop and O(log n) Update (decrease or increase priority).
//
// The schedulers keep one heap entry per color keyed by ranking tuples that
// change every round (deadline updates, idleness flips), so decrease/increase
// key must be first-class. Priorities are compared with a caller-supplied
// strict-weak-order Less; ties must be broken inside the priority type
// itself (the paper's "consistent order of colors" is the final tiebreak in
// all ranking tuples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/check.h"

namespace rrs {

template <typename Priority, typename Less = std::less<Priority>, int Arity = 4>
class IndexedHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  using key_type = uint32_t;
  static constexpr size_t kNotInHeap = static_cast<size_t>(-1);

  explicit IndexedHeap(size_t capacity, Less less = Less())
      : less_(std::move(less)), position_(capacity, kNotInHeap) {
    priority_.resize(capacity);
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  size_t capacity() const { return position_.size(); }

  bool Contains(key_type key) const {
    RRS_DCHECK(key < position_.size());
    return position_[key] != kNotInHeap;
  }

  const Priority& PriorityOf(key_type key) const {
    RRS_DCHECK(Contains(key));
    return priority_[key];
  }

  // Inserts key with the given priority. Key must not already be present.
  void Push(key_type key, Priority priority) {
    RRS_CHECK(!Contains(key)) << "key " << key << " already in heap";
    priority_[key] = std::move(priority);
    position_[key] = heap_.size();
    heap_.push_back(key);
    SiftUp(heap_.size() - 1);
  }

  // Updates the priority of a present key (either direction).
  void Update(key_type key, Priority priority) {
    RRS_CHECK(Contains(key)) << "key " << key << " not in heap";
    bool decreased = less_(priority, priority_[key]);
    priority_[key] = std::move(priority);
    size_t pos = position_[key];
    if (decreased) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  // Push if absent, Update otherwise.
  void PushOrUpdate(key_type key, Priority priority) {
    if (Contains(key)) {
      Update(key, std::move(priority));
    } else {
      Push(key, std::move(priority));
    }
  }

  key_type Top() const {
    RRS_CHECK(!empty());
    return heap_[0];
  }

  const Priority& TopPriority() const { return priority_[Top()]; }

  key_type Pop() {
    key_type top = Top();
    RemoveAt(0);
    return top;
  }

  // Removes an arbitrary present key.
  void Remove(key_type key) {
    RRS_CHECK(Contains(key)) << "key " << key << " not in heap";
    RemoveAt(position_[key]);
  }

  void Clear() {
    for (key_type key : heap_) position_[key] = kNotInHeap;
    heap_.clear();
  }

  // Validates the heap property and index consistency; O(n). Test hook.
  bool CheckInvariants() const {
    for (size_t i = 0; i < heap_.size(); ++i) {
      if (position_[heap_[i]] != i) return false;
      size_t first_child = i * Arity + 1;
      for (size_t c = first_child;
           c < first_child + Arity && c < heap_.size(); ++c) {
        if (less_(priority_[heap_[c]], priority_[heap_[i]])) return false;
      }
    }
    size_t present = 0;
    for (size_t pos : position_) {
      if (pos != kNotInHeap) ++present;
    }
    return present == heap_.size();
  }

 private:
  void RemoveAt(size_t pos) {
    key_type removed = heap_[pos];
    position_[removed] = kNotInHeap;
    key_type last = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      heap_[pos] = last;
      position_[last] = pos;
      // The displaced element may need to move either direction.
      SiftUp(pos);
      SiftDown(position_[last]);
    }
  }

  void SiftUp(size_t pos) {
    key_type key = heap_[pos];
    while (pos > 0) {
      size_t parent = (pos - 1) / Arity;
      if (!less_(priority_[key], priority_[heap_[parent]])) break;
      heap_[pos] = heap_[parent];
      position_[heap_[pos]] = pos;
      pos = parent;
    }
    heap_[pos] = key;
    position_[key] = pos;
  }

  void SiftDown(size_t pos) {
    key_type key = heap_[pos];
    while (true) {
      size_t first_child = pos * Arity + 1;
      if (first_child >= heap_.size()) break;
      size_t best = first_child;
      size_t end = std::min(first_child + Arity, heap_.size());
      for (size_t c = first_child + 1; c < end; ++c) {
        if (less_(priority_[heap_[c]], priority_[heap_[best]])) best = c;
      }
      if (!less_(priority_[heap_[best]], priority_[key])) break;
      heap_[pos] = heap_[best];
      position_[heap_[pos]] = pos;
      pos = best;
    }
    heap_[pos] = key;
    position_[key] = pos;
  }

  Less less_;
  std::vector<Priority> priority_;   // indexed by key
  std::vector<size_t> position_;     // key -> heap index, kNotInHeap if absent
  std::vector<key_type> heap_;       // heap order -> key
};

}  // namespace rrs
