// Index-based intrusive doubly-linked list over dense integer keys.
//
// Stores only prev/next indices per key (no node allocation, no payload), so
// membership moves are O(1) and cache-friendly. This is the backbone of
// LruTracker: colors are keys, and recency order is the list order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace rrs {

class IntrusiveIndexList {
 public:
  using key_type = uint32_t;
  static constexpr key_type kNil = static_cast<key_type>(-1);

  explicit IntrusiveIndexList(size_t capacity)
      : prev_(capacity, kNil), next_(capacity, kNil), in_list_(capacity, 0) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return prev_.size(); }

  bool Contains(key_type key) const {
    RRS_DCHECK(key < in_list_.size());
    return in_list_[key] != 0;
  }

  key_type front() const { return head_; }
  key_type back() const { return tail_; }
  key_type next(key_type key) const { return next_[key]; }
  key_type prev(key_type key) const { return prev_[key]; }

  void PushFront(key_type key) {
    RRS_CHECK(!Contains(key));
    prev_[key] = kNil;
    next_[key] = head_;
    if (head_ != kNil) prev_[head_] = key;
    head_ = key;
    if (tail_ == kNil) tail_ = key;
    in_list_[key] = 1;
    ++size_;
  }

  void PushBack(key_type key) {
    RRS_CHECK(!Contains(key));
    next_[key] = kNil;
    prev_[key] = tail_;
    if (tail_ != kNil) next_[tail_] = key;
    tail_ = key;
    if (head_ == kNil) head_ = key;
    in_list_[key] = 1;
    ++size_;
  }

  void Remove(key_type key) {
    RRS_CHECK(Contains(key));
    if (prev_[key] != kNil) {
      next_[prev_[key]] = next_[key];
    } else {
      head_ = next_[key];
    }
    if (next_[key] != kNil) {
      prev_[next_[key]] = prev_[key];
    } else {
      tail_ = prev_[key];
    }
    prev_[key] = next_[key] = kNil;
    in_list_[key] = 0;
    --size_;
  }

  // Moves an existing key to the front (most-recent position).
  void MoveToFront(key_type key) {
    if (head_ == key) return;
    Remove(key);
    PushFront(key);
  }

  void Clear() {
    for (key_type k = head_; k != kNil;) {
      key_type n = next_[k];
      prev_[k] = next_[k] = kNil;
      in_list_[k] = 0;
      k = n;
    }
    head_ = tail_ = kNil;
    size_ = 0;
  }

  // O(n) structural validation; test hook.
  bool CheckInvariants() const {
    size_t forward = 0;
    key_type last = kNil;
    for (key_type k = head_; k != kNil; k = next_[k]) {
      if (!Contains(k)) return false;
      if (prev_[k] != last) return false;
      last = k;
      if (++forward > size_) return false;  // cycle
    }
    return forward == size_ && last == tail_;
  }

 private:
  std::vector<key_type> prev_;
  std::vector<key_type> next_;
  std::vector<uint8_t> in_list_;
  key_type head_ = kNil;
  key_type tail_ = kNil;
  size_t size_ = 0;
};

}  // namespace rrs
