// LruTracker: maintains a set of keys ordered by (timestamp desc, key asc) and
// answers "the k most-recent keys" queries.
//
// This is the data structure behind the ΔLRU reconfiguration scheme
// (Section 3.1.1 of the paper): eligible colors are members, their paper
// timestamps are the recency values, and each reconfiguration phase asks for
// the top n/2 (ΔLRU) or n/4 (ΔLRU-EDF) members. Ties are broken by ascending
// key, matching the library-wide "consistent order of colors".
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace rrs {

class LruTracker {
 public:
  using key_type = uint32_t;

  explicit LruTracker(size_t capacity);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  bool Contains(key_type key) const;

  // Inserts key with the given timestamp; key must be absent.
  void Insert(key_type key, int64_t timestamp);

  // Updates the timestamp of a present key.
  void Touch(key_type key, int64_t timestamp);

  // Inserts if absent, otherwise updates.
  void InsertOrTouch(key_type key, int64_t timestamp);

  // Removes a present key.
  void Remove(key_type key);

  int64_t TimestampOf(key_type key) const;

  // The up-to-k most recent keys, in (timestamp desc, key asc) order.
  std::vector<key_type> TopK(size_t k) const;

  // Appends the up-to-k most recent keys to out (avoids allocation in the
  // per-round scheduler hot path).
  void TopK(size_t k, std::vector<key_type>& out) const;

  // The least recent member, or returns false if empty.
  bool Oldest(key_type& key) const;

  void Clear();

  // O(n) consistency check between the ordered set and the per-key index.
  bool CheckInvariants() const;

 private:
  // Ordered most-recent-first: larger timestamp first, then smaller key.
  struct Order {
    bool operator()(const std::pair<int64_t, key_type>& a,
                    const std::pair<int64_t, key_type>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };

  std::set<std::pair<int64_t, key_type>, Order> entries_;
  std::vector<int64_t> timestamp_;  // valid iff present_[key]
  std::vector<uint8_t> present_;
};

}  // namespace rrs
