// LruTracker: maintains a set of keys ordered by (timestamp desc, key asc) and
// answers "the k most-recent keys" queries.
//
// This is the data structure behind the ΔLRU reconfiguration scheme
// (Section 3.1.1 of the paper): eligible colors are members, their paper
// timestamps are the recency values, and each reconfiguration phase asks for
// the top n/2 (ΔLRU) or n/4 (ΔLRU-EDF) members. Ties are broken by ascending
// key, matching the library-wide "consistent order of colors".
//
// Layout: flat arrays over the key universe (dense member list + per-key slot
// index), not an ordered tree. The scheduler hot path touches timestamps far
// more often than it asks for the top-k (every counter-wrap/boundary event vs
// once per reconfiguration phase), so Insert/Touch/Remove are O(1) with zero
// allocation and TopK does an O(members) selection against a preallocated
// scratch buffer. The key universe (color count) is small and fixed per run,
// which keeps the scan cache-friendly; the previous std::set implementation
// paid a node allocation plus rebalancing per touch and was the top
// non-engine entry in the BM_DlruEdf profile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "snapshot/codec.h"

namespace rrs {

class LruTracker {
 public:
  using key_type = uint32_t;

  explicit LruTracker(size_t capacity);

  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  // The member set in unspecified order (dense backing array). Lets callers
  // whose "universe of interest" is exactly the tracked set iterate it
  // without maintaining a second list.
  const std::vector<key_type>& members() const { return members_; }


  bool Contains(key_type key) const;

  // Inserts key with the given timestamp; key must be absent.
  void Insert(key_type key, int64_t timestamp);

  // Updates the timestamp of a present key.
  void Touch(key_type key, int64_t timestamp);

  // Inserts if absent, otherwise updates.
  void InsertOrTouch(key_type key, int64_t timestamp);

  // Removes a present key.
  void Remove(key_type key);

  int64_t TimestampOf(key_type key) const;

  // The up-to-k most recent keys, in (timestamp desc, key asc) order.
  std::vector<key_type> TopK(size_t k) const;

  // Appends the up-to-k most recent keys to out (avoids allocation in the
  // per-round scheduler hot path once the scratch buffer has warmed up).
  void TopK(size_t k, std::vector<key_type>& out) const;

  // The least recent member, or returns false if empty.
  bool Oldest(key_type& key) const;

  void Clear();

  // Empties the tracker and re-sizes the key universe, reusing all storage
  // (no allocation unless the universe grows). The session-reuse form of
  // construction: policies call this on every Reset instead of rebuilding
  // the tracker per run.
  void Reset(size_t capacity);

  // O(n) consistency check between the member list and the per-key index.
  bool CheckInvariants() const;

  // Checkpoint/restore. SaveState appends one self-checksummed section with
  // the member list, per-key index, and timestamps verbatim — dense-array
  // order included, because TopK ties and Oldest scans must replay
  // identically after a restore. LoadState requires a tracker Reset to the
  // same capacity.
  void SaveState(snapshot::Writer& w) const;
  void LoadState(snapshot::Reader& r);

 private:
  static constexpr uint32_t kAbsent = static_cast<uint32_t>(-1);

  // Recency order: larger timestamp first, then smaller key. A functor (not
  // a function pointer) so the selection algorithms inline the comparison.
  struct MoreRecent {
    bool operator()(const std::pair<int64_t, key_type>& a,
                    const std::pair<int64_t, key_type>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };

  std::vector<key_type> members_;   // dense, unordered
  std::vector<uint32_t> slot_;      // key -> index in members_, or kAbsent
  // Timestamps parallel to members_ (slot-indexed, not key-indexed): TopK
  // and Oldest stream two dense arrays instead of gathering by key.
  std::vector<int64_t> timestamp_;
  // TopK selection scratch; mutable so const queries stay allocation-free.
  mutable std::vector<std::pair<int64_t, key_type>> scratch_;
};

}  // namespace rrs
