// FlatMap: a sorted-vector map with binary-search lookup.
//
// For the small, short-lived key sets in the scheduling hot paths (e.g. the
// OnlineSolver's buffered VarBatch batches, keyed by upcoming boundary
// rounds), a contiguous sorted vector beats a node-based std::map on both
// locality and allocation churn. Insertion is O(n) by shifting — fine for
// the dozens-of-entries regime this is built for; the E11 bench quantifies
// the crossover against std::map.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rrs {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(size_t n) { entries_.reserve(n); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  iterator find(const Key& key) {
    iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(const Key& key) const {
    const_iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  bool contains(const Key& key) const { return find(key) != end(); }

  // Inserts default Value if absent.
  Value& operator[](const Key& key) {
    iterator it = LowerBound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, {key, Value{}})->second;
  }

  const Value& at(const Key& key) const {
    const_iterator it = find(key);
    RRS_CHECK(it != end()) << "FlatMap::at: missing key";
    return it->second;
  }

  // Returns (iterator, inserted).
  std::pair<iterator, bool> emplace(Key key, Value value) {
    iterator it = LowerBound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    return {entries_.insert(it, {std::move(key), std::move(value)}), true};
  }

  void erase(iterator it) { entries_.erase(it); }
  size_t erase(const Key& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  // The smallest entry, if any (the map is sorted by key).
  const value_type& front() const {
    RRS_CHECK(!empty());
    return entries_.front();
  }

  bool CheckInvariants() const {
    return std::is_sorted(
        entries_.begin(), entries_.end(),
        [](const value_type& a, const value_type& b) { return a.first < b.first; });
  }

 private:
  iterator LowerBound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  const_iterator LowerBound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace rrs
