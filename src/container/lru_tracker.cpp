#include "container/lru_tracker.h"

#include "util/check.h"

namespace rrs {

LruTracker::LruTracker(size_t capacity)
    : timestamp_(capacity, 0), present_(capacity, 0) {}

bool LruTracker::Contains(key_type key) const {
  RRS_DCHECK(key < present_.size());
  return present_[key] != 0;
}

void LruTracker::Insert(key_type key, int64_t timestamp) {
  RRS_CHECK(!Contains(key)) << "key " << key << " already tracked";
  entries_.emplace(timestamp, key);
  timestamp_[key] = timestamp;
  present_[key] = 1;
}

void LruTracker::Touch(key_type key, int64_t timestamp) {
  RRS_CHECK(Contains(key)) << "key " << key << " not tracked";
  if (timestamp_[key] == timestamp) return;
  entries_.erase({timestamp_[key], key});
  entries_.emplace(timestamp, key);
  timestamp_[key] = timestamp;
}

void LruTracker::InsertOrTouch(key_type key, int64_t timestamp) {
  if (Contains(key)) {
    Touch(key, timestamp);
  } else {
    Insert(key, timestamp);
  }
}

void LruTracker::Remove(key_type key) {
  RRS_CHECK(Contains(key)) << "key " << key << " not tracked";
  entries_.erase({timestamp_[key], key});
  present_[key] = 0;
}

int64_t LruTracker::TimestampOf(key_type key) const {
  RRS_CHECK(Contains(key));
  return timestamp_[key];
}

std::vector<LruTracker::key_type> LruTracker::TopK(size_t k) const {
  std::vector<key_type> out;
  TopK(k, out);
  return out;
}

void LruTracker::TopK(size_t k, std::vector<key_type>& out) const {
  out.clear();
  for (auto it = entries_.begin(); it != entries_.end() && out.size() < k;
       ++it) {
    out.push_back(it->second);
  }
}

bool LruTracker::Oldest(key_type& key) const {
  if (entries_.empty()) return false;
  key = entries_.rbegin()->second;
  return true;
}

void LruTracker::Clear() {
  for (const auto& [ts, key] : entries_) present_[key] = 0;
  entries_.clear();
}

bool LruTracker::CheckInvariants() const {
  size_t present_count = 0;
  for (size_t key = 0; key < present_.size(); ++key) {
    if (present_[key]) {
      ++present_count;
      if (!entries_.count({timestamp_[key], static_cast<key_type>(key)})) {
        return false;
      }
    }
  }
  return present_count == entries_.size();
}

}  // namespace rrs
