#include "container/lru_tracker.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

LruTracker::LruTracker(size_t capacity) : slot_(capacity, kAbsent) {
  members_.reserve(capacity);
  timestamp_.reserve(capacity);
  scratch_.reserve(capacity);
}

bool LruTracker::Contains(key_type key) const {
  RRS_DCHECK(key < slot_.size());
  return slot_[key] != kAbsent;
}

void LruTracker::Insert(key_type key, int64_t timestamp) {
  RRS_CHECK(!Contains(key)) << "key " << key << " already tracked";
  slot_[key] = static_cast<uint32_t>(members_.size());
  members_.push_back(key);
  timestamp_.push_back(timestamp);
}

void LruTracker::Touch(key_type key, int64_t timestamp) {
  RRS_CHECK(Contains(key)) << "key " << key << " not tracked";
  timestamp_[slot_[key]] = timestamp;
}

void LruTracker::InsertOrTouch(key_type key, int64_t timestamp) {
  if (Contains(key)) {
    Touch(key, timestamp);
  } else {
    Insert(key, timestamp);
  }
}

void LruTracker::Remove(key_type key) {
  RRS_CHECK(Contains(key)) << "key " << key << " not tracked";
  const uint32_t at = slot_[key];
  const key_type last = members_.back();
  members_[at] = last;
  timestamp_[at] = timestamp_.back();
  slot_[last] = at;
  members_.pop_back();
  timestamp_.pop_back();
  slot_[key] = kAbsent;
}

int64_t LruTracker::TimestampOf(key_type key) const {
  RRS_CHECK(Contains(key));
  return timestamp_[slot_[key]];
}

std::vector<LruTracker::key_type> LruTracker::TopK(size_t k) const {
  std::vector<key_type> out;
  TopK(k, out);
  return out;
}

void LruTracker::TopK(size_t k, std::vector<key_type>& out) const {
  out.clear();
  if (k == 0 || members_.empty()) return;
  scratch_.clear();
  if (k < members_.size() && k <= 16) {
    // Bounded insertion select: keep the best k seen so far sorted in
    // scratch_. Most members lose the single comparison against the current
    // k-th entry, so this is ~one branch per member for the tiny k the
    // schedulers use (n/4 colors for n resources).
    const MoreRecent better;
    for (size_t i = 0; i < members_.size(); ++i) {
      const std::pair<int64_t, key_type> cand{timestamp_[i], members_[i]};
      if (scratch_.size() == k) {
        if (!better(cand, scratch_.back())) continue;
        scratch_.pop_back();
      }
      scratch_.insert(
          std::upper_bound(scratch_.begin(), scratch_.end(), cand, better),
          cand);
    }
  } else {
    for (size_t i = 0; i < members_.size(); ++i) {
      scratch_.emplace_back(timestamp_[i], members_[i]);
    }
    if (k < scratch_.size()) {
      std::partial_sort(scratch_.begin(), scratch_.begin() + k, scratch_.end(),
                        MoreRecent{});
      scratch_.resize(k);
    } else {
      std::sort(scratch_.begin(), scratch_.end(), MoreRecent{});
    }
  }
  for (const auto& [ts, key] : scratch_) out.push_back(key);
}

bool LruTracker::Oldest(key_type& key) const {
  if (members_.empty()) return false;
  key_type best = members_[0];
  int64_t best_ts = timestamp_[0];
  for (size_t i = 1; i < members_.size(); ++i) {
    const key_type candidate = members_[i];
    // Least recent: smaller timestamp first, ties by larger key (the reverse
    // of the recency order).
    if (timestamp_[i] < best_ts ||
        (timestamp_[i] == best_ts && candidate > best)) {
      best = candidate;
      best_ts = timestamp_[i];
    }
  }
  key = best;
  return true;
}

void LruTracker::Clear() {
  for (key_type key : members_) slot_[key] = kAbsent;
  members_.clear();
  timestamp_.clear();
}

void LruTracker::Reset(size_t capacity) {
  Clear();
  // Clear() already re-marked every tracked key absent; only a grown
  // universe needs new (absent) entries.
  slot_.resize(capacity, kAbsent);
  members_.reserve(capacity);
  timestamp_.reserve(capacity);
  scratch_.reserve(capacity);
}

void LruTracker::SaveState(snapshot::Writer& w) const {
  w.BeginSection(snapshot::kTagLruTracker);
  w.PutVec(members_);
  w.PutVec(slot_);
  w.PutVec(timestamp_);
  w.EndSection();
}

void LruTracker::LoadState(snapshot::Reader& r) {
  r.BeginSection(snapshot::kTagLruTracker);
  const size_t capacity = slot_.size();
  r.GetVec(members_);
  r.GetVec(slot_);
  r.GetVec(timestamp_);
  r.EndSection();
  RRS_CHECK_EQ(slot_.size(), capacity)
      << "LruTracker restored into a different key universe";
  RRS_CHECK(CheckInvariants());
}

bool LruTracker::CheckInvariants() const {
  size_t present_count = 0;
  for (size_t key = 0; key < slot_.size(); ++key) {
    if (slot_[key] == kAbsent) continue;
    ++present_count;
    if (slot_[key] >= members_.size()) return false;
    if (members_[slot_[key]] != static_cast<key_type>(key)) return false;
  }
  return present_count == members_.size() &&
         timestamp_.size() == members_.size();
}

}  // namespace rrs
