// PairingHeap: amortized O(1) insert/meld, O(log n) amortized pop-min, with
// handle-based DecreaseKey. Node storage is pooled (no per-node allocation in
// steady state). Offered alongside IndexedHeap: the exact offline solver uses
// it as the frontier priority queue of the uniform-cost search, where keys are
// sparse search-state ids rather than dense color ids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rrs {

template <typename Value, typename Priority,
          typename Less = std::less<Priority>>
class PairingHeap {
 public:
  using Handle = uint32_t;
  static constexpr Handle kNullHandle = static_cast<Handle>(-1);

  explicit PairingHeap(Less less = Less()) : less_(std::move(less)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts and returns a stable handle usable for DecreaseKey.
  Handle Push(Value value, Priority priority) {
    Handle h = AllocNode(std::move(value), std::move(priority));
    root_ = (root_ == kNullHandle) ? h : Meld(root_, h);
    ++size_;
    return h;
  }

  const Value& TopValue() const {
    RRS_CHECK(!empty());
    return nodes_[root_].value;
  }

  const Priority& TopPriority() const {
    RRS_CHECK(!empty());
    return nodes_[root_].priority;
  }

  // Removes the minimum and returns (value, priority).
  std::pair<Value, Priority> Pop() {
    RRS_CHECK(!empty());
    Handle old_root = root_;
    std::pair<Value, Priority> out(std::move(nodes_[old_root].value),
                                   std::move(nodes_[old_root].priority));
    root_ = MergePairs(nodes_[old_root].child);
    if (root_ != kNullHandle) {
      nodes_[root_].parent = kNullHandle;
      nodes_[root_].sibling = kNullHandle;
    }
    FreeNode(old_root);
    --size_;
    return out;
  }

  // Lowers the priority of a live handle. Priority must not increase.
  void DecreaseKey(Handle h, Priority priority) {
    RRS_DCHECK(h < nodes_.size() && nodes_[h].live);
    RRS_CHECK(!less_(nodes_[h].priority, priority))
        << "DecreaseKey must not increase priority";
    nodes_[h].priority = std::move(priority);
    if (h == root_) return;
    DetachFromParent(h);
    root_ = Meld(root_, h);
  }

  void Clear() {
    nodes_.clear();
    free_list_.clear();
    root_ = kNullHandle;
    size_ = 0;
  }

  // O(n) structural validation; test hook.
  bool CheckInvariants() const {
    if (root_ == kNullHandle) return size_ == 0;
    size_t seen = 0;
    bool ok = CheckSubtree(root_, seen);
    return ok && seen == size_;
  }

 private:
  struct Node {
    Value value;
    Priority priority;
    Handle child = kNullHandle;
    Handle sibling = kNullHandle;
    Handle parent = kNullHandle;  // previous sibling or actual parent
    bool live = false;
  };

  Handle AllocNode(Value value, Priority priority) {
    Handle h;
    if (!free_list_.empty()) {
      h = free_list_.back();
      free_list_.pop_back();
    } else {
      h = static_cast<Handle>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[h];
    n.value = std::move(value);
    n.priority = std::move(priority);
    n.child = n.sibling = n.parent = kNullHandle;
    n.live = true;
    return h;
  }

  void FreeNode(Handle h) {
    nodes_[h].live = false;
    free_list_.push_back(h);
  }

  // Melds two root nodes, returns the new root.
  Handle Meld(Handle a, Handle b) {
    if (a == kNullHandle) return b;
    if (b == kNullHandle) return a;
    if (less_(nodes_[b].priority, nodes_[a].priority)) std::swap(a, b);
    // b becomes a's first child.
    nodes_[b].sibling = nodes_[a].child;
    if (nodes_[a].child != kNullHandle) nodes_[nodes_[a].child].parent = b;
    nodes_[b].parent = a;
    nodes_[a].child = b;
    nodes_[a].sibling = kNullHandle;
    nodes_[a].parent = kNullHandle;
    return a;
  }

  // Two-pass pairing of a sibling list.
  Handle MergePairs(Handle first) {
    if (first == kNullHandle) return kNullHandle;
    std::vector<Handle> pairs;
    Handle cur = first;
    while (cur != kNullHandle) {
      Handle next = nodes_[cur].sibling;
      Handle after = (next != kNullHandle) ? nodes_[next].sibling : kNullHandle;
      nodes_[cur].sibling = kNullHandle;
      nodes_[cur].parent = kNullHandle;
      if (next != kNullHandle) {
        nodes_[next].sibling = kNullHandle;
        nodes_[next].parent = kNullHandle;
        pairs.push_back(Meld(cur, next));
      } else {
        pairs.push_back(cur);
      }
      cur = after;
    }
    Handle root = pairs.back();
    for (size_t i = pairs.size() - 1; i-- > 0;) {
      root = Meld(pairs[i], root);
    }
    return root;
  }

  // Unlinks h from its parent/previous-sibling chain.
  void DetachFromParent(Handle h) {
    Handle p = nodes_[h].parent;
    RRS_DCHECK(p != kNullHandle);
    if (nodes_[p].child == h) {
      // p is the true parent.
      nodes_[p].child = nodes_[h].sibling;
      if (nodes_[h].sibling != kNullHandle) {
        nodes_[nodes_[h].sibling].parent = p;
      }
    } else {
      // p is the previous sibling.
      nodes_[p].sibling = nodes_[h].sibling;
      if (nodes_[h].sibling != kNullHandle) {
        nodes_[nodes_[h].sibling].parent = p;
      }
    }
    nodes_[h].parent = kNullHandle;
    nodes_[h].sibling = kNullHandle;
  }

  bool CheckSubtree(Handle h, size_t& seen) const {
    ++seen;
    for (Handle c = nodes_[h].child; c != kNullHandle;
         c = nodes_[c].sibling) {
      if (less_(nodes_[c].priority, nodes_[h].priority)) return false;
      if (!CheckSubtree(c, seen)) return false;
    }
    return true;
  }

  Less less_;
  std::vector<Node> nodes_;
  std::vector<Handle> free_list_;
  Handle root_ = kNullHandle;
  size_t size_ = 0;
};

}  // namespace rrs
