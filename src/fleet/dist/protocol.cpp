#include "fleet/dist/protocol.h"

#include <bit>
#include <cstring>

#include "util/check.h"

namespace rrs {
namespace fleet {
namespace dist {

const char* MsgTypeName(uint64_t type) {
  switch (type) {
    case kMsgHello: return "Hello";
    case kMsgConfig: return "Config";
    case kMsgConfigAck: return "ConfigAck";
    case kMsgAddInstances: return "AddInstances";
    case kMsgAddTenants: return "AddTenants";
    case kMsgTick: return "Tick";
    case kMsgTickDone: return "TickDone";
    case kMsgSnapshotTenant: return "SnapshotTenant";
    case kMsgTenantSnapshot: return "TenantSnapshot";
    case kMsgRestoreTenant: return "RestoreTenant";
    case kMsgRestoreAck: return "RestoreAck";
    case kMsgShedTenant: return "ShedTenant";
    case kMsgShedAck: return "ShedAck";
    case kMsgShutdown: return "Shutdown";
    case kMsgBye: return "Bye";
    case kMsgAddSources: return "AddSources";
    default: return "<unknown>";
  }
}

EngineOptions WireOptions::ToEngineOptions() const {
  EngineOptions options;
  options.num_resources = num_resources;
  options.mini_rounds_per_round = static_cast<int>(mini_rounds_per_round);
  options.cost_model.delta = delta;
  return options;
}

WireOptions WireOptions::From(const EngineOptions& options) {
  WireOptions wire;
  wire.num_resources = options.num_resources;
  wire.mini_rounds_per_round = options.mini_rounds_per_round;
  wire.delta = options.cost_model.delta;
  return wire;
}

// Strings are packed 8 bytes per word (length word first); counter names and
// policy names are short, and this keeps everything in the codec's word
// stream without a parallel byte channel.
void PutString(snapshot::Writer& w, const std::string& s) {
  w.PutU64(s.size());
  for (size_t i = 0; i < s.size(); i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, s.data() + i, std::min<size_t>(8, s.size() - i));
    w.PutU64(word);
  }
}

std::string GetString(snapshot::Reader& r) {
  const uint64_t len = r.GetU64();
  RRS_CHECK_LE(len, 1u << 20) << "wire string implausibly long";
  std::string s(len, '\0');
  for (size_t i = 0; i < len; i += 8) {
    const uint64_t word = r.GetU64();
    std::memcpy(s.data() + i, &word, std::min<size_t>(8, len - i));
  }
  return s;
}

namespace {

void PutWireOptions(snapshot::Writer& w, const WireOptions& options) {
  w.PutU32(options.num_resources);
  w.PutI64(options.mini_rounds_per_round);
  w.PutU64(options.delta);
}

WireOptions GetWireOptions(snapshot::Reader& r) {
  WireOptions options;
  options.num_resources = r.GetU32();
  options.mini_rounds_per_round = r.GetI64();
  options.delta = r.GetU64();
  return options;
}

}  // namespace

void PutHello(snapshot::Writer& w, const HelloInfo& hello) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(hello.worker_index);
  w.PutU64(hello.pid);
  w.PutU64(hello.protocol_version);
  w.PutU64(hello.metrics_port);
  w.EndSection();
}

HelloInfo GetHello(snapshot::Reader& r) {
  HelloInfo hello;
  r.BeginSection(snapshot::kTagDistMsg);
  hello.worker_index = r.GetU64();
  hello.pid = r.GetU64();
  hello.protocol_version = r.GetU64();
  hello.metrics_port = r.GetU64();
  r.EndSection();
  return hello;
}

void PutConfig(snapshot::Writer& w, const WireConfig& config) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutI64(config.rounds_per_tick);
  w.PutU64(config.max_live_sessions);
  w.PutU32(config.threads);
  w.PutBool(config.collect_results);
  w.PutBool(config.report_slo);
  w.PutBool(config.report_trace);
  w.PutU32(config.checkpoint_interval_ticks);
  w.PutBool(config.serve_metrics);
  PutString(w, config.policy);
  w.EndSection();
}

WireConfig GetConfig(snapshot::Reader& r) {
  WireConfig config;
  r.BeginSection(snapshot::kTagDistMsg);
  config.rounds_per_tick = r.GetI64();
  config.max_live_sessions = r.GetU64();
  config.threads = r.GetU32();
  config.collect_results = r.GetBool();
  config.report_slo = r.GetBool();
  config.report_trace = r.GetBool();
  config.checkpoint_interval_ticks = r.GetU32();
  config.serve_metrics = r.GetBool();
  config.policy = GetString(r);
  r.EndSection();
  return config;
}

void PutInstanceTable(snapshot::Writer& w,
                      const std::vector<const Instance*>& instances,
                      uint32_t first_id) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(instances.size());
  w.EndSection();
  for (size_t i = 0; i < instances.size(); ++i) {
    const Instance& instance = *instances[i];
    w.BeginSection(snapshot::kTagDistInstance);
    w.PutU32(first_id + static_cast<uint32_t>(i));
    w.PutU64(instance.num_colors());
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      w.PutI64(instance.delay_bound(c));
      w.PutU64(instance.drop_cost(c));
      PutString(w, instance.color_name(c));
    }
    // Jobs, run-length encoded over identical (color, arrival) runs: bulk
    // workloads (AddJobs bursts) compress to one triple per burst.
    std::span<const Job> jobs = instance.jobs();
    uint64_t runs = 0;
    for (size_t j = 0; j < jobs.size();) {
      size_t k = j + 1;
      while (k < jobs.size() && jobs[k] == jobs[j]) ++k;
      ++runs;
      j = k;
    }
    w.PutU64(runs);
    for (size_t j = 0; j < jobs.size();) {
      size_t k = j + 1;
      while (k < jobs.size() && jobs[k] == jobs[j]) ++k;
      w.PutU32(jobs[j].color);
      w.PutI64(jobs[j].arrival);
      w.PutU64(k - j);
      j = k;
    }
    w.EndSection();
  }
}

void GetInstanceTable(snapshot::Reader& r,
                      std::vector<std::pair<uint32_t, Instance>>* out) {
  r.BeginSection(snapshot::kTagDistMsg);
  const uint64_t count = r.GetU64();
  r.EndSection();
  for (uint64_t i = 0; i < count; ++i) {
    r.BeginSection(snapshot::kTagDistInstance);
    const uint32_t id = r.GetU32();
    InstanceBuilder builder;
    const uint64_t colors = r.GetU64();
    for (uint64_t c = 0; c < colors; ++c) {
      const Round delay = r.GetI64();
      const uint64_t drop_cost = r.GetU64();
      builder.AddColor(delay, GetString(r), drop_cost);
    }
    const uint64_t runs = r.GetU64();
    for (uint64_t j = 0; j < runs; ++j) {
      const ColorId color = r.GetU32();
      const Round arrival = r.GetI64();
      const uint64_t n = r.GetU64();
      builder.AddJobs(color, arrival, n);
    }
    r.EndSection();
    out->emplace_back(id, builder.Build());
  }
}

void PutTenantSpecs(snapshot::Writer& w,
                    const std::vector<TenantSpec>& specs) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(specs.size());
  for (const TenantSpec& spec : specs) {
    w.PutU64(spec.tenant);
    w.PutU32(spec.instance_id);
    w.PutU32(spec.source_id);
    PutWireOptions(w, spec.options);
  }
  w.EndSection();
}

void GetTenantSpecs(snapshot::Reader& r, std::vector<TenantSpec>* out) {
  r.BeginSection(snapshot::kTagDistMsg);
  const uint64_t count = r.GetU64();
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    TenantSpec spec;
    spec.tenant = r.GetU64();
    spec.instance_id = r.GetU32();
    spec.source_id = r.GetU32();
    spec.options = GetWireOptions(r);
    out->push_back(spec);
  }
  r.EndSection();
}

void PutSourceTable(snapshot::Writer& w,
                    const std::vector<const workload::GeneratorSpec*>& specs,
                    uint32_t first_id) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(specs.size());
  w.PutU32(first_id);
  w.EndSection();
  for (const workload::GeneratorSpec* spec : specs) {
    workload::PutGeneratorSpec(w, *spec);
  }
}

void GetSourceTable(
    snapshot::Reader& r,
    std::vector<std::pair<uint32_t, workload::GeneratorSpec>>* out) {
  r.BeginSection(snapshot::kTagDistMsg);
  const uint64_t count = r.GetU64();
  const uint32_t first_id = r.GetU32();
  r.EndSection();
  for (uint64_t i = 0; i < count; ++i) {
    out->emplace_back(first_id + static_cast<uint32_t>(i),
                      workload::GetGeneratorSpec(r));
  }
}

void PutCheckpoint(snapshot::Writer& w, const TenantCheckpoint& checkpoint) {
  w.BeginSection(snapshot::kTagDistCheckpoint);
  w.PutU64(checkpoint.tenant);
  w.PutU64(checkpoint.round);
  w.PutVec(checkpoint.words);
  w.EndSection();
}

void GetCheckpoint(snapshot::Reader& r, TenantCheckpoint* out) {
  r.BeginSection(snapshot::kTagDistCheckpoint);
  out->tenant = r.GetU64();
  out->round = r.GetU64();
  r.GetVec(out->words);
  r.EndSection();
}

void PutResult(snapshot::Writer& w, uint64_t tenant,
               const RunResult& result) {
  RRS_CHECK(!result.schedule.has_value())
      << "recorded schedules do not travel over the dist protocol";
  w.BeginSection(snapshot::kTagDistResult);
  w.PutU64(tenant);
  w.PutU64(result.cost.reconfigurations);
  w.PutU64(result.cost.drops);
  w.PutU64(result.cost.weighted_drops);
  w.PutU64(result.executed);
  w.PutU64(result.arrived);
  w.PutI64(result.rounds_simulated);
  w.PutVec(result.drops_per_color);
  // Telemetry: the deterministic fields only (phase wall times are
  // per-machine noise and excluded from oracle comparisons anyway).
  w.PutU64(result.telemetry.arrived);
  w.PutU64(result.telemetry.executed);
  w.PutU64(result.telemetry.drops);
  w.PutU64(result.telemetry.reconfigs);
  w.PutU64(result.telemetry.rounds);
  w.PutVec(result.telemetry.drops_per_color);
  w.PutVec(result.telemetry.reconfigs_per_color);
  w.PutU64(result.telemetry.counters.size());
  for (const auto& [name, value] : result.telemetry.counters) {
    PutString(w, name);
    w.PutU64(std::bit_cast<uint64_t>(value));
  }
  w.EndSection();
}

void GetResult(snapshot::Reader& r, TenantResult* out) {
  r.BeginSection(snapshot::kTagDistResult);
  out->tenant = r.GetU64();
  RunResult& result = out->result;
  result = RunResult();
  result.cost.reconfigurations = r.GetU64();
  result.cost.drops = r.GetU64();
  result.cost.weighted_drops = r.GetU64();
  result.executed = r.GetU64();
  result.arrived = r.GetU64();
  result.rounds_simulated = r.GetI64();
  r.GetVec(result.drops_per_color);
  result.telemetry.arrived = r.GetU64();
  result.telemetry.executed = r.GetU64();
  result.telemetry.drops = r.GetU64();
  result.telemetry.reconfigs = r.GetU64();
  result.telemetry.rounds = r.GetU64();
  r.GetVec(result.telemetry.drops_per_color);
  r.GetVec(result.telemetry.reconfigs_per_color);
  const uint64_t counters = r.GetU64();
  for (uint64_t i = 0; i < counters; ++i) {
    std::string name = GetString(r);
    result.telemetry.counters[std::move(name)] =
        std::bit_cast<double>(r.GetU64());
  }
  r.EndSection();
}

void PutTickReport(snapshot::Writer& w, const TickReport& report) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(report.tick);
  w.PutU64(report.rounds_stepped);
  w.PutU64(report.live);
  w.PutU64(report.waiting);
  w.PutU64(report.tick_wall_ns);
  w.PutU64(report.completed.size());
  w.PutU64(report.checkpoints.size());
  w.EndSection();
  for (const TenantResult& completed : report.completed) {
    PutResult(w, completed.tenant, completed.result);
  }
  w.BeginSection(snapshot::kTagDistSlo);
  w.PutU64(report.slo.size());
  for (const TenantProgress& row : report.slo) {
    w.PutU64(row.tenant);
    w.PutU64(row.rounds);
    w.PutU64(row.misses);
  }
  w.EndSection();
  w.BeginSection(snapshot::kTagDistTrace);
  w.PutU64(report.trace.size());
  for (const TraceRow& row : report.trace) {
    w.PutU64(row.tenant);
    w.PutU64(row.round);
    w.PutU64(row.reconfigurations);
    w.PutU64(row.drops);
    w.PutU64(row.weighted_drops);
    w.PutU64(row.executed);
  }
  w.EndSection();
  for (const TenantCheckpoint& checkpoint : report.checkpoints) {
    PutCheckpoint(w, checkpoint);
  }
}

void GetTickReport(snapshot::Reader& r, TickReport* out) {
  *out = TickReport();
  r.BeginSection(snapshot::kTagDistMsg);
  out->tick = r.GetU64();
  out->rounds_stepped = r.GetU64();
  out->live = r.GetU64();
  out->waiting = r.GetU64();
  out->tick_wall_ns = r.GetU64();
  const uint64_t completed = r.GetU64();
  const uint64_t checkpoints = r.GetU64();
  r.EndSection();
  out->completed.resize(completed);
  for (uint64_t i = 0; i < completed; ++i) GetResult(r, &out->completed[i]);
  r.BeginSection(snapshot::kTagDistSlo);
  const uint64_t slo_rows = r.GetU64();
  out->slo.resize(slo_rows);
  for (TenantProgress& row : out->slo) {
    row.tenant = r.GetU64();
    row.rounds = r.GetU64();
    row.misses = r.GetU64();
  }
  r.EndSection();
  r.BeginSection(snapshot::kTagDistTrace);
  const uint64_t trace_rows = r.GetU64();
  out->trace.resize(trace_rows);
  for (TraceRow& row : out->trace) {
    row.tenant = r.GetU64();
    row.round = r.GetU64();
    row.reconfigurations = r.GetU64();
    row.drops = r.GetU64();
    row.weighted_drops = r.GetU64();
    row.executed = r.GetU64();
  }
  r.EndSection();
  out->checkpoints.resize(checkpoints);
  for (TenantCheckpoint& checkpoint : out->checkpoints) {
    GetCheckpoint(r, &checkpoint);
  }
}

void PutTickCmd(snapshot::Writer& w, const TickCmd& cmd) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(cmd.tick);
  w.PutBool(cmd.checkpoint);
  w.EndSection();
}

TickCmd GetTickCmd(snapshot::Reader& r) {
  TickCmd cmd;
  r.BeginSection(snapshot::kTagDistMsg);
  cmd.tick = r.GetU64();
  cmd.checkpoint = r.GetBool();
  r.EndSection();
  return cmd;
}

void PutTenantId(snapshot::Writer& w, uint64_t tenant) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(tenant);
  w.EndSection();
}

uint64_t GetTenantId(snapshot::Reader& r) {
  r.BeginSection(snapshot::kTagDistMsg);
  const uint64_t tenant = r.GetU64();
  r.EndSection();
  return tenant;
}

void PutSnapshotReply(snapshot::Writer& w, const SnapshotReply& reply) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(reply.state);
  w.EndSection();
  if (reply.state == kTenantLive) PutCheckpoint(w, reply.checkpoint);
}

void GetSnapshotReply(snapshot::Reader& r, SnapshotReply* out) {
  *out = SnapshotReply();
  r.BeginSection(snapshot::kTagDistMsg);
  out->state = r.GetU64();
  r.EndSection();
  if (out->state == kTenantLive) GetCheckpoint(r, &out->checkpoint);
}

void PutShedInfo(snapshot::Writer& w, const ShedInfo& info) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(info.tenant);
  w.PutU64(info.state);
  w.PutU64(info.rounds);
  w.PutU64(info.misses);
  w.EndSection();
}

ShedInfo GetShedInfo(snapshot::Reader& r) {
  ShedInfo info;
  r.BeginSection(snapshot::kTagDistMsg);
  info.tenant = r.GetU64();
  info.state = r.GetU64();
  info.rounds = r.GetU64();
  info.misses = r.GetU64();
  r.EndSection();
  return info;
}

void PutWorkerStats(snapshot::Writer& w, const WorkerStats& stats) {
  w.BeginSection(snapshot::kTagDistMsg);
  w.PutU64(stats.ticks);
  w.PutU64(stats.sessions_completed);
  w.PutU64(stats.rounds_stepped);
  w.PutU64(stats.restores);
  w.PutU64(stats.snapshots);
  w.EndSection();
}

WorkerStats GetWorkerStats(snapshot::Reader& r) {
  WorkerStats stats;
  r.BeginSection(snapshot::kTagDistMsg);
  stats.ticks = r.GetU64();
  stats.sessions_completed = r.GetU64();
  stats.rounds_stepped = r.GetU64();
  stats.restores = r.GetU64();
  stats.snapshots = r.GetU64();
  r.EndSection();
  return stats;
}

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
