// Wire protocol of the distributed fleet (fleet/dist/): the message
// vocabulary spoken between the DistController and its forked worker
// processes over Unix-domain stream sockets.
//
// Transport: net/socket.h length-prefixed uint64-word frames. Every frame
// payload is a snapshot::Writer word stream — magic + codec version header
// followed by checksummed sections — so each message gets the snapshot
// layer's corruption detection and version-skew refusal (a worker built
// against a newer codec cannot silently feed this controller). Tenant
// checkpoints travel *verbatim* as the PR-5 snapshot codec words produced by
// Engine::SnapshotRun: migration's wire format IS the checkpoint format, and
// a restore on the target worker is bit-identical to never having moved.
//
// Control flow is strictly request/response per worker, with one exception:
// kMsgTick is broadcast to every worker before any kMsgTickDone is read, so
// workers step their live sessions in parallel across processes while the
// controller waits at the barrier. Everything that mutates placement
// (migration, shedding, failover restores) happens between ticks, when every
// worker is quiesced at the barrier — the "quiesce-at-tick-barrier →
// snapshot → ship → restore" migration state machine of DESIGN.md §3.12.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "snapshot/codec.h"
#include "workload/generator_spec.h"

namespace rrs {
namespace fleet {
namespace dist {

// Codec version of the *protocol* layer (bumped independently of the
// snapshot payload format, which carries its own header inside checkpoint
// words). Carried in kMsgHello so a mixed-version pool fails at handshake
// with both numbers in the message, not mid-run on a garbled frame.
// v2: TenantSpec carries source_id; kMsgAddSources ships GeneratorSpec
// tables so streaming tenants travel as O(colors) specs, not O(jobs)
// instances.
inline constexpr uint64_t kProtocolVersion = 2;

enum MsgType : uint64_t {
  kMsgHello = 1,           // worker -> ctl: index, pid, protocol, metrics port
  kMsgConfig = 2,          // ctl -> worker: WireConfig
  kMsgConfigAck = 3,       // worker -> ctl
  kMsgAddInstances = 4,    // ctl -> worker: deduplicated instance table slice
  kMsgAddTenants = 5,      // ctl -> worker: TenantSpec batch
  kMsgTick = 6,            // ctl -> worker (broadcast): advance one tick
  kMsgTickDone = 7,        // worker -> ctl: TickReport
  kMsgSnapshotTenant = 8,  // ctl -> worker: quiesced tenant -> checkpoint
  kMsgTenantSnapshot = 9,  // worker -> ctl: the checkpoint words
  kMsgRestoreTenant = 10,  // ctl -> worker: checkpoint words -> live session
  kMsgRestoreAck = 11,     // worker -> ctl
  kMsgShedTenant = 12,     // ctl -> worker: abort and discard a tenant
  kMsgShedAck = 13,        // worker -> ctl: partial progress at the cut
  kMsgShutdown = 14,       // ctl -> worker
  kMsgBye = 15,            // worker -> ctl: final stats
  kMsgAddSources = 16,     // ctl -> worker: deduplicated GeneratorSpec table
};

const char* MsgTypeName(uint64_t type);

// ---- Message bodies ------------------------------------------------------

struct HelloInfo {
  uint64_t worker_index = 0;
  uint64_t pid = 0;
  uint64_t protocol_version = kProtocolVersion;
  uint64_t metrics_port = 0;  // worker's own /metrics endpoint; 0 = none
};

struct WireConfig {
  Round rounds_per_tick = 64;
  uint64_t max_live_sessions = 0;  // per worker; 0 = unbounded
  uint32_t threads = 0;            // worker-internal pool threads; 0 = serial
  bool collect_results = true;     // ship full RunResults on completion
  bool report_slo = true;          // per-live-tenant progress rows per tick
  bool report_trace = false;       // per-round accumulator rows (digests)
  uint32_t checkpoint_interval_ticks = 0;  // 0 = no checkpoint stream
  bool serve_metrics = false;      // worker runs an ExportServer
  std::string policy;              // sched/registry name; empty = dlru-edf
};

// The subset of EngineOptions that travels (record_schedule and obs_scope
// are process-local concepts and rejected at AddJobs).
struct WireOptions {
  uint32_t num_resources = 1;
  int64_t mini_rounds_per_round = 1;
  uint64_t delta = 1;

  EngineOptions ToEngineOptions() const;
  static WireOptions From(const EngineOptions& options);
  friend bool operator==(const WireOptions&, const WireOptions&) = default;
};

// TenantSpec.source_id sentinel: the tenant is instance-fed.
inline constexpr uint32_t kNoSourceId = 0xffffffffu;

struct TenantSpec {
  uint64_t tenant = 0;       // global tenant id (job index)
  uint32_t instance_id = 0;  // into the shipped instance table
  // Streaming tenants reference the shipped GeneratorSpec table instead of
  // the instance table; the worker instantiates the ArrivalSource locally.
  uint32_t source_id = kNoSourceId;
  WireOptions options;
};

// Cumulative per-tenant progress at a tick barrier — exactly what the
// controller's SloTracker::Observe consumes.
struct TenantProgress {
  uint64_t tenant = 0;
  uint64_t rounds = 0;  // engine.next_round()
  uint64_t misses = 0;  // engine.run_cost().drops
};

// One simulated round of one tenant's mid-run accumulators — the golden
// trace digest unit (matches tests' TraceDigest fold).
struct TraceRow {
  uint64_t tenant = 0;
  uint64_t round = 0;
  uint64_t reconfigurations = 0;
  uint64_t drops = 0;
  uint64_t weighted_drops = 0;
  uint64_t executed = 0;
};

// A tenant checkpoint in flight: codec words + the round it was cut at.
struct TenantCheckpoint {
  uint64_t tenant = 0;
  uint64_t round = 0;
  std::vector<uint64_t> words;
};

struct TenantResult {
  uint64_t tenant = 0;
  RunResult result;
};

// kMsgTick broadcast body. `checkpoint` asks the worker to snapshot every
// still-live tenant after stepping — the checkpoint stream failover recovers
// from.
struct TickCmd {
  uint64_t tick = 0;
  bool checkpoint = false;
};

// Where a kMsgSnapshotTenant / kMsgShedTenant request found its tenant.
enum TenantState : uint64_t {
  kTenantMissing = 0,  // protocol bug: controller asked the wrong worker
  kTenantLive = 1,     // had an open run (snapshot words present)
  kTenantWaiting = 2,  // assigned but not yet admitted (nothing to snapshot)
};

// kMsgTenantSnapshot reply. words are present only for kTenantLive; a
// waiting tenant migrates by re-shipping its spec to the target instead.
struct SnapshotReply {
  uint64_t state = kTenantMissing;
  TenantCheckpoint checkpoint;
};

// kMsgShedAck reply: the tenant's progress at the cut (for the controller's
// shed accounting).
struct ShedInfo {
  uint64_t tenant = 0;
  uint64_t state = kTenantMissing;  // TenantState
  uint64_t rounds = 0;
  uint64_t misses = 0;
};

// kMsgBye body: worker lifetime totals.
struct WorkerStats {
  uint64_t ticks = 0;
  uint64_t sessions_completed = 0;
  uint64_t rounds_stepped = 0;
  uint64_t restores = 0;
  uint64_t snapshots = 0;
};

// Everything a worker reports at one tick barrier.
struct TickReport {
  uint64_t tick = 0;
  uint64_t rounds_stepped = 0;  // this tick, across live sessions
  uint64_t live = 0;            // after completions
  uint64_t waiting = 0;
  uint64_t tick_wall_ns = 0;    // step-phase wall time (overload signal)
  std::vector<TenantResult> completed;
  std::vector<TenantProgress> slo;        // still-live tenants, ascending id
  std::vector<TraceRow> trace;            // report_trace only
  std::vector<TenantCheckpoint> checkpoints;  // checkpoint stream, when due
};

// ---- Encoding ------------------------------------------------------------
//
// Writers append sections to a snapshot::Writer that the caller has
// Clear()ed; readers consume the mirror-image sections. All multi-row
// payloads are flat word runs inside one section — the codec checksums the
// lot.

void PutString(snapshot::Writer& w, const std::string& s);
std::string GetString(snapshot::Reader& r);

void PutHello(snapshot::Writer& w, const HelloInfo& hello);
HelloInfo GetHello(snapshot::Reader& r);

void PutConfig(snapshot::Writer& w, const WireConfig& config);
WireConfig GetConfig(snapshot::Reader& r);

void PutInstanceTable(snapshot::Writer& w,
                      const std::vector<const Instance*>& instances,
                      uint32_t first_id);
// Appends (id, instance) pairs decoded from one kMsgAddInstances payload.
void GetInstanceTable(snapshot::Reader& r,
                      std::vector<std::pair<uint32_t, Instance>>* out);

void PutTenantSpecs(snapshot::Writer& w,
                    const std::vector<TenantSpec>& specs);
void GetTenantSpecs(snapshot::Reader& r, std::vector<TenantSpec>* out);

// kMsgAddSources payload: `specs[i]` gets id `first_id + i` (the controller
// ships each new spec to every worker exactly once, in id order).
void PutSourceTable(snapshot::Writer& w,
                    const std::vector<const workload::GeneratorSpec*>& specs,
                    uint32_t first_id);
// Appends (id, spec) pairs decoded from one kMsgAddSources payload.
void GetSourceTable(
    snapshot::Reader& r,
    std::vector<std::pair<uint32_t, workload::GeneratorSpec>>* out);

void PutTickReport(snapshot::Writer& w, const TickReport& report);
void GetTickReport(snapshot::Reader& r, TickReport* out);

void PutCheckpoint(snapshot::Writer& w, const TenantCheckpoint& checkpoint);
void GetCheckpoint(snapshot::Reader& r, TenantCheckpoint* out);

void PutResult(snapshot::Writer& w, uint64_t tenant, const RunResult& result);
void GetResult(snapshot::Reader& r, TenantResult* out);

void PutTickCmd(snapshot::Writer& w, const TickCmd& cmd);
TickCmd GetTickCmd(snapshot::Reader& r);

// Single-tenant request body (kMsgSnapshotTenant, kMsgShedTenant).
void PutTenantId(snapshot::Writer& w, uint64_t tenant);
uint64_t GetTenantId(snapshot::Reader& r);

void PutSnapshotReply(snapshot::Writer& w, const SnapshotReply& reply);
void GetSnapshotReply(snapshot::Reader& r, SnapshotReply* out);

void PutShedInfo(snapshot::Writer& w, const ShedInfo& info);
ShedInfo GetShedInfo(snapshot::Reader& r);

void PutWorkerStats(snapshot::Writer& w, const WorkerStats& stats);
WorkerStats GetWorkerStats(snapshot::Reader& r);

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
