// DistController: the control plane of the sharded multi-process fleet.
//
// Start() forks one worker process per slot (fleet/dist/worker.h event
// loops, one Unix-domain socketpair each — forked *before* any thread
// exists in this process, so the children are single-threaded at birth).
// AddJobs ships a deduplicated instance table to every worker and places
// tenants with a deterministic least-outstanding policy; Run() drives
// lock-step global ticks: broadcast kMsgTick, collect every TickReport at
// the barrier, and fold the per-tenant rows into controller-side state —
//
//   - the SloTracker (fleet/slo.h): one Observe per live tenant per tick
//     from the report's cumulative (rounds, misses) rows. Tracking lives in
//     the controller precisely so it follows tenants across migrations and
//     failovers: per-tenant windows are a pure function of the observation
//     sequence, and a high-water-mark guard drops the re-observations a
//     checkpoint-rewound tenant replays, so the totals match a
//     never-migrated fleet exactly;
//   - optional golden-trace digests: per-round accumulator rows folded into
//     a per-tenant SHA-256 (the tests' TraceDigest format), again
//     migration-proof because the fold happens here, not on the worker;
//   - the checkpoint stream: every checkpoint_interval_ticks the workers
//     snapshot all live tenants and the controller keeps the latest words
//     per tenant — the recovery source for KillWorker failover.
//
// Placement changes only happen between ticks, when every worker is
// quiesced at the barrier:
//
//   migration   SnapshotTenant on the source (quiesce → snapshot), ship,
//               RestoreTenant on the target — the PR-5 codec words are the
//               wire format, so the move is bit-identical to staying put;
//   failover    KillWorker SIGKILLs a worker; its tenants restore from
//               their latest streamed checkpoint on the least-loaded
//               survivors (or restart from scratch if never checkpointed) —
//               deterministic re-execution makes results bit-identical;
//   shedding    scripted or burn-driven (shed_burn_threshold): tenants
//               whose SLO window burn exceeds the threshold are aborted at
//               the barrier — the admission-control overload valve.
//
// Determinism: worker count, thread counts, and tick pacing never change
// per-tenant results; the scripted event APIs (ScheduleMigration /
// ScheduleKill / ScheduleShed) pin *when* faults land so differential tests
// can replay them exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "fleet/dist/protocol.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "util/sha256.h"

namespace rrs {
namespace obs {
class Scope;
class ExportServer;
}  // namespace obs

namespace fleet {
namespace dist {

struct DistOptions {
  size_t num_workers = 2;
  // Per-worker configuration, shipped verbatim as kMsgConfig. The
  // controller drives the checkpoint cadence from
  // worker.checkpoint_interval_ticks (the flag rides on each kMsgTick).
  WireConfig worker;
  // Controller-side SLO tracking (requires worker.report_slo).
  bool track_slo = true;
  SloOptions slo;
  // Fold per-tenant golden-trace digests (requires worker.report_trace and
  // worker.collect_results; workers single-step rounds to emit the rows).
  bool trace_digests = false;
  // > 0: at each barrier, shed any tenant whose current-window burn
  // (misses / budget) exceeds this — overload admission control.
  double shed_burn_threshold = 0.0;
  // Absorbs dist.* counters and the SLO aggregate after Run (may be null).
  obs::Scope* scope = nullptr;
  // Controller ExportServer: /metrics (scope + SLO section), /tenants,
  // /workers. Started after the forks (children stay thread-free).
  bool serve_metrics = false;
  uint16_t metrics_port = 0;  // 0 = ephemeral
  // Per-frame deadline on worker replies; a wedged worker fails the run in
  // bounded time instead of hanging the controller.
  int64_t io_timeout_ms = 60000;
};

struct DistStats {
  uint64_t ticks = 0;
  uint64_t completed = 0;
  uint64_t rounds_stepped = 0;
  uint64_t migrations = 0;
  uint64_t kills = 0;
  uint64_t restored_from_checkpoint = 0;
  uint64_t restarted_from_scratch = 0;
  uint64_t shed = 0;
  uint64_t checkpoint_words = 0;
};

class DistController {
 public:
  explicit DistController(DistOptions options);
  ~DistController();  // Shutdown() if still running

  DistController(const DistController&) = delete;
  DistController& operator=(const DistController&) = delete;

  // Forks the workers and completes the Hello/Config handshake. False with
  // *error on failure. Call exactly once, before any threads exist in this
  // process (the forked children must be single-threaded).
  bool Start(std::string* error = nullptr);

  // Registers jobs (replay kind only; record_schedule and obs_scope do not
  // travel), ships new instances — and, for streaming jobs, new
  // GeneratorSpecs — to every worker, and places the tenants on the
  // least-outstanding workers. Callable between Start and Run.
  void AddJobs(std::span<const FleetJob> jobs);

  // Scripted fault plan, executed at the barrier after tick `tick` (1-based;
  // tick t means "after the fleet has stepped t round buckets").
  void ScheduleMigration(uint64_t tick, uint64_t tenant, size_t target);
  void ScheduleKill(uint64_t tick, size_t worker);
  void ScheduleShed(uint64_t tick, uint64_t tenant);

  // Ticks the fleet until every tenant is done or shed; returns one
  // RunResult per job in job order (shed tenants keep a default result —
  // see tenant_shed). Absorbs dist.* and SLO metrics into the scope.
  std::vector<RunResult> Run();

  // Orderly shutdown: kMsgShutdown to every live worker, collect Bye,
  // reap children. Idempotent; the destructor calls it.
  void Shutdown();

  size_t num_workers() const { return workers_.size(); }
  size_t alive_workers() const;
  const DistStats& stats() const { return stats_; }
  // Controller-side tracker (null unless track_slo). Valid after Run.
  const SloTracker* slo() const { return slo_.get(); }
  // 64-hex golden-trace digest of a completed tenant ("" unless
  // trace_digests and the tenant finished).
  std::string trace_digest(uint64_t tenant) const;
  bool tenant_shed(uint64_t tenant) const;
  uint16_t metrics_port() const;
  // Per-worker scrape ports (0 = worker has no exporter or is dead).
  std::vector<uint64_t> worker_metrics_ports() const;

 private:
  enum class Phase : uint8_t { kAssigned, kDone, kShed };

  struct Tenant {
    TenantSpec spec;
    // The tenant's shape for SLO accounting: the job's instance, or for
    // streaming tenants the shape() of the controller's local instantiation
    // of their spec (source_shapes_).
    const Instance* instance = nullptr;
    size_t worker = 0;
    Phase phase = Phase::kAssigned;
    // High-water marks: the failover-rewind guard. A tenant restored from
    // a checkpoint replays rounds the controller already folded; rows at or
    // below the mark are dropped so SLO windows and digests see every round
    // exactly once.
    uint64_t slo_hw = 0;
    uint64_t trace_hw = 0;
    Sha256 digest;
    std::string digest_hex;
    TenantCheckpoint checkpoint;  // latest streamed checkpoint
    bool has_checkpoint = false;
  };

  struct WorkerHandle {
    size_t index = 0;
    int64_t pid = 0;
    int fd = -1;
    bool alive = false;
    uint64_t metrics_port = 0;
    uint64_t outstanding = 0;  // assigned, not yet done/shed
    uint64_t live = 0;         // as of the last TickReport
    uint64_t waiting = 0;
    uint64_t tick_wall_ns = 0;
  };

  struct ScheduledEvent {
    uint64_t tick = 0;
    uint64_t tenant = 0;  // or worker index for kills
  };

  void SendTo(WorkerHandle& worker, uint64_t type);
  void Expect(WorkerHandle& worker, uint64_t want);
  size_t LeastOutstandingAlive(size_t exclude) const;
  void ProcessTickReport(WorkerHandle& worker, std::vector<RunResult>& results);
  bool MigrateTenant(uint64_t tenant, size_t target);
  void KillWorker(size_t worker);
  bool ShedTenant(uint64_t tenant);
  void PlaceTenant(Tenant& tenant, size_t target);
  void PublishWorkers();

  DistOptions options_;
  std::vector<WorkerHandle> workers_;
  std::vector<Tenant> tenants_;
  std::vector<std::pair<const Instance*, uint32_t>> instance_ids_;
  uint32_t next_instance_id_ = 0;
  // Streaming tenants: deduplicated GeneratorSpec table (by spec pointer,
  // mirroring instance dedup) plus one locally instantiated source per spec
  // — the controller never steps these; they exist so tenant.instance can
  // point at a shape (color table) for SLO Finish accounting.
  std::vector<std::pair<const workload::GeneratorSpec*, uint32_t>> source_ids_;
  std::vector<std::unique_ptr<workload::ArrivalSource>> source_shapes_;
  uint32_t next_source_id_ = 0;
  uint64_t tick_ = 0;
  uint64_t remaining_ = 0;  // tenants neither done nor shed
  std::vector<ScheduledEvent> migrations_;  // tenant + target packed below
  std::vector<size_t> migration_targets_;
  std::vector<ScheduledEvent> kills_;
  std::vector<ScheduledEvent> sheds_;
  std::unique_ptr<SloTracker> slo_;
  DistStats stats_;
  bool running_ = false;
  snapshot::Writer send_scratch_;
  std::vector<uint64_t> recv_scratch_;
  std::unique_ptr<obs::Scope> own_scope_;
  std::unique_ptr<obs::ExportServer> exporter_;
  // Scrape-visible copy of the worker table, refreshed at each barrier
  // under its own lock (the export thread reads while Run mutates).
  mutable std::mutex publish_mutex_;
  std::vector<WorkerHandle> published_workers_;
};

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
