#include "fleet/dist/worker.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/session.h"
#include "fleet/dist/protocol.h"
#include "net/socket.h"
#include "obs/export_server.h"
#include "obs/level.h"
#include "obs/scope.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "sched/registry.h"
#include "util/check.h"
#include "workload/arrival_source.h"
#include "workload/generator_spec.h"

namespace rrs {
namespace fleet {
namespace dist {

namespace {

uint64_t WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Session {
  Engine engine;
  std::unique_ptr<SchedulerPolicy> policy;
};

struct Live {
  std::unique_ptr<Session> session;
  TenantSpec spec;
  // Streaming tenants: the instantiated source the engine pulls from (the
  // engine holds a reference; null for instance-fed tenants).
  std::unique_ptr<workload::ArrivalSource> source;
};

// One shard: touched by exactly one thread per tick, so nothing here is
// synchronized. The scratch vectors are the shard's slice of the TickReport,
// merged (and sorted by tenant) at the barrier.
struct Shard {
  explicit Shard(SessionPool<Session>::Factory factory)
      : pool(std::move(factory)) {}

  SessionPool<Session> pool;
  std::vector<Live> live;

  // Per-tick scratch, cleared at the top of every step phase.
  std::vector<TenantResult> completed;
  std::vector<TenantProgress> slo;
  std::vector<TraceRow> trace;
  std::vector<TenantCheckpoint> checkpoints;
  uint64_t rounds_stepped = 0;
  snapshot::Writer snapshot_scratch;
};

class Worker {
 public:
  Worker(int fd, uint64_t index) : fd_(fd), index_(index) {}

  int Run() {
    if (!SendHello()) return 1;
    std::vector<uint64_t> payload;
    for (;;) {
      uint64_t type = 0;
      std::string error;
      if (!net::RecvFrame(fd_, &type, &payload, net::Deadline::Infinite(),
                          &error)) {
        // Clean EOF (empty error) = controller went away without Shutdown —
        // e.g. a controller crash. Exit quietly; anything else is a wire
        // fault worth a nonzero exit.
        return error.empty() ? 0 : 1;
      }
      snapshot::Reader reader(payload);
      switch (type) {
        case kMsgConfig:
          HandleConfig(reader);
          break;
        case kMsgAddInstances:
          HandleAddInstances(reader);
          break;
        case kMsgAddTenants:
          HandleAddTenants(reader);
          break;
        case kMsgAddSources:
          HandleAddSources(reader);
          break;
        case kMsgTick:
          HandleTick(reader);
          break;
        case kMsgSnapshotTenant:
          HandleSnapshotTenant(reader);
          break;
        case kMsgRestoreTenant:
          HandleRestoreTenant(reader);
          break;
        case kMsgShedTenant:
          HandleShedTenant(reader);
          break;
        case kMsgShutdown:
          reply_.Clear();
          PutWorkerStats(reply_, stats_);
          Send(kMsgBye);
          return 0;
        default:
          RRS_CHECK(false) << "worker " << index_ << ": unexpected frame "
                           << MsgTypeName(type) << " (" << type << ")";
      }
      RRS_CHECK(reader.AtEnd())
          << "worker " << index_ << ": trailing words after "
          << MsgTypeName(type);
    }
  }

 private:
  bool SendHello() {
    HelloInfo hello;
    hello.worker_index = index_;
    hello.pid = static_cast<uint64_t>(::getpid());
    hello.protocol_version = kProtocolVersion;
    reply_.Clear();
    PutHello(reply_, hello);
    return net::SendFrame(fd_, kMsgHello, reply_.words());
  }

  void Send(uint64_t type) {
    RRS_CHECK(net::SendFrame(fd_, type, reply_.words()))
        << "worker " << index_ << ": send " << MsgTypeName(type) << " failed";
  }

  void HandleConfig(snapshot::Reader& reader) {
    RRS_CHECK(shards_.empty()) << "duplicate Config";
    config_ = GetConfig(reader);
    RRS_CHECK_GE(config_.rounds_per_tick, 1);
    const std::string policy =
        config_.policy.empty() ? std::string("dlru-edf") : config_.policy;
    // Every session gets its own policy instance from the registry; a
    // restored tenant resumes on a fresh one (RestoreRun reloads its state).
    auto factory = [policy] {
      auto session = std::make_unique<Session>();
      session->policy = MakePolicy(policy);
      RRS_CHECK(session->policy != nullptr)
          << "unknown policy in worker config: " << policy;
      return session;
    };
    const size_t num_shards = std::max<uint32_t>(1, config_.threads);
    shards_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(factory));
    }
    if (config_.threads > 0) {
      pool_ = std::make_unique<ThreadPool>(config_.threads);
    }
    uint64_t metrics_port = 0;
    if (config_.serve_metrics && obs::kEnabled) {
      scope_ = std::make_unique<obs::Scope>();
      obs::ExportServer::Options server;
      server.scope = scope_.get();
      server.prefix = "rrs_worker";
      exporter_ = std::make_unique<obs::ExportServer>(std::move(server));
      std::string error;
      RRS_CHECK(exporter_->Start(&error))
          << "worker " << index_ << " metrics server: " << error;
      metrics_port = exporter_->port();
    }
    HelloInfo ack;
    ack.worker_index = index_;
    ack.pid = static_cast<uint64_t>(::getpid());
    ack.metrics_port = metrics_port;
    reply_.Clear();
    PutHello(reply_, ack);
    Send(kMsgConfigAck);
  }

  void HandleAddInstances(snapshot::Reader& reader) {
    std::vector<std::pair<uint32_t, Instance>> decoded;
    GetInstanceTable(reader, &decoded);
    for (auto& [id, instance] : decoded) {
      // std::map nodes are address-stable: engines keep Instance pointers
      // across rebinds, so the table must never relocate.
      const auto [it, inserted] = instances_.emplace(id, std::move(instance));
      RRS_CHECK(inserted) << "duplicate instance id " << id;
      (void)it;
    }
    reply_.Clear();
    PutTenantId(reply_, decoded.size());
    Send(kMsgConfigAck);
  }

  void HandleAddTenants(snapshot::Reader& reader) {
    GetTenantSpecs(reader, &waiting_);
    reply_.Clear();
    PutTenantId(reply_, waiting_.size());
    Send(kMsgConfigAck);
  }

  void HandleAddSources(snapshot::Reader& reader) {
    std::vector<std::pair<uint32_t, workload::GeneratorSpec>> decoded;
    GetSourceTable(reader, &decoded);
    for (auto& [id, spec] : decoded) {
      const auto [it, inserted] = sources_.emplace(id, std::move(spec));
      RRS_CHECK(inserted) << "duplicate source id " << id;
      (void)it;
    }
    reply_.Clear();
    PutTenantId(reply_, decoded.size());
    Send(kMsgConfigAck);
  }

  const Instance& InstanceOf(const TenantSpec& spec) const {
    const auto it = instances_.find(spec.instance_id);
    RRS_CHECK(it != instances_.end())
        << "tenant " << spec.tenant << " references unknown instance "
        << spec.instance_id;
    return it->second;
  }

  // Instantiates a streaming tenant's source from the shipped spec table
  // (null for instance-fed tenants). The spec is deterministic, so every
  // instantiation — admission here, restore on a migration target — yields
  // the same stream.
  std::unique_ptr<workload::ArrivalSource> SourceOf(
      const TenantSpec& spec) const {
    if (spec.source_id == kNoSourceId) return nullptr;
    const auto it = sources_.find(spec.source_id);
    RRS_CHECK(it != sources_.end())
        << "tenant " << spec.tenant << " references unknown source "
        << spec.source_id;
    return workload::MakeSource(it->second);
  }

  size_t TotalLive() const {
    size_t live = 0;
    for (const auto& shard : shards_) live += shard->live.size();
    return live;
  }

  void HandleTick(snapshot::Reader& reader) {
    RRS_CHECK(!shards_.empty()) << "Tick before Config";
    const TickCmd cmd = GetTickCmd(reader);

    // ---- Admit: bind waiting tenants to pooled sessions, round-robin over
    // shards in admission order, up to the worker-wide live cap. ----
    size_t total_live = TotalLive();
    size_t admitted = 0;
    while (admitted < waiting_.size() &&
           (config_.max_live_sessions == 0 ||
            total_live < config_.max_live_sessions)) {
      const TenantSpec& spec = waiting_[admitted++];
      Shard& shard = *shards_[admit_counter_++ % shards_.size()];
      auto session = shard.pool.Acquire();
      std::unique_ptr<workload::ArrivalSource> source = SourceOf(spec);
      if (source != nullptr) {
        session->engine.Reset(*source, spec.options.ToEngineOptions());
      } else {
        session->engine.Reset(InstanceOf(spec),
                              spec.options.ToEngineOptions());
      }
      session->engine.BeginRun(*session->policy);
      shard.live.push_back({std::move(session), spec, std::move(source)});
      ++total_live;
    }
    waiting_.erase(waiting_.begin(),
                   waiting_.begin() + static_cast<ptrdiff_t>(admitted));

    // ---- Step: every shard advances its live sessions one round bucket;
    // shards run in parallel on the internal pool, each touched by exactly
    // one thread. ----
    const uint64_t step_start = WallNs();
    auto step_shard = [&](int64_t s) {
      StepShard(*shards_[static_cast<size_t>(s)], cmd.checkpoint);
    };
    if (pool_ != nullptr) {
      ParallelFor(*pool_, 0, static_cast<int64_t>(shards_.size()), step_shard);
    } else {
      for (int64_t s = 0; s < static_cast<int64_t>(shards_.size()); ++s) {
        step_shard(s);
      }
    }
    const uint64_t tick_wall_ns = WallNs() - step_start;

    // ---- Barrier: merge shard slices into one report, sorted by tenant so
    // the controller's view is shard-count-invariant. ----
    TickReport report;
    report.tick = cmd.tick;
    report.tick_wall_ns = tick_wall_ns;
    report.waiting = waiting_.size();
    for (auto& shard : shards_) {
      report.rounds_stepped += shard->rounds_stepped;
      report.live += shard->live.size();
      std::move(shard->completed.begin(), shard->completed.end(),
                std::back_inserter(report.completed));
      report.slo.insert(report.slo.end(), shard->slo.begin(),
                        shard->slo.end());
      report.trace.insert(report.trace.end(), shard->trace.begin(),
                          shard->trace.end());
      std::move(shard->checkpoints.begin(), shard->checkpoints.end(),
                std::back_inserter(report.checkpoints));
    }
    auto by_tenant = [](const auto& a, const auto& b) {
      return a.tenant < b.tenant;
    };
    std::sort(report.completed.begin(), report.completed.end(), by_tenant);
    std::sort(report.slo.begin(), report.slo.end(), by_tenant);
    // Trace rows: per-tenant round order is already ascending within a
    // shard; stable sort keeps it while grouping tenants.
    std::stable_sort(report.trace.begin(), report.trace.end(), by_tenant);
    std::sort(report.checkpoints.begin(), report.checkpoints.end(),
              by_tenant);

    ++stats_.ticks;
    stats_.rounds_stepped += report.rounds_stepped;
    stats_.sessions_completed += report.completed.size();
    stats_.snapshots += report.checkpoints.size();
    if (scope_ != nullptr) {
      const std::pair<std::string_view, uint64_t> counters[] = {
          {"dist.worker.ticks", 1},
          {"dist.worker.rounds_stepped", report.rounds_stepped},
          {"dist.worker.completed", report.completed.size()},
          {"dist.worker.checkpoints", report.checkpoints.size()},
      };
      scope_->AbsorbCounters(counters);
      scope_->AbsorbGauge("dist.worker.live",
                          static_cast<double>(report.live));
      scope_->AbsorbGauge("dist.worker.waiting",
                          static_cast<double>(report.waiting));
    }

    reply_.Clear();
    PutTickReport(reply_, report);
    Send(kMsgTickDone);
  }

  void StepShard(Shard& shard, bool checkpoint) {
    shard.completed.clear();
    shard.slo.clear();
    shard.trace.clear();
    shard.checkpoints.clear();
    shard.rounds_stepped = 0;
    size_t out = 0;
    for (size_t i = 0; i < shard.live.size(); ++i) {
      Live& entry = shard.live[i];
      Engine& engine = entry.session->engine;
      const Round before = engine.next_round();
      bool more = true;
      if (config_.report_trace) {
        // Single-round stepping with one trace row per round: the exact
        // fold the golden-trace digests hash, resumable across migrations
        // because every row carries its round.
        for (Round r = 0; more && r < config_.rounds_per_tick; ++r) {
          more = engine.StepRounds(1);
          const CostBreakdown& cost = engine.run_cost();
          shard.trace.push_back({entry.spec.tenant,
                                 static_cast<uint64_t>(engine.next_round()),
                                 cost.reconfigurations, cost.drops,
                                 cost.weighted_drops, engine.run_executed()});
        }
      } else {
        more = engine.StepRounds(config_.rounds_per_tick);
      }
      shard.rounds_stepped +=
          static_cast<uint64_t>(engine.next_round() - before);
      if (more) {
        if (config_.report_slo) {
          shard.slo.push_back({entry.spec.tenant,
                               static_cast<uint64_t>(engine.next_round()),
                               engine.run_cost().drops});
        }
        if (checkpoint) {
          shard.snapshot_scratch.Clear();
          engine.SnapshotRun(shard.snapshot_scratch);
          // Streaming tenants: the source's own sections ride in the same
          // checkpoint words, right after the engine's (RestoreRun consumes
          // them through its source_state reader).
          if (entry.source != nullptr) {
            entry.source->SaveState(shard.snapshot_scratch);
          }
          shard.checkpoints.push_back(
              {entry.spec.tenant, static_cast<uint64_t>(engine.next_round()),
               shard.snapshot_scratch.words()});
        }
        if (out != i) shard.live[out] = std::move(shard.live[i]);
        ++out;
      } else {
        TenantResult done;
        done.tenant = entry.spec.tenant;
        engine.FinishRun(done.result);
        if (!config_.collect_results) {
          // Completion signal only: keep the scalars (cheap, and enough for
          // the controller's accounting), drop the per-color vectors and
          // counter map that dominate the wire at 1M tenants.
          done.result.drops_per_color.clear();
          done.result.telemetry = obs::Telemetry();
        }
        shard.completed.push_back(std::move(done));
        shard.pool.Release(std::move(entry.session));
      }
    }
    shard.live.resize(out);
  }

  // Finds a live tenant; returns (shard, index) or (nullptr, 0).
  std::pair<Shard*, size_t> FindLive(uint64_t tenant) {
    for (auto& shard : shards_) {
      for (size_t i = 0; i < shard->live.size(); ++i) {
        if (shard->live[i].spec.tenant == tenant) return {shard.get(), i};
      }
    }
    return {nullptr, 0};
  }

  void RemoveLive(Shard& shard, size_t index) {
    shard.live[index] = std::move(shard.live.back());
    shard.live.pop_back();
  }

  void HandleSnapshotTenant(snapshot::Reader& reader) {
    const uint64_t tenant = GetTenantId(reader);
    SnapshotReply out;
    out.checkpoint.tenant = tenant;
    auto [shard, index] = FindLive(tenant);
    if (shard != nullptr) {
      Live& entry = shard->live[index];
      out.state = kTenantLive;
      out.checkpoint.round =
          static_cast<uint64_t>(entry.session->engine.next_round());
      shard->snapshot_scratch.Clear();
      entry.session->engine.SnapshotRun(shard->snapshot_scratch);
      if (entry.source != nullptr) {
        entry.source->SaveState(shard->snapshot_scratch);
      }
      entry.session->engine.AbortRun();
      out.checkpoint.words = shard->snapshot_scratch.words();
      shard->pool.Release(std::move(entry.session));
      RemoveLive(*shard, index);
      ++stats_.snapshots;
    } else {
      const auto it = std::find_if(
          waiting_.begin(), waiting_.end(),
          [tenant](const TenantSpec& spec) { return spec.tenant == tenant; });
      if (it != waiting_.end()) {
        out.state = kTenantWaiting;
        waiting_.erase(it);
      }
    }
    reply_.Clear();
    PutSnapshotReply(reply_, out);
    Send(kMsgTenantSnapshot);
  }

  void HandleRestoreTenant(snapshot::Reader& reader) {
    RRS_CHECK(!shards_.empty()) << "Restore before Config";
    std::vector<TenantSpec> specs;
    GetTenantSpecs(reader, &specs);
    RRS_CHECK_EQ(specs.size(), 1u);
    TenantCheckpoint checkpoint;
    GetCheckpoint(reader, &checkpoint);
    RRS_CHECK_EQ(specs[0].tenant, checkpoint.tenant);
    const TenantSpec& spec = specs[0];
    // Restores are exempt from the live cap: a checkpointed tenant must
    // come back regardless of load (same rule as ChaosFleetRunner).
    Shard& shard = *shards_[admit_counter_++ % shards_.size()];
    auto session = shard.pool.Acquire();
    std::unique_ptr<workload::ArrivalSource> source = SourceOf(spec);
    snapshot::Reader words(checkpoint.words);
    if (source != nullptr) {
      // The source's saved sections sit right after the engine's in the
      // same word stream; passing the reader as its own source_state makes
      // RestoreRun consume them in place (O(source state), no replay).
      session->engine.Reset(*source, spec.options.ToEngineOptions());
      session->engine.RestoreRun(*session->policy, words, &words);
    } else {
      session->engine.Reset(InstanceOf(spec), spec.options.ToEngineOptions());
      session->engine.RestoreRun(*session->policy, words);
    }
    RRS_CHECK(words.AtEnd()) << "trailing words in tenant checkpoint";
    shard.live.push_back({std::move(session), spec, std::move(source)});
    ++stats_.restores;
    reply_.Clear();
    PutTenantId(reply_, spec.tenant);
    Send(kMsgRestoreAck);
  }

  void HandleShedTenant(snapshot::Reader& reader) {
    const uint64_t tenant = GetTenantId(reader);
    ShedInfo info;
    info.tenant = tenant;
    auto [shard, index] = FindLive(tenant);
    if (shard != nullptr) {
      Live& entry = shard->live[index];
      info.state = kTenantLive;
      info.rounds = static_cast<uint64_t>(entry.session->engine.next_round());
      info.misses = entry.session->engine.run_cost().drops;
      entry.session->engine.AbortRun();
      shard->pool.Release(std::move(entry.session));
      RemoveLive(*shard, index);
    } else {
      const auto it = std::find_if(
          waiting_.begin(), waiting_.end(),
          [tenant](const TenantSpec& spec) { return spec.tenant == tenant; });
      if (it != waiting_.end()) {
        info.state = kTenantWaiting;
        waiting_.erase(it);
      }
    }
    reply_.Clear();
    PutShedInfo(reply_, info);
    Send(kMsgShedAck);
  }

  const int fd_;
  const uint64_t index_;
  WireConfig config_;
  std::map<uint32_t, Instance> instances_;
  std::map<uint32_t, workload::GeneratorSpec> sources_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<TenantSpec> waiting_;  // admission order
  size_t admit_counter_ = 0;         // shard round-robin cursor
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::Scope> scope_;
  std::unique_ptr<obs::ExportServer> exporter_;
  WorkerStats stats_;
  snapshot::Writer reply_;
};

}  // namespace

int WorkerMain(int fd, uint64_t worker_index) {
  Worker worker(fd, worker_index);
  return worker.Run();
}

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
