#include "fleet/dist/controller.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "fleet/dist/worker.h"
#include "net/socket.h"
#include "obs/export_server.h"
#include "obs/level.h"
#include "obs/scope.h"
#include "util/check.h"

namespace rrs {
namespace fleet {
namespace dist {

DistController::DistController(DistOptions options)
    : options_(std::move(options)) {
  RRS_CHECK_GE(options_.num_workers, 1u);
  RRS_CHECK_GE(options_.worker.rounds_per_tick, 1);
  if (options_.track_slo) {
    RRS_CHECK(options_.worker.report_slo)
        << "track_slo needs worker.report_slo progress rows";
    slo_ = std::make_unique<SloTracker>(options_.slo);
  }
  if (options_.trace_digests) {
    RRS_CHECK(options_.worker.report_trace)
        << "trace_digests needs worker.report_trace rows";
    RRS_CHECK(options_.worker.collect_results)
        << "trace_digests folds the final result (collect_results)";
  }
  if (options_.shed_burn_threshold > 0) {
    RRS_CHECK(options_.track_slo)
        << "burn-driven shedding needs the SLO tracker";
  }
}

DistController::~DistController() { Shutdown(); }

bool DistController::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    Shutdown();
    return false;
  };
  RRS_CHECK(!running_ && workers_.empty()) << "Start called twice";
  workers_.resize(options_.num_workers);
  // Fork every worker before anything in this process spawns a thread (the
  // export server comes after): the children must be single-threaded, both
  // for fork-safety and for TSan's multi-threaded-fork restriction.
  for (size_t w = 0; w < options_.num_workers; ++w) {
    int fds[2];
    std::string pair_error;
    if (!net::UnixStreamPair(fds, &pair_error)) return fail(pair_error);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return fail("fork failed");
    }
    if (pid == 0) {
      // Child: drop every inherited controller-side fd, run the event
      // loop, and never return into the controller's stack.
      ::close(fds[0]);
      for (size_t e = 0; e < w; ++e) ::close(workers_[e].fd);
      ::_exit(WorkerMain(fds[1], w));
    }
    ::close(fds[1]);
    workers_[w].index = w;
    workers_[w].pid = pid;
    workers_[w].fd = fds[0];
    workers_[w].alive = true;
  }
  running_ = true;
  // Handshake: Hello (protocol version check), then Config / ConfigAck.
  const net::Deadline deadline = net::Deadline::In(options_.io_timeout_ms);
  for (WorkerHandle& worker : workers_) {
    uint64_t type = 0;
    std::string recv_error;
    if (!net::RecvFrame(worker.fd, &type, &recv_scratch_, deadline,
                        &recv_error)) {
      return fail("worker " + std::to_string(worker.index) +
                  " hello: " + (recv_error.empty() ? "closed" : recv_error));
    }
    if (type != kMsgHello) return fail("handshake: expected Hello");
    snapshot::Reader reader(recv_scratch_);
    const HelloInfo hello = GetHello(reader);
    if (hello.protocol_version != kProtocolVersion) {
      return fail("worker " + std::to_string(worker.index) +
                  " speaks protocol " +
                  std::to_string(hello.protocol_version) +
                  ", controller speaks " + std::to_string(kProtocolVersion));
    }
  }
  for (WorkerHandle& worker : workers_) {
    send_scratch_.Clear();
    PutConfig(send_scratch_, options_.worker);
    SendTo(worker, kMsgConfig);
    Expect(worker, kMsgConfigAck);
    snapshot::Reader reader(recv_scratch_);
    worker.metrics_port = GetHello(reader).metrics_port;
  }
  if (options_.serve_metrics && obs::kEnabled) {
    obs::Scope* scope = options_.scope;
    if (scope == nullptr) {
      own_scope_ = std::make_unique<obs::Scope>();
      scope = own_scope_.get();
    }
    obs::ExportServer::Options server;
    server.port = options_.metrics_port;
    server.scope = scope;
    exporter_ = std::make_unique<obs::ExportServer>(std::move(server));
    if (slo_ != nullptr) {
      SloTracker* tracker = slo_.get();
      exporter_->AddMetricsSection(
          [tracker] { return tracker->RenderPrometheus(); });
      exporter_->Handle("/tenants", "application/json",
                        [tracker] { return tracker->TenantsJson(); });
    }
    exporter_->Handle("/workers", "application/json", [this] {
      std::lock_guard<std::mutex> lock(publish_mutex_);
      std::string json = "[";
      for (size_t w = 0; w < published_workers_.size(); ++w) {
        const WorkerHandle& worker = published_workers_[w];
        if (w > 0) json += ",";
        json += "{\"worker\":" + std::to_string(worker.index) +
                ",\"pid\":" + std::to_string(worker.pid) +
                ",\"alive\":" + (worker.alive ? "true" : "false") +
                ",\"live\":" + std::to_string(worker.live) +
                ",\"waiting\":" + std::to_string(worker.waiting) +
                ",\"outstanding\":" + std::to_string(worker.outstanding) +
                ",\"tick_wall_ns\":" + std::to_string(worker.tick_wall_ns) +
                ",\"metrics_port\":" + std::to_string(worker.metrics_port) +
                "}";
      }
      return json + "]\n";
    });
    std::string server_error;
    if (!exporter_->Start(&server_error)) {
      return fail("controller metrics server: " + server_error);
    }
  }
  PublishWorkers();
  return true;
}

void DistController::SendTo(WorkerHandle& worker, uint64_t type) {
  RRS_CHECK(worker.alive);
  RRS_CHECK(net::SendFrame(worker.fd, type, send_scratch_.words()))
      << "send " << MsgTypeName(type) << " to worker " << worker.index
      << " failed";
}

void DistController::Expect(WorkerHandle& worker, uint64_t want) {
  uint64_t type = 0;
  std::string error;
  RRS_CHECK(net::RecvFrame(worker.fd, &type, &recv_scratch_,
                           net::Deadline::In(options_.io_timeout_ms), &error))
      << "worker " << worker.index << ": "
      << (error.empty() ? "closed connection" : error) << " while waiting for "
      << MsgTypeName(want);
  RRS_CHECK_EQ(type, want)
      << "worker " << worker.index << ": expected " << MsgTypeName(want)
      << ", got " << MsgTypeName(type);
}

void DistController::AddJobs(std::span<const FleetJob> jobs) {
  RRS_CHECK(running_) << "AddJobs before Start";
  RRS_CHECK_EQ(tick_, 0u) << "AddJobs after Run";
  // Dedup instances and generator specs by pointer and ship the new ones to
  // *every* worker: a migration target must already hold the instance (or
  // spec) when the checkpoint words arrive.
  std::vector<const Instance*> new_instances;
  std::vector<const workload::GeneratorSpec*> new_sources;
  const uint32_t first_id = next_instance_id_;
  const uint32_t first_source_id = next_source_id_;
  const size_t first_tenant = tenants_.size();
  tenants_.reserve(tenants_.size() + jobs.size());
  for (const FleetJob& job : jobs) {
    RRS_CHECK(job.kind == FleetJob::Kind::kReplay)
        << "dist fleet runs replay tenants only";
    RRS_CHECK(!job.options.record_schedule)
        << "recorded schedules cannot be snapshotted or shipped";
    RRS_CHECK(job.options.obs_scope == nullptr)
        << "per-job obs scopes are process-local";
    Tenant tenant;
    tenant.spec.tenant = tenants_.size();
    tenant.spec.options = WireOptions::From(job.options);
    if (job.instance != nullptr) {
      uint32_t id = 0;
      const auto it = std::find_if(
          instance_ids_.begin(), instance_ids_.end(),
          [&](const auto& entry) { return entry.first == job.instance; });
      if (it != instance_ids_.end()) {
        id = it->second;
      } else {
        id = next_instance_id_++;
        instance_ids_.emplace_back(job.instance, id);
        new_instances.push_back(job.instance);
      }
      tenant.spec.instance_id = id;
      tenant.instance = job.instance;
    } else {
      // Streaming tenant: only a GeneratorSpec travels (a make_source
      // closure cannot ship to a worker process).
      RRS_CHECK(job.source_spec != nullptr)
          << "dist streaming tenants need a GeneratorSpec";
      uint32_t id = 0;
      const auto it = std::find_if(
          source_ids_.begin(), source_ids_.end(),
          [&](const auto& entry) { return entry.first == job.source_spec; });
      if (it != source_ids_.end()) {
        id = it->second;
      } else {
        id = next_source_id_++;
        source_ids_.emplace_back(job.source_spec, id);
        source_shapes_.push_back(workload::MakeSource(*job.source_spec));
        new_sources.push_back(job.source_spec);
      }
      tenant.spec.source_id = id;
      tenant.instance = &source_shapes_[id]->shape();
    }
    tenants_.push_back(std::move(tenant));
    ++remaining_;
  }
  if (!new_instances.empty()) {
    for (WorkerHandle& worker : workers_) {
      if (!worker.alive) continue;
      send_scratch_.Clear();
      PutInstanceTable(send_scratch_, new_instances, first_id);
      SendTo(worker, kMsgAddInstances);
      Expect(worker, kMsgConfigAck);
    }
  }
  if (!new_sources.empty()) {
    for (WorkerHandle& worker : workers_) {
      if (!worker.alive) continue;
      send_scratch_.Clear();
      PutSourceTable(send_scratch_, new_sources, first_source_id);
      SendTo(worker, kMsgAddSources);
      Expect(worker, kMsgConfigAck);
    }
  }
  // Deterministic load-aware placement: each tenant goes to the alive
  // worker with the fewest outstanding tenants (ties to the lowest index).
  std::vector<std::vector<TenantSpec>> batches(workers_.size());
  for (size_t t = first_tenant; t < tenants_.size(); ++t) {
    const size_t target = LeastOutstandingAlive(workers_.size());
    tenants_[t].worker = target;
    ++workers_[target].outstanding;
    batches[target].push_back(tenants_[t].spec);
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (batches[w].empty()) continue;
    send_scratch_.Clear();
    PutTenantSpecs(send_scratch_, batches[w]);
    SendTo(workers_[w], kMsgAddTenants);
    Expect(workers_[w], kMsgConfigAck);
  }
  if (slo_ != nullptr) slo_->Bind(tenants_.size(), 1);
}

size_t DistController::LeastOutstandingAlive(size_t exclude) const {
  size_t best = workers_.size();
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].alive || w == exclude) continue;
    if (best == workers_.size() ||
        workers_[w].outstanding < workers_[best].outstanding) {
      best = w;
    }
  }
  RRS_CHECK_LT(best, workers_.size()) << "no alive worker to place on";
  return best;
}

void DistController::ScheduleMigration(uint64_t tick, uint64_t tenant,
                                       size_t target) {
  migrations_.push_back({tick, tenant});
  migration_targets_.push_back(target);
}

void DistController::ScheduleKill(uint64_t tick, size_t worker) {
  kills_.push_back({tick, worker});
}

void DistController::ScheduleShed(uint64_t tick, uint64_t tenant) {
  sheds_.push_back({tick, tenant});
}

void DistController::ProcessTickReport(WorkerHandle& worker,
                                       std::vector<RunResult>& results) {
  snapshot::Reader reader(recv_scratch_);
  TickReport report;
  GetTickReport(reader, &report);
  RRS_CHECK(reader.AtEnd());
  RRS_CHECK_EQ(report.tick, tick_);
  stats_.rounds_stepped += report.rounds_stepped;
  worker.live = report.live;
  worker.waiting = report.waiting;
  worker.tick_wall_ns = report.tick_wall_ns;
  // Progress rows fold before completions: a tenant finishing this tick has
  // its last per-round trace rows in this same report, and the digest's
  // completion epilogue must come after them.
  for (const TenantProgress& row : report.slo) {
    Tenant& tenant = tenants_[row.tenant];
    // High-water guard: a failover-rewound tenant re-reports rounds the
    // tracker has already counted; observing them again would double-count
    // (and wrap the tracker's unsigned deltas).
    if (slo_ != nullptr && row.rounds > tenant.slo_hw) {
      slo_->Observe(0, row.tenant, row.rounds, row.misses);
      tenant.slo_hw = row.rounds;
    }
  }
  if (options_.trace_digests) {
    for (const TraceRow& row : report.trace) {
      Tenant& tenant = tenants_[row.tenant];
      if (row.round <= tenant.trace_hw) continue;  // failover replay
      tenant.digest.UpdateU64(row.round);
      tenant.digest.UpdateU64(row.reconfigurations);
      tenant.digest.UpdateU64(row.drops);
      tenant.digest.UpdateU64(row.weighted_drops);
      tenant.digest.UpdateU64(row.executed);
      tenant.trace_hw = row.round;
    }
  }
  for (TenantResult& done : report.completed) {
    Tenant& tenant = tenants_[done.tenant];
    RRS_CHECK(tenant.phase == Phase::kAssigned)
        << "tenant " << done.tenant << " completed twice";
    tenant.phase = Phase::kDone;
    tenant.has_checkpoint = false;
    tenant.checkpoint.words.clear();
    results[done.tenant] = std::move(done.result);
    --remaining_;
    --worker.outstanding;
    ++stats_.completed;
    if (slo_ != nullptr) {
      slo_->Finish(0, done.tenant, *tenant.instance, results[done.tenant]);
    }
    if (options_.trace_digests) {
      // Completion epilogue of the TraceDigest fold.
      const RunResult& result = results[done.tenant];
      tenant.digest.UpdateU64(result.arrived);
      tenant.digest.UpdateU64(result.executed);
      for (uint64_t d : result.drops_per_color) tenant.digest.UpdateU64(d);
      tenant.digest_hex = tenant.digest.FinishHex();
    }
  }
  for (TenantCheckpoint& checkpoint : report.checkpoints) {
    Tenant& tenant = tenants_[checkpoint.tenant];
    stats_.checkpoint_words += checkpoint.words.size();
    tenant.checkpoint = std::move(checkpoint);
    tenant.has_checkpoint = true;
  }
}

std::vector<RunResult> DistController::Run() {
  RRS_CHECK(running_) << "Run before Start";
  std::vector<RunResult> results(tenants_.size());
  obs::Scope* scope = options_.scope != nullptr ? options_.scope
                                                : own_scope_.get();
  const uint32_t checkpoint_interval =
      options_.worker.checkpoint_interval_ticks;
  while (remaining_ > 0) {
    RRS_CHECK_GT(alive_workers(), 0u) << "all workers dead with tenants left";
    ++tick_;
    TickCmd cmd;
    cmd.tick = tick_;
    cmd.checkpoint =
        checkpoint_interval > 0 && tick_ % checkpoint_interval == 0;
    // Broadcast first, then collect: workers step in parallel across
    // processes while the controller waits at the barrier.
    send_scratch_.Clear();
    PutTickCmd(send_scratch_, cmd);
    for (WorkerHandle& worker : workers_) {
      if (worker.alive) SendTo(worker, kMsgTick);
    }
    uint64_t tick_rounds = stats_.rounds_stepped;
    for (WorkerHandle& worker : workers_) {
      if (!worker.alive) continue;
      Expect(worker, kMsgTickDone);
      ProcessTickReport(worker, results);
    }
    tick_rounds = stats_.rounds_stepped - tick_rounds;
    ++stats_.ticks;
    if (slo_ != nullptr) slo_->Publish(0);
    // Scripted faults land here, with every worker quiesced at the barrier.
    for (const ScheduledEvent& kill : kills_) {
      if (kill.tick == tick_ && workers_[kill.tenant].alive) {
        KillWorker(kill.tenant);
      }
    }
    for (size_t m = 0; m < migrations_.size(); ++m) {
      if (migrations_[m].tick == tick_) {
        MigrateTenant(migrations_[m].tenant, migration_targets_[m]);
      }
    }
    for (const ScheduledEvent& shed : sheds_) {
      if (shed.tick == tick_) ShedTenant(shed.tenant);
    }
    if (options_.shed_burn_threshold > 0 && slo_ != nullptr) {
      const SloTracker::Snapshot snap = slo_->SnapshotShard(0);
      for (const SloTracker::TenantBurn& burn : snap.top) {
        if (burn.burn > options_.shed_burn_threshold) {
          ShedTenant(burn.tenant);
        }
      }
    }
    if (scope != nullptr && obs::kEnabled) {
      const std::pair<std::string_view, uint64_t> counters[] = {
          {"dist.ticks", 1},
          {"dist.rounds_stepped", tick_rounds},
      };
      scope->AbsorbCounters(counters);
      scope->AbsorbGauge("dist.remaining", static_cast<double>(remaining_));
    }
    PublishWorkers();
  }
  if (scope != nullptr && obs::kEnabled) {
    const std::pair<std::string_view, uint64_t> counters[] = {
        {"dist.completed", stats_.completed},
        {"dist.migrations", stats_.migrations},
        {"dist.kills", stats_.kills},
        {"dist.failover_restores", stats_.restored_from_checkpoint},
        {"dist.failover_restarts", stats_.restarted_from_scratch},
        {"dist.shed", stats_.shed},
        {"dist.checkpoint_words", stats_.checkpoint_words},
    };
    scope->AbsorbCounters(counters);
    if (slo_ != nullptr) slo_->AbsorbInto(*scope);
  }
  return results;
}

void DistController::PlaceTenant(Tenant& tenant, size_t target) {
  if (tenant.has_checkpoint) {
    send_scratch_.Clear();
    PutTenantSpecs(send_scratch_, {tenant.spec});
    PutCheckpoint(send_scratch_, tenant.checkpoint);
    SendTo(workers_[target], kMsgRestoreTenant);
    Expect(workers_[target], kMsgRestoreAck);
    ++stats_.restored_from_checkpoint;
  } else {
    send_scratch_.Clear();
    PutTenantSpecs(send_scratch_, {tenant.spec});
    SendTo(workers_[target], kMsgAddTenants);
    Expect(workers_[target], kMsgConfigAck);
    ++stats_.restarted_from_scratch;
  }
  tenant.worker = target;
  ++workers_[target].outstanding;
}

bool DistController::MigrateTenant(uint64_t tenant_id, size_t target) {
  RRS_CHECK_LT(target, workers_.size());
  Tenant& tenant = tenants_[tenant_id];
  if (tenant.phase != Phase::kAssigned) return false;  // finished first
  if (!workers_[target].alive) return false;
  // target == tenant.worker is allowed: the full quiesce → snapshot →
  // restore cycle runs against one worker, which is exactly what the
  // 1-worker migration differentials exercise.
  WorkerHandle& source = workers_[tenant.worker];
  RRS_CHECK(source.alive);
  send_scratch_.Clear();
  PutTenantId(send_scratch_, tenant_id);
  SendTo(source, kMsgSnapshotTenant);
  Expect(source, kMsgTenantSnapshot);
  snapshot::Reader reader(recv_scratch_);
  SnapshotReply reply;
  GetSnapshotReply(reader, &reply);
  RRS_CHECK(reply.state != kTenantMissing)
      << "tenant " << tenant_id << " not on worker " << source.index;
  --source.outstanding;
  if (reply.state == kTenantLive) {
    send_scratch_.Clear();
    PutTenantSpecs(send_scratch_, {tenant.spec});
    PutCheckpoint(send_scratch_, reply.checkpoint);
    SendTo(workers_[target], kMsgRestoreTenant);
    Expect(workers_[target], kMsgRestoreAck);
  } else {
    // Not yet admitted on the source: nothing to snapshot, the spec moves.
    send_scratch_.Clear();
    PutTenantSpecs(send_scratch_, {tenant.spec});
    SendTo(workers_[target], kMsgAddTenants);
    Expect(workers_[target], kMsgConfigAck);
  }
  tenant.worker = target;
  ++workers_[target].outstanding;
  ++stats_.migrations;
  return true;
}

void DistController::KillWorker(size_t index) {
  RRS_CHECK_LT(index, workers_.size());
  WorkerHandle& victim = workers_[index];
  RRS_CHECK(victim.alive);
  RRS_CHECK_GT(alive_workers(), 1u) << "cannot kill the last worker";
  ::kill(static_cast<pid_t>(victim.pid), SIGKILL);
  ::waitpid(static_cast<pid_t>(victim.pid), nullptr, 0);
  ::close(victim.fd);
  victim.fd = -1;
  victim.alive = false;
  victim.live = 0;
  victim.waiting = 0;
  victim.outstanding = 0;
  ++stats_.kills;
  // Failover: every unfinished tenant of the victim restores from its
  // latest streamed checkpoint on the least-loaded survivor — or restarts
  // from scratch if it was never checkpointed. Deterministic re-execution
  // makes either path bit-identical to an undisturbed run.
  for (Tenant& tenant : tenants_) {
    if (tenant.phase != Phase::kAssigned || tenant.worker != index) continue;
    PlaceTenant(tenant, LeastOutstandingAlive(workers_.size()));
  }
}

bool DistController::ShedTenant(uint64_t tenant_id) {
  Tenant& tenant = tenants_[tenant_id];
  if (tenant.phase != Phase::kAssigned) return false;
  WorkerHandle& worker = workers_[tenant.worker];
  RRS_CHECK(worker.alive);
  send_scratch_.Clear();
  PutTenantId(send_scratch_, tenant_id);
  SendTo(worker, kMsgShedTenant);
  Expect(worker, kMsgShedAck);
  snapshot::Reader reader(recv_scratch_);
  const ShedInfo info = GetShedInfo(reader);
  RRS_CHECK(info.state != kTenantMissing)
      << "shed: tenant " << tenant_id << " not on worker " << worker.index;
  tenant.phase = Phase::kShed;
  tenant.has_checkpoint = false;
  tenant.checkpoint.words.clear();
  --remaining_;
  --worker.outstanding;
  ++stats_.shed;
  return true;
}

void DistController::Shutdown() {
  if (workers_.empty()) return;
  for (WorkerHandle& worker : workers_) {
    if (!worker.alive) continue;
    send_scratch_.Clear();
    // Best-effort: a crashed worker just fails the send.
    if (net::SendFrame(worker.fd, kMsgShutdown, send_scratch_.words())) {
      uint64_t type = 0;
      if (net::RecvFrame(worker.fd, &type, &recv_scratch_,
                         net::Deadline::In(options_.io_timeout_ms)) &&
          type == kMsgBye) {
        snapshot::Reader reader(recv_scratch_);
        (void)GetWorkerStats(reader);
      }
    }
    ::close(worker.fd);
    worker.fd = -1;
    ::waitpid(static_cast<pid_t>(worker.pid), nullptr, 0);
    worker.alive = false;
  }
  if (exporter_ != nullptr) exporter_->Stop();
  running_ = false;
}

size_t DistController::alive_workers() const {
  size_t alive = 0;
  for (const WorkerHandle& worker : workers_) {
    if (worker.alive) ++alive;
  }
  return alive;
}

std::string DistController::trace_digest(uint64_t tenant) const {
  RRS_CHECK_LT(tenant, tenants_.size());
  return tenants_[tenant].digest_hex;
}

bool DistController::tenant_shed(uint64_t tenant) const {
  RRS_CHECK_LT(tenant, tenants_.size());
  return tenants_[tenant].phase == Phase::kShed;
}

uint16_t DistController::metrics_port() const {
  return exporter_ != nullptr ? exporter_->port() : 0;
}

std::vector<uint64_t> DistController::worker_metrics_ports() const {
  std::vector<uint64_t> ports;
  ports.reserve(workers_.size());
  for (const WorkerHandle& worker : workers_) {
    ports.push_back(worker.alive ? worker.metrics_port : 0);
  }
  return ports;
}

void DistController::PublishWorkers() {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  published_workers_ = workers_;
}

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
