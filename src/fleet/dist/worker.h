// The worker side of the distributed fleet: one process hosting a sharded
// batch of live sessions, driven entirely by protocol frames on its control
// socket.
//
// WorkerMain is the whole worker — an event loop that blocks on RecvFrame
// and dispatches: Config builds the shards (SessionPools of Engine + a
// registry policy each, an optional internal ThreadPool, an optional
// metrics ExportServer); AddInstances/AddTenants install work; Tick admits
// waiting tenants up to the live cap, steps every live session one round
// bucket (shards in parallel on the internal pool), and replies with a
// TickReport carrying completions, per-tenant SLO progress rows, optional
// per-round trace rows, and — when the controller asks — a checkpoint of
// every still-live tenant; Snapshot/Restore/Shed implement the migration
// and failover edges. Shutdown replies Bye with lifetime totals and
// returns.
//
// Determinism: shard assignment is admission-order round-robin, every shard
// is touched by exactly one thread per tick, and all report rows are merged
// in shard order then sorted by tenant — so a worker's observable behavior
// is a pure function of the frame sequence it receives, independent of its
// internal thread count.
//
// Normally entered in a freshly forked child (DistController::Start); tests
// may also run it on a thread in-process against one end of a socketpair —
// it touches no global state.
#pragma once

#include <cstdint>

namespace rrs {
namespace fleet {
namespace dist {

// Runs the worker event loop on `fd` (one end of the controller's
// socketpair) until Shutdown or controller EOF. Returns the process exit
// code (0 on clean shutdown).
int WorkerMain(int fd, uint64_t worker_index);

}  // namespace dist
}  // namespace fleet
}  // namespace rrs
