#include "fleet/chaos_fleet.h"

#include <string>
#include <utility>

#include "core/session.h"
#include "fleet/slo.h"
#include "obs/flight_recorder.h"
#include "obs/level.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/check.h"

namespace rrs {
namespace fleet {

void ChaosStats::MergeFrom(const ChaosStats& other) {
  ticks += other.ticks;
  kills += other.kills;
  evictions += other.evictions;
  delayed_restores += other.delayed_restores;
  rebalances += other.rebalances;
  restores += other.restores;
  migrations += other.migrations;
  noop_faults += other.noop_faults;
  snapshot_words += other.snapshot_words;
  sessions_completed += other.sessions_completed;
  rounds_stepped += other.rounds_stepped;
}

// Worker-local state. Within a tick each worker is touched by exactly one
// thread; between ticks only the serial coordinator mutates it, so nothing
// here is synchronized.
struct ChaosFleetRunner::Worker {
  Worker(const ChaosOptions& options, size_t worker_index)
      : index(worker_index), pool([&options] {
          auto session = std::make_unique<Session>();
          session->policy = options.policy_factory();
          return session;
        }) {}

  struct Live {
    std::unique_ptr<Session> session;
    size_t job_index = 0;
  };

  const size_t index;
  SessionPool<Session> pool;
  std::vector<Live> live;
  std::vector<size_t> waiting;       // job indices, admission order
  std::vector<Checkpoint> incoming;  // restored when delay_ticks reaches 0
  ChaosStats stats;                  // worker-side events (restores, steps)
  obs::FlightRing* ring = nullptr;   // cached per RunAll when recording
};

ChaosFleetRunner::ChaosFleetRunner(ChaosOptions options)
    : options_(std::move(options)), plan_rng_(options_.seed) {
  RRS_CHECK_GE(options_.num_workers, 1u);
  RRS_CHECK_GE(options_.rounds_per_tick, 1);
  if (!options_.policy_factory) {
    const DlruEdfPolicy::Params params;
    options_.policy_factory = [params] {
      return std::make_unique<DlruEdfPolicy>(params);
    };
  }
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(options_, w));
  }
}

ChaosFleetRunner::~ChaosFleetRunner() = default;

void ChaosFleetRunner::TickWorker(Worker& worker,
                                  std::span<const FleetJob> jobs,
                                  std::span<RunResult> results) {
  obs::Tracer* tracer =
      options_.scope != nullptr ? options_.scope->tracer() : nullptr;
  obs::TraceTrack* track = tracer != nullptr ? tracer->ThreadTrack() : nullptr;
  SloTracker* slo = obs::kEnabled ? options_.slo : nullptr;
  obs::FlightRing* ring = obs::kEnabled ? worker.ring : nullptr;
  const uint32_t worker_tag = static_cast<uint32_t>(worker.index);
  // One clock read per worker-tick; every event below shares it (RecordAt).
  const uint64_t now_ns = ring != nullptr ? obs::NowNs() : 0;

  // ---- Restore: resume every due checkpoint (exempt from the live cap —
  // a checkpointed tenant must come back regardless of load). ----
  size_t keep = 0;
  for (size_t i = 0; i < worker.incoming.size(); ++i) {
    Checkpoint& cp = worker.incoming[i];
    if (cp.delay_ticks > 0) {
      if (keep != i) worker.incoming[keep] = std::move(cp);  // no self-move
      ++keep;
      continue;
    }
    const FleetJob& job = jobs[cp.job_index];
    auto session = worker.pool.Acquire();
    session->engine.Reset(*job.instance, job.options);
    snapshot::Reader reader(cp.words);
    {
      obs::Span span(tracer, track, "fleet.chaos.restore",
                     static_cast<uint64_t>(cp.job_index));
      session->engine.RestoreRun(*session->policy, reader);
    }
    RRS_CHECK(reader.AtEnd()) << "trailing words in tenant checkpoint";
    worker.live.push_back({std::move(session), cp.job_index});
    ++worker.stats.restores;
    if (cp.from_worker != worker.index) ++worker.stats.migrations;
    if (ring != nullptr) {
      ring->RecordAt(now_ns, obs::kFlightRestore, worker_tag, cp.job_index,
                   cp.from_worker);
    }
  }
  worker.incoming.resize(keep);

  // ---- Admit: bind waiting tenants to sessions up to the live cap. ----
  size_t admitted = 0;
  while (admitted < worker.waiting.size() &&
         (options_.max_live_sessions == 0 ||
          worker.live.size() < options_.max_live_sessions)) {
    const size_t job_index = worker.waiting[admitted++];
    const FleetJob& job = jobs[job_index];
    auto session = worker.pool.Acquire();
    session->engine.Reset(*job.instance, job.options);
    session->engine.BeginRun(*session->policy);
    worker.live.push_back({std::move(session), job_index});
    if (ring != nullptr) {
      ring->RecordAt(now_ns, obs::kFlightAdmit, worker_tag, job_index);
    }
  }
  worker.waiting.erase(
      worker.waiting.begin(),
      worker.waiting.begin() + static_cast<ptrdiff_t>(admitted));

  // ---- Step: advance every live session one round bucket. ----
  size_t out = 0;
  for (size_t i = 0; i < worker.live.size(); ++i) {
    Engine& engine = worker.live[i].session->engine;
    obs::Span span(tracer, track, options_.trace_label,
                   static_cast<uint64_t>(worker.live[i].job_index));
    const Round before = engine.next_round();
    const bool more = engine.StepRounds(options_.rounds_per_tick);
    worker.stats.rounds_stepped +=
        static_cast<uint64_t>(engine.next_round() - before);
    if (more) {
      if (slo != nullptr &&
          slo->Observe(worker.index, worker.live[i].job_index,
                       static_cast<uint64_t>(engine.next_round()),
                       engine.run_cost().drops) > 0 &&
          ring != nullptr) {
        ring->RecordAt(now_ns, obs::kFlightSloExhausted, worker_tag,
                     worker.live[i].job_index);
      }
      worker.live[out++] = std::move(worker.live[i]);
    } else {
      const size_t job_index = worker.live[i].job_index;
      engine.FinishRun(results[job_index]);
      ++worker.stats.sessions_completed;
      worker.pool.Release(std::move(worker.live[i].session));
      if (slo != nullptr) {
        const uint32_t exhausted =
            slo->Finish(worker.index, job_index, *jobs[job_index].instance,
                        results[job_index]);
        if (exhausted > 0 && ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightSloExhausted, worker_tag,
                         job_index);
        }
      }
      if (ring != nullptr) {
        ring->RecordAt(now_ns, obs::kFlightFinish, worker_tag, job_index,
                     results[job_index].cost.drops);
      }
    }
  }
  worker.live.resize(out);
  if (ring != nullptr) {
    ring->RecordAt(now_ns, obs::kFlightTick, worker_tag,
                   worker.stats.rounds_stepped);
  }
  if (slo != nullptr) slo->Publish(worker.index);
}

bool ChaosFleetRunner::InjectFaults(std::span<const FleetJob> jobs) {
  (void)jobs;
  obs::Tracer* tracer =
      options_.scope != nullptr ? options_.scope->tracer() : nullptr;
  obs::TraceTrack* track = tracer != nullptr ? tracer->ThreadTrack() : nullptr;
  const size_t num_workers = workers_.size();
  ++stats_.ticks;
  obs::FlightRing* ring = obs::kEnabled ? coord_ring_ : nullptr;
  if (ring != nullptr) ring->Record(obs::kFlightTick, 0, stats_.ticks);

  // Age checkpoints queued on earlier ticks toward their restore.
  for (auto& worker : workers_) {
    for (Checkpoint& cp : worker->incoming) {
      if (cp.delay_ticks > 0) --cp.delay_ticks;
    }
  }

  // Snapshot one live session into a Checkpoint and tear it down (shared by
  // the kill and evict paths). The pooled session object survives as
  // reusable capacity; the run state lives on only in the checkpoint words.
  auto checkpoint = [&](Worker& worker, size_t live_index,
                        uint32_t delay_ticks) {
    Worker::Live& entry = worker.live[live_index];
    Checkpoint cp;
    cp.job_index = entry.job_index;
    cp.delay_ticks = delay_ticks;
    cp.from_worker = worker.index;
    snapshot_scratch_.Clear();
    entry.session->engine.SnapshotRun(snapshot_scratch_);
    entry.session->engine.AbortRun();
    worker.pool.Release(std::move(entry.session));
    cp.words = snapshot_scratch_.words();
    stats_.snapshot_words += cp.words.size();
    return cp;
  };

  // ---- kill-worker ------------------------------------------------------
  if (num_workers > 1 && plan_rng_.Bernoulli(options_.kill_worker_prob)) {
    const size_t victim = plan_rng_.NextBounded(num_workers);
    Worker& worker = *workers_[victim];
    if (worker.live.empty()) {
      ++stats_.noop_faults;
    } else {
      obs::Span span(tracer, track, "fleet.chaos.kill",
                     static_cast<uint64_t>(worker.live.size()));
      ++stats_.kills;
      if (ring != nullptr) {
        ring->Record(obs::kFlightKillWorker, static_cast<uint32_t>(victim),
                     worker.live.size());
      }
      // Checkpoint every live tenant on the victim and deal the snapshots
      // round-robin to the surviving workers for immediate restore.
      size_t target = victim;
      for (size_t i = 0; i < worker.live.size(); ++i) {
        target = (target + 1) % num_workers;
        if (target == victim) target = (target + 1) % num_workers;
        workers_[target]->incoming.push_back(checkpoint(worker, i, 0));
      }
      worker.live.clear();
    }
  }

  // ---- evict-and-restore (possibly delayed) -----------------------------
  if (plan_rng_.Bernoulli(options_.evict_prob)) {
    size_t total_live = 0;
    for (const auto& worker : workers_) total_live += worker->live.size();
    if (total_live == 0) {
      ++stats_.noop_faults;
    } else {
      size_t pick = plan_rng_.NextBounded(total_live);
      size_t source = 0;
      while (pick >= workers_[source]->live.size()) {
        pick -= workers_[source]->live.size();
        ++source;
      }
      uint32_t delay = 0;
      if (options_.max_restore_delay_ticks > 0 &&
          plan_rng_.Bernoulli(options_.delayed_restore_prob)) {
        delay = static_cast<uint32_t>(
            1 + plan_rng_.NextBounded(options_.max_restore_delay_ticks));
        ++stats_.delayed_restores;
      }
      const size_t target = plan_rng_.NextBounded(num_workers);
      Worker& worker = *workers_[source];
      obs::Span span(tracer, track, "fleet.chaos.evict",
                     static_cast<uint64_t>(worker.live[pick].job_index));
      if (ring != nullptr) {
        ring->Record(obs::kFlightEvict, static_cast<uint32_t>(source),
                     worker.live[pick].job_index, delay);
      }
      workers_[target]->incoming.push_back(checkpoint(worker, pick, delay));
      worker.live.erase(worker.live.begin() + static_cast<ptrdiff_t>(pick));
      ++stats_.evictions;
    }
  }

  // ---- shard rebalance --------------------------------------------------
  if (num_workers > 1 && plan_rng_.Bernoulli(options_.rebalance_prob)) {
    rebalance_scratch_.clear();
    for (auto& worker : workers_) {
      rebalance_scratch_.insert(rebalance_scratch_.end(),
                                worker->waiting.begin(),
                                worker->waiting.end());
      worker->waiting.clear();
    }
    if (rebalance_scratch_.empty()) {
      ++stats_.noop_faults;
    } else {
      obs::Span span(tracer, track, "fleet.chaos.rebalance",
                     static_cast<uint64_t>(rebalance_scratch_.size()));
      size_t target = plan_rng_.NextBounded(num_workers);
      if (ring != nullptr) {
        ring->Record(obs::kFlightRebalance, static_cast<uint32_t>(target),
                     rebalance_scratch_.size());
      }
      for (size_t job_index : rebalance_scratch_) {
        workers_[target]->waiting.push_back(job_index);
        target = (target + 1) % num_workers;
      }
      ++stats_.rebalances;
    }
  }

  for (const auto& worker : workers_) {
    if (!worker->live.empty() || !worker->waiting.empty() ||
        !worker->incoming.empty()) {
      return true;
    }
  }
  return false;
}

std::vector<RunResult> ChaosFleetRunner::RunAll(
    std::span<const FleetJob> jobs) {
  std::vector<RunResult> results(jobs.size());
  const size_t num_workers = workers_.size();
  const ChaosStats before = stats();  // stats are cumulative; absorb a delta

  if (obs::kEnabled && options_.slo != nullptr) {
    options_.slo->Bind(jobs.size(), num_workers);
  }
  coord_ring_ = nullptr;
  for (auto& worker : workers_) worker->ring = nullptr;
  if (obs::kEnabled && options_.recorder != nullptr) {
    coord_ring_ = options_.recorder->Ring("chaos.coord");
    for (auto& worker : workers_) {
      worker->ring =
          options_.recorder->Ring("chaos.worker" +
                                  std::to_string(worker->index));
    }
  }

  for (size_t j = 0; j < jobs.size(); ++j) {
    RRS_CHECK(jobs[j].instance != nullptr);
    RRS_CHECK(jobs[j].kind == FleetJob::Kind::kReplay)
        << "ChaosFleetRunner supports replay jobs only";
    RRS_CHECK(!jobs[j].options.record_schedule)
        << "recording runs cannot be checkpointed";
    workers_[j % num_workers]->waiting.push_back(j);
  }

  bool more = !jobs.empty();
  while (more) {
    if (options_.pool == nullptr || num_workers == 1) {
      for (auto& worker : workers_) TickWorker(*worker, jobs, results);
    } else {
      ParallelFor(*options_.pool, 0, static_cast<int64_t>(num_workers),
                  [&](int64_t w) {
                    TickWorker(*workers_[static_cast<size_t>(w)], jobs,
                               results);
                  });
    }
    more = InjectFaults(jobs);
  }

  if (options_.scope != nullptr) {
    const ChaosStats total = stats();
    const std::pair<std::string_view, uint64_t> counters[] = {
        {"fleet.chaos.ticks", total.ticks - before.ticks},
        {"fleet.chaos.kills", total.kills - before.kills},
        {"fleet.chaos.evictions", total.evictions - before.evictions},
        {"fleet.chaos.delayed_restores",
         total.delayed_restores - before.delayed_restores},
        {"fleet.chaos.rebalances", total.rebalances - before.rebalances},
        {"fleet.chaos.restores", total.restores - before.restores},
        {"fleet.chaos.migrations", total.migrations - before.migrations},
        {"fleet.chaos.noop_faults", total.noop_faults - before.noop_faults},
        {"fleet.chaos.snapshot_words",
         total.snapshot_words - before.snapshot_words},
        {"fleet.chaos.sessions_completed",
         total.sessions_completed - before.sessions_completed},
        {"fleet.chaos.rounds_stepped",
         total.rounds_stepped - before.rounds_stepped},
    };
    options_.scope->AbsorbCounters(counters);
    if (obs::kEnabled && options_.slo != nullptr) {
      options_.slo->AbsorbInto(*options_.scope);
    }
  }
  return results;
}

ChaosStats ChaosFleetRunner::stats() const {
  ChaosStats total = stats_;
  for (const auto& worker : workers_) total.MergeFrom(worker->stats);
  return total;
}

}  // namespace fleet
}  // namespace rrs
