#include "fleet/fleet_runner.h"

#include <algorithm>
#include <utility>

#include "fleet/batch_engine.h"
#include "fleet/slo.h"
#include "obs/flight_recorder.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "util/check.h"
#include "workload/arrival_source.h"
#include "workload/generator_spec.h"

namespace rrs {
namespace fleet {

void FleetStats::MergeFrom(const FleetStats& other) {
  sessions_completed += other.sessions_completed;
  rounds_stepped += other.rounds_stepped;
  sessions_created += other.sessions_created;
  sessions_recycled += other.sessions_recycled;
  peak_live_sessions = std::max(peak_live_sessions, other.peak_live_sessions);
  ticks += other.ticks;
  batched_sessions += other.batched_sessions;
  fallback_sessions += other.fallback_sessions;
  lane_rounds_stepped += other.lane_rounds_stepped;
  slab_rounds_stepped += other.slab_rounds_stepped;
}

namespace {

// A tenant the batched engine could take in principle (shape compatibility
// with a particular slab is checked separately).
bool BatchEligible(const FleetJob& job) {
  return job.kind == FleetJob::Kind::kReplay && !job.options.record_schedule &&
         job.options.obs_scope == nullptr;
}

}  // namespace

// A pooled slab: one BatchEngine plus one policy per lane (each lane's
// tenant gets its own policy instance, rebound via Reset inside OpenLane).
struct FleetRunner::BatchSlab {
  BatchSlab(uint32_t width,
            const std::function<std::unique_ptr<SchedulerPolicy>()>& factory)
      : engine(width) {
    policies.reserve(width);
    for (uint32_t lane = 0; lane < width; ++lane) {
      policies.push_back(factory());
    }
    job_index.assign(width, 0);
    sources.resize(width);
  }

  BatchEngine engine;
  std::vector<std::unique_ptr<SchedulerPolicy>> policies;
  std::vector<size_t> job_index;  // per-lane tenant (valid for open lanes)
  // Streaming tenants' sources, owned for the lane's lifetime (null for
  // instance-fed lanes).
  std::vector<std::unique_ptr<workload::ArrivalSource>> sources;
};

// Shard-local state: session pools plus the live set. Owned and touched by
// exactly one worker per RunAll (shard → worker affinity), so nothing here
// is synchronized.
struct FleetRunner::Shard {
  explicit Shard(const FleetOptions& options)
      : replay_pool([&options] {
          auto session = std::make_unique<ReplaySession>();
          session->policy = options.policy_factory();
          return session;
        }),
        pipeline_pool([&options] {
          return std::make_unique<reduce::PipelineSession>(
              options.pipeline_params);
        }),
        batch_pool([&options] {
          return std::make_unique<BatchSlab>(options.batch_width,
                                             options.policy_factory);
        }) {}

  struct LiveSession {
    std::unique_ptr<ReplaySession> session;
    size_t job_index = 0;
    // Streaming tenants' source, owned until the session finishes (the
    // engine holds a reference into it).
    std::unique_ptr<workload::ArrivalSource> source;
  };

  SessionPool<ReplaySession> replay_pool;
  SessionPool<reduce::PipelineSession> pipeline_pool;
  SessionPool<BatchSlab> batch_pool;
  std::vector<LiveSession> live;
  std::vector<std::unique_ptr<BatchSlab>> batch_live;
  size_t batch_lanes = 0;  // open lanes across batch_live
  FleetStats stats;
};

FleetRunner::FleetRunner(FleetOptions options) : options_(std::move(options)) {
  RRS_CHECK_GE(options_.rounds_per_tick, 1);
  RRS_CHECK_LE(options_.batch_width, BatchEngine::kMaxLanes);
  if (!options_.policy_factory) {
    const DlruEdfPolicy::Params params;
    options_.policy_factory = [params] {
      return std::make_unique<DlruEdfPolicy>(params);
    };
  }
  size_t shards = options_.num_shards;
  if (shards == 0) {
    shards = options_.pool != nullptr
                 ? std::max<size_t>(1, options_.pool->thread_count())
                 : 1;
  }
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_));
  }
}

FleetRunner::~FleetRunner() = default;

void FleetRunner::RunShard(Shard& shard, std::span<const FleetJob> jobs,
                           std::span<RunResult> results, size_t shard_index,
                           size_t stride) {
  size_t next = shard_index;  // this shard's jobs: shard_index + k * stride
  auto& live = shard.live;
  RRS_CHECK(live.empty());
  RRS_CHECK(shard.batch_live.empty());
  const bool batching = options_.batch_width > 1;

  // Per-tenant work traces onto this worker's thread track (single-writer).
  obs::Tracer* tracer =
      options_.scope != nullptr ? options_.scope->tracer() : nullptr;
  obs::TraceTrack* track = tracer != nullptr ? tracer->ThreadTrack() : nullptr;

  // SLO tracking and flight recording are shard-local and pure observation;
  // obs::kEnabled is constexpr false at RRS_OBS_LEVEL=0, erasing both.
  SloTracker* slo = obs::kEnabled ? options_.slo : nullptr;
  obs::FlightRing* ring = nullptr;
  if (obs::kEnabled && options_.recorder != nullptr) {
    ring = options_.recorder->Ring("fleet.shard" +
                                   std::to_string(shard_index));
  }
  const uint32_t shard_tag = static_cast<uint32_t>(shard_index);

  while (next < jobs.size() || !live.empty() || !shard.batch_live.empty()) {
    // One clock read per tick: every event this tick — admits, finishes,
    // the tick mark itself — shares the barrier's stamp (see RecordAt).
    const uint64_t now_ns = ring != nullptr ? obs::NowNs() : 0;

    // ---- Admit: bind waiting tenants to sessions up to the live cap. ----
    while (next < jobs.size() &&
           (options_.max_live_sessions == 0 ||
            live.size() + shard.batch_lanes < options_.max_live_sessions)) {
      const FleetJob& job = jobs[next];
      RRS_CHECK(job.instance != nullptr || job.make_source ||
                job.source_spec != nullptr);
      // Streaming tenants materialize their source now, at admission —
      // queued jobs hold only the closure (or the spec).
      std::unique_ptr<workload::ArrivalSource> source;
      if (job.instance == nullptr) {
        RRS_CHECK(job.kind == FleetJob::Kind::kReplay);
        source = job.make_source ? job.make_source()
                                 : workload::MakeSource(*job.source_spec);
        RRS_CHECK(source != nullptr);
      }
      if (batching && BatchEligible(job)) {
        const Instance& shape =
            source != nullptr ? source->shape() : *job.instance;
        // Pack the tenant into a filling slab of its shape (slabs only
        // accept lanes before their first step), or start a new one.
        const uint64_t full_mask =
            options_.batch_width >= 64
                ? ~uint64_t{0}
                : (uint64_t{1} << options_.batch_width) - 1;
        BatchSlab* slab = nullptr;
        for (auto& candidate : shard.batch_live) {
          if (candidate->engine.next_round() == 0 &&
              candidate->engine.open_mask() != full_mask &&
              candidate->engine.LaneCompatible(shape, job.options)) {
            slab = candidate.get();
            break;
          }
        }
        if (slab == nullptr) {
          shard.batch_live.push_back(shard.batch_pool.Acquire());
          slab = shard.batch_live.back().get();
          RRS_CHECK(slab->engine.empty());
          if (ring != nullptr) {
            ring->RecordAt(now_ns, obs::kFlightSlabOpen, shard_tag,
                           shard.batch_live.size());
          }
        }
        uint32_t lane = 0;
        while (slab->engine.lane_open(lane)) ++lane;
        if (source != nullptr) {
          slab->engine.OpenLane(lane, *source, job.options,
                                *slab->policies[lane]);
          slab->sources[lane] = std::move(source);
        } else {
          slab->engine.OpenLane(lane, *job.instance, job.options,
                                *slab->policies[lane]);
        }
        slab->job_index[lane] = next;
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightAdmit, shard_tag, next);
        }
        ++shard.batch_lanes;
        ++shard.stats.batched_sessions;
        shard.stats.peak_live_sessions = std::max<uint64_t>(
            shard.stats.peak_live_sessions, live.size() + shard.batch_lanes);
        next += stride;
        continue;
      }
      if (batching && job.kind == FleetJob::Kind::kReplay) {
        ++shard.stats.fallback_sessions;
      }
      if (job.kind == FleetJob::Kind::kPipeline) {
        RRS_CHECK(job.instance != nullptr);
        // Pipeline tenants run to completion on admission (the pipeline's
        // transform → run → project → validate chain has no round-bucket
        // seam), through a pooled session so the inner engine stays warm.
        auto session = shard.pipeline_pool.Acquire();
        obs::Span span(tracer, track, options_.trace_label,
                       static_cast<uint64_t>(next));
        const reduce::PipelineResult& pipe =
            session->SolveOnline(*job.instance, job.options);
        RunResult& out = results[next];
        out.cost = pipe.validation.cost;
        out.arrived = job.instance->num_jobs();
        out.executed = out.arrived - out.cost.drops;
        out.rounds_simulated = pipe.inner.rounds_simulated;
        out.drops_per_color = pipe.inner.drops_per_color;
        out.telemetry = pipe.inner.telemetry;
        shard.stats.rounds_stepped +=
            static_cast<uint64_t>(pipe.inner.rounds_simulated);
        ++shard.stats.sessions_completed;
        shard.pipeline_pool.Release(std::move(session));
        if (slo != nullptr) slo->Finish(shard_index, next, *job.instance, out);
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightFinish, shard_tag, next);
        }
      } else {
        auto session = shard.replay_pool.Acquire();
        if (source != nullptr) {
          session->engine.Reset(*source, job.options);
        } else {
          session->engine.Reset(*job.instance, job.options);
        }
        session->engine.BeginRun(*session->policy);
        live.push_back({std::move(session), next, std::move(source)});
        shard.stats.peak_live_sessions =
            std::max<uint64_t>(shard.stats.peak_live_sessions, live.size());
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightAdmit, shard_tag, next);
        }
      }
      next += stride;
    }

    if (live.empty() && shard.batch_live.empty()) continue;

    // ---- Tick: advance every live session one round bucket. ----
    size_t out = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      Engine& engine = live[i].session->engine;
      obs::Span span(tracer, track, options_.trace_label,
                     static_cast<uint64_t>(live[i].job_index));
      const Round before = engine.next_round();
      const bool more = engine.StepRounds(options_.rounds_per_tick);
      shard.stats.rounds_stepped +=
          static_cast<uint64_t>(engine.next_round() - before);
      const size_t job_index = live[i].job_index;
      if (more) {
        if (slo != nullptr &&
            slo->Observe(shard_index, job_index,
                         static_cast<uint64_t>(engine.next_round()),
                         engine.run_cost().drops) > 0 &&
            ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightSloExhausted, shard_tag,
                         job_index);
        }
        live[out++] = std::move(live[i]);
      } else {
        engine.FinishRun(results[job_index]);
        ++shard.stats.sessions_completed;
        shard.replay_pool.Release(std::move(live[i].session));
        if (slo != nullptr &&
            slo->Finish(shard_index, job_index,
                        live[i].source != nullptr
                            ? live[i].source->shape()
                            : *jobs[job_index].instance,
                        results[job_index]) > 0 &&
            ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightSloExhausted, shard_tag,
                         job_index);
        }
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightFinish, shard_tag, job_index);
        }
      }
    }
    live.resize(out);

    size_t slab_out = 0;
    for (size_t i = 0; i < shard.batch_live.size(); ++i) {
      BatchSlab& slab = *shard.batch_live[i];
      const uint64_t lanes_before = slab.engine.lane_rounds_stepped();
      const uint64_t slabs_before = slab.engine.slab_rounds_stepped();
      const bool more = slab.engine.StepRounds(options_.rounds_per_tick);
      const uint64_t lane_delta =
          slab.engine.lane_rounds_stepped() - lanes_before;
      shard.stats.rounds_stepped += lane_delta;
      shard.stats.lane_rounds_stepped += lane_delta;
      shard.stats.slab_rounds_stepped +=
          slab.engine.slab_rounds_stepped() - slabs_before;
      for (uint32_t lane = 0; lane < options_.batch_width; ++lane) {
        if (!slab.engine.lane_open(lane)) continue;
        const size_t job_index = slab.job_index[lane];
        if (!slab.engine.lane_done(lane)) {
          if (slo != nullptr &&
              slo->Observe(shard_index, job_index,
                           static_cast<uint64_t>(slab.engine.lane_rounds(lane)),
                           slab.engine.lane_cost(lane).drops) > 0 &&
              ring != nullptr) {
            ring->RecordAt(now_ns, obs::kFlightSloExhausted, shard_tag,
                           job_index);
          }
          continue;
        }
        slab.engine.FinishLane(lane, results[job_index]);
        ++shard.stats.sessions_completed;
        --shard.batch_lanes;
        if (slo != nullptr &&
            slo->Finish(shard_index, job_index,
                        slab.sources[lane] != nullptr
                            ? slab.sources[lane]->shape()
                            : *jobs[job_index].instance,
                        results[job_index]) > 0 &&
            ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightSloExhausted, shard_tag,
                         job_index);
        }
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightFinish, shard_tag, job_index);
        }
        slab.sources[lane].reset();
      }
      if (!more) {
        RRS_CHECK(slab.engine.empty());
        shard.batch_pool.Release(std::move(shard.batch_live[i]));
        if (ring != nullptr) {
          ring->RecordAt(now_ns, obs::kFlightSlabClose, shard_tag,
                         shard.batch_lanes);
        }
      } else {
        shard.batch_live[slab_out++] = std::move(shard.batch_live[i]);
      }
    }
    shard.batch_live.resize(slab_out);
    ++shard.stats.ticks;
    if (ring != nullptr) {
      ring->RecordAt(now_ns, obs::kFlightTick, shard_tag, shard.stats.ticks);
    }
    if (slo != nullptr) slo->Publish(shard_index);
  }

  // Pipeline-only workloads finish inside admission without ever reaching
  // the tick barrier; a final publish makes their accounting scrapable too.
  if (slo != nullptr) slo->Publish(shard_index);

  shard.stats.sessions_created = shard.replay_pool.created() +
                                 shard.pipeline_pool.created();
  shard.stats.sessions_recycled = shard.replay_pool.recycled() +
                                  shard.pipeline_pool.recycled();
}

std::vector<RunResult> FleetRunner::RunAll(std::span<const FleetJob> jobs) {
  std::vector<RunResult> results(jobs.size());
  const size_t stride = shards_.size();
  const FleetStats before = stats();  // stats are cumulative; absorb a delta

  if (obs::kEnabled && options_.slo != nullptr) {
    options_.slo->Bind(jobs.size(), shards_.size());
  }

  if (options_.pool == nullptr || shards_.size() == 1) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      RunShard(*shards_[s], jobs, results, s, stride);
    }
  } else {
    ParallelFor(*options_.pool, 0, static_cast<int64_t>(shards_.size()),
                [&](int64_t s) {
                  RunShard(*shards_[static_cast<size_t>(s)], jobs, results,
                           static_cast<size_t>(s), stride);
                });
  }

  if (options_.scope != nullptr) {
    const FleetStats total = stats();
    const std::pair<std::string_view, uint64_t> counters[] = {
        {"fleet.sessions_completed",
         total.sessions_completed - before.sessions_completed},
        {"fleet.rounds_stepped", total.rounds_stepped - before.rounds_stepped},
        {"fleet.ticks", total.ticks - before.ticks},
        {"fleet.batch.sessions",
         total.batched_sessions - before.batched_sessions},
        {"fleet.batch.fallback",
         total.fallback_sessions - before.fallback_sessions},
        {"fleet.batch.lane_rounds",
         total.lane_rounds_stepped - before.lane_rounds_stepped},
        {"fleet.batch.slab_rounds",
         total.slab_rounds_stepped - before.slab_rounds_stepped},
    };
    options_.scope->AbsorbCounters(counters);
    if (obs::kEnabled && options_.slo != nullptr) {
      options_.slo->AbsorbInto(*options_.scope);
    }
  }
  return results;
}

FleetStats FleetRunner::stats() const {
  FleetStats total;
  for (const auto& shard : shards_) total.MergeFrom(shard->stats);
  return total;
}

}  // namespace fleet
}  // namespace rrs
