#include "fleet/slo.h"

#include <algorithm>
#include <cstdio>

#include "obs/scope.h"
#include "util/check.h"

namespace rrs {
namespace fleet {

// Per-tenant rolling-window state. Written only by the worker hosting the
// tenant for the current tick (tick barriers order cross-worker handoffs
// when chaos migrates a tenant).
struct SloTracker::TenantSlot {
  uint64_t last_rounds = 0;   // cumulative marks: Observe works on deltas
  uint64_t last_misses = 0;
  uint64_t window_start = 0;  // rounds value at the current window's open
  uint64_t window_misses = 0;
  bool seen = false;
  bool exhausted = false;
  // On some shard's worst-burn list. Lets UpdateTop skip its linear scan for
  // the common tenant that has no current-window misses and never made a
  // list — the dominant UpdateTop call at fleet scale.
  bool in_top = false;
};

struct SloTracker::ShardState {
  // Accumulators: owned by the shard's worker between barriers, no locks.
  // `acc.top` is the live worst-burn list (unsorted; Publish ranks it).
  Snapshot acc;
  // Conservative lower bound on the fewest window_misses of any acc.top
  // entry while the list is full: a non-member with window_misses <= this
  // cannot displace anyone, so UpdateTop rejects it with one compare
  // instead of two scans. Kept <= the true minimum (exact after structural
  // changes, clamped down on in-place decreases), which only ever costs an
  // occasional redundant scan, never a wrong reject.
  uint64_t top_weakest = 0;
  // Guards `published` only: Publish copies under it, scrapers read under
  // it. The accumulators never need it (single owner per tick).
  mutable std::mutex mutex;
  Snapshot published;
};

SloTracker::SloTracker(SloOptions options) : options_(options) {
  RRS_CHECK_GE(options_.window_rounds, 1);
  RRS_CHECK_GE(options_.miss_budget, 1u);
  RRS_CHECK_GE(options_.top_k, 1u);
}

SloTracker::~SloTracker() = default;

void SloTracker::Bind(size_t num_tenants, size_t num_shards) {
  if (tenants_.size() < num_tenants) tenants_.resize(num_tenants);
  std::fill(tenants_.begin(), tenants_.end(), TenantSlot());
  while (shards_.size() < num_shards) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->acc = Snapshot();
    shard->acc.top.reserve(options_.top_k);
    shard->top_weakest = 0;
    shard->published = Snapshot();
    shard->published.top.reserve(options_.top_k);
  }
  absorbed_ = Snapshot();
}

namespace {

double Burn(uint64_t window_misses, uint64_t budget) {
  return static_cast<double>(window_misses) / static_cast<double>(budget);
}

}  // namespace

void SloTracker::UpdateTop(ShardState& shard, TenantSlot& slot,
                           uint64_t tenant, uint64_t window_misses) {
  auto& top = shard.acc.top;
  if (!slot.in_top) {
    // Fast paths: a tenant that has never made a worst-burn list cannot be
    // on this one — nothing to report, or (list full) not enough misses to
    // displace the weakest member.
    if (window_misses == 0) return;
    if (top.size() >= options_.top_k && window_misses <= shard.top_weakest) {
      return;
    }
  } else {
    for (auto& entry : top) {
      if (entry.tenant == tenant) {
        entry.window_misses = window_misses;
        entry.burn = Burn(window_misses, options_.miss_budget);
        shard.top_weakest = std::min(shard.top_weakest, window_misses);
        return;
      }
    }
    // Listed on another shard (chaos migration); fall through to this
    // shard's insert path, same as the scan-miss always did.
    if (window_misses == 0) return;
  }
  const TenantBurn entry{tenant, window_misses,
                         Burn(window_misses, options_.miss_budget)};
  if (top.size() < options_.top_k) {
    top.push_back(entry);
    slot.in_top = true;
    if (top.size() == options_.top_k) RecomputeTopWeakest(shard);
    return;
  }
  // Replace the weakest entry (fewest misses; ties go to the larger tenant
  // id so low ids are stable) when strictly beaten — deterministic because
  // the shard's observation sequence is.
  size_t weakest = 0;
  for (size_t i = 1; i < top.size(); ++i) {
    if (top[i].window_misses < top[weakest].window_misses ||
        (top[i].window_misses == top[weakest].window_misses &&
         top[i].tenant > top[weakest].tenant)) {
      weakest = i;
    }
  }
  if (top[weakest].window_misses < window_misses) {
    // The evicted tenant may survive on another shard's list after a chaos
    // migration; its cleared flag only means the next update pays a scan.
    tenants_[top[weakest].tenant].in_top = false;
    top[weakest] = entry;
    slot.in_top = true;
    RecomputeTopWeakest(shard);
  }
}

void SloTracker::RecomputeTopWeakest(ShardState& shard) {
  uint64_t weakest = ~uint64_t{0};
  for (const TenantBurn& entry : shard.acc.top) {
    weakest = std::min(weakest, entry.window_misses);
  }
  shard.top_weakest = weakest;
}

uint32_t SloTracker::Observe(size_t shard_index, size_t tenant,
                             uint64_t rounds, uint64_t misses) {
  return ObserveImpl(shard_index, tenant, rounds, misses, /*update_top=*/true);
}

uint32_t SloTracker::ObserveImpl(size_t shard_index, size_t tenant,
                                 uint64_t rounds, uint64_t misses,
                                 bool update_top) {
  TenantSlot& slot = tenants_[tenant];
  ShardState& shard = *shards_[shard_index];
  if (!slot.seen) {
    slot.seen = true;
    ++shard.acc.tenants_seen;
  }
  const uint64_t delta_rounds = rounds - slot.last_rounds;
  const uint64_t delta_misses = misses - slot.last_misses;
  slot.last_rounds = rounds;
  slot.last_misses = misses;
  ++shard.acc.observations;
  shard.acc.rounds += delta_rounds;
  shard.acc.misses += delta_misses;
  slot.window_misses += delta_misses;

  uint32_t newly_exhausted = 0;
  if (!slot.exhausted && slot.window_misses > options_.miss_budget) {
    slot.exhausted = true;
    ++shard.acc.windows_breached;
    ++shard.acc.exhausted_events;
    ++shard.acc.tenants_out_of_budget;
    newly_exhausted = 1;
  }
  // Roll windows the tick crossed. Misses observed this tick were already
  // attributed to the window current at the barrier — windows are a
  // tick-granular bucketing, which is what keeps accounting deterministic.
  const uint64_t window = static_cast<uint64_t>(options_.window_rounds);
  bool rolled = false;
  while (rounds - slot.window_start >= window) {
    slot.window_start += window;
    ++shard.acc.windows_closed;
    slot.window_misses = 0;
    rolled = true;
    if (slot.exhausted) {
      slot.exhausted = false;
      --shard.acc.tenants_out_of_budget;
    }
  }
  // An unchanged window_misses means any list entry is already correct.
  // Finish's catch-up passes update_top=false: the tenant retires from the
  // list immediately after, so maintaining it here is churn.
  if (update_top && (delta_misses != 0 || rolled)) {
    UpdateTop(shard, slot, tenant, slot.window_misses);
  }
  return newly_exhausted;
}

uint32_t SloTracker::Finish(size_t shard_index, size_t tenant,
                            const Instance& instance,
                            const RunResult& result) {
  // Catch up on any progress since the last barrier, then close the partial
  // window the run ended inside.
  const uint32_t newly_exhausted =
      ObserveImpl(shard_index, tenant,
                  static_cast<uint64_t>(result.rounds_simulated),
                  result.cost.drops, /*update_top=*/false);
  TenantSlot& slot = tenants_[tenant];
  ShardState& shard = *shards_[shard_index];
  if (slot.last_rounds > slot.window_start) {
    ++shard.acc.windows_closed;
  }
  slot.window_start = slot.last_rounds;
  if (slot.exhausted) {
    slot.exhausted = false;
    --shard.acc.tenants_out_of_budget;
  }
  slot.window_misses = 0;
  // Retire from the worst-burn list: the list is a live view of current
  // burners, and this tenant is leaving. For a tenant whose whole life was
  // this one Finish (short sessions at fleet scale), no list work happens
  // at all. A chaos-migrated tenant's entry on another shard stays behind,
  // exactly as the old scan-miss left it.
  if (slot.in_top) {
    auto& top = shard.acc.top;
    for (size_t i = 0; i < top.size(); ++i) {
      if (top[i].tenant == tenant) {
        top[i] = top.back();
        top.pop_back();
        break;
      }
    }
    slot.in_top = false;
  }
  ++shard.acc.tenants_finished;
  if (result.cost.drops != 0) {
    for (size_t c = 0; c < result.drops_per_color.size() &&
                       c < instance.num_colors();
         ++c) {
      const uint64_t count = result.drops_per_color[c];
      if (count == 0) continue;
      const uint64_t delay_class =
          static_cast<uint64_t>(instance.delay_bound(static_cast<ColorId>(c)));
      // Single cumulative record; AbsorbInto recovers its delta against the
      // absorbed baseline bucket-wise (LogHistogram::MergeDiff), so this
      // per-session loop does not pay a second histogram.
      shard.acc.miss_delay.RecordMany(delay_class, count);
    }
  }
  return newly_exhausted;
}

void SloTracker::Publish(size_t shard_index) {
  ShardState& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.published = shard.acc;
  std::sort(shard.published.top.begin(), shard.published.top.end(),
            [](const TenantBurn& a, const TenantBurn& b) {
              if (a.window_misses != b.window_misses) {
                return a.window_misses > b.window_misses;
              }
              return a.tenant < b.tenant;
            });
}

SloTracker::Snapshot SloTracker::SnapshotShard(size_t shard_index) const {
  const ShardState& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.published;
}

namespace {

void SumInto(SloTracker::Snapshot& total, const SloTracker::Snapshot& shard) {
  total.observations += shard.observations;
  total.rounds += shard.rounds;
  total.misses += shard.misses;
  total.windows_closed += shard.windows_closed;
  total.windows_breached += shard.windows_breached;
  total.exhausted_events += shard.exhausted_events;
  total.tenants_seen += shard.tenants_seen;
  total.tenants_finished += shard.tenants_finished;
  total.tenants_out_of_budget += shard.tenants_out_of_budget;
  total.miss_delay.Merge(shard.miss_delay);
  total.top.insert(total.top.end(), shard.top.begin(), shard.top.end());
}

void RankTop(std::vector<SloTracker::TenantBurn>& top, uint32_t limit) {
  std::sort(top.begin(), top.end(),
            [](const SloTracker::TenantBurn& a,
               const SloTracker::TenantBurn& b) {
              if (a.window_misses != b.window_misses) {
                return a.window_misses > b.window_misses;
              }
              return a.tenant < b.tenant;
            });
  if (top.size() > limit) top.resize(limit);
}

}  // namespace

SloTracker::Snapshot SloTracker::SnapshotTotals() const {
  Snapshot total;
  for (size_t s = 0; s < shards_.size(); ++s) {
    SumInto(total, SnapshotShard(s));
  }
  RankTop(total.top, options_.top_k);
  return total;
}

std::string SloTracker::RenderPrometheus(std::string_view prefix) const {
  // One consistent copy per shard; totals are the sum of exactly these
  // copies, so a scrape's per-shard series always add up to its totals.
  std::vector<Snapshot> shards;
  shards.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards.push_back(SnapshotShard(s));
  }
  Snapshot total;
  for (const Snapshot& shard : shards) SumInto(total, shard);
  RankTop(total.top, options_.top_k);

  std::string out;
  auto series = [&](const char* name, const char* type, const char* help,
                    auto value_of) {
    const std::string metric = obs::PromMetricName(prefix, name);
    out += "# HELP " + metric + " " + help + "\n";
    out += "# TYPE " + metric + " " + type + "\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value_of(total));
    out += metric + " " + buf + "\n";
    for (size_t s = 0; s < shards.size(); ++s) {
      std::snprintf(buf, sizeof(buf), "%.17g", value_of(shards[s]));
      out += metric + "{shard=\"" + std::to_string(s) + "\"} " + buf + "\n";
    }
  };
  auto u = [](uint64_t v) { return static_cast<double>(v); };
  series("fleet.slo.observations", "counter", "SLO tick observations",
         [&](const Snapshot& s) { return u(s.observations); });
  series("fleet.slo.rounds", "counter", "tenant-rounds observed",
         [&](const Snapshot& s) { return u(s.rounds); });
  series("fleet.slo.misses", "counter", "deadline misses (drops) observed",
         [&](const Snapshot& s) { return u(s.misses); });
  series("fleet.slo.windows_closed", "counter", "rolling windows closed",
         [&](const Snapshot& s) { return u(s.windows_closed); });
  series("fleet.slo.windows_breached", "counter", "windows over miss budget",
         [&](const Snapshot& s) { return u(s.windows_breached); });
  series("fleet.slo.exhausted_events", "counter",
         "budget exhaustion transitions",
         [&](const Snapshot& s) { return u(s.exhausted_events); });
  series("fleet.slo.tenants_seen", "counter", "distinct tenants observed",
         [&](const Snapshot& s) { return u(s.tenants_seen); });
  series("fleet.slo.tenants_finished", "counter", "tenants completed",
         [&](const Snapshot& s) { return u(s.tenants_finished); });
  series("fleet.slo.tenants_out_of_budget", "gauge",
         "tenants whose current window is over budget",
         [&](const Snapshot& s) {
           return static_cast<double>(s.tenants_out_of_budget);
         });
  series("fleet.slo.worst_burn", "gauge", "worst current-window burn rate",
         [&](const Snapshot& s) {
           return s.top.empty() ? 0.0 : s.top.front().burn;
         });

  const std::string metric =
      obs::PromMetricName(prefix, "fleet.slo.miss_delay");
  out += "# HELP " + metric + " misses by delay class (delay bound)\n";
  out += "# TYPE " + metric + " summary\n";
  char buf[64];
  for (double q : {0.5, 0.9, 0.99}) {
    std::snprintf(buf, sizeof(buf), "%.6g", q);
    out += metric + "{quantile=\"" + buf + "\"} ";
    std::snprintf(buf, sizeof(buf), "%.6g", total.miss_delay.Quantile(q));
    out += std::string(buf) + "\n";
  }
  out += metric + "_sum " + std::to_string(total.miss_delay.sum()) + "\n";
  out += metric + "_count " + std::to_string(total.miss_delay.count()) + "\n";
  return out;
}

std::string SloTracker::TenantsJson(uint32_t limit) const {
  if (limit == 0) limit = options_.top_k;
  struct Entry {
    size_t shard;
    TenantBurn burn;
  };
  std::vector<Entry> entries;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Snapshot snapshot = SnapshotShard(s);
    for (const TenantBurn& burn : snapshot.top) {
      entries.push_back({s, burn});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.burn.window_misses != b.burn.window_misses) {
      return a.burn.window_misses > b.burn.window_misses;
    }
    return a.burn.tenant < b.burn.tenant;
  });
  if (entries.size() > limit) entries.resize(limit);

  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::snprintf(buf, sizeof(buf), "%.6g", e.burn.burn);
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"tenant\": " + std::to_string(e.burn.tenant) +
           ", \"shard\": " + std::to_string(e.shard) +
           ", \"window_misses\": " + std::to_string(e.burn.window_misses) +
           ", \"burn\": " + buf + "}";
  }
  out += entries.empty() ? "]\n" : "\n]\n";
  return out;
}

void SloTracker::AbsorbInto(obs::Scope& scope) {
  // Serial (end of RunAll, workers joined): read the accumulators directly
  // and absorb deltas against the last absorption.
  Snapshot total;
  for (auto& shard : shards_) {
    SumInto(total, shard->acc);
  }
  // The since-last-absorb histogram delta, recovered bucket-wise from the
  // cumulative totals — Finish records each miss once, not into a second
  // pending histogram.
  obs::LogHistogram pending;
  pending.MergeDiff(total.miss_delay, absorbed_.miss_delay);
  RankTop(total.top, options_.top_k);
  const std::pair<std::string_view, uint64_t> counters[] = {
      {"fleet.slo.observations", total.observations - absorbed_.observations},
      {"fleet.slo.rounds", total.rounds - absorbed_.rounds},
      {"fleet.slo.misses", total.misses - absorbed_.misses},
      {"fleet.slo.windows_closed",
       total.windows_closed - absorbed_.windows_closed},
      {"fleet.slo.windows_breached",
       total.windows_breached - absorbed_.windows_breached},
      {"fleet.slo.exhausted_events",
       total.exhausted_events - absorbed_.exhausted_events},
      {"fleet.slo.tenants_seen", total.tenants_seen - absorbed_.tenants_seen},
      {"fleet.slo.tenants_finished",
       total.tenants_finished - absorbed_.tenants_finished},
  };
  scope.AbsorbCounters(counters);
  scope.AbsorbGauge("fleet.slo.tenants_out_of_budget",
                    static_cast<double>(total.tenants_out_of_budget));
  scope.AbsorbGauge(
      "fleet.slo.tenants_in_budget",
      static_cast<double>(total.tenants_seen) -
          static_cast<double>(total.tenants_out_of_budget));
  scope.AbsorbGauge("fleet.slo.worst_burn",
                    total.top.empty() ? 0.0 : total.top.front().burn);
  scope.AbsorbHistogram("fleet.slo.miss_delay", pending);
  absorbed_ = std::move(total);
}

}  // namespace fleet
}  // namespace rrs
