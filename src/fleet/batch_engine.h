// BatchEngine: a lane-parallel execution core for fleets of same-shape
// tenants.
//
// A slab holds up to `width` (≤ 64) concurrently live replay sessions
// ("lanes") that advance in lock-step, one round at a time, through the
// model's four phases. Lanes must agree on the *shape* — color count,
// resource count, mini-rounds per round, Δ, and the per-color delay-bound
// layout — which is what lets the slab amortize the lane-invariant work:
//
//  - per-color pending counts live in one SoA table indexed
//    [color * width + lane], exposed to every lane's policy through the
//    strided ResourceView fast path;
//  - expiring deadlines are tracked in one shared timing wheel whose slot
//    entries are (color, lane) pairs in push order, so round k's drop phase
//    is a single scan of slot k mod W for the whole slab, and filtering by
//    lane reproduces the scalar engine's per-lane expiry order exactly;
//  - execution advances as a masked walk over colors: per color, a lane
//    bitmask of lanes with resources of that color, each popping
//    min(resources, pending) jobs;
//  - lanes running the stock ΔLRU-EDF policy are handed to the lane-fused
//    kernel (sched/lane_kernels.h), which shares boundary collection and the
//    EDF class order across the slab; any other registry policy runs through
//    its ordinary virtual hooks per lane ("generic" lanes), so the slab
//    supports every policy.
//
// Sessions stay bit-identical to the scalar Engine: per-lane RunResults
// (cost, drops, telemetry counters), snapshot byte streams, and restore
// compatibility are pinned against Engine by tests/batch_engine_test.cpp.
// The slab is a Session (core/session.h): lanes rebind in place, the arena
// performs no steady-state allocation once warm, and SnapshotLane /
// RestoreLane interoperate with Engine::SnapshotRun / RestoreRun at round
// cuts.
//
// Restrictions (the fleet falls back to a scalar Engine otherwise):
// record_schedule must be off and no per-run obs scope may be attached —
// both are per-resource-grained observers with no batched equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost.h"
#include "core/engine.h"
#include "core/instance.h"
#include "core/job_ring.h"
#include "core/policy.h"
#include "obs/scope.h"
#include "sched/lane_kernels.h"
#include "snapshot/codec.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace fleet {

class BatchEngine {
 public:
  static constexpr uint32_t kMaxLanes = DlruEdfLaneKernel::kMaxLanes;

  explicit BatchEngine(uint32_t width);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  uint32_t width() const { return width_; }
  bool empty() const { return open_mask_ == 0; }
  uint64_t open_mask() const { return open_mask_; }
  Round next_round() const { return next_round_; }

  bool lane_open(uint32_t lane) const {
    return (open_mask_ >> lane & 1) != 0;
  }
  // An open lane whose horizon is exhausted (ready for FinishLane).
  bool lane_done(uint32_t lane) const;

  // Whether a tenant can join the slab: batchable options (no schedule
  // recording, no obs scope) and, unless the slab is empty (an empty slab
  // adopts any shape), the slab's exact shape.
  bool LaneCompatible(const Instance& instance,
                      const EngineOptions& options) const;

  // Opens lane `lane` (must be free) on a tenant. All lanes step in
  // lock-step from round 0, so opening is only legal while the slab has not
  // stepped (next_round() == 0). The instance and policy must outlive the
  // lane's run.
  void OpenLane(uint32_t lane, const Instance& instance,
                const EngineOptions& options, SchedulerPolicy& policy);

  // Opens a lane on a streaming source (same compatibility rules against
  // source.shape()). The source is Reset and its rounds are pulled by the
  // slab's arrival phase; it must outlive the lane's run.
  void OpenLane(uint32_t lane, workload::ArrivalSource& source,
                const EngineOptions& options, SchedulerPolicy& policy);

  // Advances every open lane by up to max_rounds rounds in lock-step (lanes
  // whose horizon is exhausted stop participating). Returns true while any
  // open lane has rounds remaining.
  bool StepRounds(Round max_rounds);

  // Closes a finished lane (lane_done) and fills `result` exactly as
  // Engine::FinishRun would. When the last lane closes the slab resets to
  // round 0 for reuse.
  void FinishLane(uint32_t lane, RunResult& result);

  // Abandons an open lane mid-run (its wheel entries are ignored from then
  // on).
  void AbortLane(uint32_t lane);

  // Serializes the lane's run state in Engine::SnapshotRun's exact byte
  // format (shared-wheel entries are remapped into the scalar per-lane wheel
  // layout), so a lane snapshot restores into a scalar Engine and vice
  // versa.
  void SnapshotLane(uint32_t lane, snapshot::Writer& w) const;

  // Opens lane `lane` from a scalar-format snapshot. The snapshot's round
  // must equal the slab's current round; an empty slab adopts the snapshot's
  // round.
  void RestoreLane(uint32_t lane, const Instance& instance,
                   const EngineOptions& options, SchedulerPolicy& policy,
                   snapshot::Reader& r);

  // Restore onto a streaming source. With `source_state` the source loads
  // its saved kTagArrivalSource section(s) from that reader; without it the
  // source is repositioned by deterministic replay (SeekRound).
  void RestoreLane(uint32_t lane, workload::ArrivalSource& source,
                   const EngineOptions& options, SchedulerPolicy& policy,
                   snapshot::Reader& r,
                   snapshot::Reader* source_state = nullptr);

  // ---- Mid-run observation hooks (SLO tracking) --------------------------
  // The lane's cost accumulated so far; valid while the lane is open.
  const CostBreakdown& lane_cost(uint32_t lane) const;
  // Rounds the lane has actually advanced: the slab round clamped to the
  // lane's own horizon (a done lane stops participating in lock-step).
  Round lane_rounds(uint32_t lane) const;

  // ---- Occupancy counters (cumulative over the slab's lifetime) ----------
  uint64_t lane_rounds_stepped() const { return lane_rounds_; }
  uint64_t slab_rounds_stepped() const { return slab_rounds_; }
  uint64_t fused_lane_opens() const { return fused_lane_opens_; }
  uint64_t generic_lane_opens() const { return generic_lane_opens_; }

 private:
  struct Lane;
  class LaneView;

  struct WheelEntry {
    ColorId color;
    uint32_t lane;
  };

  // Binds the slab's shape arrays (pending SoA, wheel, kernel) to a new
  // shape. Only legal while the slab is empty.
  void AdoptShape(const Instance& instance, const EngineOptions& options);

  // Shared lane initialization for OpenLane and RestoreLane: binds the
  // tenant (source == nullptr means instance-fed via the lane's own
  // InstanceSource), clears the lane's arena and resets the policy.
  void InitLane(uint32_t lane, const Instance& shape,
                workload::ArrivalSource* source, const EngineOptions& options,
                SchedulerPolicy& policy);

  // Shared tail of the two OpenLane overloads (fused-kernel binding).
  void BindOpenedLane(uint32_t lane, SchedulerPolicy& policy);
  // Shared body of the two RestoreLane overloads.
  void RestoreLaneImpl(uint32_t lane, snapshot::Reader& r,
                       snapshot::Reader* source_state);

  // Releases a lane and, when it was the last one, resets the slab.
  void CloseLane(uint32_t lane);

  void DropPhase(Round k, uint64_t stepping);
  void ArrivalPhase(Round k, uint64_t stepping);
  void ReconfigPhase(Round k, int mini, uint64_t stepping);
  void ExecPhase(uint64_t stepping);

  uint32_t width_ = 0;
  uint64_t open_mask_ = 0;
  uint64_t fused_mask_ = 0;
  Round next_round_ = 0;

  // Slab shape (valid while any lane is open; retained for capacity reuse).
  size_t num_colors_ = 0;
  uint32_t num_resources_ = 0;
  int mini_rounds_ = 1;
  uint64_t delta_ = 1;
  std::vector<Round> delay_bounds_;
  Round max_delay_ = 1;

  std::vector<Lane> lanes_;  // by value: the hot phases index it per entry
  std::vector<std::unique_ptr<LaneView>> views_;
  std::vector<ResourceView*> view_ptrs_;

  // SoA state indexed [color * width_ + lane].
  std::vector<uint64_t> pending_;
  std::vector<uint32_t> colored_count_;  // resources per (color, lane)
  // Lanes with at least one resource of the color.
  std::vector<uint64_t> colored_bits_;
  // Lanes with pending jobs of the color (pending_[c][lane] != 0): the
  // execution phase intersects it with colored_bits_, so drained
  // (color, lane) pairs cost nothing — the dominant case late in a session.
  std::vector<uint64_t> backlog_bits_;

  // Shared timing wheel: slot (k mod size) holds the slab-wide expiries of
  // round k, appended in push order (arrival phases run lanes in ascending
  // lane order, so the per-lane subsequence equals the scalar push order).
  // The effective slot count (wheel_mask_ + 1) is max_delay_+1 rounded up to
  // a power of two, so the per-arrival slot index is a mask, not a division;
  // wheel_ itself is grow-only and may be larger than the effective size.
  std::vector<std::vector<WheelEntry>> wheel_;
  uint64_t wheel_mask_ = 0;

  // StepRounds scratch: (horizon, lane bit) expiries, sorted ascending, so
  // the per-round stepping mask updates incrementally instead of rescanning
  // every open lane each round. arrival_scratch_ does the same for the last
  // arrival round of fused lanes: once a fused lane drains past it, its
  // arrival phase is a proven no-op and the lane is masked out of it.
  std::vector<std::pair<Round, uint64_t>> expiry_scratch_;
  std::vector<std::pair<Round, uint64_t>> arrival_scratch_;

  // Bumped once per reconfiguration phase; LaneView compacts its nonidle
  // list lazily when its seen epoch is behind (replaces a per-lane
  // invalidation loop per mini-round).
  uint64_t phase_epoch_ = 0;

  std::vector<JobId> dropped_scratch_;  // wrapped drop spans only
  // SnapshotLane scratch: lane wheel slots rebuilt from the shared wheel.
  mutable std::vector<std::vector<ColorId>> snap_slots_;
  std::vector<ColorId> snap_colors_scratch_;  // RestoreLane slot reads

  DlruEdfLaneKernel kernel_;

  uint64_t lane_rounds_ = 0;
  uint64_t slab_rounds_ = 0;
  uint64_t fused_lane_opens_ = 0;
  uint64_t generic_lane_opens_ = 0;
};

}  // namespace fleet
}  // namespace rrs
