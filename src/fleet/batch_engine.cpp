#include "fleet/batch_engine.h"

#include <algorithm>
#include <bit>
#include <typeinfo>

#include "core/run_telemetry.h"
#include "util/check.h"

#if defined(RRS_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rrs {
namespace fleet {

namespace {

inline Round PosMod(Round a, Round m) {
  const Round r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace

// Per-lane session arena: the same fields as the scalar Engine's SimState,
// minus what the slab shares (the pending table and the timing wheel) and
// minus the schedule/obs machinery batched lanes forbid. Buffers are
// assigned (not reconstructed) per tenant, so capacity carries over and a
// warm lane opens with zero allocation (Session rules 1-2).
struct BatchEngine::Lane {
  const Instance* instance = nullptr;  // shape (full instance when source-less)
  EngineOptions options;
  SchedulerPolicy* policy = nullptr;
  bool fused = false;
  Round horizon = 0;
  Round request_rounds = 0;
  uint64_t arrived = 0;  // dense JobId counter, mirrors scalar SimState
  // Arrival feed: an external streaming source, or the lane's own adapter
  // over `instance` (exactly the scalar Engine's arrangement).
  workload::ArrivalSource* source = nullptr;
  workload::InstanceSource own_source;

  workload::ArrivalSource& src() {
    if (source != nullptr) return *source;
    return own_source;
  }
  // The scalar-equivalent wheel size, carried for snapshot emission (a
  // restored lane keeps its snapshot's wheel size so a re-snapshot matches
  // the scalar session's bytes).
  uint64_t wheel_size = 0;

  std::vector<ColorId> resource_color;
  std::vector<JobRing> rings;
  std::vector<ColorId> nonidle_list;  // lazily compacted
  std::vector<uint8_t> in_nonidle_list;
  std::vector<Round> last_wheel_push;

  CostBreakdown cost;
  uint64_t executed = 0;
  std::vector<uint64_t> drops_per_color;
  obs::RunInstruments instruments;
#if RRS_OBS_LEVEL >= 1
  std::vector<uint64_t> reconfigs_per_color;
#endif
};

// The lane's window onto the slab: strided pending fast path, per-lane
// resource colors and cost accounting. SetColor additionally maintains the
// slab's per-(color, lane) resource histogram, which is what the masked
// execution phase walks instead of rescanning resource_color per mini-round.
class BatchEngine::LaneView final : public ResourceView {
 public:
  LaneView(BatchEngine& be, uint32_t lane)
      : ResourceView(be.pending_.data() + lane, be.width_),
        be_(be),
        lane_(lane) {}

  void Rebind() { set_pending_table(be_.pending_.data() + lane_, be_.width_); }

  uint32_t num_resources() const final {
    return lane().options.num_resources;
  }

  ColorId color_of(ResourceId r) const final {
    RRS_DCHECK(r < lane().resource_color.size());
    return lane().resource_color[r];
  }

  void SetColor(ResourceId r, ColorId c) final {
    Lane& l = lane();
    RRS_CHECK_LT(r, l.resource_color.size());
    RRS_CHECK(c == kNoColor || c < l.instance->num_colors())
        << "SetColor to unknown color " << c;
    const ColorId old = l.resource_color[r];
    if (old == c) return;
    l.resource_color[r] = c;
    ++l.cost.reconfigurations;
#if RRS_OBS_LEVEL >= 1
    if (c != kNoColor) ++l.reconfigs_per_color[c];
#endif
    const uint64_t bit = uint64_t{1} << lane_;
    if (old != kNoColor) {
      uint32_t& count =
          be_.colored_count_[static_cast<size_t>(old) * be_.width_ + lane_];
      if (--count == 0) be_.colored_bits_[old] &= ~bit;
    }
    if (c != kNoColor) {
      uint32_t& count =
          be_.colored_count_[static_cast<size_t>(c) * be_.width_ + lane_];
      if (count++ == 0) be_.colored_bits_[c] |= bit;
    }
  }

  Round earliest_deadline(ColorId c) const final {
    RRS_CHECK(!lane().rings[c].empty())
        << "earliest_deadline on idle color " << c;
    return lane().rings[c].front_deadline();
  }

  const std::vector<ColorId>& nonidle_colors() const final {
    Lane& l = lane();
    if (seen_epoch_ != be_.phase_epoch_) {
      size_t out = 0;
      for (size_t i = 0; i < l.nonidle_list.size(); ++i) {
        const ColorId c = l.nonidle_list[i];
        if (be_.pending_[static_cast<size_t>(c) * be_.width_ + lane_] != 0) {
          l.nonidle_list[out++] = c;
        } else {
          l.in_nonidle_list[c] = 0;
        }
      }
      l.nonidle_list.resize(out);
      seen_epoch_ = be_.phase_epoch_;
    }
    return l.nonidle_list;
  }

 private:
  Lane& lane() const { return be_.lanes_[lane_]; }

  BatchEngine& be_;
  uint32_t lane_;
  mutable uint64_t seen_epoch_ = ~uint64_t{0};
};

BatchEngine::BatchEngine(uint32_t width) : width_(width) {
  RRS_CHECK_GE(width, 1u);
  RRS_CHECK_LE(width, kMaxLanes);
  lanes_.resize(width);
  expiry_scratch_.reserve(width);
}

BatchEngine::~BatchEngine() = default;

bool BatchEngine::lane_done(uint32_t lane) const {
  return lane_open(lane) && next_round_ > lanes_[lane].horizon;
}

bool BatchEngine::LaneCompatible(const Instance& instance,
                                 const EngineOptions& options) const {
  if (options.record_schedule || options.obs_scope != nullptr) return false;
  if (options.num_resources < 1 || options.mini_rounds_per_round < 1 ||
      options.cost_model.delta < 1) {
    return false;
  }
  if (open_mask_ == 0) return true;  // an empty slab adopts any shape
  if (instance.num_colors() != num_colors_ ||
      options.num_resources != num_resources_ ||
      options.mini_rounds_per_round != mini_rounds_ ||
      options.cost_model.delta != delta_) {
    return false;
  }
  for (size_t c = 0; c < num_colors_; ++c) {
    if (instance.delay_bound(static_cast<ColorId>(c)) != delay_bounds_[c]) {
      return false;
    }
  }
  return true;
}

void BatchEngine::AdoptShape(const Instance& instance,
                             const EngineOptions& options) {
  RRS_CHECK_EQ(open_mask_, 0u);
  num_colors_ = instance.num_colors();
  num_resources_ = options.num_resources;
  mini_rounds_ = options.mini_rounds_per_round;
  delta_ = options.cost_model.delta;
  delay_bounds_.resize(num_colors_);
  max_delay_ = 1;
  for (size_t c = 0; c < num_colors_; ++c) {
    delay_bounds_[c] = instance.delay_bound(static_cast<ColorId>(c));
    max_delay_ = std::max(max_delay_, delay_bounds_[c]);
  }

  pending_.assign(num_colors_ * width_, 0);
  colored_count_.assign(num_colors_ * width_, 0);
  colored_bits_.assign(num_colors_, 0);
  backlog_bits_.assign(num_colors_, 0);

  // Power-of-two slot count: the slot index (deadline & wheel_mask_) in the
  // per-arrival hot path is a mask instead of a division. Any effective size
  // ≥ max_delay_+1 keeps deadline residues unique over the live window, so
  // the snapshot remap is unaffected.
  const size_t wheel_size =
      std::bit_ceil(static_cast<size_t>(max_delay_) + 1);
  wheel_mask_ = wheel_size - 1;
  if (wheel_.size() < wheel_size) wheel_.resize(wheel_size);

  if (views_.empty()) {
    views_.reserve(width_);
    view_ptrs_.reserve(width_);
    for (uint32_t lane = 0; lane < width_; ++lane) {
      views_.push_back(std::make_unique<LaneView>(*this, lane));
      view_ptrs_.push_back(views_.back().get());
    }
  } else {
    for (auto& view : views_) view->Rebind();
  }
  kernel_.SetShape(num_colors_, width_, backlog_bits_.data());
}

void BatchEngine::InitLane(uint32_t lane, const Instance& shape,
                           workload::ArrivalSource* source,
                           const EngineOptions& options,
                           SchedulerPolicy& policy) {
  Lane& l = lanes_[lane];
  l.instance = &shape;
  l.source = source;
  if (source == nullptr) l.own_source.Bind(shape);
  workload::ArrivalSource& src = l.src();
  src.Reset();
  l.options = options;
  l.policy = &policy;
  l.horizon = src.horizon();
  l.request_rounds = src.num_request_rounds();
  l.arrived = 0;
  l.wheel_size = static_cast<uint64_t>(max_delay_) + 1;

  l.resource_color.assign(num_resources_, kNoColor);
  if (l.rings.size() < num_colors_) l.rings.resize(num_colors_);
  for (auto& ring : l.rings) ring.clear();
  uint32_t max_backlog_any = 0;
  const uint64_t bit = uint64_t{1} << lane;
  for (size_t c = 0; c < num_colors_; ++c) {
    const uint32_t bound = src.max_backlog(static_cast<ColorId>(c));
    l.rings[c].Reserve(bound);
    max_backlog_any = std::max(max_backlog_any, bound);
    pending_[c * width_ + lane] = 0;
    backlog_bits_[c] &= ~bit;
    if (colored_count_[c * width_ + lane] != 0) {
      colored_count_[c * width_ + lane] = 0;
      colored_bits_[c] &= ~bit;
    }
  }
  if (dropped_scratch_.capacity() < max_backlog_any) {
    dropped_scratch_.reserve(max_backlog_any);
  }
  l.nonidle_list.clear();
  l.nonidle_list.reserve(num_colors_);
  l.in_nonidle_list.assign(num_colors_, 0);
  l.last_wheel_push.assign(num_colors_, -1);
  l.cost = CostBreakdown{};
  l.executed = 0;
  l.drops_per_color.assign(num_colors_, 0);
#if RRS_OBS_LEVEL >= 1
  l.reconfigs_per_color.assign(num_colors_, 0);
#endif
  l.instruments.Rebind(nullptr, "engine");
  policy.Reset(shape, options);
}

void BatchEngine::OpenLane(uint32_t lane, const Instance& instance,
                           const EngineOptions& options,
                           SchedulerPolicy& policy) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(!lane_open(lane)) << "OpenLane on an occupied lane";
  RRS_CHECK_EQ(next_round_, 0) << "OpenLane into a stepped slab";
  RRS_CHECK(LaneCompatible(instance, options))
      << "tenant incompatible with the slab shape";
  if (open_mask_ == 0) AdoptShape(instance, options);
  InitLane(lane, instance, nullptr, options, policy);
  BindOpenedLane(lane, policy);
}

void BatchEngine::OpenLane(uint32_t lane, workload::ArrivalSource& source,
                           const EngineOptions& options,
                           SchedulerPolicy& policy) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(!lane_open(lane)) << "OpenLane on an occupied lane";
  RRS_CHECK_EQ(next_round_, 0) << "OpenLane into a stepped slab";
  RRS_CHECK(LaneCompatible(source.shape(), options))
      << "tenant incompatible with the slab shape";
  if (open_mask_ == 0) AdoptShape(source.shape(), options);
  InitLane(lane, source.shape(), &source, options, policy);
  BindOpenedLane(lane, policy);
}

void BatchEngine::BindOpenedLane(uint32_t lane, SchedulerPolicy& policy) {
  Lane& l = lanes_[lane];
  l.fused = typeid(policy) == typeid(DlruEdfPolicy) &&
            !static_cast<DlruEdfPolicy&>(policy).collect_ineligible_jobs();
  open_mask_ |= uint64_t{1} << lane;
  if (l.fused) {
    fused_mask_ |= uint64_t{1} << lane;
    kernel_.BindLane(lane, static_cast<DlruEdfPolicy*>(&policy));
    ++fused_lane_opens_;
  } else {
    ++generic_lane_opens_;
  }
}

bool BatchEngine::StepRounds(Round max_rounds) {
  RRS_CHECK(open_mask_ != 0) << "StepRounds on an empty slab";
  RRS_CHECK_GE(max_rounds, 1);
  Round max_horizon = -1;
  uint64_t stepping = 0;
  expiry_scratch_.clear();
  for (uint64_t m = open_mask_; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    const Round horizon = lanes_[lane].horizon;
    max_horizon = std::max(max_horizon, horizon);
    if (horizon >= next_round_) {
      stepping |= uint64_t{1} << lane;
      expiry_scratch_.emplace_back(horizon, uint64_t{1} << lane);
    }
  }
  if (next_round_ > max_horizon) return false;
  std::sort(expiry_scratch_.begin(), expiry_scratch_.end());
  size_t expiry_next = 0;
  // Fused lanes drop out of the arrival phase once k passes their last
  // arrival round: the phase body is a no-op on an empty round and
  // DlruEdfPolicy has no AfterArrivalPhase hook. Generic lanes always run
  // it — an arbitrary policy may act on the empty phase.
  uint64_t arrivals_live = stepping;
  arrival_scratch_.clear();
  for (uint64_t m = stepping & fused_mask_; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    arrival_scratch_.emplace_back(lanes_[lane].request_rounds,
                                  uint64_t{1} << lane);
  }
  std::sort(arrival_scratch_.begin(), arrival_scratch_.end());
  size_t arrival_next = 0;
  // Overflow-safe "min(max_horizon, next + max - 1)".
  const Round last = (max_rounds - 1 >= max_horizon - next_round_)
                         ? max_horizon
                         : next_round_ + max_rounds - 1;

  for (Round k = next_round_; k <= last; ++k) {
    lane_rounds_ += static_cast<uint64_t>(std::popcount(stepping));
    ++slab_rounds_;

    DropPhase(k, stepping);
    while (arrival_next < arrival_scratch_.size() &&
           arrival_scratch_[arrival_next].first <= k) {
      arrivals_live &= ~arrival_scratch_[arrival_next++].second;
    }
    ArrivalPhase(k, arrivals_live & stepping);
    for (int mini = 0; mini < mini_rounds_; ++mini) {
      ReconfigPhase(k, mini, stepping);
      ExecPhase(stepping);
    }
    while (expiry_next < expiry_scratch_.size() &&
           expiry_scratch_[expiry_next].first == k) {
      stepping &= ~expiry_scratch_[expiry_next++].second;
    }
  }
  next_round_ = last + 1;
  return next_round_ <= max_horizon;
}

void BatchEngine::DropPhase(Round k, uint64_t stepping) {
  auto& slot = wheel_[static_cast<size_t>(k) & wheel_mask_];
  if (!slot.empty()) {
    for (const WheelEntry& e : slot) {
      // Entries of aborted lanes linger until their slot comes around; skip
      // them (finished lanes cannot have future entries — every deadline
      // lies within the lane's horizon).
      if ((stepping >> e.lane & 1) == 0) continue;
      Lane& l = lanes_[e.lane];
      auto& ring = l.rings[e.color];
      uint32_t n = 0;
      const uint32_t sz = ring.size();
      while (n < sz && ring.deadline_at(n) == k) ++n;
      if (n == 0) continue;
      l.cost.drops += n;
      l.cost.weighted_drops += n * l.instance->drop_cost(e.color);
      l.drops_per_color[e.color] += n;
      if (l.fused) {
        // Fused lanes never collect dropped ids (OpenLane requires it), so
        // the span need not be materialized.
        kernel_.OnJobsDropped(e.lane, k, e.color, n);
      } else {
        std::span<const JobId> jobs;
        if (ring.front_contiguous(n)) {
          jobs = std::span<const JobId>(ring.front_ptr(), n);
        } else {
          dropped_scratch_.clear();
          for (uint32_t i = 0; i < n; ++i) {
            dropped_scratch_.push_back(ring.job_at(i));
          }
          jobs = dropped_scratch_;
        }
        l.policy->OnJobsDropped(k, e.color, n, jobs);
      }
      ring.pop_n(n);
      uint64_t& pend = pending_[static_cast<size_t>(e.color) * width_ + e.lane];
      pend -= n;
      if (pend == 0) backlog_bits_[e.color] &= ~(uint64_t{1} << e.lane);
    }
    slot.clear();
  }

  kernel_.AfterDropPhase(k, stepping & fused_mask_);
  for (uint64_t m = stepping & ~fused_mask_; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    lanes_[lane].policy->AfterDropPhase(k);
  }
}

void BatchEngine::ArrivalPhase(Round k, uint64_t stepping) {
  for (uint64_t m = stepping; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    Lane& l = lanes_[lane];
    if (k < l.request_rounds) {
      workload::ArrivalSource& src = l.src();
      RRS_DCHECK(src.cursor() == k);
      for (const auto& [c, count64] : src.NextRound()) {
        if (count64 == 0) continue;
        const Round deadline = k + delay_bounds_[c];
        RRS_CHECK_LE(deadline, l.horizon);
        const uint32_t count = static_cast<uint32_t>(count64);
        // Scalar SimState::AddRun against the slab's shared structures.
        uint64_t& pend = pending_[static_cast<size_t>(c) * width_ + lane];
        if (pend == 0 && !l.in_nonidle_list[c]) {
          l.in_nonidle_list[c] = 1;
          l.nonidle_list.push_back(c);
        }
        l.rings[c].push_run(static_cast<JobId>(l.arrived), deadline, count);
        l.arrived += count;
        pend += count;
        backlog_bits_[c] |= uint64_t{1} << lane;
        if (l.last_wheel_push[c] != deadline) {
          l.last_wheel_push[c] = deadline;
          wheel_[static_cast<size_t>(deadline) & wheel_mask_].push_back(
              {c, lane});
        }
        if (l.fused) {
          kernel_.OnArrivals(lane, k, c, count);
        } else {
          l.policy->OnArrivals(k, c, count);
        }
      }
    }
    // DlruEdfPolicy does not override AfterArrivalPhase; fused lanes skip it.
    if (!l.fused) l.policy->AfterArrivalPhase(k);
  }
}

void BatchEngine::ReconfigPhase(Round k, int mini, uint64_t stepping) {
  ++phase_epoch_;
  for (uint64_t m = stepping & ~fused_mask_; m != 0; m &= m - 1) {
    const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
    lanes_[lane].policy->Reconfigure(k, mini, *views_[lane]);
  }
  kernel_.Reconfigure(k, mini, stepping & fused_mask_, view_ptrs_.data());
}

void BatchEngine::ExecPhase(uint64_t stepping) {
  // Masked walk over colors: each lane with resources of color c executes
  // min(resources, pending) of the color's earliest pending jobs —
  // equivalent to the scalar engine's per-lane histogram pass, amortized
  // across the slab via the maintained colored_count/colored_bits tables.
  auto exec_color = [&](size_t c) {
    // Lanes with both resources of the color and a backlog: take ≥ 1.
    uint64_t m = colored_bits_[c] & backlog_bits_[c] & stepping;
    if (m == 0) return;
    const size_t base = c * width_;
    for (; m != 0; m &= m - 1) {
      const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
      uint64_t& pend = pending_[base + lane];
      const uint64_t take =
          std::min<uint64_t>(colored_count_[base + lane], pend);
      Lane& l = lanes_[lane];
      l.rings[c].pop_n(static_cast<uint32_t>(take));
      pend -= take;
      if (pend == 0) backlog_bits_[c] &= ~(uint64_t{1} << lane);
      l.executed += take;
    }
  };
  size_t c = 0;
#if defined(RRS_SIMD) && defined(__AVX2__)
  // Four colors per compare over the lane-bitmask tables: a block with no
  // (colored ∩ backlog) lane anywhere — the common case while a session
  // drains — is skipped on one testz. Identical per-color processing below.
  for (; c + 4 <= num_colors_; c += 4) {
    const __m256i colored = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(colored_bits_.data() + c));
    const __m256i backlog = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(backlog_bits_.data() + c));
    const __m256i live = _mm256_and_si256(colored, backlog);
    if (_mm256_testz_si256(live, live) != 0) continue;
    exec_color(c);
    exec_color(c + 1);
    exec_color(c + 2);
    exec_color(c + 3);
  }
#endif
  for (; c < num_colors_; ++c) exec_color(c);
}

void BatchEngine::FinishLane(uint32_t lane, RunResult& result) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(lane_done(lane)) << "FinishLane before the lane's horizon";
  Lane& l = lanes_[lane];

  result.cost = l.cost;
  result.executed = l.executed;
  result.arrived = l.arrived;
  result.rounds_simulated = l.horizon + 1;
  result.drops_per_color = l.drops_per_color;
  RRS_CHECK_EQ(result.executed + result.cost.drops, result.arrived)
      << "batch engine accounting mismatch";
#if RRS_OBS_LEVEL >= 1
  internal::FinalizeRunTelemetry(*l.policy, l.instruments,
                                 l.reconfigs_per_color, result);
#else
  internal::FinalizeRunTelemetry(*l.policy, l.instruments, {}, result);
#endif
  result.schedule.reset();
  CloseLane(lane);
}

const CostBreakdown& BatchEngine::lane_cost(uint32_t lane) const {
  RRS_CHECK(lane_open(lane)) << "lane_cost on a free lane";
  return lanes_[lane].cost;
}

Round BatchEngine::lane_rounds(uint32_t lane) const {
  RRS_CHECK(lane_open(lane)) << "lane_rounds on a free lane";
  return std::min(next_round_, lanes_[lane].horizon + 1);
}

void BatchEngine::AbortLane(uint32_t lane) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(lane_open(lane)) << "AbortLane on a free lane";
  CloseLane(lane);
}

void BatchEngine::CloseLane(uint32_t lane) {
  Lane& l = lanes_[lane];
  const uint64_t bit = uint64_t{1} << lane;
  if (l.fused) kernel_.UnbindLane(lane);
  open_mask_ &= ~bit;
  fused_mask_ &= ~bit;
  // Scrub the lane's SoA columns (an aborted lane leaves pending jobs and
  // resource colors behind).
  for (size_t c = 0; c < num_colors_; ++c) {
    pending_[c * width_ + lane] = 0;
    backlog_bits_[c] &= ~bit;
    if (colored_count_[c * width_ + lane] != 0) {
      colored_count_[c * width_ + lane] = 0;
      colored_bits_[c] &= ~bit;
    }
  }
  l.policy = nullptr;
  l.instance = nullptr;
  l.source = nullptr;
  l.fused = false;
  if (open_mask_ == 0) {
    // Last lane out: reset for reuse. Clearing the wheel drops any stale
    // entries aborted lanes left in not-yet-visited slots.
    next_round_ = 0;
    for (auto& slot : wheel_) slot.clear();
  }
}

void BatchEngine::SnapshotLane(uint32_t lane, snapshot::Writer& w) const {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(lane_open(lane)) << "SnapshotLane on a free lane";
  const Lane& l = lanes_[lane];

  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(num_colors_);
  w.PutU32(num_resources_);
  w.PutI64(next_round_);
  w.PutVec(l.resource_color);
  for (size_t c = 0; c < num_colors_; ++c) l.rings[c].SaveState(w);
  w.PutU64(num_colors_);
  for (size_t c = 0; c < num_colors_; ++c) {
    w.PutU64(pending_[c * width_ + lane]);
  }
  w.PutVec(l.nonidle_list);
  w.PutVec(l.in_nonidle_list);

  // Rebuild the lane's scalar wheel from the shared one. An entry of slab
  // slot j carries the unique deadline d ≡ j (mod slab wheel size) in the
  // live window [next_round_, next_round_ + max_delay - 1], so d lands in
  // exactly one lane slot d mod l.wheel_size; sources map to distinct
  // targets, and per-slot order is slab push order == the lane's scalar
  // push order.
  w.PutU64(l.wheel_size);
  snap_slots_.resize(l.wheel_size);
  for (auto& slot : snap_slots_) slot.clear();
  // The effective slot count, not wheel_.size(): the storage is grow-only
  // and may exceed the current shape's power-of-two size.
  const Round slab_size = static_cast<Round>(wheel_mask_) + 1;
  for (size_t j = 0; j <= wheel_mask_; ++j) {
    for (const WheelEntry& e : wheel_[j]) {
      if (e.lane != lane) continue;
      const Round d =
          next_round_ + PosMod(static_cast<Round>(j) - next_round_, slab_size);
      snap_slots_[static_cast<size_t>(d) % l.wheel_size].push_back(e.color);
    }
  }
  for (const auto& slot : snap_slots_) w.PutVec(slot);

  w.PutVec(l.last_wheel_push);
  w.PutU64(l.cost.reconfigurations);
  w.PutU64(l.cost.drops);
  w.PutU64(l.cost.weighted_drops);
  w.PutU64(l.executed);
  w.PutVec(l.drops_per_color);
#if RRS_OBS_LEVEL >= 1
  w.PutBool(true);
  w.PutVec(l.reconfigs_per_color);
#else
  w.PutBool(false);
#endif
  w.EndSection();

  // A fused lane's deadline table lives in the kernel during the run; flush
  // it so the policy serializes the bytes a scalar session would.
  if (l.fused) kernel_.FlushDeadlines(lane);
  l.policy->SaveState(w);
}

void BatchEngine::RestoreLane(uint32_t lane, const Instance& instance,
                              const EngineOptions& options,
                              SchedulerPolicy& policy, snapshot::Reader& r) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(!lane_open(lane)) << "RestoreLane on an occupied lane";
  RRS_CHECK(LaneCompatible(instance, options))
      << "snapshot tenant incompatible with the slab shape";
  if (open_mask_ == 0) AdoptShape(instance, options);
  InitLane(lane, instance, nullptr, options, policy);
  RestoreLaneImpl(lane, r, nullptr);
}

void BatchEngine::RestoreLane(uint32_t lane, workload::ArrivalSource& source,
                              const EngineOptions& options,
                              SchedulerPolicy& policy, snapshot::Reader& r,
                              snapshot::Reader* source_state) {
  RRS_CHECK_LT(lane, width_);
  RRS_CHECK(!lane_open(lane)) << "RestoreLane on an occupied lane";
  RRS_CHECK(LaneCompatible(source.shape(), options))
      << "snapshot tenant incompatible with the slab shape";
  if (open_mask_ == 0) AdoptShape(source.shape(), options);
  InitLane(lane, source.shape(), &source, options, policy);
  RestoreLaneImpl(lane, r, source_state);
}

void BatchEngine::RestoreLaneImpl(uint32_t lane, snapshot::Reader& r,
                                  snapshot::Reader* source_state) {
  Lane& l = lanes_[lane];
  SchedulerPolicy& policy = *l.policy;
  const uint64_t bit = uint64_t{1} << lane;

  r.BeginSection(snapshot::kTagEngine);
  RRS_CHECK_EQ(r.GetU64(), num_colors_)
      << "snapshot restored against a different color universe";
  RRS_CHECK_EQ(r.GetU32(), num_resources_)
      << "snapshot restored with a different resource count";
  const Round k = r.GetI64();
  RRS_CHECK_LE(k, l.horizon + 1);
  if (open_mask_ == 0) {
    next_round_ = k;
  } else {
    RRS_CHECK_EQ(k, next_round_)
        << "lane snapshot from a different round than the slab";
  }
  r.GetVec(l.resource_color);
  RRS_CHECK_EQ(l.resource_color.size(), num_resources_);
  for (ResourceId res = 0; res < num_resources_; ++res) {
    const ColorId c = l.resource_color[res];
    if (c == kNoColor) continue;
    RRS_CHECK_LT(c, num_colors_);
    if (colored_count_[static_cast<size_t>(c) * width_ + lane]++ == 0) {
      colored_bits_[c] |= bit;
    }
  }
  for (size_t c = 0; c < num_colors_; ++c) {
    l.rings[c].LoadState(r);
    pending_[c * width_ + lane] = l.rings[c].size();
    if (l.rings[c].size() != 0) backlog_bits_[c] |= bit;
  }
  RRS_CHECK_EQ(r.GetU64(), num_colors_);
  for (size_t c = 0; c < num_colors_; ++c) {
    RRS_CHECK_EQ(r.GetU64(), pending_[c * width_ + lane])
        << "snapshot pending count disagrees with ring contents for color "
        << c;
  }
  r.GetVec(l.nonidle_list);
  r.GetVec(l.in_nonidle_list);

  const uint64_t snap_wheel_size = r.GetU64();
  // The remap below needs unique deadline residues over the live window,
  // which any wheel a scalar session could have had satisfies.
  RRS_CHECK_GE(snap_wheel_size, static_cast<uint64_t>(max_delay_) + 1)
      << "snapshot wheel smaller than the shape's max delay bound";
  l.wheel_size = snap_wheel_size;
  for (uint64_t j = 0; j < snap_wheel_size; ++j) {
    r.GetVec(snap_colors_scratch_);
    if (snap_colors_scratch_.empty()) continue;
    const Round d =
        k + PosMod(static_cast<Round>(j) - k,
                   static_cast<Round>(snap_wheel_size));
    RRS_CHECK_LE(d, k + max_delay_ - 1)
        << "snapshot wheel entry outside the live deadline window";
    auto& slot = wheel_[static_cast<size_t>(d) & wheel_mask_];
    for (const ColorId c : snap_colors_scratch_) {
      RRS_CHECK_LT(c, num_colors_);
      slot.push_back({c, lane});
    }
  }

  r.GetVec(l.last_wheel_push);
  l.cost.reconfigurations = r.GetU64();
  l.cost.drops = r.GetU64();
  l.cost.weighted_drops = r.GetU64();
  l.executed = r.GetU64();
  r.GetVec(l.drops_per_color);
  const bool obs_fields = r.GetBool();
#if RRS_OBS_LEVEL >= 1
  RRS_CHECK(obs_fields)
      << "snapshot from an RRS_OBS_LEVEL=0 build lacks telemetry state";
  r.GetVec(l.reconfigs_per_color);
#else
  RRS_CHECK(!obs_fields)
      << "snapshot carries telemetry state this RRS_OBS_LEVEL=0 build drops";
#endif
  r.EndSection();

  // The snapshot byte format predates streaming sources and does not carry
  // an arrival counter; every arrived job is executed, dropped, or pending.
  uint64_t pending_total = 0;
  for (size_t c = 0; c < num_colors_; ++c) {
    pending_total += pending_[c * width_ + lane];
  }
  l.arrived = l.executed + l.cost.drops + pending_total;

  policy.LoadState(r);

  if (source_state != nullptr) {
    l.src().LoadState(*source_state);
    RRS_CHECK_EQ(l.src().cursor(), std::min(k, l.request_rounds))
        << "restored source state disagrees with the lane round";
  } else {
    l.src().SeekRound(k);
  }

  l.fused = typeid(policy) == typeid(DlruEdfPolicy) &&
            !static_cast<DlruEdfPolicy&>(policy).collect_ineligible_jobs();
  open_mask_ |= bit;
  if (l.fused) {
    fused_mask_ |= bit;
    kernel_.BindLane(lane, static_cast<DlruEdfPolicy*>(&policy));
    ++fused_lane_opens_;
  } else {
    ++generic_lane_opens_;
  }
}

}  // namespace fleet
}  // namespace rrs
