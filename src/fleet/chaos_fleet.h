// ChaosFleetRunner: FleetRunner's fault-injecting sibling, built on the
// snapshot layer (snapshot/codec.h, Engine::SnapshotRun/RestoreRun).
//
// The runner multiplexes replay tenants across workers exactly like
// fleet/FleetRunner, but advances the whole fleet in *lock-step global
// ticks*: every worker steps its live sessions one round bucket in parallel,
// then a single-threaded coordinator injects faults drawn from a seeded plan
// RNG at the tick barrier. Because worker state is disjoint within a tick
// and every fault decision happens in the serial coordinator, the entire
// execution — fault plan, migration targets, final results — is a pure
// function of (jobs, options.seed), independent of thread count.
//
// Fault kinds (all driven by the plan RNG, all at round boundaries):
//
//   kill-worker       every live session on one worker is checkpointed, its
//                     live set is wiped, and the snapshots are redistributed
//                     round-robin to the surviving workers, which restore
//                     and resume them on the next tick;
//   evict-and-restore one live tenant is checkpointed, torn down, and
//                     queued for restore on a (possibly different) worker;
//   delayed restore   an eviction whose restore is held for 1..max ticks —
//                     the snapshot bytes are the only surviving record of
//                     the tenant while it is in limbo;
//   shard rebalance   all not-yet-admitted jobs are collected and dealt out
//                     round-robin from a random offset, changing which
//                     worker will run them.
//
// The headline guarantee — checked by tests/chaos_test.cpp at 0/1/2/8
// threads — is that per-tenant RunResults are bit-identical to a fault-free
// fleet run: checkpoint/restore is exact, so arbitrarily interrupted and
// migrated sessions finish indistinguishably from undisturbed ones.
//
// Chaos events surface as fleet.chaos.* counters and (with a tracing scope)
// per-event spans on the coordinator's thread track.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "fleet/fleet_runner.h"
#include "util/rng.h"

namespace rrs {

class ThreadPool;

namespace obs {
class FlightRing;
}  // namespace obs

namespace fleet {

struct ChaosOptions {
  // Worker pool. nullptr steps every worker serially in the caller — the
  // deterministic "0 threads" mode the differential tests pin against.
  ThreadPool* pool = nullptr;
  // Fixed worker count (unlike FleetRunner it does not default to the pool
  // width: the fault plan is defined over worker indices, so the same seed
  // must mean the same plan at every thread count).
  size_t num_workers = 4;
  // Rounds each live session advances per tick; faults land between ticks.
  Round rounds_per_tick = 32;
  // Cap on simultaneously live sessions per worker; 0 = admit every
  // assigned job at once. Restores are exempt (a checkpointed tenant must
  // come back regardless of load).
  size_t max_live_sessions = 0;
  // Seed of the fault plan RNG.
  uint64_t seed = 0xc4a05;
  // Per-tick firing probabilities of each fault kind. A fault that fires
  // with no target (e.g. kill on an empty fleet) counts as a no-op.
  double kill_worker_prob = 0.10;
  double evict_prob = 0.35;
  double rebalance_prob = 0.15;
  // Evictions hold their restore for 1..max_restore_delay_ticks extra ticks
  // with probability delayed_restore_prob (0 => immediate restores only).
  double delayed_restore_prob = 0.5;
  uint32_t max_restore_delay_ticks = 3;
  // Builds the scheduler for replay sessions; must produce identically
  // parameterized policies (a restored tenant resumes on a fresh policy
  // instance). Defaults to ΔLRU-EDF with default parameters.
  std::function<std::unique_ptr<SchedulerPolicy>()> policy_factory;
  // Absorbs fleet.chaos.* counters after each RunAll (may be null). With a
  // tracer, per-event spans are emitted as `trace_label`.* on the
  // coordinator's track and per-session work on worker tracks.
  obs::Scope* scope = nullptr;
  const char* trace_label = "fleet.chaos";
  // Per-tenant SLO tracking (fleet/slo.h): bound per RunAll, fed at tick
  // barriers (accounting follows the tenant across evictions/migrations),
  // absorbed into `scope` as fleet.slo.*. Erased at RRS_OBS_LEVEL=0.
  SloTracker* slo = nullptr;
  // Flight recorder: each worker records tick/admit/finish/restore events
  // into "chaos.worker<i>"; the serial coordinator records fault decisions
  // (kill/evict/rebalance) into "chaos.coord". Erased at RRS_OBS_LEVEL=0.
  obs::FlightRecorder* recorder = nullptr;
};

struct ChaosStats {
  uint64_t ticks = 0;
  uint64_t kills = 0;             // kill-worker faults with >= 1 victim
  uint64_t evictions = 0;         // evict-and-restore faults (incl. delayed)
  uint64_t delayed_restores = 0;  // evictions held for >= 1 extra tick
  uint64_t rebalances = 0;        // shard-rebalance faults that moved jobs
  uint64_t restores = 0;          // sessions resumed from a snapshot
  uint64_t migrations = 0;        // restores on a different worker
  uint64_t noop_faults = 0;       // faults that fired with no target
  uint64_t snapshot_words = 0;    // total codec words written
  uint64_t sessions_completed = 0;
  uint64_t rounds_stepped = 0;

  void MergeFrom(const ChaosStats& other);
};

class ChaosFleetRunner {
 public:
  explicit ChaosFleetRunner(ChaosOptions options);
  ~ChaosFleetRunner();

  ChaosFleetRunner(const ChaosFleetRunner&) = delete;
  ChaosFleetRunner& operator=(const ChaosFleetRunner&) = delete;

  // Runs every job to completion under the seeded fault plan and returns
  // one RunResult per job, in job order. Only replay jobs are supported
  // (pipeline tenants run to completion within one admission and present no
  // checkpoint seam; schedule-recording runs cannot be snapshotted).
  std::vector<RunResult> RunAll(std::span<const FleetJob> jobs);

  // Stats accumulated over all RunAll calls so far (coordinator events plus
  // per-worker restore/step counts).
  ChaosStats stats() const;

  size_t num_workers() const { return workers_.size(); }

 private:
  struct Session {
    Engine engine;
    std::unique_ptr<SchedulerPolicy> policy;
  };
  // A tenant checkpoint in transit between workers (or in delayed-restore
  // limbo): the codec words plus where it came from.
  struct Checkpoint {
    size_t job_index = 0;
    uint32_t delay_ticks = 0;  // restore when this reaches 0
    size_t from_worker = 0;
    std::vector<uint64_t> words;
  };
  struct Worker;

  void TickWorker(Worker& worker, std::span<const FleetJob> jobs,
                  std::span<RunResult> results);
  // Serial fault injection at the tick barrier; returns true while any work
  // (live, waiting, or checkpointed) remains anywhere.
  bool InjectFaults(std::span<const FleetJob> jobs);

  ChaosOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Rng plan_rng_;
  ChaosStats stats_;
  obs::FlightRing* coord_ring_ = nullptr;  // set per RunAll when recording
  // Coordinator scratch, reused across events (SnapshotRun words and the
  // rebalance gather buffer).
  snapshot::Writer snapshot_scratch_;
  std::vector<size_t> rebalance_scratch_;
};

}  // namespace fleet
}  // namespace rrs
