// FleetRunner: multiplexes thousands of independent online sessions across
// the thread pool.
//
// The unit of work is a FleetJob — one tenant: a workload (a materialized
// Instance, or a streaming ArrivalSource built at admission) plus engine
// options, run either as a bare replay (a registry policy on the Engine) or
// through the guaranteed Theorem-3 pipeline (VarBatch ∘ Distribute ∘
// ΔLRU-EDF). Jobs are independent by construction, so a fleet of N tenants
// is embarrassingly parallel; what the runner adds over a plain ParallelFor
// is the *session economy*:
//
//  - shard → worker affinity: jobs are assigned to shards by index
//    (j % num_shards) and each shard's state is touched by exactly one
//    worker per RunAll, so shard-local session pools need no locks;
//  - pooled session recycling: each shard owns a SessionPool of replay
//    sessions (Engine + policy) and pipeline sessions; a tenant acquires a
//    warm session, Reset-binds it, and returns it — after warmup the fleet
//    allocates nothing per tenant at a fixed shape (core/session.h);
//  - batched round-stepping: live replay sessions advance in round buckets
//    of `rounds_per_tick` via Engine::StepRounds, interleaving thousands of
//    concurrent tenants per shard at bounded per-tenant latency (the shape a
//    real multi-tenant control plane has, and what bench_fleet measures as
//    sessions/s and rounds/s);
//  - per-shard stats, merged after the sweep and absorbed into the obs
//    Scope as fleet.* counters.
//
// Results are bit-identical to fresh single-engine runs of the same jobs,
// for any shard count and any thread count (including the serial pool-less
// mode) — pinned by tests/fleet_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/session.h"
#include "reduce/pipeline.h"
#include "sched/dlru_edf.h"

namespace rrs {

class ThreadPool;

namespace obs {
class FlightRecorder;
}  // namespace obs

namespace workload {
class ArrivalSource;
struct GeneratorSpec;
}  // namespace workload

namespace fleet {

class SloTracker;

// One tenant of the fleet. Exactly one of `instance` / `make_source` binds
// the workload:
//
//  - `instance` (not owned; must outlive RunAll): the materialized form —
//    the tenant replays the instance's job list.
//  - `make_source`: the streaming form — called once, at admission, to
//    build the tenant's private ArrivalSource (workload/arrival_source.h);
//    the runner owns the source for the session's lifetime and the engine
//    pulls rounds from it. Queued tenants hold only the closure, so a
//    100k-tenant fleet materializes at most max_live_sessions sources at a
//    time instead of 100k job vectors (bench_fleet's fleet/mem cells).
//    Streaming tenants must be kReplay (the pipeline's transform chain
//    needs the materialized job list).
//  - `source_spec` (not owned; must outlive RunAll): the wire-compact
//    streaming form — the runner instantiates MakeSource(*source_spec) at
//    admission. The only streaming form DistController accepts (closures
//    cannot ship to a worker process). When both are set, make_source wins
//    locally.
struct FleetJob {
  enum class Kind {
    kReplay,    // run options + a policy from the runner's factory
    kPipeline,  // run reduce::SolveOnline semantics through a pooled session
  };

  const Instance* instance = nullptr;
  std::function<std::unique_ptr<workload::ArrivalSource>()> make_source;
  const workload::GeneratorSpec* source_spec = nullptr;
  EngineOptions options;
  Kind kind = Kind::kReplay;
};

struct FleetOptions {
  // Worker pool. nullptr runs every shard serially in the caller — the
  // deterministic "0 threads" mode the differential tests pin against.
  ThreadPool* pool = nullptr;
  // Shard count; 0 = one shard per pool thread (or 1 without a pool).
  // Sharding never changes results, only contention and pool reuse.
  size_t num_shards = 0;
  // Rounds each live session advances per scheduling tick.
  Round rounds_per_tick = 64;
  // Cap on simultaneously live replay sessions per shard; 0 = admit every
  // assigned job at once. A cap bounds fleet memory at huge tenant counts
  // (each live session holds an engine arena). Batched lanes count toward
  // the cap one-for-one.
  size_t max_live_sessions = 0;
  // Lane-parallel batched execution (fleet/batch_engine.h): replay tenants
  // of equal shape are packed `batch_width` to a slab and advance in
  // lock-step through shared SoA state. 0 or 1 = scalar engines only.
  // Tenants a slab cannot take (pipeline jobs, record_schedule, an explicit
  // obs scope, or no same-shape slab filling at admission time) fall back to
  // scalar sessions; results are bit-identical either way. Max 64.
  uint32_t batch_width = 0;
  // Builds the scheduler for replay sessions (one per pooled session, reused
  // across tenants via SchedulerPolicy::Reset). Defaults to ΔLRU-EDF with
  // default parameters.
  std::function<std::unique_ptr<SchedulerPolicy>()> policy_factory;
  // Parameters for pipeline sessions (kPipeline jobs).
  DlruEdfPolicy::Params pipeline_params;
  // Absorbs fleet.* counters after each RunAll (may be null). When the scope
  // has a tracer, per-tenant work is emitted as spans named `trace_label`
  // (arg = job index) on each worker's thread track.
  obs::Scope* scope = nullptr;
  const char* trace_label = "fleet.session";
  // Per-tenant SLO tracking (fleet/slo.h). When set, RunAll re-Binds the
  // tracker to (jobs, shards), observes every live tenant at each tick
  // barrier, publishes per-shard snapshots for live scrapes, and absorbs
  // fleet.slo.* into `scope` at the end. Pure observation — results stay
  // bit-identical. Erased at RRS_OBS_LEVEL=0.
  SloTracker* slo = nullptr;
  // Flight recorder (obs/flight_recorder.h): each shard records
  // tick/admit/finish, slab open/close, and SLO-exhaustion events into its
  // own ring ("fleet.shard<i>"). Erased at RRS_OBS_LEVEL=0.
  obs::FlightRecorder* recorder = nullptr;
};

// Aggregated (or per-shard) fleet statistics.
struct FleetStats {
  uint64_t sessions_completed = 0;
  uint64_t rounds_stepped = 0;
  uint64_t sessions_created = 0;   // pool growth (cold sessions)
  uint64_t sessions_recycled = 0;  // tenants served by a warm session
  uint64_t peak_live_sessions = 0; // max concurrently live, any shard
  uint64_t ticks = 0;              // scheduling ticks across shards

  // Batched-execution occupancy (zero when batch_width <= 1).
  uint64_t batched_sessions = 0;   // tenants run on slab lanes
  uint64_t fallback_sessions = 0;  // batch-ineligible replay tenants
  uint64_t lane_rounds_stepped = 0;  // per-lane rounds (occupancy numerator)
  uint64_t slab_rounds_stepped = 0;  // slab lock-step rounds (denominator)

  void MergeFrom(const FleetStats& other);
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetOptions options);
  ~FleetRunner();

  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  // Runs every job to completion and returns one RunResult per job, in job
  // order. Replay jobs return the engine's RunResult verbatim; pipeline
  // jobs return a synthesized RunResult carrying the *certified* cost
  // (validation against the original instance), arrivals, executions, and
  // the inner run's telemetry. Callable repeatedly; session pools persist
  // across calls, so later fleets start warm.
  std::vector<RunResult> RunAll(std::span<const FleetJob> jobs);

  // Stats accumulated over all RunAll calls so far.
  FleetStats stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  // A pooled replay session: one engine arena plus one policy, rebound per
  // tenant.
  struct ReplaySession {
    Engine engine;
    std::unique_ptr<SchedulerPolicy> policy;
  };
  struct BatchSlab;
  struct Shard;

  void RunShard(Shard& shard, std::span<const FleetJob> jobs,
                std::span<RunResult> results, size_t shard_index,
                size_t stride);

  FleetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fleet
}  // namespace rrs
