// Per-tenant SLO tracking for the fleet runners.
//
// Each tenant gets a miss budget (dropped jobs are deadline misses in this
// model: a job is dropped exactly when its delay bound expires unexecuted)
// over rolling windows of `window_rounds` simulated rounds. The runners feed
// the tracker at tick barriers — one Observe per live tenant per tick with
// the session's cumulative (rounds, misses), one Finish when the tenant
// completes — and Publish a shard's aggregate once per tick.
//
// Determinism contract: all accounting happens at tick barriers on the
// worker that owns the tenant for that tick, and every quantity is a pure
// function of the tenant's observation sequence. Since shard/worker
// assignment and tick schedules are thread-count-invariant (FleetRunner's
// j % num_shards affinity; ChaosFleetRunner's seeded fault plan), the entire
// SLO state — including which window a miss lands in — is bit-identical at
// any thread count. Scrapes never mutate: they read the per-shard snapshots
// copied at the last Publish, under that shard's mutex.
//
// Hot-path cost: Observe touches one tenant slot and one shard accumulator
// block (both shard-owned between barriers — no atomics, no locks) and
// allocates nothing after Bind. Sum-over-shards == fleet totals holds by
// construction: totals are computed by summing the same published shard
// snapshots a scraper reads per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "obs/metrics.h"

namespace rrs {
namespace obs {
class Scope;
}  // namespace obs

namespace fleet {

struct SloOptions {
  // Rolling window length in simulated rounds. Misses observed in a tick
  // are attributed to the tenant's window current at that tick barrier.
  Round window_rounds = 256;
  // Allowed misses per tenant per window; exceeding it marks the window
  // (and the tenant, until the window rolls) budget-exhausted.
  uint64_t miss_budget = 8;
  // Worst-burn tenants retained per shard for /tenants and fleet_top.
  uint32_t top_k = 16;
};

class SloTracker {
 public:
  // One tenant on a shard's worst-burn list. burn = window_misses / budget
  // (> 1 means the current window is over budget).
  struct TenantBurn {
    uint64_t tenant = 0;
    uint64_t window_misses = 0;
    double burn = 0.0;
  };

  // Copy of one shard's aggregate as of its last Publish. Also the shape of
  // fleet totals (SnapshotTotals sums these, merging the top lists).
  struct Snapshot {
    uint64_t observations = 0;     // Observe calls
    uint64_t rounds = 0;           // tenant-rounds observed
    uint64_t misses = 0;           // misses observed
    uint64_t windows_closed = 0;
    uint64_t windows_breached = 0; // closed or current windows over budget
    uint64_t exhausted_events = 0; // budget-exhaustion transitions
    uint64_t tenants_seen = 0;     // distinct tenants observed
    uint64_t tenants_finished = 0;
    // Tenants whose current window is over budget. Signed: a chaos-migrated
    // tenant may exhaust on one worker and roll its window on another, so a
    // single shard's value can dip negative transiently; the sum over
    // shards (the fleet total) is always >= 0 and exact.
    int64_t tenants_out_of_budget = 0;
    obs::LogHistogram miss_delay;  // misses by delay class (delay bound)
    std::vector<TenantBurn> top;   // worst burn first
  };

  explicit SloTracker(SloOptions options = SloOptions());
  ~SloTracker();

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  const SloOptions& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }

  // Sizes (grow-only) and resets all state for a fleet of `num_tenants`
  // jobs over `num_shards` shards/workers. Serial; runners call it at the
  // top of RunAll.
  void Bind(size_t num_tenants, size_t num_shards);

  // Folds one tenant's progress into its current window. `rounds`/`misses`
  // are the session's cumulative values (the tracker keeps last-seen marks
  // and works on deltas, so checkpointed/migrated tenants just keep
  // counting). Returns how many budget exhaustions this observation newly
  // triggered (0 or 1) — the runner's cue to drop a flight-recorder event.
  uint32_t Observe(size_t shard, size_t tenant, uint64_t rounds,
                   uint64_t misses);

  // Final accounting when a tenant completes: catches up on progress since
  // the last barrier, closes the partial window, retires the tenant from
  // the worst-burn list (the list is a live view of current burners;
  // counters and the histogram keep the history), and folds the run's
  // per-color drops into the shard's miss-by-delay-class histogram (delay
  // bound = the color's delay class). Returns newly-triggered exhaustions,
  // like Observe.
  uint32_t Finish(size_t shard, size_t tenant, const Instance& instance,
                  const RunResult& result);

  // Copies the shard's accumulators into its published (scrape-visible)
  // snapshot. Runners call this once per tick, at the barrier.
  void Publish(size_t shard);

  // ---- Scrape side (thread-safe against Publish) --------------------------

  Snapshot SnapshotShard(size_t shard) const;
  // Sum of all published shard snapshots; top lists merged and re-ranked.
  Snapshot SnapshotTotals() const;

  // Prometheus text section: rrs_fleet_slo_* totals plus the same series
  // with a shard="i" label per shard. Appended to the export server's
  // /metrics via AddMetricsSection.
  std::string RenderPrometheus(std::string_view prefix = "rrs") const;

  // Top-K (across shards) per-tenant SLO state as a JSON array — the
  // /tenants endpoint. `limit` 0 means options().top_k.
  std::string TenantsJson(uint32_t limit = 0) const;

  // Absorbs the delta since the last call as fleet.slo.* counters, the
  // fleet.slo.worst_burn / tenants_{in,out}_of_budget gauges, and the
  // fleet.slo.miss_delay histogram. Serial; runners call it at end of
  // RunAll.
  void AbsorbInto(obs::Scope& scope);

 private:
  struct TenantSlot;
  struct ShardState;

  uint32_t ObserveImpl(size_t shard, size_t tenant, uint64_t rounds,
                       uint64_t misses, bool update_top);
  void UpdateTop(ShardState& shard, TenantSlot& slot, uint64_t tenant,
                 uint64_t window_misses);
  void RecomputeTopWeakest(ShardState& shard);

  SloOptions options_;
  std::vector<TenantSlot> tenants_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  Snapshot absorbed_;  // baseline for AbsorbInto deltas
};

}  // namespace fleet
}  // namespace rrs
