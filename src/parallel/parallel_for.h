// Chunked parallel_for built on ThreadPool.
//
// ParallelFor(pool, begin, end, fn) partitions [begin, end) into contiguous
// chunks and invokes fn(i) for every index. fn must be safe to call
// concurrently for distinct indices; exceptions propagate to the caller
// (first one wins).
//
// Scheduling: the range is cut into ~8 chunks per participant and claimed
// dynamically off a shared atomic cursor, so a worker that draws cheap
// indices steals the chunks a slow worker never reaches — static block
// assignment loses exactly when per-index cost is skewed, which is the
// common case for simulation sweeps (cost scales with instance size and
// drop/reconfig activity). The caller participates as an extra worker: it
// would otherwise block in future::get() while holding a core, and a
// single-threaded pool degenerates to a plain loop in the caller with no
// task round-trip.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.h"

namespace rrs {

template <typename Fn>
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, Fn&& fn,
                 int64_t min_chunk = 1) {
  if (begin >= end) return;
  const int64_t total = end - begin;
  const int64_t participants =
      static_cast<int64_t>(pool.thread_count()) + 1;  // workers + caller
  // ~8 chunks per participant: fine enough that one slow chunk can be
  // compensated by stealing, coarse enough that the atomic claim is noise.
  int64_t chunk = std::max<int64_t>({min_chunk, 1, total / (participants * 8)});
  const int64_t num_chunks = (total + chunk - 1) / chunk;

  if (num_chunks <= 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (;;) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks || failed.load(std::memory_order_relaxed)) return;
      const int64_t lo = begin + c * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      try {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  // Helpers beyond num_chunks - 1 could never claim a chunk (the caller
  // takes at least one).
  const int64_t helpers = std::min<int64_t>(participants - 1, num_chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(helpers));
  for (int64_t h = 0; h < helpers; ++h) {
    futures.push_back(pool.Submit(drain));
  }
  drain();  // caller participates
  for (auto& f : futures) f.get();  // drain() swallows exceptions; no throw
  if (first_error) std::rethrow_exception(first_error);
}

// Parallel map: out[i] = fn(i) for i in [0, n). Result type must be
// default-constructible.
template <typename Result, typename Fn>
std::vector<Result> ParallelMap(ThreadPool& pool, size_t n, Fn&& fn) {
  std::vector<Result> out(n);
  ParallelFor(pool, 0, static_cast<int64_t>(n),
              [&](int64_t i) { out[static_cast<size_t>(i)] = fn(static_cast<size_t>(i)); });
  return out;
}

}  // namespace rrs
