// Blocked parallel_for built on ThreadPool.
//
// ParallelFor(pool, 0, n, fn) partitions [0, n) into contiguous blocks, one
// batch per worker on average, and invokes fn(i) for every index. fn must be
// safe to call concurrently for distinct indices; exceptions propagate to the
// caller (first one wins).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.h"

namespace rrs {

template <typename Fn>
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, Fn&& fn,
                 int64_t min_block = 1) {
  if (begin >= end) return;
  const int64_t total = end - begin;
  const int64_t workers = static_cast<int64_t>(pool.thread_count());
  // ~4 blocks per worker balances load without excessive task overhead.
  int64_t block = std::max<int64_t>(min_block, total / (workers * 4 + 1));
  if (block <= 0) block = 1;

  if (total <= block) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>((total + block - 1) / block));
  for (int64_t lo = begin; lo < end; lo += block) {
    int64_t hi = std::min(end, lo + block);
    futures.push_back(pool.Submit([lo, hi, &fn] {
      for (int64_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// Parallel map: out[i] = fn(i) for i in [0, n). Result type must be
// default-constructible.
template <typename Result, typename Fn>
std::vector<Result> ParallelMap(ThreadPool& pool, size_t n, Fn&& fn) {
  std::vector<Result> out(n);
  ParallelFor(pool, 0, static_cast<int64_t>(n),
              [&](int64_t i) { out[static_cast<size_t>(i)] = fn(static_cast<size_t>(i)); });
  return out;
}

}  // namespace rrs
