#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    RRS_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rrs
