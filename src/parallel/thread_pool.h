// Fixed-size thread pool used by the experiment sweep harness to run
// independent (instance, policy, seed) simulations in parallel. Tasks are
// plain std::function jobs; Submit returns a std::future. The pool is the
// only place in rrsched where threads are created; all simulation code is
// single-threaded and shares nothing, so parallel sweeps need no locks beyond
// the pool's queue mutex.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rrs {

class ThreadPool {
 public:
  // threads == 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(size_t threads = 0);

  // Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  // Schedules fn() on a worker; the returned future carries the result (or
  // exception).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Blocks until every task submitted so far has finished.
  void WaitIdle();

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

// Global pool shared by benches/examples; created on first use with
// hardware_concurrency threads.
ThreadPool& GlobalThreadPool();

}  // namespace rrs
