// Bounded lock-free single-producer/single-consumer ring buffer.
//
// Used to stream per-run results from a producing simulation thread to a
// consuming reporter without locks (see bench_e11_substrates for the scaling
// measurement). Capacity is rounded up to a power of two; one slot is kept
// empty to distinguish full from empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rrs {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) {
    RRS_CHECK_GT(capacity, 0u);
    size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  // Producer side. Returns false if the queue is full.
  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false if the queue is empty.
  bool TryPop(T& out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer writes head, consumer writes tail; keep them on separate cache
  // lines to avoid false sharing.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace rrs
