#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rrs {
namespace net {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Deadline Deadline::In(int64_t ms) {
  if (ms < 0) return Infinite();
  return Deadline(SteadyNowMs() + ms);
}

bool Deadline::expired() const {
  return at_ms_ >= 0 && SteadyNowMs() >= at_ms_;
}

int Deadline::PollTimeoutMs() const {
  if (at_ms_ < 0) return -1;
  const int64_t remaining = at_ms_ - SteadyNowMs();
  if (remaining <= 0) return 0;
  // poll takes int; clamp pathological far-future deadlines.
  return remaining > 1'000'000'000 ? 1'000'000'000
                                   : static_cast<int>(remaining);
}

bool SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

ptrdiff_t RecvSome(int fd, void* buf, size_t len, Deadline deadline) {
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, deadline.PollTimeoutMs());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) {
      errno = ETIMEDOUT;
      return -1;
    }
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool RecvExact(int fd, void* buf, size_t len, Deadline deadline) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < len) {
    const ptrdiff_t n = RecvSome(fd, p + got, len - got, deadline);
    if (n < 0) return false;  // errno: ETIMEDOUT or the recv error
    if (n == 0) {
      errno = ECONNRESET;  // EOF mid-buffer: the peer died on us
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool SendFrame(int fd, uint64_t type, std::span<const uint64_t> payload) {
  const uint64_t header[2] = {payload.size(), type};
  if (!SendAll(fd, header, sizeof(header))) return false;
  return payload.empty() ||
         SendAll(fd, payload.data(), payload.size() * sizeof(uint64_t));
}

bool RecvFrame(int fd, uint64_t* type, std::vector<uint64_t>* payload,
               Deadline deadline, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  uint64_t header[2];
  // EOF cleanly *between* frames is a normal peer shutdown: report false
  // with an empty error so callers can tell it from corruption.
  const ptrdiff_t first =
      RecvSome(fd, header, sizeof(header), deadline);
  if (first < 0) {
    return fail(errno == ETIMEDOUT ? "frame header timeout"
                                   : std::string("frame header recv: ") +
                                         std::strerror(errno));
  }
  if (first == 0) {
    if (error != nullptr) error->clear();
    return false;
  }
  if (static_cast<size_t>(first) < sizeof(header) &&
      !RecvExact(fd, reinterpret_cast<char*>(header) + first,
                 sizeof(header) - static_cast<size_t>(first), deadline)) {
    return fail(errno == ETIMEDOUT ? "frame header timeout (partial header)"
                                   : "frame header truncated");
  }
  const uint64_t words = header[0];
  if (words > kMaxFrameWords) {
    return fail("frame length " + std::to_string(words) +
                " words exceeds kMaxFrameWords (corrupt length prefix?)");
  }
  *type = header[1];
  payload->resize(words);
  if (words > 0 &&
      !RecvExact(fd, payload->data(), words * sizeof(uint64_t), deadline)) {
    return fail(errno == ETIMEDOUT
                    ? "frame payload timeout (" + std::to_string(words) +
                          " words expected)"
                    : "frame payload truncated");
  }
  return true;
}

bool UnixStreamPair(int fds[2], std::string* error) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    if (error != nullptr) {
      *error = std::string("socketpair: ") + std::strerror(errno);
    }
    return false;
  }
  return true;
}

int ConnectTcp(const std::string& host, uint16_t port, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return -1;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("inet_pton(" + host + ")");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return fail(what);
  }
  return fd;
}

}  // namespace net
}  // namespace rrs
