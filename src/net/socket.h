// Deadline-aware socket I/O shared by the obs export server, its HttpGet
// client, and the distributed fleet's control channel (fleet/dist/).
//
// Everything here is dependency-free POSIX: stream sockets (TCP loopback for
// metrics scrapes, Unix-domain socketpairs for the controller <-> worker
// protocol), EINTR-safe full-buffer send/recv loops, and poll(2)-based
// deadlines so a stalled peer turns into a clean timeout instead of a hung
// caller (a scrape of a wedged worker must not hang fleet_top forever).
//
// The frame layer is the distributed fleet's wire unit: a length-prefixed
// uint64-word message —
//
//   [u64 payload word count][u64 message type][payload words...]
//
// — whose payload is, by convention, a snapshot::Writer word stream
// (magic + version header + checksummed sections), so every message gets the
// snapshot codec's corruption and version-skew detection for free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rrs {
namespace net {

// A point in time to stop waiting, carried across the header/payload reads
// of one frame (or the header/body reads of one HTTP response) so the whole
// operation shares a single budget.
class Deadline {
 public:
  // No deadline: waits block indefinitely.
  static Deadline Infinite() { return Deadline(-1); }
  // Expires `ms` milliseconds from now (ms < 0 behaves like Infinite).
  static Deadline In(int64_t ms);

  bool infinite() const { return at_ms_ < 0; }
  bool expired() const;
  // Remaining budget as a poll(2) timeout: -1 = infinite, 0 = expired.
  int PollTimeoutMs() const;

 private:
  explicit Deadline(int64_t at_ms) : at_ms_(at_ms) {}
  int64_t at_ms_;  // steady-clock ms; < 0 = infinite
};

// Monotonic milliseconds (steady clock); the base Deadline counts in.
int64_t SteadyNowMs();

// send(2) loop with MSG_NOSIGNAL: a peer hanging up mid-message must not
// SIGPIPE the process. Retries EINTR; returns false on any other error.
bool SendAll(int fd, const void* data, size_t len);

// Receives up to `len` bytes once the fd is readable, honoring the deadline.
// Returns >0 bytes read, 0 on orderly EOF, -1 on error or deadline expiry
// (errno = ETIMEDOUT for the latter).
ptrdiff_t RecvSome(int fd, void* buf, size_t len, Deadline deadline);

// Short-read loop: receives exactly `len` bytes or fails. False on EOF
// mid-buffer, error, or deadline expiry (errno distinguishes: ETIMEDOUT vs
// ECONNRESET for a premature EOF vs the underlying errno).
bool RecvExact(int fd, void* buf, size_t len, Deadline deadline);

// ---- Length-prefixed uint64-word frames (the dist control protocol) ------

// Hard cap on a single frame's payload, as a corruption guard on the length
// prefix (a garbled word must not turn into a multi-GiB allocation). 1M
// tenants of checkpoint words stream as many frames, not one.
inline constexpr uint64_t kMaxFrameWords = 1ull << 28;  // 2 GiB of words

bool SendFrame(int fd, uint64_t type, std::span<const uint64_t> payload);

// Receives one frame; `payload` is overwritten (capacity reused). False on
// EOF before a header (clean peer shutdown, *error empty), or on timeout /
// truncation / oversized length (*error describes which).
bool RecvFrame(int fd, uint64_t* type, std::vector<uint64_t>* payload,
               Deadline deadline, std::string* error = nullptr);

// AF_UNIX SOCK_STREAM pair — the controller <-> worker control channel.
// False with *error on failure.
bool UnixStreamPair(int fds[2], std::string* error = nullptr);

// Blocking TCP connect to an IPv4 address ("127.0.0.1") — the scrape
// client's dial. Returns the fd, or -1 with *error set.
int ConnectTcp(const std::string& host, uint16_t port,
               std::string* error = nullptr);

}  // namespace net
}  // namespace rrs
