#include "workload/scenarios.h"

#include "util/check.h"
#include "workload/arrival_source.h"
#include "workload/source.h"

namespace rrs {
namespace workload {

// Materialized views over the streaming scenario sources (workload/source.h);
// golden_trace_test pins that these emit the exact pre-streaming bytes.

std::vector<RouterService> DefaultRouterServices() {
  return {
      {"voice", 2, 0.5, 3.0},
      {"video", 4, 0.5, 4.0},
      {"web", 16, 1.0, 6.0},
      {"bulk", 64, 0.2, 2.0},
  };
}

Instance MakeRouterScenario(const std::vector<RouterService>& services,
                            const RouterOptions& options) {
  RouterSource source(services, options);
  return Materialize(source);
}

Instance MakeDatacenterScenario(const DatacenterOptions& options) {
  DatacenterSource source(options);
  return Materialize(source);
}

}  // namespace workload
}  // namespace rrs
