#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace rrs {
namespace workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

// Emits one color's per-round series, optionally aggregated into D-batches
// (duplicated from synthetic.cpp's helper on purpose: scenarios are
// self-contained and their batching policy may diverge).
void EmitScenarioSeries(InstanceBuilder& builder, ColorId color, Round delay,
                        const std::vector<uint64_t>& per_round, bool batched,
                        bool rate_limited) {
  const Round rounds = static_cast<Round>(per_round.size());
  if (!batched && !rate_limited) {
    for (Round r = 0; r < rounds; ++r) {
      builder.AddJobs(color, r, per_round[static_cast<size_t>(r)]);
    }
    return;
  }
  for (Round k = 0; k < rounds; k += delay) {
    uint64_t total = 0;
    for (Round r = k; r < std::min(rounds, k + delay); ++r) {
      total += per_round[static_cast<size_t>(r)];
    }
    if (rate_limited) {
      total = std::min<uint64_t>(total, static_cast<uint64_t>(delay));
    }
    builder.AddJobs(color, k, total);
  }
}

}  // namespace

std::vector<RouterService> DefaultRouterServices() {
  return {
      {"voice", 2, 0.5, 3.0},
      {"video", 4, 0.5, 4.0},
      {"web", 16, 1.0, 6.0},
      {"bulk", 64, 0.2, 2.0},
  };
}

Instance MakeRouterScenario(const std::vector<RouterService>& services,
                            const RouterOptions& options) {
  RRS_CHECK_GE(options.rounds, 1);
  RRS_CHECK_GE(options.period, 2);
  RRS_CHECK(!services.empty());
  Rng rng(options.seed);

  InstanceBuilder builder;
  bool batched = options.batched || options.rate_limited;
  for (size_t s = 0; s < services.size(); ++s) {
    const RouterService& svc = services[s];
    RRS_CHECK_GE(svc.delay_bound, 1);
    RRS_CHECK_LE(svc.base_rate, svc.peak_rate);
    ColorId c = builder.AddColor(svc.delay_bound, svc.name);
    Rng service_rng = rng.Fork();
    // Phase-shift each service by an equal fraction of the period so the
    // dominant service rotates.
    double phase = kTwoPi * static_cast<double>(s) /
                   static_cast<double>(services.size());
    std::vector<uint64_t> series(static_cast<size_t>(options.rounds));
    for (Round r = 0; r < options.rounds; ++r) {
      double wave = 0.5 * (1.0 + std::sin(kTwoPi * static_cast<double>(r) /
                                              static_cast<double>(options.period) +
                                          phase));
      double rate = svc.base_rate + (svc.peak_rate - svc.base_rate) * wave;
      series[static_cast<size_t>(r)] = service_rng.Poisson(rate);
    }
    EmitScenarioSeries(builder, c, svc.delay_bound, series, batched,
                       options.rate_limited);
  }
  return builder.Build();
}

Instance MakeDatacenterScenario(const DatacenterOptions& options) {
  RRS_CHECK_GE(options.rounds, 1);
  RRS_CHECK_GE(options.phase_length, 1);
  RRS_CHECK_GE(options.num_services, 1u);
  RRS_CHECK_GE(options.dominant_per_phase, 1u);
  RRS_CHECK(!options.delay_choices.empty());
  Rng rng(options.seed);

  InstanceBuilder builder;
  std::vector<Round> delay(options.num_services);
  for (size_t s = 0; s < options.num_services; ++s) {
    delay[s] = options.delay_choices[s % options.delay_choices.size()];
    builder.AddColor(delay[s], "svc" + std::to_string(s));
  }

  // Pick each phase's dominant services up front (deterministic in the seed).
  const size_t num_phases = static_cast<size_t>(
      (options.rounds + options.phase_length - 1) / options.phase_length);
  std::vector<std::vector<uint8_t>> dominant(
      num_phases, std::vector<uint8_t>(options.num_services, 0));
  for (size_t ph = 0; ph < num_phases; ++ph) {
    std::vector<size_t> ids(options.num_services);
    for (size_t s = 0; s < ids.size(); ++s) ids[s] = s;
    rng.Shuffle(ids);
    size_t take = std::min(options.dominant_per_phase, ids.size());
    for (size_t i = 0; i < take; ++i) dominant[ph][ids[i]] = 1;
  }

  bool batched = options.batched || options.rate_limited;
  for (size_t s = 0; s < options.num_services; ++s) {
    Rng service_rng = rng.Fork();
    std::vector<uint64_t> series(static_cast<size_t>(options.rounds));
    for (Round r = 0; r < options.rounds; ++r) {
      size_t ph = static_cast<size_t>(r / options.phase_length);
      double rate = dominant[ph][s] ? options.dominant_rate
                                    : options.background_rate;
      series[static_cast<size_t>(r)] = service_rng.Poisson(rate);
    }
    EmitScenarioSeries(builder, static_cast<ColorId>(s), delay[s], series,
                       batched, options.rate_limited);
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
