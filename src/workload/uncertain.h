// Interval-uncertainty instances: each job's arrival round is only known to
// lie in a window [release_lo, release_hi]. An UncertainInstance describes
// the whole set of concrete traces obtained by pinning every job to one
// round of its window; offline::SolveRobust certifies OPT brackets valid for
// every member of that set, and Sample()/SampleSource() draw concrete member
// traces for differential testing and empirical ratio work.
//
// Two envelope instances anchor the robust analysis (see DESIGN.md §3.14):
//   - ForcedInstance(): only the zero-width jobs, pinned at their single
//     possible round. Every concrete trace is a superset of this instance,
//     so any lower bound on its OPT lower-bounds OPT of every trace.
//   - PessimisticInstance(): every job replicated at *each* round of its
//     window. Every concrete trace is a (per-round, per-color) sub-instance,
//     so any schedule's cost against it upper-bounds that schedule's cost on
//     every trace.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace rrs {
namespace workload {

class ArrivalSource;

struct WindowedJob {
  ColorId color = 0;
  Round release_lo = 0;  // earliest possible arrival round
  Round release_hi = 0;  // latest possible arrival round (>= release_lo)
};

class UncertainInstance {
 public:
  UncertainInstance() = default;

  // Mirrors InstanceBuilder::AddColor.
  ColorId AddColor(Round delay_bound, std::string name = {},
                   uint64_t drop_cost = 1);

  // Adds a unit job whose arrival lies anywhere in [r_lo, r_hi].
  void AddJob(ColorId color, Round r_lo, Round r_hi);
  void AddJobs(ColorId color, Round r_lo, Round r_hi, uint64_t count);

  // Lifts a concrete instance into a window set: each job's window becomes
  // [max(0, arrival - widen_before), arrival + widen_after]. With both
  // widths zero the set is the singleton {instance}.
  static UncertainInstance FromInstance(const Instance& instance,
                                        Round widen_before, Round widen_after);

  size_t num_colors() const { return delay_bounds_.size(); }
  size_t num_jobs() const { return jobs_.size(); }
  const std::vector<WindowedJob>& jobs() const { return jobs_; }
  Round delay_bound(ColorId c) const { return delay_bounds_[c]; }
  uint64_t drop_cost(ColorId c) const { return drop_costs_[c]; }

  // True when every window has zero width (the set is a single trace).
  bool IsZeroWidth() const;

  // Last round any member trace can receive an arrival: max release_hi + 1
  // rounds carry requests (0 if no jobs).
  Round num_request_rounds() const;

  // Last round that must be simulated for *any* member trace: the maximum
  // over jobs of release_hi + D_color (0 if no jobs).
  Round horizon() const;

  // The two envelope instances (see file comment). Both share this window
  // set's color table.
  Instance ForcedInstance() const;
  Instance PessimisticInstance() const;

  // One concrete member trace: each job's arrival drawn uniformly from its
  // window, deterministically from `seed`.
  Instance Sample(uint64_t seed) const;

  // Sample(seed) wrapped as a seekable ArrivalSource (an owned
  // InstanceSource), so robust analyses plug into everything that streams.
  std::unique_ptr<ArrivalSource> SampleSource(uint64_t seed) const;

 private:
  Instance BuildEnvelope(bool pessimistic) const;

  std::vector<Round> delay_bounds_;
  std::vector<uint64_t> drop_costs_;
  std::vector<std::string> names_;
  std::vector<WindowedJob> jobs_;
};

}  // namespace workload
}  // namespace rrs
