// Application-level scenario generators modelled on the paper's motivating
// systems (Section 1): a multi-service router on programmable network
// processors, and a shared data center whose workload composition changes
// over time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"

namespace rrs {
namespace workload {

// ---- Multi-service router -------------------------------------------------
// Packet categories with per-service delay tolerances (QoS classes). Traffic
// follows smooth sinusoidal load curves with per-service phase offsets, so
// the dominant service drifts over time and processor allocations must
// follow (the paper's "traffic load fluctuates" setting).
struct RouterService {
  std::string name;
  Round delay_bound = 1;  // QoS delay tolerance in rounds
  double base_rate = 1.0;   // mean packets per round at trough
  double peak_rate = 4.0;   // mean packets per round at crest
};

struct RouterOptions {
  Round rounds = 1024;
  Round period = 256;  // load-curve period
  bool batched = false;
  bool rate_limited = false;
  uint64_t seed = 1;
};

// Default service mix: voice (D=2), video (D=4), web (D=16), bulk (D=64).
std::vector<RouterService> DefaultRouterServices();

Instance MakeRouterScenario(const std::vector<RouterService>& services,
                            const RouterOptions& options);

// ---- Shared data center ---------------------------------------------------
// Services hosted on a shared cluster; time is divided into phases and each
// phase has a different dominant subset of services (abrupt workload
// composition changes, the setting of Chandra et al. / Chase et al. cited in
// the paper).
struct DatacenterOptions {
  size_t num_services = 8;
  std::vector<Round> delay_choices = {4, 8, 16, 32};
  Round rounds = 2048;
  Round phase_length = 256;
  size_t dominant_per_phase = 2;  // services spiking in each phase
  double background_rate = 0.2;   // mean jobs/round for non-dominant services
  double dominant_rate = 4.0;     // mean jobs/round for dominant services
  bool batched = false;
  bool rate_limited = false;
  uint64_t seed = 1;
};

Instance MakeDatacenterScenario(const DatacenterOptions& options);

}  // namespace workload
}  // namespace rrs
