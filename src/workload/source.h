// Streaming forms of the synthetic and scenario generators.
//
// Every family here emits the exact per-round counts its materializing
// counterpart (workload/synthetic.h, workload/scenarios.h) builds into an
// Instance: the RNG fork structure and draw order are preserved — one master
// Rng seeded from options.seed, one Fork per color in color order, one draw
// (or draw pair) per color per round in round order — so
// Materialize(*MakePoissonSource(...)) is byte-identical to MakePoisson(...)
// and the legacy builders are now thin wrappers over these sources
// (golden_trace_test pins the digests). The `batched` variants aggregate
// each D-aligned window into a batch at the window start; since a window's
// draws all come from that color's own fork, a streaming source draws them
// at the window-start round without disturbing any other color's stream.
//
// State (SaveState/LoadState) is the cursor plus the per-color RNG states
// and any modulation state (burst flags, Zipf window accumulators), so a
// restored source continues bit-identically — the dist fleet's live
// migration path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "workload/arrival_source.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace workload {

// Shared machinery for families driven by one independent RNG fork per
// color: a jobless shape, the fork chain, and the D-aligned batching loop.
// Subclasses implement DrawCount(c, r) — the next per-round count from color
// c's own RNG — plus hooks for extra modulation state.
class SeriesSource : public ArrivalSource {
 public:
  const Instance& shape() const override { return shape_; }

 protected:
  // `fork_base` is the master RNG state from which per-color forks are
  // taken at every Reset (for most families Rng(seed); Datacenter advances
  // it past the phase shuffles first).
  void InitSeries(Instance shape, Round raw_rounds, bool batched,
                  bool rate_limited, Rng fork_base);

  void ResetImpl() override;
  std::span<const Run> EmitRound(Round k) override;
  void SaveBody(snapshot::Writer& w) const override;
  void LoadBody(snapshot::Reader& r) override;

  // The next count for color c (round r is informational — draws must come
  // from rngs_[c] so each color's stream is fork-local).
  virtual uint64_t DrawCount(ColorId c, Round r) = 0;
  // Reset/save/load modulation state beyond the RNG forks.
  virtual void ResetSeries() {}
  virtual void SaveSeries(snapshot::Writer&) const {}
  virtual void LoadSeries(snapshot::Reader&) {}

  Instance shape_;
  Round raw_rounds_ = 0;
  bool batched_ = false;
  bool rate_limited_ = false;
  Rng fork_base_{0};
  std::vector<Rng> rngs_;
};

// ---- synthetic.h counterparts --------------------------------------------

class PoissonSource final : public SeriesSource {
 public:
  PoissonSource(std::vector<ColorSpec> colors, const PoissonOptions& options);

  Family family() const override { return Family::kPoisson; }
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  uint64_t DrawCount(ColorId c, Round r) override;

 private:
  std::vector<ColorSpec> colors_;
  PoissonOptions options_;
};

class BurstySource final : public SeriesSource {
 public:
  BurstySource(std::vector<ColorSpec> colors, const BurstyOptions& options);

  Family family() const override { return Family::kBursty; }
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  uint64_t DrawCount(ColorId c, Round r) override;
  void ResetSeries() override;
  void SaveSeries(snapshot::Writer& w) const override;
  void LoadSeries(snapshot::Reader& r) override;

 private:
  std::vector<ColorSpec> colors_;
  BurstyOptions options_;
  std::vector<uint8_t> on_;  // per-color Markov state
};

// Zipf draws from one shared RNG (total per round, then a color per job), so
// it is not a SeriesSource. The batched variant must aggregate each color's
// D_c-aligned windows while drawing raw rows strictly in round order; rows
// are drawn lazily at window-start rounds and folded into per-color window
// accumulator rings (bounded by max D / D_c windows in flight).
class ZipfSource final : public ArrivalSource {
 public:
  explicit ZipfSource(const ZipfOptions& options);

  Family family() const override { return Family::kZipf; }
  const Instance& shape() const override { return shape_; }
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  void ResetImpl() override;
  std::span<const Run> EmitRound(Round k) override;
  void SaveBody(snapshot::Writer& w) const override;
  void LoadBody(snapshot::Reader& r) override;

 private:
  void DrawRowsThrough(Round needed);

  ZipfOptions options_;
  Instance shape_;
  bool batched_ = false;
  ZipfDistribution zipf_;
  Rng rng_{0};
  // Non-batched scratch: dense per-color counts for the current row.
  std::vector<uint64_t> row_counts_;
  std::vector<ColorId> row_touched_;
  // Batched state: raw rows drawn so far and per-color window accumulator
  // rings (slot = window index mod ring size).
  Round next_raw_ = 0;
  std::vector<std::vector<uint64_t>> window_acc_;
};

// ---- scenarios.h counterparts --------------------------------------------

class RouterSource final : public SeriesSource {
 public:
  RouterSource(std::vector<RouterService> services,
               const RouterOptions& options);

  Family family() const override { return Family::kRouter; }
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  uint64_t DrawCount(ColorId c, Round r) override;

 private:
  std::vector<RouterService> services_;
  RouterOptions options_;
};

class DatacenterSource final : public SeriesSource {
 public:
  explicit DatacenterSource(const DatacenterOptions& options);

  Family family() const override { return Family::kDatacenter; }
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  uint64_t DrawCount(ColorId c, Round r) override;

 private:
  DatacenterOptions options_;
  // Per-phase dominant-service masks, drawn from the master RNG before the
  // per-service forks (configuration, not state: identical at every Reset).
  std::vector<std::vector<uint8_t>> dominant_;
};

// ---- Factories ------------------------------------------------------------

std::unique_ptr<ArrivalSource> MakePoissonSource(std::vector<ColorSpec> colors,
                                                 const PoissonOptions& options);
std::unique_ptr<ArrivalSource> MakeBurstySource(std::vector<ColorSpec> colors,
                                                const BurstyOptions& options);
std::unique_ptr<ArrivalSource> MakeZipfSource(const ZipfOptions& options);
std::unique_ptr<ArrivalSource> MakeRouterSource(
    std::vector<RouterService> services, const RouterOptions& options);
std::unique_ptr<ArrivalSource> MakeDatacenterSource(
    const DatacenterOptions& options);

}  // namespace workload
}  // namespace rrs
