// Workload composition utilities: merge independent traces onto one shared
// substrate (the paper's "shared data center hosting multiple services"
// setting), shift traces in time, thin them probabilistically, and
// concatenate scenarios back to back. All operations preserve per-color
// delay bounds and return fresh Instances.
//
// Each transform also exists as a streaming wrapper source (Make*Source)
// that composes ArrivalSources without materializing: feeding an engine
// from MakeThinSource(MakeOwnedInstanceSource(x), p, s) is bit-identical
// to feeding it Thin(x, p, s) (workload_source_test pins this for every
// registry policy). Wrapper snapshots chain the inner sources' state
// sections after their own, so a save/load cut restores the whole tree.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.h"
#include "util/rng.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace workload {

// Union of several instances: colors are renumbered (instance i's color c
// becomes offset_i + c); arrivals are unchanged. Models co-locating
// independent tenants on one resource pool.
Instance MergeInstances(const std::vector<const Instance*>& instances);

// Shifts every arrival by `offset` rounds (>= 0).
Instance TimeShift(const Instance& instance, Round offset);

// Keeps each job independently with probability `keep_prob` (deterministic
// in the seed). Models sampling a heavy trace down to a target load.
Instance Thin(const Instance& instance, double keep_prob, uint64_t seed);

// Plays `b` after `a` with `gap` empty rounds in between. Colors are shared:
// both instances must have identical color tables. Models consecutive
// workload phases.
Instance Concat(const Instance& a, const Instance& b, Round gap);

// ---- Streaming wrapper sources -------------------------------------------

// Streaming MergeInstances: round k interleaves every part's round-k runs in
// part order, colors renumbered by cumulative offset.
std::unique_ptr<ArrivalSource> MakeMergeSource(
    std::vector<std::unique_ptr<ArrivalSource>> parts);

// Streaming TimeShift: inner round k surfaces at round k + offset.
std::unique_ptr<ArrivalSource> MakeTimeShiftSource(
    std::unique_ptr<ArrivalSource> inner, Round offset);

// Streaming Thin: one Bernoulli(keep_prob) per inner job, drawn in stream
// order — the same order Thin() walks instance.jobs() — so the kept set is
// identical.
std::unique_ptr<ArrivalSource> MakeThinSource(
    std::unique_ptr<ArrivalSource> inner, double keep_prob, uint64_t seed);

// Streaming Concat: plays `b` starting at a->num_request_rounds() + gap.
// Both sources must share one color table (delay bounds checked).
std::unique_ptr<ArrivalSource> MakeConcatSource(
    std::unique_ptr<ArrivalSource> a, std::unique_ptr<ArrivalSource> b,
    Round gap);

}  // namespace workload
}  // namespace rrs
