// Workload composition utilities: merge independent traces onto one shared
// substrate (the paper's "shared data center hosting multiple services"
// setting), shift traces in time, thin them probabilistically, and
// concatenate scenarios back to back. All operations preserve per-color
// delay bounds and return fresh Instances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "util/rng.h"

namespace rrs {
namespace workload {

// Union of several instances: colors are renumbered (instance i's color c
// becomes offset_i + c); arrivals are unchanged. Models co-locating
// independent tenants on one resource pool.
Instance MergeInstances(const std::vector<const Instance*>& instances);

// Shifts every arrival by `offset` rounds (>= 0).
Instance TimeShift(const Instance& instance, Round offset);

// Keeps each job independently with probability `keep_prob` (deterministic
// in the seed). Models sampling a heavy trace down to a target load.
Instance Thin(const Instance& instance, double keep_prob, uint64_t seed);

// Plays `b` after `a` with `gap` empty rounds in between. Colors are shared:
// both instances must have identical color tables. Models consecutive
// workload phases.
Instance Concat(const Instance& a, const Instance& b, Round gap);

}  // namespace workload
}  // namespace rrs
