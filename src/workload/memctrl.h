// Memory-controller-shaped streaming workload: the first family with no
// materializing counterpart.
//
// Colors are (rank, bank) pairs — color r*banks_per_rank + b is bank b of
// rank r, named "r<r>b<b>" — with delay bounds cycled from delay_choices
// (DRAM-ish: some banks serve latency-critical readers, others bulk). Each
// bank alternates between a closed-row idle trickle and an open-row burst
// via a per-bank Markov chain (row locality: consecutive accesses to an open
// row arrive in streaks). Ranks refresh on a staggered schedule: while rank
// r is in its refresh window, its banks' arrivals are stashed, and the whole
// backlog lands as a storm on the first post-refresh round — the access
// pattern FR-FCFS-style row-hit-first policies (sched/frfcfs.h) exploit and
// deadline-driven recoloring must absorb. See EXPERIMENTS.md for the race
// against dlru-edf.
//
// Purely streaming: per-tenant state is O(ranks * banks) regardless of
// rounds, so fleet tenants on this family never hold a job vector.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace workload {

struct MemctrlOptions {
  uint32_t num_ranks = 2;
  uint32_t banks_per_rank = 4;
  // Delay bounds cycled across colors in (rank, bank) order.
  std::vector<Round> delay_choices = {4, 8, 16};
  Round rounds = 2048;
  // Open-row burst and closed-row idle arrival rates (jobs/round/bank).
  double burst_rate = 3.0;
  double idle_rate = 0.25;
  // Per-round row activation (idle -> burst) and close (burst -> idle)
  // probabilities.
  double open_prob = 0.05;
  double close_prob = 0.2;
  // Every refresh_period rounds each rank blocks for refresh_length rounds
  // (staggered across ranks); blocked arrivals storm out afterwards.
  // refresh_length = 0 disables refresh.
  Round refresh_period = 256;
  Round refresh_length = 8;
  bool batched = false;
  bool rate_limited = false;
  uint64_t seed = 1;
};

std::unique_ptr<ArrivalSource> MakeMemctrlSource(const MemctrlOptions& options);

}  // namespace workload
}  // namespace rrs
