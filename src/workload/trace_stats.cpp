#include "workload/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace workload {

// Single-pass fold over the stream. Double accumulation visits rounds in
// ascending order and skips zero-count rounds — adding an exact +0.0 is the
// identity, so the partial-sum sequence (and with it burstiness, bit for
// bit) matches the dense per-round loop this replaces; trace_stats_test
// pins Instance-vs-source equality. Peak D-windows track per color as
// (current window index, running sum): counts arrive in ascending round
// order, so a count landing in a later window flushes the previous one;
// empty windows sum to 0 and can never beat the running max.
TraceStats ComputeTraceStats(ArrivalSource& source) {
  TraceStats stats;
  const Instance& shape = source.shape();
  const size_t num_colors = shape.num_colors();
  stats.request_rounds = source.num_request_rounds();
  const Round rounds = std::max<Round>(1, stats.request_rounds);

  stats.colors.resize(num_colors);
  for (ColorId c = 0; c < num_colors; ++c) {
    stats.colors[c].color = c;
    stats.colors[c].delay_bound = shape.delay_bound(c);
  }

  std::vector<double> sum(num_colors, 0.0);
  std::vector<double> sum_sq(num_colors, 0.0);
  std::vector<uint64_t> window(num_colors, 0);
  std::vector<Round> window_idx(num_colors, 0);
  // Per-round aggregation scratch (a round's runs may repeat a color).
  std::vector<uint64_t> round_count(num_colors, 0);
  std::vector<ColorId> touched;

  source.Reset();
  for (Round k = 0; k < stats.request_rounds; ++k) {
    touched.clear();
    for (const auto& [c, count] : source.NextRound()) {
      RRS_CHECK_LT(c, num_colors);
      if (count == 0) continue;
      if (round_count[c] == 0) touched.push_back(c);
      round_count[c] += count;
    }
    for (const ColorId c : touched) {
      ColorStats& cs = stats.colors[c];
      const uint64_t count = round_count[c];
      round_count[c] = 0;
      cs.jobs += count;
      cs.peak_round = std::max(cs.peak_round, count);
      const double x = static_cast<double>(count);
      sum[c] += x;
      sum_sq[c] += x * x;
      const Round idx = k / cs.delay_bound;
      if (idx != window_idx[c]) {
        cs.peak_window = std::max(cs.peak_window, window[c]);
        window[c] = 0;
        window_idx[c] = idx;
      }
      window[c] += count;
    }
  }
  source.Reset();

  const double n = static_cast<double>(rounds);
  for (ColorId c = 0; c < num_colors; ++c) {
    ColorStats& cs = stats.colors[c];
    cs.peak_window = std::max(cs.peak_window, window[c]);  // final flush
    stats.total_jobs += cs.jobs;
    cs.mean_rate = static_cast<double>(cs.jobs) / n;
    cs.load_factor = cs.mean_rate;
    const double mean = sum[c] / n;
    const double variance = std::max(0.0, sum_sq[c] / n - mean * mean);
    cs.burstiness = mean > 0 ? std::sqrt(variance) / mean : 0;
  }
  stats.total_rate = static_cast<double>(stats.total_jobs) / n;
  stats.min_feasible_resources = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(stats.total_rate)));
  return stats;
}

TraceStats ComputeTraceStats(const Instance& instance) {
  InstanceSource source(instance);
  return ComputeTraceStats(source);
}

std::string TraceStats::ToString() const {
  std::ostringstream os;
  os << total_jobs << " jobs over " << request_rounds
     << " request rounds (mean " << total_rate << " jobs/round; load floor "
     << min_feasible_resources << " resources)\n";
  for (const ColorStats& cs : colors) {
    os << "  color " << cs.color << " (D=" << cs.delay_bound << "): " << cs.jobs
       << " jobs, rate " << cs.mean_rate << "/round, peak round "
       << cs.peak_round << ", peak D-window " << cs.peak_window
       << ", burstiness " << cs.burstiness << "\n";
  }
  return os.str();
}

}  // namespace workload
}  // namespace rrs
