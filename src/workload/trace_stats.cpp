#include "workload/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace rrs {
namespace workload {

TraceStats ComputeTraceStats(const Instance& instance) {
  TraceStats stats;
  stats.total_jobs = instance.num_jobs();
  stats.request_rounds = instance.num_request_rounds();
  const Round rounds = std::max<Round>(1, stats.request_rounds);
  stats.total_rate =
      static_cast<double>(stats.total_jobs) / static_cast<double>(rounds);

  // Per-color per-round counts in one pass (jobs are sorted by arrival).
  const size_t num_colors = instance.num_colors();
  std::vector<std::vector<uint64_t>> per_round(
      num_colors, std::vector<uint64_t>(static_cast<size_t>(rounds), 0));
  for (const Job& j : instance.jobs()) {
    ++per_round[j.color][static_cast<size_t>(j.arrival)];
  }

  for (ColorId c = 0; c < num_colors; ++c) {
    ColorStats cs;
    cs.color = c;
    cs.delay_bound = instance.delay_bound(c);
    cs.jobs = instance.jobs_per_color()[c];
    cs.mean_rate =
        static_cast<double>(cs.jobs) / static_cast<double>(rounds);
    cs.load_factor = cs.mean_rate;

    double sum = 0, sum_sq = 0;
    for (uint64_t count : per_round[c]) {
      cs.peak_round = std::max(cs.peak_round, count);
      sum += static_cast<double>(count);
      sum_sq += static_cast<double>(count) * static_cast<double>(count);
    }
    const double n = static_cast<double>(rounds);
    const double mean = sum / n;
    const double variance = std::max(0.0, sum_sq / n - mean * mean);
    cs.burstiness = mean > 0 ? std::sqrt(variance) / mean : 0;

    // Peak D-aligned window.
    for (Round w = 0; w < rounds; w += cs.delay_bound) {
      uint64_t window = 0;
      for (Round r = w; r < std::min(rounds, w + cs.delay_bound); ++r) {
        window += per_round[c][static_cast<size_t>(r)];
      }
      cs.peak_window = std::max(cs.peak_window, window);
    }
    stats.colors.push_back(cs);
  }

  stats.min_feasible_resources = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(stats.total_rate)));
  return stats;
}

std::string TraceStats::ToString() const {
  std::ostringstream os;
  os << total_jobs << " jobs over " << request_rounds
     << " request rounds (mean " << total_rate << " jobs/round; load floor "
     << min_feasible_resources << " resources)\n";
  for (const ColorStats& cs : colors) {
    os << "  color " << cs.color << " (D=" << cs.delay_bound << "): " << cs.jobs
       << " jobs, rate " << cs.mean_rate << "/round, peak round "
       << cs.peak_round << ", peak D-window " << cs.peak_window
       << ", burstiness " << cs.burstiness << "\n";
  }
  return os.str();
}

}  // namespace workload
}  // namespace rrs
