#include "workload/generator_spec.h"

#include <bit>

#include "util/check.h"
#include "workload/source.h"

namespace rrs {
namespace workload {

namespace {

// `extra` layouts per family (doubles; integral knobs are exact below 2^53):
//   kBursty:     p_on_to_off, p_off_to_on, start_on
//   kZipf:       num_colors, jobs_per_round, zipf_exponent
//   kRouter:     period   (rates = base0, peak0, base1, peak1, ...)
//   kDatacenter: num_services, phase_length, dominant_per_phase,
//                background_rate, dominant_rate
//   kMemctrl:    num_ranks, banks_per_rank, burst_rate, idle_rate,
//                open_prob, close_prob, refresh_period, refresh_length
//   kPoisson:    (none; delays/rates are per-color)

std::vector<ColorSpec> UnpackColors(const GeneratorSpec& spec) {
  RRS_CHECK_EQ(spec.delays.size(), spec.rates.size());
  std::vector<ColorSpec> colors(spec.delays.size());
  for (size_t i = 0; i < colors.size(); ++i) {
    colors[i] = {spec.delays[i], spec.rates[i]};
  }
  return colors;
}

}  // namespace

GeneratorSpec PoissonSpec(const std::vector<ColorSpec>& colors,
                          const PoissonOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kPoisson;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  for (const ColorSpec& c : colors) {
    spec.delays.push_back(c.delay_bound);
    spec.rates.push_back(c.rate);
  }
  return spec;
}

GeneratorSpec BurstySpec(const std::vector<ColorSpec>& colors,
                         const BurstyOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kBursty;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  for (const ColorSpec& c : colors) {
    spec.delays.push_back(c.delay_bound);
    spec.rates.push_back(c.rate);
  }
  spec.extra = {options.p_on_to_off, options.p_off_to_on,
                options.start_on ? 1.0 : 0.0};
  return spec;
}

GeneratorSpec ZipfSpec(const ZipfOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kZipf;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  spec.delays = options.delay_choices;
  spec.extra = {static_cast<double>(options.num_colors),
                options.jobs_per_round, options.zipf_exponent};
  return spec;
}

GeneratorSpec RouterSpec(const std::vector<RouterService>& services,
                         const RouterOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kRouter;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  for (const RouterService& s : services) {
    spec.delays.push_back(s.delay_bound);
    spec.rates.push_back(s.base_rate);
    spec.rates.push_back(s.peak_rate);
    spec.names.push_back(s.name);
  }
  spec.extra = {static_cast<double>(options.period)};
  return spec;
}

GeneratorSpec DatacenterSpec(const DatacenterOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kDatacenter;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  spec.delays = options.delay_choices;
  spec.extra = {static_cast<double>(options.num_services),
                static_cast<double>(options.phase_length),
                static_cast<double>(options.dominant_per_phase),
                options.background_rate, options.dominant_rate};
  return spec;
}

GeneratorSpec MemctrlSpec(const MemctrlOptions& options) {
  GeneratorSpec spec;
  spec.family = ArrivalSource::Family::kMemctrl;
  spec.seed = options.seed;
  spec.rounds = options.rounds;
  spec.batched = options.batched;
  spec.rate_limited = options.rate_limited;
  spec.delays = options.delay_choices;
  spec.extra = {static_cast<double>(options.num_ranks),
                static_cast<double>(options.banks_per_rank),
                options.burst_rate,
                options.idle_rate,
                options.open_prob,
                options.close_prob,
                static_cast<double>(options.refresh_period),
                static_cast<double>(options.refresh_length)};
  return spec;
}

std::unique_ptr<ArrivalSource> MakeSource(const GeneratorSpec& spec) {
  switch (spec.family) {
    case ArrivalSource::Family::kPoisson: {
      PoissonOptions options;
      options.rounds = spec.rounds;
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakePoissonSource(UnpackColors(spec), options);
    }
    case ArrivalSource::Family::kBursty: {
      RRS_CHECK_EQ(spec.extra.size(), 3u);
      BurstyOptions options;
      options.rounds = spec.rounds;
      options.p_on_to_off = spec.extra[0];
      options.p_off_to_on = spec.extra[1];
      options.start_on = spec.extra[2] != 0.0;
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakeBurstySource(UnpackColors(spec), options);
    }
    case ArrivalSource::Family::kZipf: {
      RRS_CHECK_EQ(spec.extra.size(), 3u);
      ZipfOptions options;
      options.num_colors = static_cast<size_t>(spec.extra[0]);
      options.delay_choices = spec.delays;
      options.jobs_per_round = spec.extra[1];
      options.zipf_exponent = spec.extra[2];
      options.rounds = spec.rounds;
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakeZipfSource(options);
    }
    case ArrivalSource::Family::kRouter: {
      RRS_CHECK_EQ(spec.extra.size(), 1u);
      RRS_CHECK_EQ(spec.rates.size(), 2 * spec.delays.size());
      RRS_CHECK_EQ(spec.names.size(), spec.delays.size());
      std::vector<RouterService> services(spec.delays.size());
      for (size_t i = 0; i < services.size(); ++i) {
        services[i] = {spec.names[i], spec.delays[i], spec.rates[2 * i],
                       spec.rates[2 * i + 1]};
      }
      RouterOptions options;
      options.rounds = spec.rounds;
      options.period = static_cast<Round>(spec.extra[0]);
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakeRouterSource(std::move(services), options);
    }
    case ArrivalSource::Family::kDatacenter: {
      RRS_CHECK_EQ(spec.extra.size(), 5u);
      DatacenterOptions options;
      options.num_services = static_cast<size_t>(spec.extra[0]);
      options.delay_choices = spec.delays;
      options.rounds = spec.rounds;
      options.phase_length = static_cast<Round>(spec.extra[1]);
      options.dominant_per_phase = static_cast<size_t>(spec.extra[2]);
      options.background_rate = spec.extra[3];
      options.dominant_rate = spec.extra[4];
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakeDatacenterSource(options);
    }
    case ArrivalSource::Family::kMemctrl: {
      RRS_CHECK_EQ(spec.extra.size(), 8u);
      MemctrlOptions options;
      options.num_ranks = static_cast<uint32_t>(spec.extra[0]);
      options.banks_per_rank = static_cast<uint32_t>(spec.extra[1]);
      options.delay_choices = spec.delays;
      options.rounds = spec.rounds;
      options.burst_rate = spec.extra[2];
      options.idle_rate = spec.extra[3];
      options.open_prob = spec.extra[4];
      options.close_prob = spec.extra[5];
      options.refresh_period = static_cast<Round>(spec.extra[6]);
      options.refresh_length = static_cast<Round>(spec.extra[7]);
      options.batched = spec.batched;
      options.rate_limited = spec.rate_limited;
      options.seed = spec.seed;
      return MakeMemctrlSource(options);
    }
    default:
      RRS_CHECK(false) << "family " << static_cast<uint64_t>(spec.family)
                       << " cannot ship as a GeneratorSpec";
      return nullptr;
  }
}

void PutGeneratorSpec(snapshot::Writer& w, const GeneratorSpec& spec) {
  w.BeginSection(snapshot::kTagDistSource);
  w.PutU64(static_cast<uint64_t>(spec.family));
  w.PutU64(spec.seed);
  w.PutI64(spec.rounds);
  w.PutBool(spec.batched);
  w.PutBool(spec.rate_limited);
  w.PutVec(spec.delays);
  w.PutU64(spec.rates.size());
  for (const double d : spec.rates) w.PutU64(std::bit_cast<uint64_t>(d));
  w.PutU64(spec.extra.size());
  for (const double d : spec.extra) w.PutU64(std::bit_cast<uint64_t>(d));
  w.PutU64(spec.names.size());
  for (const std::string& name : spec.names) {
    w.PutU64(name.size());
    for (const char ch : name) w.PutU64(static_cast<unsigned char>(ch));
  }
  w.EndSection();
}

GeneratorSpec GetGeneratorSpec(snapshot::Reader& r) {
  r.BeginSection(snapshot::kTagDistSource);
  GeneratorSpec spec;
  spec.family = static_cast<ArrivalSource::Family>(r.GetU64());
  spec.seed = r.GetU64();
  spec.rounds = r.GetI64();
  spec.batched = r.GetBool();
  spec.rate_limited = r.GetBool();
  r.GetVec(spec.delays);
  spec.rates.resize(r.GetU64());
  for (double& d : spec.rates) d = std::bit_cast<double>(r.GetU64());
  spec.extra.resize(r.GetU64());
  for (double& d : spec.extra) d = std::bit_cast<double>(r.GetU64());
  spec.names.resize(r.GetU64());
  for (std::string& name : spec.names) {
    name.resize(r.GetU64());
    for (char& ch : name) ch = static_cast<char>(r.GetU64());
  }
  r.EndSection();
  return spec;
}

}  // namespace workload
}  // namespace rrs
