#include "workload/adversary.h"

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace rrs {
namespace workload {

namespace {

// JobIds of color `color` arriving in round `round`, in id order.
std::vector<JobId> JobIdsOfColorInRound(const Instance& instance, ColorId color,
                                        Round round) {
  std::vector<JobId> ids;
  auto jobs = instance.jobs_in_round(round);
  if (jobs.empty()) return ids;
  JobId base = instance.first_job_in_round(round);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].color == color) ids.push_back(base + static_cast<JobId>(i));
  }
  return ids;
}

}  // namespace

DlruAdversary MakeDlruAdversary(uint32_t n, uint64_t delta, int j, int k) {
  RRS_CHECK_GE(n, 2u);
  RRS_CHECK_EQ(n % 2, 0u);
  RRS_CHECK_GE(j, 0);
  RRS_CHECK_LT(k, 40);
  const Round short_delay = Round{1} << j;
  const Round long_delay = Round{1} << k;
  RRS_CHECK_GT(2 * short_delay, static_cast<Round>(n * delta))
      << "Appendix A requires 2^{j+1} > n*delta";
  RRS_CHECK_GT(long_delay, 2 * short_delay)
      << "Appendix A requires 2^k > 2^{j+1}";

  DlruAdversary adv;
  adv.n = n;
  adv.delta = delta;
  adv.j = j;
  adv.k = k;

  InstanceBuilder builder;
  for (uint32_t s = 0; s < n / 2; ++s) {
    adv.short_colors.push_back(
        builder.AddColor(short_delay, "short" + std::to_string(s)));
  }
  adv.long_color = builder.AddColor(long_delay, "long");

  // 2^k long-term jobs at round 0.
  builder.AddJobs(adv.long_color, 0, static_cast<uint64_t>(long_delay));
  // Δ jobs of every short-term color at each multiple of 2^j in [0, 2^k).
  for (Round t = 0; t < long_delay; t += short_delay) {
    for (ColorId c : adv.short_colors) builder.AddJobs(c, t, delta);
  }
  adv.instance = builder.Build();
  RRS_CHECK(adv.instance.IsRateLimited());
  return adv;
}

Schedule MakeDlruAdversaryOffSchedule(const DlruAdversary& adv) {
  const Round long_delay = Round{1} << adv.k;
  Schedule schedule(/*num_resources=*/1, /*mini_rounds_per_round=*/1);
  schedule.AddReconfig(0, 0, 0, adv.long_color);
  std::vector<JobId> long_jobs =
      JobIdsOfColorInRound(adv.instance, adv.long_color, 0);
  RRS_CHECK_EQ(long_jobs.size(), static_cast<size_t>(long_delay));
  for (Round r = 0; r < long_delay; ++r) {
    schedule.AddExecution(r, 0, 0, long_jobs[static_cast<size_t>(r)]);
  }
  return schedule;
}

EdfAdversary MakeEdfAdversary(uint32_t n, uint64_t delta, int j, int k) {
  RRS_CHECK_GE(n, 2u);
  RRS_CHECK_EQ(n % 2, 0u);
  RRS_CHECK_GT(delta, static_cast<uint64_t>(n))
      << "Appendix B requires delta > n";
  const Round short_delay = Round{1} << j;
  RRS_CHECK_GT(short_delay, static_cast<Round>(delta))
      << "Appendix B requires 2^j > delta";
  RRS_CHECK_GT(k, j) << "Appendix B requires 2^k > 2^j";
  RRS_CHECK_LT(k + static_cast<int>(n) / 2, 40) << "construction too large";

  EdfAdversary adv;
  adv.n = n;
  adv.delta = delta;
  adv.j = j;
  adv.k = k;

  InstanceBuilder builder;
  adv.short_color = builder.AddColor(short_delay, "short");
  for (uint32_t p = 0; p < n / 2; ++p) {
    adv.long_colors.push_back(builder.AddColor(
        Round{1} << (k + static_cast<int>(p)), "long" + std::to_string(p)));
  }

  // Δ short jobs at each multiple of 2^j until round 2^{k-1}.
  const Round short_until = Round{1} << (k - 1);
  for (Round t = 0; t < short_until; t += short_delay) {
    builder.AddJobs(adv.short_color, t, delta);
  }
  // 2^{k+p-1} jobs of long color p at round 0.
  for (uint32_t p = 0; p < n / 2; ++p) {
    builder.AddJobs(adv.long_colors[p], 0,
                    uint64_t{1} << (k + static_cast<int>(p) - 1));
  }
  adv.instance = builder.Build();
  RRS_CHECK(adv.instance.IsRateLimited());
  return adv;
}

Schedule MakeEdfAdversaryOffSchedule(const EdfAdversary& adv) {
  Schedule schedule(/*num_resources=*/1, /*mini_rounds_per_round=*/1);
  const Round short_delay = Round{1} << adv.j;
  const Round short_until = Round{1} << (adv.k - 1);

  // Phase 0: the short color throughout [0, 2^{k-1}); each batch's Δ jobs
  // execute in the Δ rounds following the batch (Δ < 2^j, so they finish
  // before both the batch deadline and the next batch).
  schedule.AddReconfig(0, 0, 0, adv.short_color);
  for (Round t = 0; t < short_until; t += short_delay) {
    std::vector<JobId> batch =
        JobIdsOfColorInRound(adv.instance, adv.short_color, t);
    RRS_CHECK_EQ(batch.size(), static_cast<size_t>(adv.delta));
    for (size_t i = 0; i < batch.size(); ++i) {
      schedule.AddExecution(t + static_cast<Round>(i), 0, 0, batch[i]);
    }
  }

  // Phase p: long color p throughout [2^{k+p-1}, 2^{k+p}); its 2^{k+p-1}
  // jobs (deadline 2^{k+p}) fill the phase exactly.
  for (uint32_t p = 0; p < adv.long_colors.size(); ++p) {
    const Round phase_start = Round{1} << (adv.k + static_cast<int>(p) - 1);
    const Round phase_end = Round{1} << (adv.k + static_cast<int>(p));
    schedule.AddReconfig(phase_start, 0, 0, adv.long_colors[p]);
    std::vector<JobId> jobs =
        JobIdsOfColorInRound(adv.instance, adv.long_colors[p], 0);
    RRS_CHECK_EQ(jobs.size(), static_cast<size_t>(phase_end - phase_start));
    for (Round r = phase_start; r < phase_end; ++r) {
      schedule.AddExecution(r, 0, 0,
                            jobs[static_cast<size_t>(r - phase_start)]);
    }
  }
  return schedule;
}

Instance MakeIntroScenario(const IntroScenarioOptions& options) {
  RRS_CHECK(IsPowerOfTwo(options.short_delay));
  RRS_CHECK(IsPowerOfTwo(options.background_delay));
  RRS_CHECK_GT(options.background_delay, options.short_delay);
  RRS_CHECK_GE(options.gap_blocks, 1);
  Rng rng(options.seed);

  InstanceBuilder builder;
  std::vector<ColorId> shorts;
  for (int s = 0; s < options.num_short_colors; ++s) {
    shorts.push_back(
        builder.AddColor(options.short_delay, "short" + std::to_string(s)));
  }
  ColorId background = builder.AddColor(options.background_delay, "background");

  // Background jobs: one batch per background block, capped at the delay
  // bound so the instance stays rate-limited.
  uint64_t remaining = options.background_jobs;
  for (Round t = 0; t < options.rounds && remaining > 0;
       t += options.background_delay) {
    uint64_t batch = std::min<uint64_t>(
        remaining, static_cast<uint64_t>(options.background_delay));
    builder.AddJobs(background, t, batch);
    remaining -= batch;
  }

  // Short-term bursts: staggered every gap_blocks blocks, with 20% of bursts
  // randomly skipped to make the idle gaps irregular.
  const uint64_t burst = std::min<uint64_t>(
      options.jobs_per_burst, static_cast<uint64_t>(options.short_delay));
  Round block_index = 0;
  for (Round t = 0; t < options.rounds; t += options.short_delay, ++block_index) {
    for (size_t s = 0; s < shorts.size(); ++s) {
      if ((block_index + static_cast<Round>(s)) % options.gap_blocks != 0) {
        continue;
      }
      if (rng.Bernoulli(0.2)) continue;
      builder.AddJobs(shorts[s], t, burst);
    }
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
