// Trace statistics: per-color and aggregate load characterization of a
// workload — offered load vs capacity, burstiness, batch profile. Used by
// trace_tool's `info` command, the capacity-planner example, and tests that
// want to reason about generated workloads quantitatively. The primary form
// is a single-pass fold over a streaming ArrivalSource (O(colors) memory);
// the Instance overload wraps the instance in an InstanceSource and folds
// identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace workload {

struct ColorStats {
  ColorId color = kNoColor;
  Round delay_bound = 0;
  uint64_t jobs = 0;
  double mean_rate = 0;       // jobs per round over the request horizon
  uint64_t peak_round = 0;    // max arrivals in one round
  uint64_t peak_window = 0;   // max arrivals in any D-aligned window
  // Coefficient of variation of per-round arrival counts (0 = perfectly
  // smooth; >1 = bursty).
  double burstiness = 0;
  // Offered load relative to one dedicated resource: jobs / request rounds.
  double load_factor = 0;
};

struct TraceStats {
  std::vector<ColorStats> colors;
  uint64_t total_jobs = 0;
  Round request_rounds = 0;
  double total_rate = 0;  // mean total arrivals per round

  // Minimum resources for which total offered load < capacity (ignores
  // reconfiguration and deadline effects; a quick sizing floor).
  uint32_t min_feasible_resources = 1;

  std::string ToString() const;
};

// Folds the source's stream (Reset before and after; the source is left at
// round 0).
TraceStats ComputeTraceStats(ArrivalSource& source);

// Thin wrapper: folds the instance through an InstanceSource.
TraceStats ComputeTraceStats(const Instance& instance);

}  // namespace workload
}  // namespace rrs
