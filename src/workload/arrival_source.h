// Streaming arrival generators: the online counterpart of a materialized
// Instance.
//
// The paper's model is inherently streaming — request k is revealed only at
// round k's arrival phase — but historically every layer of the repo was fed
// from an Instance whose whole job vector exists up front, making per-tenant
// memory O(total jobs) and ruling out workloads whose future depends on
// generator state. ArrivalSource is the round-by-round contract the engines
// consume instead:
//
//   - NextRound() emits the current round's arrivals as (color, count) runs
//     and advances the cursor. Zero counts are never emitted, and a source
//     that mirrors a materialized Instance emits runs in that instance's
//     within-round job order, so an engine pulling from the source assigns
//     the exact same dense JobIds and issues the exact same policy callbacks
//     as one replaying the Instance — results, snapshot bytes, and golden
//     trace digests are bit-identical (workload_source_test pins this).
//   - shape() is the static color table (delay bounds, drop costs, names) as
//     a jobless Instance, so policies, slab batching (LaneCompatible), and
//     pooling keep working unchanged. InstanceSource returns the full
//     backing Instance, preserving clairvoyant policies (sched/lookahead).
//   - num_request_rounds / horizon / max_backlog are the same derived stats
//     an Instance precomputes; engines use them to bound the round loop and
//     pre-size rings, keeping the zero-steady-state-allocation session
//     contract intact. They are computed once at construction by a dry
//     self-scan and the source is Reset() afterwards.
//   - Reset / SeekRound / SaveState / LoadState make the source a session
//     object: deterministic re-execution (Reset + replay) and O(state)
//     checkpoint/restore (the dist fleet migrates live tenants by shipping
//     engine words + source words; see fleet/dist/). State sections use
//     snapshot::kTagArrivalSource; wrappers chain their inner sources'
//     sections after their own.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "snapshot/codec.h"

namespace rrs {
namespace workload {

class ArrivalSource {
 public:
  // One per-round arrival run: `count` (> 0) jobs of one color.
  using Run = std::pair<ColorId, uint64_t>;

  // Stable family ids, used both as the snapshot-state discriminator (a
  // LoadState against a different family aborts) and as the wire family of
  // GeneratorSpec (workload/generator_spec.h).
  enum class Family : uint64_t {
    kInstance = 0,
    kPoisson = 1,
    kBursty = 2,
    kZipf = 3,
    kRouter = 4,
    kDatacenter = 5,
    kMemctrl = 6,
    kTimeShift = 7,
    kThin = 8,
    kConcat = 9,
    kMerge = 10,
  };

  virtual ~ArrivalSource() = default;

  virtual Family family() const = 0;

  // The static color table as an Instance. For InstanceSource this is the
  // full backing Instance (jobs included); generator sources return a
  // jobless shape.
  virtual const Instance& shape() const = 0;

  // Rounds with arrivals: last nonzero round + 1 (0 if the source emits
  // nothing). NextRound may only be called while cursor() is below this.
  Round num_request_rounds() const { return request_rounds_; }
  // Maximum deadline over all emitted jobs (0 if none) — the last round an
  // engine must simulate.
  Round horizon() const { return horizon_; }
  // Windowed-max arrivals over any D_c consecutive rounds, the ring
  // pre-sizing bound (see Instance::max_backlog).
  virtual uint32_t max_backlog(ColorId c) const {
    RRS_DCHECK(c < backlog_.size());
    return backlog_[c];
  }

  // The round the next NextRound() call emits.
  Round cursor() const { return cursor_; }

  // Rewinds to round 0, bit-identically to a fresh source with the same
  // configuration. Keeps buffers (session rule: no steady-state allocation
  // at a fixed shape).
  void Reset() {
    ResetImpl();
    cursor_ = 0;
  }

  // Emits round cursor()'s arrival runs and advances the cursor. The span is
  // valid until the next NextRound/Reset. Requires cursor() <
  // num_request_rounds().
  std::span<const Run> NextRound() {
    std::span<const Run> runs = EmitRound(cursor_);
    ++cursor_;
    return runs;
  }

  // Positions the cursor at min(r, num_request_rounds()): rewinds via Reset
  // if needed, then replays forward, discarding. InstanceSource overrides
  // with an O(1) seek. Engines call this when restoring a snapshot without
  // saved source state (deterministic re-execution); restores with saved
  // state use LoadState instead.
  virtual void SeekRound(Round r);

  // One kTagArrivalSource section: [family][cursor][family state]. Wrappers
  // append their inner sources' sections after their own, so a chained
  // save/load restores the whole source tree. LoadState requires an
  // identically-configured source.
  virtual void SaveState(snapshot::Writer& w) const;
  virtual void LoadState(snapshot::Reader& r);

  // A fresh source with this source's configuration, reset to round 0.
  // Precomputed stats are copied, not re-scanned — the cheap prototype
  // factory the fleet benches use for per-tenant sources.
  virtual std::unique_ptr<ArrivalSource> Clone() const = 0;

 protected:
  // Rewind family state to round 0 (cursor_ handled by Reset()).
  virtual void ResetImpl() = 0;
  // Emit round k's runs; called exactly once per round in ascending order.
  virtual std::span<const Run> EmitRound(Round k) = 0;
  // Family state beyond the cursor, inside the kTagArrivalSource section.
  virtual void SaveBody(snapshot::Writer&) const {}
  virtual void LoadBody(snapshot::Reader&) {}

  // Computes request_rounds_/horizon_/backlog_ by replaying rounds
  // [0, raw_rounds) against shape()'s delay bounds, then Reset()s. Concrete
  // sources call this at the end of construction; raw_rounds is the
  // generator's configured round count (trailing all-zero rounds are
  // trimmed, matching what InstanceBuilder::Build derives from the jobs).
  void FinishInit(Round raw_rounds);
  // Adopts another source's precomputed stats (Clone support).
  void CopyStats(const ArrivalSource& from) {
    request_rounds_ = from.request_rounds_;
    horizon_ = from.horizon_;
    backlog_ = from.backlog_;
  }

  Round cursor_ = 0;
  Round request_rounds_ = 0;
  Round horizon_ = 0;
  std::vector<uint32_t> backlog_;
  // Per-round emission scratch shared by implementations.
  std::vector<Run> runs_;
};

// Adapter: serves an existing Instance's job spans round by round, coalesced
// into per-color runs exactly as Engine's legacy arrival loop did. shape()
// is the full Instance, so clairvoyant policies still see the future; stats
// delegate to the Instance's precomputed values and SeekRound is O(1).
class InstanceSource : public ArrivalSource {
 public:
  InstanceSource() = default;
  explicit InstanceSource(const Instance& instance) { Bind(instance); }

  // Session rebind: serves `instance` (which must outlive the source) from
  // round 0. Keeps buffers.
  void Bind(const Instance& instance);

  bool bound() const { return instance_ != nullptr; }
  const Instance& instance() const { return *instance_; }

  Family family() const override { return Family::kInstance; }
  const Instance& shape() const override { return *instance_; }
  uint32_t max_backlog(ColorId c) const override {
    return instance_->max_backlog(c);
  }
  void SeekRound(Round r) override;
  std::unique_ptr<ArrivalSource> Clone() const override;

 protected:
  void ResetImpl() override {}
  std::span<const Run> EmitRound(Round k) override;

 private:
  const Instance* instance_ = nullptr;
};

// InstanceSource that owns its Instance — for handing adversary or mix
// outputs to consumers (FleetJob source factories) without external
// ownership.
std::unique_ptr<ArrivalSource> MakeOwnedInstanceSource(Instance instance);

// Replays the source into a materialized Instance: shape()'s color table
// (delay bounds, names, drop costs) plus every emitted run, round-major.
// For the generator sources this reproduces the legacy Make* builders byte
// for byte (golden_trace_test pins the digests). Leaves `source` Reset().
Instance Materialize(ArrivalSource& source);

// A jobless Instance carrying `shape`'s color table — the shape the mix
// wrapper sources expose.
Instance CopyColorTable(const Instance& shape);

}  // namespace workload
}  // namespace rrs
