#include "workload/synthetic.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace rrs {
namespace workload {

namespace {

// Shared emission helper: given a per-round count series for one color,
// either emit counts as-is or aggregate them into D-aligned batches.
void EmitSeries(InstanceBuilder& builder, ColorId color, Round delay_bound,
                const std::vector<uint64_t>& per_round, bool batched,
                bool rate_limited) {
  if (!batched && !rate_limited) {
    for (Round r = 0; r < static_cast<Round>(per_round.size()); ++r) {
      builder.AddJobs(color, r, per_round[static_cast<size_t>(r)]);
    }
    return;
  }
  // Aggregate each window [k, k + D) into a batch at k.
  const Round rounds = static_cast<Round>(per_round.size());
  for (Round k = 0; k < rounds; k += delay_bound) {
    uint64_t total = 0;
    for (Round r = k; r < std::min(rounds, k + delay_bound); ++r) {
      total += per_round[static_cast<size_t>(r)];
    }
    if (rate_limited) {
      total = std::min<uint64_t>(total, static_cast<uint64_t>(delay_bound));
    }
    builder.AddJobs(color, k, total);
  }
}

}  // namespace

Instance MakePoisson(const std::vector<ColorSpec>& colors,
                     const PoissonOptions& options) {
  RRS_CHECK_GE(options.rounds, 1);
  Rng rng(options.seed);
  InstanceBuilder builder;
  bool batched = options.batched || options.rate_limited;
  for (const ColorSpec& spec : colors) {
    ColorId c = builder.AddColor(spec.delay_bound);
    Rng color_rng = rng.Fork();
    std::vector<uint64_t> series(static_cast<size_t>(options.rounds));
    for (auto& count : series) count = color_rng.Poisson(spec.rate);
    EmitSeries(builder, c, spec.delay_bound, series, batched,
               options.rate_limited);
  }
  return builder.Build();
}

Instance MakeBursty(const std::vector<ColorSpec>& colors,
                    const BurstyOptions& options) {
  RRS_CHECK_GE(options.rounds, 1);
  Rng rng(options.seed);
  InstanceBuilder builder;
  bool batched = options.batched || options.rate_limited;
  for (const ColorSpec& spec : colors) {
    ColorId c = builder.AddColor(spec.delay_bound);
    Rng color_rng = rng.Fork();
    bool on = options.start_on;
    std::vector<uint64_t> series(static_cast<size_t>(options.rounds));
    for (auto& count : series) {
      count = on ? color_rng.Poisson(spec.rate) : 0;
      double flip = on ? options.p_on_to_off : options.p_off_to_on;
      if (color_rng.Bernoulli(flip)) on = !on;
    }
    EmitSeries(builder, c, spec.delay_bound, series, batched,
               options.rate_limited);
  }
  return builder.Build();
}

Instance MakeZipf(const ZipfOptions& options) {
  RRS_CHECK_GE(options.rounds, 1);
  RRS_CHECK_GE(options.num_colors, 1u);
  RRS_CHECK(!options.delay_choices.empty());
  Rng rng(options.seed);
  ZipfDistribution zipf(options.num_colors, options.zipf_exponent);

  InstanceBuilder builder;
  std::vector<Round> delay(options.num_colors);
  for (size_t c = 0; c < options.num_colors; ++c) {
    delay[c] = options.delay_choices[c % options.delay_choices.size()];
    builder.AddColor(delay[c]);
  }

  // Per-color per-round count matrix, filled by Zipf draws.
  std::vector<std::vector<uint64_t>> series(
      options.num_colors,
      std::vector<uint64_t>(static_cast<size_t>(options.rounds), 0));
  for (Round r = 0; r < options.rounds; ++r) {
    uint64_t total = rng.Poisson(options.jobs_per_round);
    for (uint64_t i = 0; i < total; ++i) {
      size_t c = zipf.Sample(rng);
      ++series[c][static_cast<size_t>(r)];
    }
  }

  bool batched = options.batched || options.rate_limited;
  for (size_t c = 0; c < options.num_colors; ++c) {
    EmitSeries(builder, static_cast<ColorId>(c), delay[c], series[c], batched,
               options.rate_limited);
  }
  return builder.Build();
}

Instance BatchArrivals(const Instance& instance, bool rate_limited) {
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  // Count jobs per (color, batch round); emit clamped.
  std::map<std::pair<ColorId, Round>, uint64_t> batches;
  for (const Job& j : instance.jobs()) {
    Round d = instance.delay_bound(j.color);
    Round batch = ((j.arrival + d - 1) / d) * d;  // next multiple of D
    ++batches[{j.color, batch}];
  }
  for (const auto& [key, count] : batches) {
    uint64_t emitted = count;
    if (rate_limited) {
      emitted = std::min<uint64_t>(
          emitted, static_cast<uint64_t>(instance.delay_bound(key.first)));
    }
    builder.AddJobs(key.first, key.second, emitted);
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
