#include "workload/synthetic.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "workload/arrival_source.h"
#include "workload/source.h"

namespace rrs {
namespace workload {

// The builders are materialized views over the streaming sources
// (workload/source.h): one construction path, two consumption modes.
// golden_trace_test pins that these emit the exact pre-streaming bytes.

Instance MakePoisson(const std::vector<ColorSpec>& colors,
                     const PoissonOptions& options) {
  PoissonSource source(colors, options);
  return Materialize(source);
}

Instance MakeBursty(const std::vector<ColorSpec>& colors,
                    const BurstyOptions& options) {
  BurstySource source(colors, options);
  return Materialize(source);
}

Instance MakeZipf(const ZipfOptions& options) {
  ZipfSource source(options);
  return Materialize(source);
}

Instance BatchArrivals(const Instance& instance, bool rate_limited) {
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  // Count jobs per (color, batch round); emit clamped.
  std::map<std::pair<ColorId, Round>, uint64_t> batches;
  for (const Job& j : instance.jobs()) {
    Round d = instance.delay_bound(j.color);
    Round batch = ((j.arrival + d - 1) / d) * d;  // next multiple of D
    ++batches[{j.color, batch}];
  }
  for (const auto& [key, count] : batches) {
    uint64_t emitted = count;
    if (rate_limited) {
      emitted = std::min<uint64_t>(
          emitted, static_cast<uint64_t>(instance.delay_bound(key.first)));
    }
    builder.AddJobs(key.first, key.second, emitted);
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
