#include "workload/arrival_source.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {
namespace workload {

void ArrivalSource::SeekRound(Round r) {
  if (r > request_rounds_) r = request_rounds_;
  RRS_CHECK_GE(r, 0);
  if (r < cursor_) Reset();
  while (cursor_ < r) NextRound();
}

void ArrivalSource::SaveState(snapshot::Writer& w) const {
  w.BeginSection(snapshot::kTagArrivalSource);
  w.PutU64(static_cast<uint64_t>(family()));
  w.PutI64(cursor_);
  SaveBody(w);
  w.EndSection();
}

void ArrivalSource::LoadState(snapshot::Reader& r) {
  r.BeginSection(snapshot::kTagArrivalSource);
  RRS_CHECK_EQ(r.GetU64(), static_cast<uint64_t>(family()))
      << "source state restored into a different generator family";
  const Round cursor = r.GetI64();
  RRS_CHECK_GE(cursor, 0);
  RRS_CHECK_LE(cursor, request_rounds_);
  LoadBody(r);
  cursor_ = cursor;
  r.EndSection();
}

void ArrivalSource::FinishInit(Round raw_rounds) {
  const Instance& sh = shape();
  const size_t num_colors = sh.num_colors();
  backlog_.assign(num_colors, 0);
  request_rounds_ = 0;
  horizon_ = 0;

  // Per-color sliding D_c-window of (round, count) arrival runs: backlog is
  // the max window sum, exactly Instance's precomputation but fed from the
  // stream.
  std::vector<std::vector<std::pair<Round, uint64_t>>> window(num_colors);
  std::vector<size_t> head(num_colors, 0);
  std::vector<uint64_t> win_sum(num_colors, 0);

  ResetImpl();
  cursor_ = 0;
  for (Round k = 0; k < raw_rounds; ++k) {
    for (const auto& [c, count] : NextRound()) {
      if (count == 0) continue;
      RRS_CHECK_LT(c, num_colors);
      const Round d = sh.delay_bound(c);
      horizon_ = std::max(horizon_, k + d);
      request_rounds_ = k + 1;
      auto& q = window[c];
      size_t& h = head[c];
      while (h < q.size() && q[h].first + d <= k) {
        win_sum[c] -= q[h].second;
        ++h;
      }
      q.emplace_back(k, count);
      win_sum[c] += count;
      if (win_sum[c] > backlog_[c]) {
        RRS_CHECK_LE(win_sum[c], UINT32_MAX);
        backlog_[c] = static_cast<uint32_t>(win_sum[c]);
      }
    }
  }
  Reset();
}

// ---- InstanceSource -------------------------------------------------------

void InstanceSource::Bind(const Instance& instance) {
  instance_ = &instance;
  request_rounds_ = instance.num_request_rounds();
  horizon_ = instance.horizon();
  cursor_ = 0;
}

void InstanceSource::SeekRound(Round r) {
  if (r > request_rounds_) r = request_rounds_;
  RRS_CHECK_GE(r, 0);
  cursor_ = r;
}

std::span<const ArrivalSource::Run> InstanceSource::EmitRound(Round k) {
  runs_.clear();
  auto jobs = instance_->jobs_in_round(k);
  // Coalesce contiguous same-color jobs, preserving within-round job order
  // (Engine's legacy arrival loop, verbatim).
  size_t i = 0;
  while (i < jobs.size()) {
    const ColorId c = jobs[i].color;
    size_t j = i;
    while (j < jobs.size() && jobs[j].color == c) ++j;
    runs_.emplace_back(c, j - i);
    i = j;
  }
  return runs_;
}

std::unique_ptr<ArrivalSource> InstanceSource::Clone() const {
  RRS_CHECK(bound()) << "Clone of an unbound InstanceSource";
  return std::make_unique<InstanceSource>(*instance_);
}

namespace {

// InstanceSource bundled with the Instance it serves.
class OwningInstanceSource final : public InstanceSource {
 public:
  explicit OwningInstanceSource(Instance instance)
      : storage_(std::move(instance)) {
    Bind(storage_);
  }

  std::unique_ptr<ArrivalSource> Clone() const override {
    return std::make_unique<OwningInstanceSource>(storage_);
  }

 private:
  Instance storage_;
};

}  // namespace

std::unique_ptr<ArrivalSource> MakeOwnedInstanceSource(Instance instance) {
  return std::make_unique<OwningInstanceSource>(std::move(instance));
}

Instance Materialize(ArrivalSource& source) {
  const Instance& sh = source.shape();
  InstanceBuilder builder;
  for (ColorId c = 0; c < sh.num_colors(); ++c) {
    builder.AddColor(sh.delay_bound(c), sh.color_name(c), sh.drop_cost(c));
  }
  source.Reset();
  const Round rounds = source.num_request_rounds();
  for (Round k = 0; k < rounds; ++k) {
    for (const auto& [c, count] : source.NextRound()) {
      builder.AddJobs(c, k, count);
    }
  }
  source.Reset();
  return builder.Build();
}

Instance CopyColorTable(const Instance& shape) {
  InstanceBuilder builder;
  for (ColorId c = 0; c < shape.num_colors(); ++c) {
    builder.AddColor(shape.delay_bound(c), shape.color_name(c),
                     shape.drop_cost(c));
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
