// Synthetic workload generators.
//
// All generators are deterministic given their seed and emit Instances; the
// `batched` family restricts color-ℓ arrivals to integral multiples of D_ℓ
// (the [Δ | 1 | D_ℓ | D_ℓ] precondition of Sections 3-4) and can additionally
// clamp per-batch counts to D_ℓ (the rate-limited precondition of Section 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "util/rng.h"

namespace rrs {
namespace workload {

struct ColorSpec {
  Round delay_bound = 1;
  double rate = 0.0;  // mean jobs per round (Poisson) while the color is "on"
};

struct PoissonOptions {
  Round rounds = 0;        // request rounds [0, rounds)
  bool batched = false;    // emit only at multiples of D_ℓ (mass accumulates)
  bool rate_limited = false;  // clamp per-batch count to D_ℓ (implies batched)
  uint64_t seed = 1;
};

// Independent Poisson arrivals per color at the given per-round rates.
Instance MakePoisson(const std::vector<ColorSpec>& colors,
                     const PoissonOptions& options);

struct BurstyOptions {
  Round rounds = 0;
  // Two-state Markov modulation per color: in each round the color is ON or
  // OFF; ON emits Poisson(rate) jobs, OFF emits none.
  double p_on_to_off = 0.05;
  double p_off_to_on = 0.05;
  bool start_on = false;
  bool batched = false;
  bool rate_limited = false;
  uint64_t seed = 1;
};

// Markov-modulated on/off bursts per color (the paper's motivating traffic
// fluctuation pattern).
Instance MakeBursty(const std::vector<ColorSpec>& colors,
                    const BurstyOptions& options);

struct ZipfOptions {
  size_t num_colors = 8;
  // Delay bound of color c: delay_choices[c % delay_choices.size()].
  std::vector<Round> delay_choices = {1, 2, 4, 8};
  double jobs_per_round = 4.0;  // mean total arrivals per round
  double zipf_exponent = 1.0;   // color popularity skew
  Round rounds = 0;
  bool batched = false;
  bool rate_limited = false;
  uint64_t seed = 1;
};

// Zipf-skewed color popularity: each round draws Poisson(jobs_per_round)
// jobs and assigns each a color by Zipf rank.
Instance MakeZipf(const ZipfOptions& options);

// Generic post-processing: rounds every arrival of color ℓ up to the next
// multiple of D_ℓ (producing a batched instance) and optionally splits
// over-full batches is NOT performed here — use reduce::VarBatch for the
// semantics-preserving transformation. This helper is only for generating
// already-batched test inputs.
Instance BatchArrivals(const Instance& instance, bool rate_limited);

}  // namespace workload
}  // namespace rrs
