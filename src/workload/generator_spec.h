// Wire-compact description of a streaming generator source.
//
// The dist fleet ships tenants to workers as messages of uint64 words
// (fleet/dist/protocol.h). A materialized tenant costs O(jobs) words; a
// GeneratorSpec costs O(colors) words and the worker instantiates the
// ArrivalSource locally — same bits, since the sources are deterministic in
// the spec. One spec struct covers every generator family: `delays` holds
// the per-color delay bounds (or the family's delay_choices cycle), `rates`
// the per-color rate parameters, `extra` the family's scalar knobs in a
// fixed documented order (see MakeSource), `names` any per-color name
// strings the family carries (router services).
//
// Specs are value types with operator== so controllers can dedupe: tenants
// sharing one spec ship it once (kMsgAddSources carries a spec table;
// TenantSpec references a spec id).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "snapshot/codec.h"
#include "workload/arrival_source.h"
#include "workload/memctrl.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace workload {

struct GeneratorSpec {
  ArrivalSource::Family family = ArrivalSource::Family::kPoisson;
  uint64_t seed = 1;
  Round rounds = 0;
  bool batched = false;
  bool rate_limited = false;
  std::vector<Round> delays;
  std::vector<double> rates;
  std::vector<double> extra;
  std::vector<std::string> names;

  friend bool operator==(const GeneratorSpec& a,
                         const GeneratorSpec& b) = default;
};

// Spec builders, one per family (inverse of MakeSource).
GeneratorSpec PoissonSpec(const std::vector<ColorSpec>& colors,
                          const PoissonOptions& options);
GeneratorSpec BurstySpec(const std::vector<ColorSpec>& colors,
                         const BurstyOptions& options);
GeneratorSpec ZipfSpec(const ZipfOptions& options);
GeneratorSpec RouterSpec(const std::vector<RouterService>& services,
                         const RouterOptions& options);
GeneratorSpec DatacenterSpec(const DatacenterOptions& options);
GeneratorSpec MemctrlSpec(const MemctrlOptions& options);

// Instantiates the source a spec describes. Aborts on a family that cannot
// ship as a spec (kInstance and the mix wrappers).
std::unique_ptr<ArrivalSource> MakeSource(const GeneratorSpec& spec);

// One snapshot::kTagDistSource section per spec.
void PutGeneratorSpec(snapshot::Writer& w, const GeneratorSpec& spec);
GeneratorSpec GetGeneratorSpec(snapshot::Reader& r);

}  // namespace workload
}  // namespace rrs
