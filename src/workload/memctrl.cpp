#include "workload/memctrl.h"

#include <string>

#include "util/check.h"
#include "workload/source.h"

namespace rrs {
namespace workload {

namespace {

class MemctrlSource final : public SeriesSource {
 public:
  explicit MemctrlSource(const MemctrlOptions& options) : options_(options) {
    RRS_CHECK_GE(options_.num_ranks, 1u);
    RRS_CHECK_GE(options_.banks_per_rank, 1u);
    RRS_CHECK(!options_.delay_choices.empty());
    RRS_CHECK_GE(options_.refresh_length, 0);
    if (options_.refresh_length > 0) {
      RRS_CHECK_GT(options_.refresh_period, options_.refresh_length);
    }
    InstanceBuilder builder;
    size_t idx = 0;
    for (uint32_t r = 0; r < options_.num_ranks; ++r) {
      for (uint32_t b = 0; b < options_.banks_per_rank; ++b) {
        builder.AddColor(
            options_.delay_choices[idx++ % options_.delay_choices.size()],
            "r" + std::to_string(r) + "b" + std::to_string(b));
      }
    }
    InitSeries(builder.Build(), options_.rounds, options_.batched,
               options_.rate_limited, Rng(options_.seed));
    FinishInit(options_.rounds);
  }

  Family family() const override { return Family::kMemctrl; }

  std::unique_ptr<ArrivalSource> Clone() const override {
    auto clone = std::make_unique<MemctrlSource>(*this);
    clone->Reset();
    return clone;
  }

 protected:
  uint64_t DrawCount(ColorId c, Round r) override {
    uint64_t count = on_[c] ? rngs_[c].Poisson(options_.burst_rate)
                            : rngs_[c].Poisson(options_.idle_rate);
    const double flip = on_[c] ? options_.close_prob : options_.open_prob;
    if (rngs_[c].Bernoulli(flip)) on_[c] ^= 1;
    if (InRefresh(c / options_.banks_per_rank, r)) {
      stash_[c] += count;
      return 0;
    }
    count += stash_[c];
    stash_[c] = 0;
    return count;
  }

  void ResetSeries() override {
    on_.assign(rngs_.size(), 0);
    stash_.assign(rngs_.size(), 0);
  }

  void SaveSeries(snapshot::Writer& w) const override {
    w.PutVec(on_);
    w.PutVec(stash_);
  }
  void LoadSeries(snapshot::Reader& r) override {
    r.GetVec(on_);
    r.GetVec(stash_);
    RRS_CHECK_EQ(on_.size(), rngs_.size());
    RRS_CHECK_EQ(stash_.size(), rngs_.size());
  }

 private:
  bool InRefresh(uint32_t rank, Round r) const {
    if (options_.refresh_length == 0) return false;
    // Stagger ranks evenly across the period so refresh storms don't align.
    const Round stagger =
        (options_.refresh_period / options_.num_ranks) * rank;
    return (r + stagger) % options_.refresh_period < options_.refresh_length;
  }

  MemctrlOptions options_;
  std::vector<uint8_t> on_;      // per-bank open-row flag
  std::vector<uint64_t> stash_;  // per-bank arrivals held during refresh
};

}  // namespace

std::unique_ptr<ArrivalSource> MakeMemctrlSource(
    const MemctrlOptions& options) {
  return std::make_unique<MemctrlSource>(options);
}

}  // namespace workload
}  // namespace rrs
