#include "workload/source.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace rrs {
namespace workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

// ---- SeriesSource ---------------------------------------------------------

void SeriesSource::InitSeries(Instance shape, Round raw_rounds, bool batched,
                              bool rate_limited, Rng fork_base) {
  RRS_CHECK_GE(raw_rounds, 1);
  shape_ = std::move(shape);
  raw_rounds_ = raw_rounds;
  batched_ = batched || rate_limited;
  rate_limited_ = rate_limited;
  fork_base_ = fork_base;
  rngs_.resize(shape_.num_colors(), Rng(0));
}

void SeriesSource::ResetImpl() {
  // Re-derive the per-color forks exactly as the materializing builders did:
  // one Fork from the master RNG per color, in color order.
  Rng rng = fork_base_;
  for (auto& fork : rngs_) fork = rng.Fork();
  ResetSeries();
}

std::span<const ArrivalSource::Run> SeriesSource::EmitRound(Round k) {
  runs_.clear();
  const size_t num_colors = shape_.num_colors();
  if (!batched_) {
    for (ColorId c = 0; c < num_colors; ++c) {
      const uint64_t count = DrawCount(c, k);
      if (count != 0) runs_.emplace_back(c, count);
    }
    return runs_;
  }
  // D-aligned batching: color c emits at multiples of D_c, aggregating the
  // window [k, k + D_c) — drawn here, from c's own fork, in round order, so
  // the fork's stream matches the non-windowed draw sequence exactly.
  for (ColorId c = 0; c < num_colors; ++c) {
    const Round d = shape_.delay_bound(c);
    if (k % d != 0) continue;
    uint64_t total = 0;
    const Round end = std::min(raw_rounds_, k + d);
    for (Round r = k; r < end; ++r) total += DrawCount(c, r);
    if (rate_limited_) {
      total = std::min<uint64_t>(total, static_cast<uint64_t>(d));
    }
    if (total != 0) runs_.emplace_back(c, total);
  }
  return runs_;
}

void SeriesSource::SaveBody(snapshot::Writer& w) const {
  for (const Rng& rng : rngs_) {
    for (const uint64_t word : rng.SaveState()) w.PutU64(word);
  }
  SaveSeries(w);
}

void SeriesSource::LoadBody(snapshot::Reader& r) {
  for (Rng& rng : rngs_) {
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) word = r.GetU64();
    rng.LoadState(state);
  }
  LoadSeries(r);
}

// ---- PoissonSource --------------------------------------------------------

PoissonSource::PoissonSource(std::vector<ColorSpec> colors,
                             const PoissonOptions& options)
    : colors_(std::move(colors)), options_(options) {
  InstanceBuilder builder;
  for (const ColorSpec& spec : colors_) builder.AddColor(spec.delay_bound);
  InitSeries(builder.Build(), options_.rounds, options_.batched,
             options_.rate_limited, Rng(options_.seed));
  FinishInit(options_.rounds);
}

uint64_t PoissonSource::DrawCount(ColorId c, Round /*r*/) {
  return rngs_[c].Poisson(colors_[c].rate);
}

std::unique_ptr<ArrivalSource> PoissonSource::Clone() const {
  auto clone = std::make_unique<PoissonSource>(*this);
  clone->Reset();
  return clone;
}

// ---- BurstySource ---------------------------------------------------------

BurstySource::BurstySource(std::vector<ColorSpec> colors,
                           const BurstyOptions& options)
    : colors_(std::move(colors)), options_(options) {
  InstanceBuilder builder;
  for (const ColorSpec& spec : colors_) builder.AddColor(spec.delay_bound);
  on_.resize(colors_.size());
  InitSeries(builder.Build(), options_.rounds, options_.batched,
             options_.rate_limited, Rng(options_.seed));
  FinishInit(options_.rounds);
}

uint64_t BurstySource::DrawCount(ColorId c, Round /*r*/) {
  const uint64_t count = on_[c] ? rngs_[c].Poisson(colors_[c].rate) : 0;
  const double flip = on_[c] ? options_.p_on_to_off : options_.p_off_to_on;
  if (rngs_[c].Bernoulli(flip)) on_[c] = !on_[c];
  return count;
}

void BurstySource::ResetSeries() {
  std::fill(on_.begin(), on_.end(),
            static_cast<uint8_t>(options_.start_on ? 1 : 0));
}

void BurstySource::SaveSeries(snapshot::Writer& w) const { w.PutVec(on_); }

void BurstySource::LoadSeries(snapshot::Reader& r) {
  r.GetVec(on_);
  RRS_CHECK_EQ(on_.size(), colors_.size());
}

std::unique_ptr<ArrivalSource> BurstySource::Clone() const {
  auto clone = std::make_unique<BurstySource>(*this);
  clone->Reset();
  return clone;
}

// ---- ZipfSource -----------------------------------------------------------

ZipfSource::ZipfSource(const ZipfOptions& options)
    : options_(options),
      zipf_(options.num_colors, options.zipf_exponent) {
  RRS_CHECK_GE(options_.rounds, 1);
  RRS_CHECK_GE(options_.num_colors, 1u);
  RRS_CHECK(!options_.delay_choices.empty());
  batched_ = options_.batched || options_.rate_limited;

  InstanceBuilder builder;
  Round max_delay = 1;
  for (size_t c = 0; c < options_.num_colors; ++c) {
    const Round d =
        options_.delay_choices[c % options_.delay_choices.size()];
    builder.AddColor(d);
    max_delay = std::max(max_delay, d);
  }
  shape_ = builder.Build();

  row_counts_.assign(options_.num_colors, 0);
  row_touched_.reserve(options_.num_colors);
  if (batched_) {
    window_acc_.resize(options_.num_colors);
    for (size_t c = 0; c < options_.num_colors; ++c) {
      // Rows are drawn at most max_delay rounds ahead of the emission
      // cursor, so at most max_delay / D_c + 1 of color c's windows are ever
      // accumulating at once; the +2'd power-of-two ring can never collide.
      const Round d = shape_.delay_bound(static_cast<ColorId>(c));
      const size_t cap = std::bit_ceil(
          static_cast<size_t>(max_delay / d) + 2);
      window_acc_[c].assign(cap, 0);
    }
  }
  FinishInit(options_.rounds);
}

void ZipfSource::ResetImpl() {
  rng_ = Rng(options_.seed);
  next_raw_ = 0;
  std::fill(row_counts_.begin(), row_counts_.end(), 0);
  row_touched_.clear();
  for (auto& ring : window_acc_) std::fill(ring.begin(), ring.end(), 0);
}

void ZipfSource::DrawRowsThrough(Round needed) {
  // Raw per-round rows are drawn strictly in round order from the shared
  // RNG — the exact draw sequence of the materializing builder.
  for (Round r = next_raw_; r < needed; ++r) {
    const uint64_t total = rng_.Poisson(options_.jobs_per_round);
    for (uint64_t i = 0; i < total; ++i) {
      const size_t c = zipf_.Sample(rng_);
      const Round d = shape_.delay_bound(static_cast<ColorId>(c));
      auto& ring = window_acc_[c];
      ++ring[static_cast<size_t>(r / d) & (ring.size() - 1)];
    }
  }
  next_raw_ = std::max(next_raw_, needed);
}

std::span<const ArrivalSource::Run> ZipfSource::EmitRound(Round k) {
  runs_.clear();
  if (!batched_) {
    const uint64_t total = rng_.Poisson(options_.jobs_per_round);
    for (uint64_t i = 0; i < total; ++i) {
      const size_t c = zipf_.Sample(rng_);
      if (row_counts_[c]++ == 0) {
        row_touched_.push_back(static_cast<ColorId>(c));
      }
    }
    // The materializing builder emits per color in ascending order.
    std::sort(row_touched_.begin(), row_touched_.end());
    for (const ColorId c : row_touched_) {
      runs_.emplace_back(c, row_counts_[c]);
      row_counts_[c] = 0;
    }
    row_touched_.clear();
    return runs_;
  }

  Round needed = 0;
  for (ColorId c = 0; c < shape_.num_colors(); ++c) {
    const Round d = shape_.delay_bound(c);
    if (k % d == 0) {
      needed = std::max(needed, std::min(options_.rounds, k + d));
    }
  }
  if (needed > next_raw_) DrawRowsThrough(needed);
  for (ColorId c = 0; c < shape_.num_colors(); ++c) {
    const Round d = shape_.delay_bound(c);
    if (k % d != 0) continue;
    auto& ring = window_acc_[c];
    const size_t slot = static_cast<size_t>(k / d) & (ring.size() - 1);
    uint64_t total = ring[slot];
    ring[slot] = 0;
    if (options_.rate_limited) {
      total = std::min<uint64_t>(total, static_cast<uint64_t>(d));
    }
    if (total != 0) runs_.emplace_back(c, total);
  }
  return runs_;
}

void ZipfSource::SaveBody(snapshot::Writer& w) const {
  for (const uint64_t word : rng_.SaveState()) w.PutU64(word);
  w.PutI64(next_raw_);
  for (const auto& ring : window_acc_) w.PutVec(ring);
}

void ZipfSource::LoadBody(snapshot::Reader& r) {
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) word = r.GetU64();
  rng_.LoadState(state);
  next_raw_ = r.GetI64();
  for (auto& ring : window_acc_) {
    const size_t cap = ring.size();
    r.GetVec(ring);
    RRS_CHECK_EQ(ring.size(), cap);
  }
}

std::unique_ptr<ArrivalSource> ZipfSource::Clone() const {
  auto clone = std::make_unique<ZipfSource>(*this);
  clone->Reset();
  return clone;
}

// ---- RouterSource ---------------------------------------------------------

RouterSource::RouterSource(std::vector<RouterService> services,
                           const RouterOptions& options)
    : services_(std::move(services)), options_(options) {
  RRS_CHECK_GE(options_.period, 2);
  RRS_CHECK(!services_.empty());
  InstanceBuilder builder;
  for (const RouterService& svc : services_) {
    RRS_CHECK_GE(svc.delay_bound, 1);
    RRS_CHECK_LE(svc.base_rate, svc.peak_rate);
    builder.AddColor(svc.delay_bound, svc.name);
  }
  InitSeries(builder.Build(), options_.rounds, options_.batched,
             options_.rate_limited, Rng(options_.seed));
  FinishInit(options_.rounds);
}

uint64_t RouterSource::DrawCount(ColorId c, Round r) {
  const RouterService& svc = services_[c];
  // Phase-shift each service by an equal fraction of the period so the
  // dominant service rotates (expression identical to the materializing
  // builder's, for bit-equal rates).
  double phase = kTwoPi * static_cast<double>(c) /
                 static_cast<double>(services_.size());
  double wave = 0.5 * (1.0 + std::sin(kTwoPi * static_cast<double>(r) /
                                          static_cast<double>(options_.period) +
                                      phase));
  double rate = svc.base_rate + (svc.peak_rate - svc.base_rate) * wave;
  return rngs_[c].Poisson(rate);
}

std::unique_ptr<ArrivalSource> RouterSource::Clone() const {
  auto clone = std::make_unique<RouterSource>(*this);
  clone->Reset();
  return clone;
}

// ---- DatacenterSource -----------------------------------------------------

DatacenterSource::DatacenterSource(const DatacenterOptions& options)
    : options_(options) {
  RRS_CHECK_GE(options_.phase_length, 1);
  RRS_CHECK_GE(options_.num_services, 1u);
  RRS_CHECK_GE(options_.dominant_per_phase, 1u);
  RRS_CHECK(!options_.delay_choices.empty());

  InstanceBuilder builder;
  for (size_t s = 0; s < options_.num_services; ++s) {
    builder.AddColor(
        options_.delay_choices[s % options_.delay_choices.size()],
        "svc" + std::to_string(s));
  }

  // Each phase's dominant services are drawn from the master RNG before any
  // per-service fork — the exact draw order of the materializing builder —
  // so the post-shuffle RNG is the fork base.
  Rng rng(options_.seed);
  const size_t num_phases = static_cast<size_t>(
      (options_.rounds + options_.phase_length - 1) / options_.phase_length);
  dominant_.assign(num_phases,
                   std::vector<uint8_t>(options_.num_services, 0));
  for (size_t ph = 0; ph < num_phases; ++ph) {
    std::vector<size_t> ids(options_.num_services);
    for (size_t s = 0; s < ids.size(); ++s) ids[s] = s;
    rng.Shuffle(ids);
    const size_t take = std::min(options_.dominant_per_phase, ids.size());
    for (size_t i = 0; i < take; ++i) dominant_[ph][ids[i]] = 1;
  }

  InitSeries(builder.Build(), options_.rounds, options_.batched,
             options_.rate_limited, rng);
  FinishInit(options_.rounds);
}

uint64_t DatacenterSource::DrawCount(ColorId c, Round r) {
  const size_t ph = static_cast<size_t>(r / options_.phase_length);
  const double rate = dominant_[ph][c] ? options_.dominant_rate
                                       : options_.background_rate;
  return rngs_[c].Poisson(rate);
}

std::unique_ptr<ArrivalSource> DatacenterSource::Clone() const {
  auto clone = std::make_unique<DatacenterSource>(*this);
  clone->Reset();
  return clone;
}

// ---- Factories ------------------------------------------------------------

std::unique_ptr<ArrivalSource> MakePoissonSource(
    std::vector<ColorSpec> colors, const PoissonOptions& options) {
  return std::make_unique<PoissonSource>(std::move(colors), options);
}

std::unique_ptr<ArrivalSource> MakeBurstySource(std::vector<ColorSpec> colors,
                                                const BurstyOptions& options) {
  return std::make_unique<BurstySource>(std::move(colors), options);
}

std::unique_ptr<ArrivalSource> MakeZipfSource(const ZipfOptions& options) {
  return std::make_unique<ZipfSource>(options);
}

std::unique_ptr<ArrivalSource> MakeRouterSource(
    std::vector<RouterService> services, const RouterOptions& options) {
  return std::make_unique<RouterSource>(std::move(services), options);
}

std::unique_ptr<ArrivalSource> MakeDatacenterSource(
    const DatacenterOptions& options) {
  return std::make_unique<DatacenterSource>(options);
}

}  // namespace workload
}  // namespace rrs
