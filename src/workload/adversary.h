// The lower-bound constructions of Appendices A and B, together with the
// hand-built offline schedules the paper compares against. The schedules are
// returned as explicit rrs::Schedule objects so the independent validator can
// certify their legality and cost — the measured ratio
//   cost(online) / cost(handmade OFF)
// is then a certified lower bound on the online algorithm's competitive
// ratio on that input.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {
namespace workload {

// ---- Appendix A: ΔLRU is not resource competitive ------------------------
//
// n/2 "short-term" colors with delay bound 2^j and one "long-term" color
// with delay bound 2^k, where 2^k > 2^{j+1} > nΔ. Over 2^k rounds: Δ jobs of
// every short-term color at each multiple of 2^j, and 2^k long-term jobs at
// round 0. ΔLRU pins the short-term colors (their timestamps refresh every
// block) and drops all 2^k long-term jobs; OFF serves the long-term color on
// one resource. Ratio: Ω(2^{j+1} / (nΔ)).

struct DlruAdversary {
  Instance instance;
  uint32_t n = 0;        // online resource count the construction targets
  uint64_t delta = 1;
  int j = 0;             // short-term delay bound exponent
  int k = 0;             // long-term delay bound exponent
  ColorId long_color = kNoColor;
  std::vector<ColorId> short_colors;
};

// Requires 2^k > 2^{j+1} > n * delta, n even and >= 2.
DlruAdversary MakeDlruAdversary(uint32_t n, uint64_t delta, int j, int k);

// The offline schedule of Appendix A: one resource, configured to the
// long-term color at round 0, executing one long-term job per round.
// Cost: Δ + (all short-term jobs dropped) = Δ + 2^{k-j-1} n Δ.
Schedule MakeDlruAdversaryOffSchedule(const DlruAdversary& adv);

// ---- Appendix B: EDF is not resource competitive --------------------------
//
// One color with delay bound 2^j plus n/2 colors with delay bounds
// 2^k, 2^{k+1}, ..., 2^{k + n/2 - 1}, where 2^k > 2^j > Δ > n. Over
// 2^{k + n/2 - 1} rounds: Δ short jobs at each multiple of 2^j until round
// 2^{k-1}, and 2^{k+p-1} jobs of long color p at round 0. EDF repeatedly
// displaces the long colors whenever the short color turns nonidle
// (thrashing, reconfiguration cost >= 2^{k-j-1} Δ); OFF serves the short
// color first and each long color in its own phase, at total cost
// (n/2 + 1) Δ with zero drops. Ratio: >= 2^{k-j-1} / (n/2 + 1).

struct EdfAdversary {
  Instance instance;
  uint32_t n = 0;
  uint64_t delta = 1;
  int j = 0;
  int k = 0;
  ColorId short_color = kNoColor;
  std::vector<ColorId> long_colors;  // long_colors[p] has delay bound 2^{k+p}
};

// Requires 2^k > 2^j > delta > n, n even and >= 2.
EdfAdversary MakeEdfAdversary(uint32_t n, uint64_t delta, int j, int k);

// The offline schedule of Appendix B: one resource; the short color
// throughout rounds [0, 2^{k-1}), then long color p throughout
// [2^{k+p-1}, 2^{k+p}). Cost: (n/2 + 1) Δ, zero drops.
Schedule MakeEdfAdversaryOffSchedule(const EdfAdversary& adv);

// ---- Introduction scenario: background vs short-term jobs -----------------
//
// The motivating example of Section 1: one "background" color with a distant
// deadline and a stream of intermittently arriving "short-term" colors.
// Policies that eagerly fill idle cycles with background work thrash;
// policies that never do underutilize. gap_rounds controls the short-term
// inter-burst gap.

struct IntroScenarioOptions {
  int num_short_colors = 3;
  Round short_delay = 8;        // power of two
  Round background_delay = 4096;  // power of two, >> short_delay
  uint64_t jobs_per_burst = 8;
  Round gap_blocks = 2;   // short-term bursts arrive every gap_blocks blocks
  uint64_t background_jobs = 2048;
  Round rounds = 4096;
  uint64_t seed = 1;
};

Instance MakeIntroScenario(const IntroScenarioOptions& options);

}  // namespace workload
}  // namespace rrs
