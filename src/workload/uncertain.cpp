#include "workload/uncertain.h"

#include <utility>

#include "util/check.h"
#include "util/rng.h"
#include "workload/arrival_source.h"

namespace rrs {
namespace workload {

ColorId UncertainInstance::AddColor(Round delay_bound, std::string name,
                                    uint64_t drop_cost) {
  RRS_CHECK_GE(delay_bound, 1);
  delay_bounds_.push_back(delay_bound);
  drop_costs_.push_back(drop_cost);
  names_.push_back(std::move(name));
  return static_cast<ColorId>(delay_bounds_.size() - 1);
}

void UncertainInstance::AddJob(ColorId color, Round r_lo, Round r_hi) {
  RRS_CHECK_LT(color, delay_bounds_.size());
  RRS_CHECK_GE(r_lo, 0);
  RRS_CHECK_LE(r_lo, r_hi);
  jobs_.push_back(WindowedJob{color, r_lo, r_hi});
}

void UncertainInstance::AddJobs(ColorId color, Round r_lo, Round r_hi,
                                uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) AddJob(color, r_lo, r_hi);
}

UncertainInstance UncertainInstance::FromInstance(const Instance& instance,
                                                  Round widen_before,
                                                  Round widen_after) {
  UncertainInstance out;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    out.AddColor(instance.delay_bound(c), instance.color_name(c),
                 instance.drop_cost(c));
  }
  for (const Job& job : instance.jobs()) {
    const Round lo =
        job.arrival > widen_before ? job.arrival - widen_before : 0;
    out.AddJob(job.color, lo, job.arrival + widen_after);
  }
  return out;
}

bool UncertainInstance::IsZeroWidth() const {
  for (const WindowedJob& job : jobs_) {
    if (job.release_lo != job.release_hi) return false;
  }
  return true;
}

Round UncertainInstance::num_request_rounds() const {
  Round last = -1;
  for (const WindowedJob& job : jobs_) last = std::max(last, job.release_hi);
  return last + 1;
}

Round UncertainInstance::horizon() const {
  Round horizon = 0;
  for (const WindowedJob& job : jobs_) {
    horizon = std::max(horizon, job.release_hi + delay_bounds_[job.color]);
  }
  return horizon;
}

Instance UncertainInstance::BuildEnvelope(bool pessimistic) const {
  InstanceBuilder builder;
  for (size_t c = 0; c < delay_bounds_.size(); ++c) {
    builder.AddColor(delay_bounds_[c], names_[c], drop_costs_[c]);
  }
  for (const WindowedJob& job : jobs_) {
    if (pessimistic) {
      for (Round r = job.release_lo; r <= job.release_hi; ++r) {
        builder.AddJob(job.color, r);
      }
    } else if (job.release_lo == job.release_hi) {
      builder.AddJob(job.color, job.release_lo);
    }
  }
  return builder.Build();
}

Instance UncertainInstance::ForcedInstance() const {
  return BuildEnvelope(/*pessimistic=*/false);
}

Instance UncertainInstance::PessimisticInstance() const {
  return BuildEnvelope(/*pessimistic=*/true);
}

Instance UncertainInstance::Sample(uint64_t seed) const {
  Rng rng(seed);
  InstanceBuilder builder;
  for (size_t c = 0; c < delay_bounds_.size(); ++c) {
    builder.AddColor(delay_bounds_[c], names_[c], drop_costs_[c]);
  }
  // One draw per job in insertion order, so a given seed pins the whole
  // trace regardless of how callers interleave queries.
  for (const WindowedJob& job : jobs_) {
    const uint64_t width =
        static_cast<uint64_t>(job.release_hi - job.release_lo);
    const Round arrival =
        job.release_lo + static_cast<Round>(rng.NextBounded(width + 1));
    builder.AddJob(job.color, arrival);
  }
  return builder.Build();
}

std::unique_ptr<ArrivalSource> UncertainInstance::SampleSource(
    uint64_t seed) const {
  return MakeOwnedInstanceSource(Sample(seed));
}

}  // namespace workload
}  // namespace rrs
