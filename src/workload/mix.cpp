#include "workload/mix.h"

#include "util/check.h"

namespace rrs {
namespace workload {

Instance MergeInstances(const std::vector<const Instance*>& instances) {
  RRS_CHECK(!instances.empty());
  InstanceBuilder builder;
  std::vector<ColorId> offsets;
  offsets.reserve(instances.size());
  for (const Instance* inst : instances) {
    RRS_CHECK(inst != nullptr);
    offsets.push_back(static_cast<ColorId>(builder.num_colors()));
    for (ColorId c = 0; c < inst->num_colors(); ++c) {
      builder.AddColor(inst->delay_bound(c), inst->color_name(c));
    }
  }
  for (size_t i = 0; i < instances.size(); ++i) {
    for (const Job& j : instances[i]->jobs()) {
      builder.AddJob(offsets[i] + j.color, j.arrival);
    }
  }
  return builder.Build();
}

Instance TimeShift(const Instance& instance, Round offset) {
  RRS_CHECK_GE(offset, 0);
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  for (const Job& j : instance.jobs()) {
    builder.AddJob(j.color, j.arrival + offset);
  }
  return builder.Build();
}

Instance Thin(const Instance& instance, double keep_prob, uint64_t seed) {
  RRS_CHECK_GE(keep_prob, 0.0);
  RRS_CHECK_LE(keep_prob, 1.0);
  Rng rng(seed);
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  for (const Job& j : instance.jobs()) {
    if (rng.Bernoulli(keep_prob)) builder.AddJob(j.color, j.arrival);
  }
  return builder.Build();
}

Instance Concat(const Instance& a, const Instance& b, Round gap) {
  RRS_CHECK_GE(gap, 0);
  RRS_CHECK_EQ(a.num_colors(), b.num_colors())
      << "Concat requires identical color tables";
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    RRS_CHECK_EQ(a.delay_bound(c), b.delay_bound(c))
        << "Concat requires identical color tables (color " << c << ")";
  }
  InstanceBuilder builder;
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    builder.AddColor(a.delay_bound(c), a.color_name(c));
  }
  for (const Job& j : a.jobs()) builder.AddJob(j.color, j.arrival);
  // Start b after every job of a has arrived; the gap adds idle rounds.
  const Round offset = a.num_request_rounds() + gap;
  for (const Job& j : b.jobs()) builder.AddJob(j.color, j.arrival + offset);
  return builder.Build();
}

}  // namespace workload
}  // namespace rrs
