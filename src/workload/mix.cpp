#include "workload/mix.h"

#include <algorithm>
#include <array>
#include <utility>

#include "util/check.h"

namespace rrs {
namespace workload {

Instance MergeInstances(const std::vector<const Instance*>& instances) {
  RRS_CHECK(!instances.empty());
  InstanceBuilder builder;
  std::vector<ColorId> offsets;
  offsets.reserve(instances.size());
  for (const Instance* inst : instances) {
    RRS_CHECK(inst != nullptr);
    offsets.push_back(static_cast<ColorId>(builder.num_colors()));
    for (ColorId c = 0; c < inst->num_colors(); ++c) {
      builder.AddColor(inst->delay_bound(c), inst->color_name(c));
    }
  }
  for (size_t i = 0; i < instances.size(); ++i) {
    for (const Job& j : instances[i]->jobs()) {
      builder.AddJob(offsets[i] + j.color, j.arrival);
    }
  }
  return builder.Build();
}

Instance TimeShift(const Instance& instance, Round offset) {
  RRS_CHECK_GE(offset, 0);
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  for (const Job& j : instance.jobs()) {
    builder.AddJob(j.color, j.arrival + offset);
  }
  return builder.Build();
}

Instance Thin(const Instance& instance, double keep_prob, uint64_t seed) {
  RRS_CHECK_GE(keep_prob, 0.0);
  RRS_CHECK_LE(keep_prob, 1.0);
  Rng rng(seed);
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(instance.delay_bound(c), instance.color_name(c));
  }
  for (const Job& j : instance.jobs()) {
    if (rng.Bernoulli(keep_prob)) builder.AddJob(j.color, j.arrival);
  }
  return builder.Build();
}

Instance Concat(const Instance& a, const Instance& b, Round gap) {
  RRS_CHECK_GE(gap, 0);
  RRS_CHECK_EQ(a.num_colors(), b.num_colors())
      << "Concat requires identical color tables";
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    RRS_CHECK_EQ(a.delay_bound(c), b.delay_bound(c))
        << "Concat requires identical color tables (color " << c << ")";
  }
  InstanceBuilder builder;
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    builder.AddColor(a.delay_bound(c), a.color_name(c));
  }
  for (const Job& j : a.jobs()) builder.AddJob(j.color, j.arrival);
  // Start b after every job of a has arrived; the gap adds idle rounds.
  const Round offset = a.num_request_rounds() + gap;
  for (const Job& j : b.jobs()) builder.AddJob(j.color, j.arrival + offset);
  return builder.Build();
}

// ---- Streaming wrapper sources -------------------------------------------
//
// Like the materialized transforms above, wrapper shapes copy each color's
// delay bound and name but take the default drop cost — so a wrapper-fed
// engine matches a transform-fed one field for field. Each wrapper drives
// its inner sources' cursors one round per EmitRound and guards against
// pulling past an inner's num_request_rounds.

namespace {

class TimeShiftSource final : public ArrivalSource {
 public:
  TimeShiftSource(std::unique_ptr<ArrivalSource> inner, Round offset)
      : inner_(std::move(inner)), offset_(offset) {
    RRS_CHECK_GE(offset, 0);
    const Instance& in = inner_->shape();
    InstanceBuilder builder;
    for (ColorId c = 0; c < in.num_colors(); ++c) {
      builder.AddColor(in.delay_bound(c), in.color_name(c));
    }
    shape_ = builder.Build();
    FinishInit(inner_->num_request_rounds() + offset_);
  }

  Family family() const override { return Family::kTimeShift; }
  const Instance& shape() const override { return shape_; }

  std::unique_ptr<ArrivalSource> Clone() const override {
    auto clone =
        std::make_unique<TimeShiftSource>(inner_->Clone(), offset_);
    return clone;
  }

  void SaveState(snapshot::Writer& w) const override {
    ArrivalSource::SaveState(w);
    inner_->SaveState(w);
  }
  void LoadState(snapshot::Reader& r) override {
    ArrivalSource::LoadState(r);
    inner_->LoadState(r);
  }

 protected:
  void ResetImpl() override { inner_->Reset(); }

  std::span<const Run> EmitRound(Round k) override {
    if (k < offset_ || inner_->cursor() >= inner_->num_request_rounds()) {
      return {};
    }
    return inner_->NextRound();
  }

 private:
  std::unique_ptr<ArrivalSource> inner_;
  Round offset_ = 0;
  Instance shape_;
};

class ThinSource final : public ArrivalSource {
 public:
  ThinSource(std::unique_ptr<ArrivalSource> inner, double keep_prob,
             uint64_t seed)
      : inner_(std::move(inner)),
        keep_prob_(keep_prob),
        seed_(seed),
        rng_(seed) {
    RRS_CHECK_GE(keep_prob, 0.0);
    RRS_CHECK_LE(keep_prob, 1.0);
    const Instance& in = inner_->shape();
    InstanceBuilder builder;
    for (ColorId c = 0; c < in.num_colors(); ++c) {
      builder.AddColor(in.delay_bound(c), in.color_name(c));
    }
    shape_ = builder.Build();
    FinishInit(inner_->num_request_rounds());
  }

  Family family() const override { return Family::kThin; }
  const Instance& shape() const override { return shape_; }

  std::unique_ptr<ArrivalSource> Clone() const override {
    return std::make_unique<ThinSource>(inner_->Clone(), keep_prob_, seed_);
  }

  void SaveState(snapshot::Writer& w) const override {
    ArrivalSource::SaveState(w);
    inner_->SaveState(w);
  }
  void LoadState(snapshot::Reader& r) override {
    ArrivalSource::LoadState(r);
    inner_->LoadState(r);
  }

 protected:
  void ResetImpl() override {
    rng_ = Rng(seed_);
    inner_->Reset();
  }

  std::span<const Run> EmitRound(Round) override {
    runs_.clear();
    if (inner_->cursor() < inner_->num_request_rounds()) {
      for (const auto& [c, count] : inner_->NextRound()) {
        uint64_t kept = 0;
        for (uint64_t i = 0; i < count; ++i) {
          if (rng_.Bernoulli(keep_prob_)) ++kept;
        }
        if (kept > 0) runs_.emplace_back(c, kept);
      }
    }
    return runs_;
  }

  void SaveBody(snapshot::Writer& w) const override {
    for (const uint64_t word : rng_.SaveState()) w.PutU64(word);
  }
  void LoadBody(snapshot::Reader& r) override {
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) word = r.GetU64();
    rng_.LoadState(state);
  }

 private:
  std::unique_ptr<ArrivalSource> inner_;
  double keep_prob_ = 1.0;
  uint64_t seed_ = 0;
  Rng rng_;
  Instance shape_;
};

class ConcatSource final : public ArrivalSource {
 public:
  ConcatSource(std::unique_ptr<ArrivalSource> a,
               std::unique_ptr<ArrivalSource> b, Round gap)
      : a_(std::move(a)), b_(std::move(b)), gap_(gap) {
    RRS_CHECK_GE(gap, 0);
    const Instance& sa = a_->shape();
    const Instance& sb = b_->shape();
    RRS_CHECK_EQ(sa.num_colors(), sb.num_colors())
        << "Concat requires identical color tables";
    InstanceBuilder builder;
    for (ColorId c = 0; c < sa.num_colors(); ++c) {
      RRS_CHECK_EQ(sa.delay_bound(c), sb.delay_bound(c))
          << "Concat requires identical color tables (color " << c << ")";
      builder.AddColor(sa.delay_bound(c), sa.color_name(c));
    }
    shape_ = builder.Build();
    offset_ = a_->num_request_rounds() + gap_;
    FinishInit(offset_ + b_->num_request_rounds());
  }

  Family family() const override { return Family::kConcat; }
  const Instance& shape() const override { return shape_; }

  std::unique_ptr<ArrivalSource> Clone() const override {
    return std::make_unique<ConcatSource>(a_->Clone(), b_->Clone(), gap_);
  }

  void SaveState(snapshot::Writer& w) const override {
    ArrivalSource::SaveState(w);
    a_->SaveState(w);
    b_->SaveState(w);
  }
  void LoadState(snapshot::Reader& r) override {
    ArrivalSource::LoadState(r);
    a_->LoadState(r);
    b_->LoadState(r);
  }

 protected:
  void ResetImpl() override {
    a_->Reset();
    b_->Reset();
  }

  std::span<const Run> EmitRound(Round k) override {
    if (a_->cursor() < a_->num_request_rounds()) return a_->NextRound();
    if (k >= offset_ && b_->cursor() < b_->num_request_rounds()) {
      return b_->NextRound();
    }
    return {};
  }

 private:
  std::unique_ptr<ArrivalSource> a_;
  std::unique_ptr<ArrivalSource> b_;
  Round gap_ = 0;
  Round offset_ = 0;
  Instance shape_;
};

class MergeSource final : public ArrivalSource {
 public:
  explicit MergeSource(std::vector<std::unique_ptr<ArrivalSource>> parts)
      : parts_(std::move(parts)) {
    RRS_CHECK(!parts_.empty());
    InstanceBuilder builder;
    Round raw = 0;
    for (const auto& part : parts_) {
      RRS_CHECK(part != nullptr);
      const Instance& in = part->shape();
      offsets_.push_back(static_cast<ColorId>(builder.num_colors()));
      for (ColorId c = 0; c < in.num_colors(); ++c) {
        builder.AddColor(in.delay_bound(c), in.color_name(c));
      }
      raw = std::max(raw, part->num_request_rounds());
    }
    shape_ = builder.Build();
    FinishInit(raw);
  }

  Family family() const override { return Family::kMerge; }
  const Instance& shape() const override { return shape_; }

  std::unique_ptr<ArrivalSource> Clone() const override {
    std::vector<std::unique_ptr<ArrivalSource>> parts;
    parts.reserve(parts_.size());
    for (const auto& part : parts_) parts.push_back(part->Clone());
    return std::make_unique<MergeSource>(std::move(parts));
  }

  void SaveState(snapshot::Writer& w) const override {
    ArrivalSource::SaveState(w);
    for (const auto& part : parts_) part->SaveState(w);
  }
  void LoadState(snapshot::Reader& r) override {
    ArrivalSource::LoadState(r);
    for (auto& part : parts_) part->LoadState(r);
  }

 protected:
  void ResetImpl() override {
    for (auto& part : parts_) part->Reset();
  }

  std::span<const Run> EmitRound(Round) override {
    runs_.clear();
    for (size_t i = 0; i < parts_.size(); ++i) {
      ArrivalSource& part = *parts_[i];
      if (part.cursor() >= part.num_request_rounds()) continue;
      for (const auto& [c, count] : part.NextRound()) {
        runs_.emplace_back(offsets_[i] + c, count);
      }
    }
    return runs_;
  }

 private:
  std::vector<std::unique_ptr<ArrivalSource>> parts_;
  std::vector<ColorId> offsets_;
  Instance shape_;
};

}  // namespace

std::unique_ptr<ArrivalSource> MakeMergeSource(
    std::vector<std::unique_ptr<ArrivalSource>> parts) {
  return std::make_unique<MergeSource>(std::move(parts));
}

std::unique_ptr<ArrivalSource> MakeTimeShiftSource(
    std::unique_ptr<ArrivalSource> inner, Round offset) {
  return std::make_unique<TimeShiftSource>(std::move(inner), offset);
}

std::unique_ptr<ArrivalSource> MakeThinSource(
    std::unique_ptr<ArrivalSource> inner, double keep_prob, uint64_t seed) {
  return std::make_unique<ThinSource>(std::move(inner), keep_prob, seed);
}

std::unique_ptr<ArrivalSource> MakeConcatSource(
    std::unique_ptr<ArrivalSource> a, std::unique_ptr<ArrivalSource> b,
    Round gap) {
  return std::make_unique<ConcatSource>(std::move(a), std::move(b), gap);
}

}  // namespace workload
}  // namespace rrs
