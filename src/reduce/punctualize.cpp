#include "reduce/punctualize.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace reduce {

PunctualizeResult PunctualizeSchedule(const Instance& instance,
                                      const Schedule& s,
                                      const VarBatchTransform& transform) {
  RRS_CHECK_EQ(s.mini_rounds_per_round(), 1)
      << "Punctualize takes a uni-speed schedule";
  const uint32_t m = s.num_resources();
  const uint32_t big_m = 7 * m;
  const Instance& vb = transform.transformed;
  const Round horizon = vb.horizon();

  // Inverse job map: original id -> transformed id.
  std::vector<JobId> transformed_of(instance.num_jobs(), kNoJob);
  for (JobId t = 0; t < vb.num_jobs(); ++t) {
    transformed_of[transform.orig_of[t]] = t;
  }

  // Bucket S's executions by (transformed delay bound, window start, color):
  // the transformed job's punctual window is [arrival', arrival' + D').
  std::map<std::tuple<Round, Round, ColorId>, std::vector<JobId>> buckets;
  for (const ExecAction& a : s.executions()) {
    JobId t = transformed_of[a.job];
    RRS_CHECK(t != kNoJob);
    const Job& job = vb.job(t);
    buckets[{vb.delay_bound(job.color), job.arrival, job.color}].push_back(t);
  }

  std::vector<uint8_t> occupied(
      static_cast<size_t>(big_m) * static_cast<size_t>(horizon), 0);
  auto slot = [&](uint32_t r, Round round) -> uint8_t& {
    return occupied[static_cast<size_t>(r) * static_cast<size_t>(horizon) +
                    static_cast<size_t>(round)];
  };

  struct Placement {
    Round round;
    ResourceId resource;
    JobId job;  // transformed id
    ColorId color;
  };
  std::vector<Placement> placements;
  placements.reserve(s.executions().size());

  // std::map iterates keys ascending, i.e. ascending transformed delay
  // bound, then ascending window start, then color order — the nesting
  // order the capacity argument needs.
  for (const auto& [key, jobs] : buckets) {
    const auto& [d_inner, window_start, color] = key;
    uint64_t placed = 0;
    for (uint32_t r = 0; r < big_m && placed < jobs.size(); ++r) {
      for (Round round = window_start;
           round < window_start + d_inner && placed < jobs.size(); ++round) {
        if (slot(r, round)) continue;
        slot(r, round) = 1;
        placements.push_back(Placement{round, r, jobs[placed], color});
        ++placed;
      }
    }
    RRS_CHECK_EQ(placed, jobs.size())
        << "Lemma 5.3 capacity violated in the half-block at "
        << window_start << " (D'=" << d_inner << ", color " << color << ")";
  }

  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.resource != b.resource) return a.resource < b.resource;
              return a.round < b.round;
            });
  PunctualizeResult result;
  result.schedule = Schedule(big_m, 1);
  ResourceId current_resource = static_cast<ResourceId>(-1);
  ColorId current_color = kNoColor;
  for (const Placement& pl : placements) {
    if (pl.resource != current_resource) {
      current_resource = pl.resource;
      current_color = kNoColor;
    }
    if (pl.color != current_color) {
      result.schedule.AddReconfig(pl.round, 0, pl.resource, pl.color);
      current_color = pl.color;
    }
    result.schedule.AddExecution(pl.round, 0, pl.resource, pl.job);
    ++result.executed;
  }
  RRS_CHECK_EQ(result.executed, s.executions().size());
  return result;
}

}  // namespace reduce
}  // namespace rrs
