#include "reduce/varbatch.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace rrs {
namespace reduce {

Round VarBatchDelayBound(Round d) {
  RRS_CHECK_GE(d, 1);
  if (d == 1) return 1;
  return FloorPowerOfTwo(d) / 2 > 0 ? FloorPowerOfTwo(d) / 2 : 1;
}

Round VarBatchArrival(Round arrival, Round d) {
  RRS_CHECK_GE(d, 1);
  if (d == 1) return arrival;
  const Round half = VarBatchDelayBound(d);
  return (arrival / half + 1) * half;
}

VarBatchTransform VarBatchInstance(const Instance& instance) {
  VarBatchTransform out;
  InstanceBuilder builder;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.AddColor(VarBatchDelayBound(instance.delay_bound(c)),
                     instance.color_name(c));
  }
  // Transformed jobs must be re-sorted by their delayed arrival; record the
  // (delayed arrival, original id) pairs and emit in sorted order so the
  // builder's stable sort leaves transformed id i mapping to orig_of[i].
  std::vector<std::pair<Round, JobId>> delayed;
  delayed.reserve(instance.num_jobs());
  for (JobId id = 0; id < instance.num_jobs(); ++id) {
    const Job& j = instance.job(id);
    delayed.emplace_back(
        VarBatchArrival(j.arrival, instance.delay_bound(j.color)), id);
  }
  std::stable_sort(delayed.begin(), delayed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  out.orig_of.reserve(delayed.size());
  for (const auto& [arrival, id] : delayed) {
    builder.AddJob(instance.job(id).color, arrival);
    out.orig_of.push_back(id);
  }
  out.transformed = builder.Build();
  RRS_CHECK(out.transformed.IsBatched()) << "VarBatch output must be batched";
  RRS_CHECK_EQ(out.transformed.num_jobs(), instance.num_jobs());
  return out;
}

Schedule ProjectVarBatchSchedule(const Schedule& inner,
                                 const VarBatchTransform& transform) {
  Schedule projected(inner.num_resources(), inner.mini_rounds_per_round());
  for (const ReconfigAction& a : inner.reconfigs()) {
    projected.AddReconfig(a.round, a.mini, a.resource, a.to);
  }
  for (const ExecAction& a : inner.executions()) {
    projected.AddExecution(a.round, a.mini, a.resource,
                           transform.orig_of[a.job]);
  }
  return projected;
}

}  // namespace reduce
}  // namespace rrs
