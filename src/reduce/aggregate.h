// Algorithm Aggregate (Section 4.3, Lemma 4.1): given an arbitrary offline
// schedule T for a batched instance I, construct an offline schedule T' for
// the Distribute instance I' that uses three times the resources, executes
// exactly as many jobs (equal drop cost, Lemma 4.5), and incurs a
// reconfiguration cost within a constant factor of T's cost (Lemma 4.6).
// Lemma 4.1 is the offline half of Theorem 2; this module makes it
// constructive and checkable.
//
// Implementation notes (documented deviations from the paper's bookkeeping):
// the paper routes jobs through (T,p,i)-monochromatic resources with
// inherited labels and packs the remainder into multichromatic resource
// triples; both exist to prove the capacity and cost bounds. We use the same
// outer structure — ascending delay bounds, block by block, per color,
// subcolors assigned in rank order — but pack placements greedily
// resource-major into each block's 3m x p slot grid. The capacity argument
// collapses to: T executes at most m·p jobs inside any block(p, i), and the
// grid holds 3m·p slots, so the greedy packing never runs out (this is
// checked at runtime, like the Lemma 3.8 counting argument). A group may
// then straddle two subcolors, costing at most one extra reconfiguration per
// group — the constant in Lemma 4.6 changes, the O(·) does not. The cost
// factor is asserted empirically in the tests rather than proven.
#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"
#include "reduce/distribute.h"

namespace rrs {
namespace reduce {

struct AggregateResult {
  Schedule schedule;   // for transform.transformed, 3x T's resources
  uint64_t executed = 0;
};

// Requires: `instance` batched with power-of-two delay bounds; `t` a valid
// uni-speed schedule for `instance`; `transform` the DistributeTransform of
// `instance`. The result executes exactly t's execution count.
AggregateResult AggregateSchedule(const Instance& instance, const Schedule& t,
                                  const DistributeTransform& transform);

}  // namespace reduce
}  // namespace rrs
