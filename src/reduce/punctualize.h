// The punctual-schedule construction of Lemmas 5.1-5.3: given an arbitrary
// offline schedule S for an instance I of [Δ | 1 | D_ℓ | 1], build a
// schedule S' for the VarBatch instance I_vb that uses 7x the resources,
// executes exactly as many jobs, and (Lemma 5.3) costs a constant factor
// more. Every execution of S' is *punctual*: it lands inside the
// transformed job's half-block window [b, b + D'), which is what lets
// Theorem 3 treat the VarBatch instance's optimum as O(OPT(I)).
//
// The paper proves Lemma 5.3 by splitting each resource's executions into
// early / punctual / late and re-timing the early ones forward (Lemma 5.1)
// and the late ones backward (Lemma 5.2) onto 3 + 1 + 3 resources. We keep
// the outer structure — every S-execution is re-timed into its punctual
// window — but pack greedily into the 7m-resource grid, ascending delay
// bound, half-block by half-block. Capacity argument (checked at runtime):
// the jobs placed into any half-block of length L were executed by S within
// a 3L-round span on m resources, so at most 3mL of them exist against a
// 7mL-slot grid. Cost: reconfigurations are emitted per color change per
// resource; the constant-factor bound is asserted empirically in tests.
#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"
#include "reduce/varbatch.h"

namespace rrs {
namespace reduce {

struct PunctualizeResult {
  Schedule schedule;   // for transform.transformed, 7x S's resources
  uint64_t executed = 0;
};

// Requires: `s` a valid uni-speed schedule for `instance`; `transform` the
// VarBatchTransform of `instance`.
PunctualizeResult PunctualizeSchedule(const Instance& instance,
                                      const Schedule& s,
                                      const VarBatchTransform& transform);

}  // namespace reduce
}  // namespace rrs
