// Algorithm VarBatch (Section 5): reduces the main problem [Δ | 1 | D_ℓ | 1]
// to batched [Δ | 1 | D'_ℓ | D'_ℓ].
//
// For power-of-two D_ℓ >= 2 (Section 5.1): a job arriving in
// halfBlock(D, i) — the D/2 rounds starting at i·D/2 — is delayed to round
// (i+1)·D/2 and must execute within halfBlock(D, i+1); the transformed color
// has delay bound D/2 and arrivals only at multiples of D/2.
//
// For arbitrary D_ℓ (Section 5.3): with 2^j <= D < 2^{j+1}, apply the same
// scheme to p̂ = 2^j, i.e. the transformed delay bound is 2^{j-1} = p̂/2.
// Legality: a job arriving at t in halfBlock(p̂, i) executes by
// (i+2)·p̂/2 <= t + p̂ <= t + D, inside its original window.
//
// D_ℓ = 1 colors are already batched and pass through unchanged.
//
// The transform is causal (jobs are only delayed), so VarBatch is online.
// VarBatchTransform keeps the transformed-job -> original-job mapping so the
// inner schedule can be re-targeted at the original instance and validated
// against it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {
namespace reduce {

struct VarBatchTransform {
  Instance transformed;          // batched instance with halved delay bounds
  std::vector<JobId> orig_of;    // transformed job id -> original job id
};

// The transformed delay bound for an original delay bound d (>= 1).
Round VarBatchDelayBound(Round d);

// The transformed arrival round for an original (arrival, delay bound) pair.
Round VarBatchArrival(Round arrival, Round d);

VarBatchTransform VarBatchInstance(const Instance& instance);

// Re-targets a schedule for the transformed instance at the original one by
// mapping job ids back (colors are shared between the two instances).
Schedule ProjectVarBatchSchedule(const Schedule& inner,
                                 const VarBatchTransform& transform);

}  // namespace reduce
}  // namespace rrs
