#include "reduce/online.h"

#include <algorithm>

#include "reduce/varbatch.h"
#include "util/check.h"

namespace rrs {
namespace reduce {

namespace {

std::vector<Round> InnerDelayBounds(
    const std::vector<OnlineSolver::ColorSpec>& colors) {
  std::vector<Round> inner;
  for (const auto& spec : colors) {
    RRS_CHECK_GE(spec.max_subcolors, 1u);
    const Round d_inner = VarBatchDelayBound(spec.delay_bound);
    for (uint32_t s = 0; s < spec.max_subcolors; ++s) {
      inner.push_back(d_inner);
    }
  }
  return inner;
}

}  // namespace

OnlineSolver::OnlineSolver(std::vector<ColorSpec> colors,
                           EngineOptions options, DlruEdfPolicy::Params params)
    : colors_(std::move(colors)),
      policy_(params),
      engine_(InnerDelayBounds(colors_), policy_, options),
      cost_model_(options.cost_model),
      resource_base_color_(options.num_resources, kNoColor) {
  inner_delay_.reserve(colors_.size());
  first_subcolor_.reserve(colors_.size());
  for (const auto& spec : colors_) {
    inner_delay_.push_back(VarBatchDelayBound(spec.delay_bound));
    first_subcolor_.push_back(static_cast<ColorId>(base_of_.size()));
    for (uint32_t s = 0; s < spec.max_subcolors; ++s) {
      base_of_.push_back(static_cast<ColorId>(inner_delay_.size() - 1));
    }
  }
}

void OnlineSolver::Reset() {
  engine_.Reset();  // also resets policy_ against the inner color table
  round_ = 0;
  arrived_ = 0;
  cost_ = CostBreakdown{};
  std::fill(resource_base_color_.begin(), resource_base_color_.end(),
            kNoColor);
  buffered_.clear();
  inner_arrivals_scratch_.clear();
  outcome_.round = 0;
  outcome_.reconfigs.clear();
  outcome_.executions.clear();
  outcome_.drops.clear();
}

const RoundOutcome& OnlineSolver::Step(
    std::span<const std::pair<ColorId, uint64_t>> arrivals) {
  // VarBatch streaming: buffer each arrival at its half-block boundary.
  for (const auto& [c, count] : arrivals) {
    RRS_CHECK_LT(c, colors_.size());
    if (count == 0) continue;
    arrived_ += count;
    const Round boundary = VarBatchArrival(round_, colors_[c].delay_bound);
    buffered_[boundary][c] += count;
  }

  // Deliveries due this round (D = 1 colors buffer to the current round).
  inner_arrivals_scratch_.clear();
  auto due = buffered_.find(round_);
  if (due != buffered_.end()) {
    for (const auto& [c, total] : due->second) {
      // Distribute streaming: split the batch into subcolors of at most
      // D'_c jobs each, in rank order.
      const uint64_t d_inner = static_cast<uint64_t>(inner_delay_[c]);
      const uint64_t needed = (total + d_inner - 1) / d_inner;
      RRS_CHECK_LE(needed, colors_[c].max_subcolors)
          << "burst of " << total << " jobs of color " << c
          << " exceeds the declared subcolor budget";
      uint64_t remaining = total;
      for (uint64_t s = 0; remaining > 0; ++s) {
        uint64_t chunk = std::min(remaining, d_inner);
        inner_arrivals_scratch_.emplace_back(
            first_subcolor_[c] + static_cast<ColorId>(s), chunk);
        remaining -= chunk;
      }
    }
    buffered_.erase(due);
  }

  StepInner(inner_arrivals_scratch_);
  return outcome_;
}

void OnlineSolver::StepInner(
    std::span<const std::pair<ColorId, uint64_t>> arrivals) {
  const RoundOutcome& inner = engine_.Step(arrivals);

  outcome_.round = round_;
  outcome_.reconfigs.clear();
  outcome_.executions.clear();
  outcome_.drops.clear();

  // Project reconfigurations: only base-color changes count (Lemma 4.2).
  for (const auto& [r, inner_color] : inner.reconfigs) {
    ColorId base = inner_color == kNoColor ? kNoColor : base_of_[inner_color];
    if (resource_base_color_[r] == base) continue;
    resource_base_color_[r] = base;
    ++cost_.reconfigurations;
    outcome_.reconfigs.emplace_back(r, base);
  }
  for (const auto& [inner_color, count] : inner.executions) {
    ColorId base = base_of_[inner_color];
    if (!outcome_.executions.empty() &&
        outcome_.executions.back().first == base) {
      outcome_.executions.back().second += count;
    } else {
      outcome_.executions.emplace_back(base, count);
    }
  }
  for (const auto& [inner_color, count] : inner.drops) {
    ColorId base = base_of_[inner_color];
    cost_.drops += count;
    cost_.weighted_drops += count;  // OnlineSolver models unit drop costs
    if (!outcome_.drops.empty() && outcome_.drops.back().first == base) {
      outcome_.drops.back().second += count;
    } else {
      outcome_.drops.emplace_back(base, count);
    }
  }

  ++round_;
}

void OnlineSolver::Finish() {
  while (!buffered_.empty() || engine_.HasPending()) {
    Step({});
  }
}

void OnlineSolver::SaveState(snapshot::Writer& w) const {
  w.BeginSection(snapshot::kTagOnlineSolver);
  w.PutU64(colors_.size());
  w.PutI64(round_);
  w.PutU64(arrived_);
  w.PutU64(cost_.reconfigurations);
  w.PutU64(cost_.drops);
  w.PutU64(cost_.weighted_drops);
  w.PutVec(resource_base_color_);
  // Buffered VarBatch batches: FlatMaps iterate in sorted key order, so the
  // restored maps rebuild identically entry by entry.
  w.PutU64(buffered_.size());
  for (const auto& [boundary, per_color] : buffered_) {
    w.PutI64(boundary);
    w.PutU64(per_color.size());
    for (const auto& [color, count] : per_color) {
      w.PutU32(color);
      w.PutU64(count);
    }
  }
  w.EndSection();

  engine_.SaveState(w);  // inner stream + ΔLRU-EDF policy state
}

void OnlineSolver::LoadState(snapshot::Reader& r) {
  Reset();
  r.BeginSection(snapshot::kTagOnlineSolver);
  RRS_CHECK_EQ(r.GetU64(), colors_.size())
      << "solver snapshot restored against a different color table";
  round_ = r.GetI64();
  arrived_ = r.GetU64();
  cost_.reconfigurations = r.GetU64();
  cost_.drops = r.GetU64();
  cost_.weighted_drops = r.GetU64();
  r.GetVec(resource_base_color_);
  const uint64_t num_boundaries = r.GetU64();
  for (uint64_t i = 0; i < num_boundaries; ++i) {
    const Round boundary = r.GetI64();
    FlatMap<ColorId, uint64_t>& per_color = buffered_[boundary];
    const uint64_t num_entries = r.GetU64();
    for (uint64_t j = 0; j < num_entries; ++j) {
      const ColorId color = r.GetU32();
      per_color[color] = r.GetU64();
    }
  }
  r.EndSection();

  engine_.LoadState(r);
}

}  // namespace reduce
}  // namespace rrs
