// Algorithm Distribute (Section 4): reduces batched [Δ | 1 | D_ℓ | D_ℓ] to
// rate-limited [Δ | 1 | D_ℓ | D_ℓ].
//
// Step 1 (instance transform): each color ℓ of the batched instance I is
// split into subcolors (ℓ, j); the color-ℓ jobs of request i are ranked
// (we use their arrival order) and job with rank r becomes a job of subcolor
// (ℓ, ⌊r / D_ℓ⌋) — so at most D_ℓ jobs of any subcolor arrive per batch,
// i.e. the transformed instance I' is rate-limited. The transform is causal
// (round-by-round), so Distribute is an online algorithm.
//
// Step 2: run ΔLRU-EDF (or any scheduler) on I'.
//
// Step 3 (schedule projection): whenever the inner schedule configures
// (ℓ, j), configure ℓ; whenever it executes an (ℓ, j) job, execute the
// corresponding ℓ job. Reconfigurations that do not change the resource's
// base color are elided, which realizes Lemma 4.2's
// cost(projected) <= cost(inner).
//
// Job identity is preserved: transformed JobId == original JobId (the
// transform keeps every job's arrival round and the builder's ordering), so
// projection only rewrites colors.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {
namespace reduce {

struct DistributeTransform {
  Instance transformed;             // the rate-limited instance I'
  std::vector<ColorId> base_of;     // subcolor -> original color
  std::vector<uint32_t> subcolors_per_color;  // original color -> #subcolors
};

// Requires instance.IsBatched(). The transformed instance satisfies
// IsRateLimited().
DistributeTransform DistributeInstance(const Instance& instance);

// Projects a schedule for the transformed instance back onto the original
// instance: colors are mapped through base_of, no-op recolorings are elided,
// and job ids pass through unchanged.
Schedule ProjectDistributeSchedule(const Schedule& inner,
                                   const DistributeTransform& transform);

struct DistributeRun {
  DistributeTransform transform;
  RunResult inner;           // scheduler outcome on I'
  Schedule schedule;         // projected schedule for the original instance
  ValidationResult validation;  // projected schedule checked against original
};

// End-to-end: transform, run `policy` on I' (with schedule recording forced
// on), project, validate against the original instance.
DistributeRun RunDistribute(const Instance& instance, SchedulerPolicy& policy,
                            EngineOptions options);

}  // namespace reduce
}  // namespace rrs
