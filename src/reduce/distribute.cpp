#include "reduce/distribute.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {
namespace reduce {

DistributeTransform DistributeInstance(const Instance& instance) {
  RRS_CHECK(instance.IsBatched())
      << "Distribute requires a batched instance ([Δ|1|D|D])";

  // First pass: maximum per-batch count for each color determines how many
  // subcolors it needs. Jobs are sorted by arrival, so one linear scan with a
  // per-color (round, count) tracker suffices.
  const size_t num_colors = instance.num_colors();
  std::vector<Round> last_round(num_colors, -1);
  std::vector<uint64_t> count_in_round(num_colors, 0);
  std::vector<uint64_t> max_in_round(num_colors, 0);
  for (const Job& j : instance.jobs()) {
    if (last_round[j.color] != j.arrival) {
      last_round[j.color] = j.arrival;
      count_in_round[j.color] = 0;
    }
    max_in_round[j.color] =
        std::max(max_in_round[j.color], ++count_in_round[j.color]);
  }

  DistributeTransform out;
  out.subcolors_per_color.resize(num_colors);
  std::vector<ColorId> first_subcolor(num_colors);
  InstanceBuilder builder;
  for (ColorId c = 0; c < num_colors; ++c) {
    const Round d = instance.delay_bound(c);
    const uint64_t subs = std::max<uint64_t>(
        1, (max_in_round[c] + static_cast<uint64_t>(d) - 1) /
               static_cast<uint64_t>(d));
    out.subcolors_per_color[c] = static_cast<uint32_t>(subs);
    first_subcolor[c] = static_cast<ColorId>(out.base_of.size());
    for (uint64_t s = 0; s < subs; ++s) {
      builder.AddColor(d, instance.color_name(c) + "." + std::to_string(s));
      out.base_of.push_back(c);
    }
  }

  // Second pass: emit each job under its subcolor. Rank within the request =
  // arrival order (the paper allows an arbitrary rank).
  std::fill(last_round.begin(), last_round.end(), -1);
  std::fill(count_in_round.begin(), count_in_round.end(), 0);
  for (const Job& j : instance.jobs()) {
    if (last_round[j.color] != j.arrival) {
      last_round[j.color] = j.arrival;
      count_in_round[j.color] = 0;
    }
    uint64_t rank = count_in_round[j.color]++;
    uint64_t sub = rank / static_cast<uint64_t>(instance.delay_bound(j.color));
    builder.AddJob(first_subcolor[j.color] + static_cast<ColorId>(sub),
                   j.arrival);
  }

  out.transformed = builder.Build();
  RRS_CHECK(out.transformed.IsRateLimited())
      << "Distribute output must be rate-limited";
  RRS_CHECK_EQ(out.transformed.num_jobs(), instance.num_jobs());
  return out;
}

Schedule ProjectDistributeSchedule(const Schedule& inner,
                                   const DistributeTransform& transform) {
  Schedule projected(inner.num_resources(), inner.mini_rounds_per_round());

  // Replay reconfigs in timeline order, eliding those that keep the
  // resource's base color unchanged (Lemma 4.2).
  std::vector<ReconfigAction> reconfigs = inner.reconfigs();
  std::stable_sort(reconfigs.begin(), reconfigs.end(),
                   [](const ReconfigAction& a, const ReconfigAction& b) {
                     if (a.round != b.round) return a.round < b.round;
                     return a.mini < b.mini;
                   });
  std::vector<ColorId> base_color(inner.num_resources(), kNoColor);
  for (const ReconfigAction& a : reconfigs) {
    ColorId base = a.to == kNoColor ? kNoColor : transform.base_of[a.to];
    if (base_color[a.resource] == base) continue;
    base_color[a.resource] = base;
    projected.AddReconfig(a.round, a.mini, a.resource, base);
  }

  // Executions pass through: JobIds are shared between I and I'.
  for (const ExecAction& a : inner.executions()) {
    projected.AddExecution(a.round, a.mini, a.resource, a.job);
  }
  return projected;
}

DistributeRun RunDistribute(const Instance& instance, SchedulerPolicy& policy,
                            EngineOptions options) {
  DistributeRun run;
  run.transform = DistributeInstance(instance);
  options.record_schedule = true;
  run.inner = RunPolicy(run.transform.transformed, policy, options);
  RRS_CHECK(run.inner.schedule.has_value());
  run.schedule = ProjectDistributeSchedule(*run.inner.schedule, run.transform);
  run.validation = run.schedule.Validate(instance);
  RRS_CHECK(run.validation.ok) << "projected Distribute schedule invalid: "
                               << run.validation.error;
  return run;
}

}  // namespace reduce
}  // namespace rrs
