#include "reduce/pipeline.h"

#include "util/check.h"

namespace rrs {
namespace reduce {

PipelineResult SolveBatched(const Instance& instance, EngineOptions options,
                            const DlruEdfPolicy::Params& params) {
  PipelineResult result;
  result.distribute = DistributeInstance(instance);

  DlruEdfPolicy policy(params);
  options.record_schedule = true;
  result.inner = RunPolicy(result.distribute.transformed, policy, options);
  RRS_CHECK(result.inner.schedule.has_value());

  result.schedule =
      ProjectDistributeSchedule(*result.inner.schedule, result.distribute);
  result.validation = result.schedule.Validate(instance);
  RRS_CHECK(result.validation.ok)
      << "batched pipeline schedule invalid: " << result.validation.error;
  return result;
}

PipelineResult SolveOnline(const Instance& instance, EngineOptions options,
                           const DlruEdfPolicy::Params& params) {
  PipelineResult result;
  result.varbatch = VarBatchInstance(instance);
  result.distribute = DistributeInstance(result.varbatch.transformed);

  DlruEdfPolicy policy(params);
  options.record_schedule = true;
  result.inner = RunPolicy(result.distribute.transformed, policy, options);
  RRS_CHECK(result.inner.schedule.has_value());

  // Project subcolors back to colors (vs the VarBatch instance), then map
  // job ids back to the original instance.
  Schedule mid =
      ProjectDistributeSchedule(*result.inner.schedule, result.distribute);
  result.schedule = ProjectVarBatchSchedule(mid, result.varbatch);
  result.validation = result.schedule.Validate(instance);
  RRS_CHECK(result.validation.ok)
      << "pipeline schedule invalid: " << result.validation.error;
  return result;
}

}  // namespace reduce
}  // namespace rrs
