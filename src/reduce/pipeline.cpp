#include "reduce/pipeline.h"

#include "util/check.h"

namespace rrs {
namespace reduce {

PipelineResult SolveBatched(const Instance& instance, EngineOptions options,
                            const DlruEdfPolicy::Params& params) {
  PipelineResult result;
  result.distribute = DistributeInstance(instance);

  DlruEdfPolicy policy(params);
  options.record_schedule = true;
  result.inner = RunPolicy(result.distribute.transformed, policy, options);
  RRS_CHECK(result.inner.schedule.has_value());

  result.schedule =
      ProjectDistributeSchedule(*result.inner.schedule, result.distribute);
  result.validation = result.schedule.Validate(instance);
  RRS_CHECK(result.validation.ok)
      << "batched pipeline schedule invalid: " << result.validation.error;
  return result;
}

PipelineResult SolveOnline(const Instance& instance, EngineOptions options,
                           const DlruEdfPolicy::Params& params) {
  PipelineResult result;
  result.varbatch = VarBatchInstance(instance);
  result.distribute = DistributeInstance(result.varbatch.transformed);

  DlruEdfPolicy policy(params);
  options.record_schedule = true;
  result.inner = RunPolicy(result.distribute.transformed, policy, options);
  RRS_CHECK(result.inner.schedule.has_value());

  // Project subcolors back to colors (vs the VarBatch instance), then map
  // job ids back to the original instance.
  Schedule mid =
      ProjectDistributeSchedule(*result.inner.schedule, result.distribute);
  result.schedule = ProjectVarBatchSchedule(mid, result.varbatch);
  result.validation = result.schedule.Validate(instance);
  RRS_CHECK(result.validation.ok)
      << "pipeline schedule invalid: " << result.validation.error;
  return result;
}

PipelineSession::PipelineSession(DlruEdfPolicy::Params params)
    : policy_(params) {}

void PipelineSession::RunInner(const Instance& transformed,
                               EngineOptions options) {
  options.record_schedule = true;
  engine_.Reset(transformed, options);
  engine_.BeginRun(policy_);
  engine_.StepRounds(transformed.horizon() + 1);
  engine_.FinishRun(result_.inner);
  ++tenants_served_;
}

const PipelineResult& PipelineSession::SolveBatched(const Instance& instance,
                                                    EngineOptions options) {
  result_.varbatch = VarBatchTransform{};
  result_.distribute = DistributeInstance(instance);
  RunInner(result_.distribute.transformed, options);
  RRS_CHECK(result_.inner.schedule.has_value());

  result_.schedule =
      ProjectDistributeSchedule(*result_.inner.schedule, result_.distribute);
  result_.validation = result_.schedule.Validate(instance);
  RRS_CHECK(result_.validation.ok)
      << "batched pipeline schedule invalid: " << result_.validation.error;
  return result_;
}

const PipelineResult& PipelineSession::SolveOnline(const Instance& instance,
                                                   EngineOptions options) {
  result_.varbatch = VarBatchInstance(instance);
  result_.distribute = DistributeInstance(result_.varbatch.transformed);
  RunInner(result_.distribute.transformed, options);
  RRS_CHECK(result_.inner.schedule.has_value());

  Schedule mid =
      ProjectDistributeSchedule(*result_.inner.schedule, result_.distribute);
  result_.schedule = ProjectVarBatchSchedule(mid, result_.varbatch);
  result_.validation = result_.schedule.Validate(instance);
  RRS_CHECK(result_.validation.ok)
      << "pipeline schedule invalid: " << result_.validation.error;
  return result_;
}

}  // namespace reduce
}  // namespace rrs
