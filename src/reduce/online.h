// OnlineSolver: the deployment-facing, truly incremental form of the paper's
// algorithm (VarBatch ∘ Distribute ∘ ΔLRU-EDF), built on StreamEngine.
//
// A caller declares the color table (per-color delay bounds plus a subcolor
// budget — the maximum number of (ℓ, j) subcolors Distribute may need, i.e.
// ceil(max jobs per batch / D'_ℓ)) and then feeds arrivals one round at a
// time; each Step returns the reconfigurations to apply and the per-color
// execution counts for that round, in the ORIGINAL color space.
//
// Internally:
//  - VarBatch streaming: a job of color ℓ arriving at round t is buffered
//    until the next half-block boundary VarBatchArrival(t, D_ℓ) and injected
//    there with delay bound D'_ℓ = VarBatchDelayBound(D_ℓ);
//  - Distribute streaming: each boundary batch of T jobs is split into
//    subcolors of at most D'_ℓ jobs each (rank order);
//  - ΔLRU-EDF runs on the subcolor stream inside a StreamEngine;
//  - outputs are projected back: subcolor reconfigurations that do not
//    change a resource's base color are elided (Lemma 4.2), executions and
//    drops are re-labelled with base colors.
//
// Cost equivalence with the offline pipeline (reduce::SolveOnline) on the
// same workload — given matching subcolor budgets — is pinned by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "container/flat_map.h"
#include "core/stream_engine.h"
#include "sched/dlru_edf.h"

namespace rrs {
namespace reduce {

class OnlineSolver {
 public:
  struct ColorSpec {
    Round delay_bound = 1;
    // Upper bound on ceil((jobs of this color arriving in one half-block) /
    // D'): the number of subcolors reserved. Feeding a burst that needs more
    // subcolors than reserved is a checked error.
    uint32_t max_subcolors = 1;
  };

  OnlineSolver(std::vector<ColorSpec> colors, EngineOptions options,
               DlruEdfPolicy::Params params = {});

  // Session rebind (core/session.h): restarts the solver at round 0 for a
  // new tenant with the same color table. The inner StreamEngine, the
  // ΔLRU-EDF policy state, the VarBatch buffers, and the base-color
  // projection are all cleared in place — zero steady-state allocation — so
  // one solver object serves an unbounded series of tenants.
  void Reset();

  size_t num_colors() const { return colors_.size(); }
  Round current_round() const { return round_; }

  // Advances one round; arrivals are (original color, count) pairs. The
  // returned outcome is expressed in original colors and is valid until the
  // next Step/Finish call.
  const RoundOutcome& Step(
      std::span<const std::pair<ColorId, uint64_t>> arrivals);

  // Drains all buffered and pending work (runs empty rounds until done).
  void Finish();

  // Total certified cost so far: base-color reconfigurations * Δ + drops.
  CostBreakdown cost() const { return cost_; }
  uint64_t arrived() const { return arrived_; }
  uint64_t executed() const { return engine_.executed(); }

  // Checkpoint/restore at a round boundary: the solver's own projection
  // state (round, certified cost, base colors, buffered VarBatch batches)
  // followed by the inner StreamEngine + ΔLRU-EDF state. LoadState requires
  // a solver built with the same color table, options, and params; it
  // Reset()s and then overwrites, so the restored solver's future Step
  // outputs are bit-identical to the saved one's.
  void SaveState(snapshot::Writer& w) const;
  void LoadState(snapshot::Reader& r);

 private:
  void StepInner(std::span<const std::pair<ColorId, uint64_t>> arrivals);

  std::vector<ColorSpec> colors_;
  std::vector<Round> inner_delay_;        // D' per original color
  std::vector<ColorId> first_subcolor_;   // original color -> first inner id
  std::vector<ColorId> base_of_;          // inner id -> original color

  DlruEdfPolicy policy_;
  StreamEngine engine_;
  CostModel cost_model_;

  Round round_ = 0;
  uint64_t arrived_ = 0;
  CostBreakdown cost_;
  std::vector<ColorId> resource_base_color_;
  // Buffered VarBatch batches: boundary round -> per original color count.
  // Flat maps: the key sets are tiny (pending boundaries / colors per
  // boundary) and hot.
  FlatMap<Round, FlatMap<ColorId, uint64_t>> buffered_;
  std::vector<std::pair<ColorId, uint64_t>> inner_arrivals_scratch_;
  RoundOutcome outcome_;
};

}  // namespace reduce
}  // namespace rrs
