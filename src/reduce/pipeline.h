// The paper's end-to-end online algorithm for the main problem
// [Δ | 1 | D_ℓ | 1] (Theorem 3):
//
//     VarBatch  ∘  Distribute  ∘  ΔLRU-EDF
//
// VarBatch delays each job to the next half-block boundary (making the
// instance batched with halved delay bounds), Distribute splits over-full
// batches into rate-limited subcolors, ΔLRU-EDF schedules the rate-limited
// batched instance, and the two projections map the schedule back to the
// original instance, where the independent validator certifies it.
#pragma once

#include <memory>

#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "reduce/distribute.h"
#include "reduce/varbatch.h"
#include "sched/dlru_edf.h"

namespace rrs {
namespace reduce {

struct PipelineResult {
  VarBatchTransform varbatch;
  DistributeTransform distribute;
  RunResult inner;              // ΔLRU-EDF on the fully transformed instance
  Schedule schedule;            // schedule for the ORIGINAL instance
  ValidationResult validation;  // certified against the original instance

  // Certified cost of the final schedule on the original instance.
  CostBreakdown cost() const { return validation.cost; }
};

// Runs the full pipeline on an arbitrary [Δ | 1 | D_ℓ | 1] instance.
// options.num_resources must satisfy ΔLRU-EDF's requirement (divisible by 4,
// >= the LRU denominator in params).
PipelineResult SolveOnline(const Instance& instance, EngineOptions options,
                           const DlruEdfPolicy::Params& params = {});

// The Section-4 sub-pipeline for inputs that are already batched:
// Distribute ∘ ΔLRU-EDF (Theorem 2).
PipelineResult SolveBatched(const Instance& instance, EngineOptions options,
                            const DlruEdfPolicy::Params& params = {});

}  // namespace reduce
}  // namespace rrs
